/**
 * @file
 * Figure 9: transaction throughput of Baseline, HADES-H, and HADES on
 * the eleven evaluated workloads, normalized to Baseline, on the
 * default N=5, C=5, m=2 cluster.
 *
 * Paper shape: both HADES variants beat Baseline on every workload
 * (averages 2.7x for HADES and 2.3x for HADES-H), HADES >= HADES-H,
 * with the largest gains on TPC-C and the write-intensive workloads.
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

core::RunSpec
specFor(protocol::EngineKind engine, const core::MixEntry &entry)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = {entry};
    spec.txnsPerContext = 120;
    spec.scaleKeys = 150'000;
    return spec;
}

void
runCase(benchmark::State &state)
{
    auto entry = figure9Workloads()[std::size_t(state.range(0))];
    auto engine = allEngines()[std::size_t(state.range(1))];
    std::string key = "fig9/" + entryLabel(entry) + "/" +
                      protocol::engineKindName(engine);
    reportRun(state, key, specFor(engine, entry));
}

BENCHMARK(runCase)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 10, 1),
                   benchmark::CreateDenseRange(0, 2, 1)})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (const auto &entry : figure9Workloads())
        for (auto engine : allEngines())
            sweep.add("fig9/" + entryLabel(entry) + "/" +
                          protocol::engineKindName(engine),
                      specFor(engine, entry));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Figure 9", "throughput normalized to Baseline "
                            "(N=5, C=5, m=2)");
    std::printf("%-12s %12s %12s %12s | %8s %8s\n", "workload",
                "Baseline", "HADES-H", "HADES", "H-H/B", "HADES/B");
    double geo_h = 0, geo_hh = 0;
    int n = 0;
    for (const auto &entry : figure9Workloads()) {
        double tps[3] = {};
        int i = 0;
        for (auto engine : allEngines()) {
            std::string key = "fig9/" + entryLabel(entry) + "/" +
                              protocol::engineKindName(engine);
            tps[i++] = Sweep::instance()
                           .get(key, specFor(engine, entry))
                           .throughputTps;
        }
        std::printf("%-12s %12.0f %12.0f %12.0f | %8.2f %8.2f\n",
                    entryLabel(entry).c_str(), tps[0], tps[1], tps[2],
                    tps[1] / tps[0], tps[2] / tps[0]);
        geo_hh += std::log(tps[1] / tps[0]);
        geo_h += std::log(tps[2] / tps[0]);
        ++n;
    }
    std::printf("%-12s %12s %12s %12s | %8.2f %8.2f  "
                "(paper: 2.3x / 2.7x)\n",
                "geomean", "", "", "", std::exp(geo_hh / n),
                std::exp(geo_h / n));
    sweep.finish("fig09_throughput");
    benchmark::Shutdown();
    return 0;
}
