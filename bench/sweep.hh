/**
 * @file
 * Shared sweep front-end for every figure/bench binary and the CLI.
 *
 * All experiment drivers register their (key, RunSpec) pairs here, run
 * the whole set through core::runMany() in one parallel pass, and read
 * results back by key. The helper also owns the command-line flags the
 * drivers share:
 *
 *   --jobs N       worker threads for the sweep (0 = all hardware
 *                  threads; results are identical for any N)
 *   --smoke        shrink every spec to a seconds-scale smoke run
 *                  (tiny txn/scale counts, narrow cluster) so ctest can
 *                  keep the figure pipelines from rotting
 *   --json PATH    write a machine-readable hades-sweep-v1 report of
 *                  every run (spec echo + full RunResult)
 *
 * Intentionally benchmark-library-free so examples/hades_sim_cli links
 * it without google-benchmark.
 */

#ifndef HADES_BENCH_SWEEP_HH_
#define HADES_BENCH_SWEEP_HH_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/result_json.hh"
#include "core/sweep.hh"

namespace hades::bench
{

/** Registry + parallel executor + result cache for one binary. */
class Sweep
{
  public:
    /**
     * Parse and strip the shared sweep flags from argv, leaving every
     * other argument (e.g. google-benchmark's --benchmark_*) in place.
     * Call before benchmark::Initialize().
     */
    void
    parseArgs(int *argc, char **argv)
    {
        int out = 1;
        for (int i = 1; i < *argc; ++i) {
            std::string opt = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= *argc)
                    fatal("sweep flag needs a value");
                return argv[++i];
            };
            if (opt == "--jobs") {
                jobs_ = static_cast<unsigned>(
                    std::atoi(value().c_str()));
            } else if (opt == "--smoke") {
                smoke_ = true;
            } else if (opt == "--json") {
                jsonPath_ = value();
            } else {
                argv[out++] = argv[i];
            }
        }
        *argc = out;
        argv[out] = nullptr;
    }

    bool smoke() const { return smoke_; }
    unsigned jobs() const { return jobs_; }

    /** Shrink a spec to smoke scale: tiny txn/key counts and a narrow
     *  cluster, sized so a whole figure sweep stays in ctest budget. */
    static core::RunSpec
    applySmoke(core::RunSpec spec)
    {
        spec.txnsPerContext = std::min<std::uint64_t>(
            spec.txnsPerContext, 8);
        spec.scaleKeys = std::min<std::uint64_t>(spec.scaleKeys, 4000);
        spec.cluster.coresPerNode =
            std::min(spec.cluster.coresPerNode, 2u);
        spec.cluster.slotsPerCore =
            std::min(spec.cluster.slotsPerCore, 2u);
        return spec;
    }

    /**
     * Register one run under a stable key (idempotent). In smoke mode
     * the spec is shrunk on registration, so every later get() with
     * the same key observes the smoke result.
     */
    void
    add(const std::string &key, const core::RunSpec &spec)
    {
        if (indexByKey_.count(key))
            return;
        indexByKey_.emplace(key, keys_.size());
        keys_.push_back(key);
        specs_.push_back(smoke_ ? applySmoke(spec) : spec);
        outcomes_.emplace_back();
    }

    /** Run every registered-but-unrun spec through core::runMany. */
    void
    runAll()
    {
        std::vector<std::size_t> pending;
        std::vector<core::RunSpec> batch;
        for (std::size_t i = 0; i < specs_.size(); ++i) {
            if (ran_.size() <= i)
                ran_.resize(specs_.size(), false);
            if (!ran_[i]) {
                pending.push_back(i);
                batch.push_back(specs_[i]);
            }
        }
        if (batch.empty())
            return;
        core::SweepOptions opts;
        opts.jobs = jobs_;
        std::vector<core::RunOutcome> res = core::runMany(batch, opts);
        for (std::size_t b = 0; b < pending.size(); ++b) {
            const std::size_t i = pending[b];
            outcomes_[i] = std::move(res[b]);
            outcomes_[i].index = i;
            ran_[i] = true;
        }
    }

    /**
     * Result lookup by key. Registers and runs the spec on a miss (a
     * serial fallback, so partially-wired binaries stay correct). A
     * failed run is fatal: a figure built from a half-run sweep would
     * silently report garbage.
     */
    const core::RunResult &
    get(const std::string &key, const core::RunSpec &spec)
    {
        auto it = indexByKey_.find(key);
        if (it == indexByKey_.end()) {
            add(key, spec);
            runAll();
            it = indexByKey_.find(key);
        }
        const std::size_t i = it->second;
        if (ran_.size() <= i || !ran_[i])
            runAll();
        const core::RunOutcome &o = outcomes_[i];
        if (!o.ok) {
            std::fprintf(stderr, "sweep run '%s' failed: %s\n",
                         key.c_str(), o.error.c_str());
            fatal("sweep run failed");
        }
        return o.result;
    }

    /** Write the JSON report if --json was requested. Call once after
     *  the summaries are printed. */
    void
    finish(const std::string &tool)
    {
        if (jsonPath_.empty())
            return;
        runAll();
        std::vector<core::JsonRun> runs;
        runs.reserve(keys_.size());
        for (std::size_t i = 0; i < keys_.size(); ++i)
            runs.push_back(
                core::JsonRun{keys_[i], &specs_[i], &outcomes_[i]});
        core::writeJsonFile(
            jsonPath_, core::sweepReportJson(tool, jobs_, smoke_, runs));
    }

    /** Per-binary singleton shared by benchmark cases and summaries. */
    static Sweep &
    instance()
    {
        static Sweep sweep;
        return sweep;
    }

  private:
    std::vector<std::string> keys_;       //!< insertion order
    std::map<std::string, std::size_t> indexByKey_;
    std::vector<core::RunSpec> specs_;    //!< post-smoke specs
    std::vector<core::RunOutcome> outcomes_;
    std::vector<bool> ran_;
    unsigned jobs_ = 1;
    bool smoke_ = false;
    std::string jsonPath_;
};

} // namespace hades::bench

#endif // HADES_BENCH_SWEEP_HH_
