/**
 * @file
 * Ablation: grey-failure mitigation (fail-slow fault model, SLO
 * hedging, admission control with retry budgets).
 *
 * Two scenario families on YCSB-A, all replicated (degree 2) so every
 * configuration pays the same durability cost and has a backup to
 * hedge to:
 *
 *  - fail-slow: node 1's NIC runs 6x slow for the whole run. The
 *    no-mitigation row shows the metastable collapse (every remote
 *    round trip that touches the victim crawls); arming the SLO
 *    tracker + hedged reads, and then admission control on top, must
 *    claw committed throughput and tail latency back toward healthy.
 *  - retry storm: a contended key range under heavy message drops
 *    amplifies squash retries. The retry budget (paced, ratio-capped)
 *    must keep goodput above 50% of the healthy baseline.
 *
 * The JSON report (hades-sweep-v1) of the pinned smoke spec is the CI
 * perf snapshot BENCH_greyfail.json.
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

enum class Mitigation
{
    None,
    Hedge,         //!< SLO tracker + hedged remote reads
    HedgeAndAdmit, //!< hedging + admission control + retry budget
};

struct Case
{
    const char *label;
    bool grey;  //!< slow-NIC victim (vs healthy)
    bool storm; //!< contended + lossy retry-storm family
    Mitigation mitigation;
};

const Case kCases[] = {
    {"healthy", false, false, Mitigation::None},
    {"greyfail", true, false, Mitigation::None},
    {"grey+hedge", true, false, Mitigation::Hedge},
    {"grey+hedge+adm", true, false, Mitigation::HedgeAndAdmit},
    {"storm", false, true, Mitigation::None},
    {"storm+budget", false, true, Mitigation::HedgeAndAdmit},
};

core::RunSpec
specFor(const Case &c)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.mix = {core::MixEntry{workload::AppKind::YcsbA,
                               kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 60;
    spec.scaleKeys = 50'000;
    spec.replication.degree = 2;
    spec.cluster.tuning.retryTimeoutBase = us(4);
    spec.cluster.tuning.retryTimeoutCap = us(32);
    if (c.grey) {
        FaultConfig::GreyEvent g;
        g.kind = FaultConfig::GreyEvent::Kind::SlowNic;
        g.node = NodeId(1);
        g.factorPct = 600;
        g.at = us(2);
        g.until = us(1'000'000);
        spec.cluster.faults.enabled = true;
        spec.cluster.faults.greyEvents.push_back(g);
    }
    if (c.storm) {
        // Contended keys + drops: squash retries amplify each other.
        spec.scaleKeys = 400;
        spec.cluster.faults.enabled = true;
        spec.cluster.faults.dropAll(0.08);
        spec.cluster.faults.seed = 7;
    }
    if (c.mitigation != Mitigation::None) {
        spec.cluster.faults.enabled = true;
        spec.cluster.slo.enabled = true;
    }
    if (c.mitigation == Mitigation::HedgeAndAdmit) {
        spec.cluster.admission.enabled = true;
        spec.cluster.admission.maxInFlight = 3;
        spec.cluster.admission.retryBudgetPct = 25;
    }
    return spec;
}

void
runCase(benchmark::State &state)
{
    const auto &c = kCases[state.range(0)];
    reportRun(state, std::string("greyfail/") + c.label, specFor(c));
}

BENCHMARK(runCase)
    ->DenseRange(0, int(std::size(kCases)) - 1, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (const auto &c : kCases)
        sweep.add(std::string("greyfail/") + c.label, specFor(c));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Ablation",
                "grey-failure mitigation (HADES, YCSB-A, 2x repl; "
                "slow-NIC victim and retry storm)");
    std::printf("%-15s %12s %11s %11s %8s %8s %11s\n", "config",
                "txn/s", "p95 lat", "hedges", "wins", "shed",
                "vs healthy");
    double healthy = 0;
    for (const auto &c : kCases) {
        const auto &res = Sweep::instance().get(
            std::string("greyfail/") + c.label, specFor(c));
        if (!c.grey && !c.storm)
            healthy = res.throughputTps;
        std::printf("%-15s %12.0f %9.1fus %11lu %8lu %8lu %10.2fx\n",
                    c.label, res.throughputTps, res.p95LatencyUs,
                    (unsigned long)res.hedgedSends,
                    (unsigned long)res.hedgeWins,
                    (unsigned long)res.shedTxns,
                    res.throughputTps / healthy);
    }
    std::printf("\nacceptance: grey+hedge+adm must beat greyfail on "
                "both txn/s and p95; storm+budget must hold >= 50%% "
                "of healthy txn/s.\n");
    sweep.finish("ablate_greyfail");
    benchmark::Shutdown();
    return 0;
}
