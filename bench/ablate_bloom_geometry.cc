/**
 * @file
 * Ablation: Bloom filter geometry.
 *
 * HADES picks 1-Kbit read filters and the 512b+4Kb split write filter
 * (Table III) because per-transaction footprints are small (<=76 read /
 * <=40 written lines). This ablation shrinks and grows the filters and
 * measures the effect on false-positive conflicts, squash rate, and
 * throughput under a contended workload. Undersized filters convert
 * hash collisions into spurious squashes; oversized ones buy nothing.
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

const std::uint32_t kBits[] = {128, 256, 1024, 4096};

core::RunSpec
specFor(std::uint32_t bits)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.mix = {core::MixEntry{workload::AppKind::YcsbA,
                               kvs::StoreKind::BTree}};
    spec.txnsPerContext = 100;
    spec.scaleKeys = 150'000;
    spec.cluster.coreReadBf.bits = bits;
    spec.cluster.nicReadBf.bits = bits;
    spec.cluster.nicWriteBf.bits = bits;
    spec.cluster.coreWriteBf.bf1Bits = std::max(64u, bits / 2);
    return spec;
}

std::string
keyFor(std::uint32_t bits)
{
    return "ablate_bf/" + std::to_string(bits);
}

void
runCase(benchmark::State &state)
{
    auto bits = kBits[state.range(0)];
    reportRun(state, keyFor(bits), specFor(bits));
}

BENCHMARK(runCase)
    ->DenseRange(0, 3, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (auto bits : kBits)
        sweep.add(keyFor(bits), specFor(bits));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Ablation", "Bloom filter size (HADES, BTree-wA); "
                            "Table III uses 1024-bit read filters");
    std::printf("%-10s %14s %12s %14s\n", "bits", "txn/s",
                "squash/att", "BF false-pos");
    for (auto bits : kBits) {
        const auto &res =
            Sweep::instance().get(keyFor(bits), specFor(bits));
        std::printf("%-10u %14.0f %11.1f%% %13.4f%%\n", bits,
                    res.throughputTps, 100.0 * res.squashRate,
                    100.0 * res.bfFalsePositiveRate);
    }
    std::printf("(expected: small filters inflate false positives and "
                "squashes; 1Kbit is already in the flat region)\n");
    sweep.finish("ablate_bloom_geometry");
    benchmark::Shutdown();
    return 0;
}
