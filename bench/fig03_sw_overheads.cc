/**
 * @file
 * Figure 3: execution-time breakdown of the optimized software protocol
 * (SW-Impl) into the Table I overhead categories, for YCSB 100%WR,
 * 50%WR-50%RD, and 100%RD on a 4-node cluster (Section III's profiling
 * setup).
 *
 * Paper shape: the categories together account for 59-71% of execution
 * time; RD-before-WR and write-set management dominate 100%WR, while
 * conflict detection (validation re-reads), read atomicity, and
 * read-set management dominate 100%RD.
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

std::vector<workload::AppKind>
fig3Workloads()
{
    return {workload::AppKind::YcsbWriteOnly, workload::AppKind::YcsbHalf,
            workload::AppKind::YcsbReadOnly};
}

core::RunSpec
specFor(workload::AppKind app)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Baseline;
    spec.cluster.numNodes = 4; // Section III profiling cluster
    spec.mix = {core::MixEntry{app, kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 150;
    spec.scaleKeys = 200'000;
    return spec;
}

std::string
keyFor(workload::AppKind app)
{
    return std::string("fig3/") + workload::appKindName(app);
}

void
runCase(benchmark::State &state)
{
    auto app = fig3Workloads()[std::size_t(state.range(0))];
    reportRun(state, keyFor(app), specFor(app));
}

BENCHMARK(runCase)
    ->DenseRange(0, 2, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (auto app : fig3Workloads())
        sweep.add(keyFor(app), specFor(app));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Figure 3",
                "SW-Impl execution time breakdown (4 nodes); "
                "paper overhead totals: 59% / 65% / 71%");
    std::printf("%-14s", "category");
    for (auto app : fig3Workloads())
        std::printf(" %14s", workload::appKindName(app));
    std::printf("\n");
    for (std::size_t c = 0;
         c < std::size_t(txn::Overhead::NumCategories); ++c) {
        std::printf("%-14s", txn::overheadName(txn::Overhead(c)));
        for (auto app : fig3Workloads()) {
            const auto &res = Sweep::instance().get(keyFor(app),
                                                       specFor(app));
            std::printf(" %13.1f%%", 100.0 * res.overheadShare[c]);
        }
        std::printf("\n");
    }
    std::printf("%-14s", "OverheadTotal");
    for (auto app : fig3Workloads()) {
        const auto &res =
            Sweep::instance().get(keyFor(app), specFor(app));
        double total = 0;
        for (double s : res.overheadShare)
            total += s;
        std::printf(" %13.1f%%", 100.0 * total);
    }
    std::printf("\n%-14s", "OtherTime");
    for (auto app : fig3Workloads()) {
        const auto &res =
            Sweep::instance().get(keyFor(app), specFor(app));
        std::printf(" %13.1f%%", 100.0 * res.otherShare);
    }
    std::printf("\n");
    sweep.finish("fig03_sw_overheads");
    benchmark::Shutdown();
    return 0;
}
