/**
 * @file
 * Table IV: sensitivity of the Bloom filter false-positive rate to the
 * number of cache-line addresses inserted, for the 1-Kbit NIC filter
 * and the 512-bit + 4-Kbit split core write filter.
 *
 * Paper values:
 *   1Kbit:        0.04% / 0.138% / 0.877% / 3.26%   (10/20/50/100 lines)
 *   512bit+4Kbit: 0.003% / 0.022% / 0.093% / 0.439%
 *
 * The google-benchmark cases additionally measure the raw
 * insert/membership-probe cost of the filter implementations.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>
#include <vector>

#include "bloom/bloom_filter.hh"
#include "bloom/split_write_bloom.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "sweep.hh"

namespace hades::bench
{
namespace
{

Addr
randomLine(Rng &rng)
{
    return rng.next() & ~Addr{kCacheLineBytes - 1};
}

/** Measure the empirical FPR of a filter factory at @p inserted lines. */
template <typename MakeFilter>
double
measureFpr(MakeFilter make, std::uint32_t inserted, int trials,
           int probes, std::uint64_t seed)
{
    Rng rng{seed};
    std::uint64_t fp = 0, total = 0;
    for (int t = 0; t < trials; ++t) {
        auto bf = make();
        std::set<Addr> members;
        while (members.size() < inserted) {
            Addr a = randomLine(rng);
            if (members.insert(a).second)
                bf.insert(a);
        }
        for (int i = 0; i < probes; ++i) {
            Addr a = randomLine(rng);
            if (members.count(a))
                continue;
            ++total;
            fp += bf.mayContain(a) ? 1 : 0;
        }
    }
    return double(fp) / double(total);
}

bloom::BloomFilter
makeNicFilter()
{
    ClusterConfig cfg;
    return bloom::BloomFilter{cfg.nicReadBf.bits,
                              cfg.nicReadBf.numHashes};
}

bloom::SplitWriteBloomFilter
makeCoreWriteFilter()
{
    ClusterConfig cfg;
    return bloom::SplitWriteBloomFilter{cfg.coreWriteBf, cfg.llcSets()};
}

void
bmInsert1Kbit(benchmark::State &state)
{
    Rng rng{1};
    auto bf = makeNicFilter();
    for (auto _ : state) {
        bf.insert(randomLine(rng));
        if (bf.insertedCount() > 100) // keep occupancy realistic
            bf.clear();
    }
}
BENCHMARK(bmInsert1Kbit);

void
bmProbe1Kbit(benchmark::State &state)
{
    Rng rng{2};
    auto bf = makeNicFilter();
    for (int i = 0; i < 40; ++i)
        bf.insert(randomLine(rng));
    bool sink = false;
    for (auto _ : state)
        sink ^= bf.mayContain(randomLine(rng));
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(bmProbe1Kbit);

void
bmInsertSplit(benchmark::State &state)
{
    Rng rng{3};
    auto bf = makeCoreWriteFilter();
    for (auto _ : state) {
        bf.insert(randomLine(rng));
        if (bf.insertedCount() > 100)
            bf.clear();
    }
}
BENCHMARK(bmInsertSplit);

void
bmProbeSplit(benchmark::State &state)
{
    Rng rng{4};
    auto bf = makeCoreWriteFilter();
    for (int i = 0; i < 40; ++i)
        bf.insert(randomLine(rng));
    bool sink = false;
    for (auto _ : state)
        sink ^= bf.mayContain(randomLine(rng));
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(bmProbeSplit);

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    // No RunSpec sweep here: the table is pure Monte-Carlo over the
    // filter implementations. Smoke mode just cuts the trial count.
    const int trials = sweep.smoke() ? 10 : 120;
    const int probes = sweep.smoke() ? 1000 : 8000;

    const std::uint32_t line_counts[] = {10, 20, 50, 100};
    const double paper_1k[] = {0.04, 0.138, 0.877, 3.26};
    const double paper_split[] = {0.003, 0.022, 0.093, 0.439};

    std::printf("\n==== Table IV: Bloom filter false positive rate (%%) "
                "vs lines inserted ====\n");
    std::printf("%-16s %10s %10s %10s %10s\n", "filter", "10", "20",
                "50", "100");
    std::printf("%-16s", "1Kbit");
    for (auto n : line_counts)
        std::printf(" %9.3f%%",
                    100.0 * measureFpr([] { return makeNicFilter(); },
                                       n, trials, probes, 99));
    std::printf("\n%-16s", "  (paper)");
    for (double p : paper_1k)
        std::printf(" %9.3f%%", p);
    std::printf("\n%-16s", "512bit+4Kbit");
    for (auto n : line_counts)
        std::printf(" %9.3f%%",
                    100.0 * measureFpr(
                                [] { return makeCoreWriteFilter(); }, n,
                                trials, probes, 7));
    std::printf("\n%-16s", "  (paper)");
    for (double p : paper_split)
        std::printf(" %9.3f%%", p);
    std::printf("\n");
    sweep.finish("table4_bloom_fpr");
    benchmark::Shutdown();
    return 0;
}
