/**
 * @file
 * Section VI hardware storage arithmetic: the per-node cost of the
 * HADES structures for the default cluster (N=5, C=5, m=2, D=4) and
 * the large FaRM-scale cluster (N=90, C=16, m=2, D=5).
 *
 * Paper values: a core BF pair takes 0.7KB and a NIC pair 0.25KB; the
 * default cluster needs 7.0KB of core BFs, 4 WrTX ID bits per LLC
 * line, and ~11KB in the NIC; the large cluster needs 22.4KB, 5 bits,
 * and ~43.1KB.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/hw_cost.hh"
#include "sweep.hh"

namespace
{

void
bmComputeStorage(benchmark::State &state)
{
    hades::ClusterConfig cfg;
    for (auto _ : state) {
        auto s = hades::core::computeHwStorage(cfg, 4);
        benchmark::DoNotOptimize(s.nicTotalBytes);
    }
}
BENCHMARK(bmComputeStorage);

void
printRow(const char *name, const hades::ClusterConfig &cfg,
         std::uint32_t d)
{
    auto s = hades::core::computeHwStorage(cfg, d);
    std::printf("%-22s %8.2fKB %8.2fKB %6u pairs %6u pairs %4u bits "
                "%8.1fKB %8.1fKB\n",
                name, s.coreBfPairBytes / 1024.0,
                s.nicBfPairBytes / 1024.0, s.corePairs, s.nicPairs,
                s.wrTxIdBits, s.coreBfTotalBytes / 1024.0,
                s.nicTotalBytes / 1024.0);
}

} // namespace

int
main(int argc, char **argv)
{
    // Pure arithmetic, no simulation runs: the sweep flags are accepted
    // for a uniform bench-binary interface but only --json matters.
    auto &sweep = hades::bench::Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    std::printf("\n==== Section VI: per-node HADES storage ====\n");
    std::printf("%-22s %10s %10s %12s %12s %9s %10s %10s\n", "cluster",
                "coreBF/pr", "nicBF/pr", "core pairs", "nic pairs",
                "WrTXID", "core tot", "NIC tot");

    hades::ClusterConfig small; // N=5, C=5, m=2 defaults
    printRow("default (N5,C5,m2,D4)", small, 4);
    std::printf("%-22s %9s %10s %25s %11s %10s %10s\n", "  (paper)",
                "0.70KB", "0.25KB", "", "4 bits", "7.0KB", "11.0KB");

    hades::ClusterConfig large;
    large.numNodes = 90;
    large.coresPerNode = 16;
    large.slotsPerCore = 2;
    printRow("FaRM   (N90,C16,m2,D5)", large, 5);
    std::printf("%-22s %9s %10s %25s %11s %10s %10s\n", "  (paper)",
                "0.70KB", "0.25KB", "", "5 bits", "22.4KB", "43.1KB");

    sweep.finish("hwcost_storage");
    benchmark::Shutdown();
    return 0;
}
