/**
 * @file
 * Figure 12b: average throughput for different fractions of requests
 * that target the coordinator's local node (80% / 50% / 20%),
 * normalized to Baseline with 20% local requests.
 *
 * Paper shape: as locality grows, HADES's relative speedup increases
 * while HADES-H's shrinks rapidly -- its local operations run in
 * software and become the bottleneck when most requests are local.
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

std::vector<core::MixEntry>
sweepApps()
{
    using workload::AppKind;
    using kvs::StoreKind;
    return {
        {AppKind::Tpcc, StoreKind::HashTable},
        {AppKind::Tatp, StoreKind::HashTable},
        {AppKind::YcsbA, StoreKind::HashTable},
        {AppKind::YcsbB, StoreKind::BTree},
        {AppKind::Smallbank, StoreKind::HashTable},
    };
}

const double kFractions[] = {0.2, 0.5, 0.8};

core::RunSpec
specFor(protocol::EngineKind engine, const core::MixEntry &entry,
        double frac)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = {entry};
    spec.cluster.forcedLocalFraction = frac;
    spec.txnsPerContext = 100;
    spec.scaleKeys = 150'000;
    return spec;
}

std::string
keyFor(protocol::EngineKind engine, const core::MixEntry &entry,
       double frac)
{
    return "fig12b/" + entryLabel(entry) + "/" +
           protocol::engineKindName(engine) + "/" +
           std::to_string(int(frac * 100));
}

void
runCase(benchmark::State &state)
{
    auto entry = sweepApps()[std::size_t(state.range(0))];
    auto engine = allEngines()[std::size_t(state.range(1))];
    double frac = kFractions[state.range(2)];
    reportRun(state, keyFor(engine, entry, frac),
              specFor(engine, entry, frac));
}

BENCHMARK(runCase)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 4, 1),
                   benchmark::CreateDenseRange(0, 2, 1),
                   benchmark::CreateDenseRange(0, 2, 1)})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (const auto &entry : sweepApps())
        for (auto engine : allEngines())
            for (double frac : kFractions)
                sweep.add(keyFor(engine, entry, frac),
                          specFor(engine, entry, frac));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Figure 12b",
                "throughput vs fraction of local requests, normalized "
                "to Baseline @ 20%% local (geomean over apps)");
    std::printf("%-10s %10s %10s %10s\n", "engine", "20%", "50%",
                "80%");
    for (auto engine : allEngines()) {
        std::printf("%-10s", protocol::engineKindName(engine));
        for (double frac : kFractions) {
            double geo = 0;
            int n = 0;
            for (const auto &entry : sweepApps()) {
                double tps = Sweep::instance()
                                 .get(keyFor(engine, entry, frac),
                                      specFor(engine, entry, frac))
                                 .throughputTps;
                double base =
                    Sweep::instance()
                        .get(keyFor(protocol::EngineKind::Baseline,
                                    entry, 0.2),
                             specFor(protocol::EngineKind::Baseline,
                                     entry, 0.2))
                        .throughputTps;
                geo += std::log(tps / base);
                ++n;
            }
            std::printf(" %10.2f", std::exp(geo / n));
        }
        std::printf("\n");
    }
    std::printf("(paper: HADES gains with locality; HADES-H's relative "
                "speedup shrinks)\n");
    sweep.finish("fig12b_locality");
    benchmark::Shutdown();
    return 0;
}
