/**
 * @file
 * Figure 10: mean transaction latency normalized to Baseline, broken
 * into Execution / Validation / Commit phases, for the eleven
 * workloads on the default cluster.
 *
 * Paper shape: HADES-H and HADES cut mean latency by 54% and 60% on
 * average; Execution dominates the Baseline latency, Validation is the
 * second contributor, and the HADES variants report only Execution and
 * Validation phases (their commit work is offloaded to hardware and
 * rolled into Validation).
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

core::RunSpec
specFor(protocol::EngineKind engine, const core::MixEntry &entry)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = {entry};
    spec.txnsPerContext = 100;
    spec.scaleKeys = 150'000;
    return spec;
}

std::string
keyFor(protocol::EngineKind engine, const core::MixEntry &entry)
{
    return "fig10/" + entryLabel(entry) + "/" +
           protocol::engineKindName(engine);
}

void
runCase(benchmark::State &state)
{
    auto entry = figure9Workloads()[std::size_t(state.range(0))];
    auto engine = allEngines()[std::size_t(state.range(1))];
    reportRun(state, keyFor(engine, entry), specFor(engine, entry));
}

BENCHMARK(runCase)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 10, 1),
                   benchmark::CreateDenseRange(0, 2, 1)})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (const auto &entry : figure9Workloads())
        for (auto engine : allEngines())
            sweep.add(keyFor(engine, entry), specFor(engine, entry));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Figure 10",
                "mean txn latency (us) with phase breakdown, and the "
                "mean normalized to Baseline");
    std::printf("%-12s | %-26s | %-26s | %-26s | %6s %6s\n", "workload",
                "Baseline exec/val/com", "HADES-H exec/val",
                "HADES exec/val", "H-H/B", "H/B");
    double red_h = 0, red_hh = 0;
    int n = 0;
    for (const auto &entry : figure9Workloads()) {
        const core::RunResult *r[3];
        int i = 0;
        for (auto engine : allEngines())
            r[i++] = &Sweep::instance().get(
                keyFor(engine, entry), specFor(engine, entry));
        std::printf("%-12s | %7.1f %7.1f %7.1f    | %7.1f %7.1f %9s | "
                    "%7.1f %7.1f %9s | %6.2f %6.2f\n",
                    entryLabel(entry).c_str(), r[0]->execUs,
                    r[0]->validationUs, r[0]->commitUs, r[1]->execUs,
                    r[1]->validationUs, "", r[2]->execUs,
                    r[2]->validationUs, "",
                    r[1]->meanLatencyUs / r[0]->meanLatencyUs,
                    r[2]->meanLatencyUs / r[0]->meanLatencyUs);
        red_hh += r[1]->meanLatencyUs / r[0]->meanLatencyUs;
        red_h += r[2]->meanLatencyUs / r[0]->meanLatencyUs;
        ++n;
    }
    std::printf("mean latency reduction: HADES-H %.0f%%, HADES %.0f%%  "
                "(paper: 54%% / 60%%)\n",
                100.0 * (1.0 - red_hh / n), 100.0 * (1.0 - red_h / n));
    sweep.finish("fig10_latency");
    benchmark::Shutdown();
    return 0;
}
