/**
 * @file
 * Figure 15 + Table V: space-shared mixes of four workloads on N=8
 * nodes of C=25 cores each -- 200 cores in total, the paper's largest
 * configuration.
 *
 * Paper shape: HADES delivers the highest throughput in every mix;
 * across mixes HADES and HADES-H average 2.9x and 2.1x over Baseline.
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

using workload::AppKind;
using kvs::StoreKind;

/** Table V. */
std::vector<std::vector<core::MixEntry>>
tableVMixes()
{
    return {
        // mix1: HT-wA, BTree-wA, Map-wA, TATP
        {{AppKind::YcsbA, StoreKind::HashTable},
         {AppKind::YcsbA, StoreKind::BTree},
         {AppKind::YcsbA, StoreKind::Map},
         {AppKind::Tatp, StoreKind::HashTable}},
        // mix2: Map-wA, TATP, B+Tree-wB, Map-wB
        {{AppKind::YcsbA, StoreKind::Map},
         {AppKind::Tatp, StoreKind::HashTable},
         {AppKind::YcsbB, StoreKind::BPlusTree},
         {AppKind::YcsbB, StoreKind::Map}},
        // mix3: B+Tree-wA, Map-wB, Smallbank, BTree-wB
        {{AppKind::YcsbA, StoreKind::BPlusTree},
         {AppKind::YcsbB, StoreKind::Map},
         {AppKind::Smallbank, StoreKind::HashTable},
         {AppKind::YcsbB, StoreKind::BTree}},
        // mix4: Smallbank, BTree-wB, TPC-C, TATP
        {{AppKind::Smallbank, StoreKind::HashTable},
         {AppKind::YcsbB, StoreKind::BTree},
         {AppKind::Tpcc, StoreKind::HashTable},
         {AppKind::Tatp, StoreKind::HashTable}},
        // mix5: TPC-C, HT-wB, Smallbank, BTree-wA
        {{AppKind::Tpcc, StoreKind::HashTable},
         {AppKind::YcsbB, StoreKind::HashTable},
         {AppKind::Smallbank, StoreKind::HashTable},
         {AppKind::YcsbA, StoreKind::BTree}},
        // mix6: B+Tree-wB, Smallbank, TPC-C, TATP
        {{AppKind::YcsbB, StoreKind::BPlusTree},
         {AppKind::Smallbank, StoreKind::HashTable},
         {AppKind::Tpcc, StoreKind::HashTable},
         {AppKind::Tatp, StoreKind::HashTable}},
        // mix7: TPC-C, TATP, BTree-wB, Map-wA
        {{AppKind::Tpcc, StoreKind::HashTable},
         {AppKind::Tatp, StoreKind::HashTable},
         {AppKind::YcsbB, StoreKind::BTree},
         {AppKind::YcsbA, StoreKind::Map}},
        // mix8: BTree-wB, Map-wA, HT-wA, BTree-wA
        {{AppKind::YcsbB, StoreKind::BTree},
         {AppKind::YcsbA, StoreKind::Map},
         {AppKind::YcsbA, StoreKind::HashTable},
         {AppKind::YcsbA, StoreKind::BTree}},
    };
}

core::RunSpec
specFor(protocol::EngineKind engine, std::size_t mix_idx)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = tableVMixes()[mix_idx];
    spec.cluster.numNodes = 8;
    spec.cluster.coresPerNode = 25;
    spec.txnsPerContext = 25;
    spec.scaleKeys = 80'000;
    return spec;
}

std::string
keyFor(protocol::EngineKind engine, std::size_t idx)
{
    return "fig15/mix" + std::to_string(idx + 1) + "/" +
           protocol::engineKindName(engine);
}

void
runCase(benchmark::State &state)
{
    auto idx = std::size_t(state.range(0));
    auto engine = allEngines()[std::size_t(state.range(1))];
    reportRun(state, keyFor(engine, idx), specFor(engine, idx));
}

BENCHMARK(runCase)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 7, 1),
                   benchmark::CreateDenseRange(0, 2, 1)})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (std::size_t m = 0; m < tableVMixes().size(); ++m)
        for (auto engine : allEngines())
            sweep.add(keyFor(engine, m), specFor(engine, m));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Figure 15 / Table V",
                "four-workload mixes, N=8 x C=25 (200 cores), "
                "normalized to Baseline");
    std::printf("%-6s %12s %12s %12s | %8s %8s\n", "mix", "Baseline",
                "HADES-H", "HADES", "H-H/B", "HADES/B");
    double sum_h = 0, sum_hh = 0;
    for (std::size_t m = 0; m < tableVMixes().size(); ++m) {
        double tps[3] = {};
        int i = 0;
        for (auto engine : allEngines())
            tps[i++] = Sweep::instance()
                           .get(keyFor(engine, m), specFor(engine, m))
                           .throughputTps;
        std::printf("mix%-3zu %12.0f %12.0f %12.0f | %8.2f %8.2f\n",
                    m + 1, tps[0], tps[1], tps[2], tps[1] / tps[0],
                    tps[2] / tps[0]);
        sum_hh += tps[1] / tps[0];
        sum_h += tps[2] / tps[0];
    }
    std::printf("%-6s %38s | %8.2f %8.2f  (paper: 2.1x / 2.9x)\n",
                "mean", "", sum_hh / 8.0, sum_h / 8.0);
    sweep.finish("fig15_mix4");
    benchmark::Shutdown();
    return 0;
}
