/**
 * @file
 * Ablation: fault tolerance and durability (Section V-A extension).
 *
 * Sweeps the replication degree and the persistence medium, measuring
 * the throughput cost of making commits durable. The replica updates
 * ride the two-phase commit (staged on Intend-to-commit, promoted on
 * Validation), so the expected cost is roughly one extra round trip
 * plus the persist latency on the commit critical path.
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

struct Case
{
    std::uint32_t degree;
    replica::Medium medium;
    const char *label;
};

const Case kCases[] = {
    {0, replica::Medium::Nvm, "off"},
    {1, replica::Medium::Nvm, "1x NVM"},
    {2, replica::Medium::Nvm, "2x NVM"},
    {2, replica::Medium::Ssd, "2x SSD"},
};

core::RunSpec
specFor(const Case &c)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.mix = {core::MixEntry{workload::AppKind::Smallbank,
                               kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 100;
    spec.scaleKeys = 150'000;
    spec.replication.degree = c.degree;
    spec.replication.medium = c.medium;
    return spec;
}

void
runCase(benchmark::State &state)
{
    const auto &c = kCases[state.range(0)];
    reportRun(state, std::string("ablate_repl/") + c.label,
              specFor(c));
}

BENCHMARK(runCase)
    ->DenseRange(0, 3, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (const auto &c : kCases)
        sweep.add(std::string("ablate_repl/") + c.label, specFor(c));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Ablation",
                "replication & durability (HADES, Smallbank; "
                "Section V-A extension)");
    std::printf("%-8s %14s %12s %16s\n", "config", "txn/s", "mean lat",
                "replicated txns");
    double base = 0;
    for (const auto &c : kCases) {
        const auto &res = Sweep::instance().get(
            std::string("ablate_repl/") + c.label, specFor(c));
        if (c.degree == 0)
            base = res.throughputTps;
        std::printf("%-8s %14.0f %10.1fus %16lu  (%.2fx of no-repl)\n",
                    c.label, res.throughputTps, res.meanLatencyUs,
                    (unsigned long)res.replicatedCommits,
                    res.throughputTps / base);
    }
    sweep.finish("ablate_replication");
    benchmark::Shutdown();
    return 0;
}
