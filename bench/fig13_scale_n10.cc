/**
 * @file
 * Figure 13: throughput normalized to Baseline on a larger machine
 * with N=10 nodes of C=5 cores each.
 *
 * Paper shape: HADES's speedups over Baseline are similar to the
 * default 5-node cluster of Figure 9 (the protocol scales).
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

core::RunSpec
specFor(protocol::EngineKind engine, const core::MixEntry &entry)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = {entry};
    spec.cluster.numNodes = 10;
    spec.cluster.coresPerNode = 5;
    spec.txnsPerContext = 60;
    spec.scaleKeys = 200'000;
    return spec;
}

std::string
keyFor(protocol::EngineKind engine, const core::MixEntry &entry)
{
    return "fig13/" + entryLabel(entry) + "/" +
           protocol::engineKindName(engine);
}

void
runCase(benchmark::State &state)
{
    auto entry = figure9Workloads()[std::size_t(state.range(0))];
    auto engine = allEngines()[std::size_t(state.range(1))];
    reportRun(state, keyFor(engine, entry), specFor(engine, entry));
}

BENCHMARK(runCase)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 10, 1),
                   benchmark::CreateDenseRange(0, 2, 1)})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (const auto &entry : figure9Workloads())
        for (auto engine : allEngines())
            sweep.add(keyFor(engine, entry), specFor(engine, entry));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Figure 13",
                "throughput normalized to Baseline, N=10 nodes x C=5 "
                "cores");
    std::printf("%-12s %12s %12s %12s | %8s %8s\n", "workload",
                "Baseline", "HADES-H", "HADES", "H-H/B", "HADES/B");
    double geo_h = 0, geo_hh = 0;
    int n = 0;
    for (const auto &entry : figure9Workloads()) {
        double tps[3] = {};
        int i = 0;
        for (auto engine : allEngines())
            tps[i++] = Sweep::instance()
                           .get(keyFor(engine, entry),
                                specFor(engine, entry))
                           .throughputTps;
        std::printf("%-12s %12.0f %12.0f %12.0f | %8.2f %8.2f\n",
                    entryLabel(entry).c_str(), tps[0], tps[1], tps[2],
                    tps[1] / tps[0], tps[2] / tps[0]);
        geo_hh += std::log(tps[1] / tps[0]);
        geo_h += std::log(tps[2] / tps[0]);
        ++n;
    }
    std::printf("%-12s %38s | %8.2f %8.2f  (compare to Figure 9)\n",
                "geomean", "", std::exp(geo_hh / n),
                std::exp(geo_h / n));
    sweep.finish("fig13_scale_n10");
    benchmark::Shutdown();
    return 0;
}
