/**
 * @file
 * Shared plumbing for the per-figure bench binaries.
 *
 * Every bench binary regenerates one table or figure of the paper: it
 * sweeps the relevant configurations through core::runOne(), registers
 * each simulation as a google-benchmark case (so the suite integrates
 * with standard tooling), and prints the same rows/series the paper
 * reports, normalized the same way.
 */

#ifndef HADES_BENCH_BENCH_UTIL_HH_
#define HADES_BENCH_BENCH_UTIL_HH_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "sweep.hh"

namespace hades::bench
{

/** The eleven Figure 9 workloads, in the paper's order. */
inline std::vector<core::MixEntry>
figure9Workloads()
{
    using workload::AppKind;
    using kvs::StoreKind;
    return {
        {AppKind::Tpcc, StoreKind::HashTable},
        {AppKind::Tatp, StoreKind::HashTable},
        {AppKind::Smallbank, StoreKind::HashTable},
        {AppKind::YcsbA, StoreKind::HashTable},
        {AppKind::YcsbB, StoreKind::HashTable},
        {AppKind::YcsbA, StoreKind::Map},
        {AppKind::YcsbB, StoreKind::Map},
        {AppKind::YcsbA, StoreKind::BTree},
        {AppKind::YcsbB, StoreKind::BTree},
        {AppKind::YcsbA, StoreKind::BPlusTree},
        {AppKind::YcsbB, StoreKind::BPlusTree},
    };
}

/** Human label of one mix entry ("HT-wA", "TPCC", ...). */
inline std::string
entryLabel(const core::MixEntry &e)
{
    using workload::AppKind;
    switch (e.app) {
      case AppKind::Tpcc:
      case AppKind::Tatp:
      case AppKind::Smallbank:
        return workload::appKindName(e.app);
      default:
        return std::string(kvs::storeKindName(e.store)) + "-" +
               workload::appKindName(e.app);
    }
}

/** The three engine configurations, in reporting order. */
inline std::vector<protocol::EngineKind>
allEngines()
{
    return {protocol::EngineKind::Baseline,
            protocol::EngineKind::HadesHybrid,
            protocol::EngineKind::Hades};
}

/** Register a google-benchmark case that runs @p spec once. Results
 *  come from the shared Sweep, so the parallel prefill in main() and
 *  the summary tables all observe the same runs. */
inline void
reportRun(benchmark::State &state, const std::string &key,
          const core::RunSpec &spec)
{
    for (auto _ : state) {
        const auto &res = Sweep::instance().get(key, spec);
        benchmark::DoNotOptimize(res.stats.committed);
    }
    const auto &res = Sweep::instance().get(key, spec);
    state.counters["txn_per_s"] = res.throughputTps;
    state.counters["mean_us"] = res.meanLatencyUs;
    state.counters["p95_us"] = res.p95LatencyUs;
    state.counters["squash_rate"] = res.squashRate;
}

/** Print a header for the summary table the paper's figure shows. */
inline void
printHeader(const char *figure, const char *what)
{
    std::printf("\n==== %s: %s ====\n", figure, what);
}

} // namespace hades::bench

#endif // HADES_BENCH_BENCH_UTIL_HH_
