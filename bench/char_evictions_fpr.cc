/**
 * @file
 * Section VIII-C characterization:
 *
 *  1. LLC-eviction squashes: with every request forced to the local
 *     node (maximum LLC pressure) and the TX-aware replacement policy,
 *     the paper measures that only ~0.1% of transactions are squashed
 *     by speculative-line evictions on average, worst 0.7% (TPC-C).
 *
 *  2. Bloom-filter false-positive conflicts: across all conflict
 *     detection operations, 0.02% (HADES-H) and 0.04% (HADES) are
 *     false positives under the default placement, because each
 *     transaction's footprint spreads over many lightly-used filters.
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

std::vector<core::MixEntry>
apps()
{
    using workload::AppKind;
    using kvs::StoreKind;
    return {
        {AppKind::Tpcc, StoreKind::HashTable},
        {AppKind::Tatp, StoreKind::HashTable},
        {AppKind::Smallbank, StoreKind::HashTable},
        {AppKind::YcsbA, StoreKind::HashTable},
        {AppKind::YcsbB, StoreKind::BTree},
    };
}

core::RunSpec
specFor(protocol::EngineKind engine, const core::MixEntry &entry,
        bool all_local)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = {entry};
    spec.txnsPerContext = 100;
    spec.scaleKeys = 150'000;
    if (all_local)
        spec.cluster.forcedLocalFraction = 1.0;
    return spec;
}

std::string
keyFor(protocol::EngineKind engine, const core::MixEntry &entry,
       bool all_local)
{
    return std::string("char/") + entryLabel(entry) + "/" +
           protocol::engineKindName(engine) +
           (all_local ? "/local" : "/dist");
}

void
runCase(benchmark::State &state)
{
    auto entry = apps()[std::size_t(state.range(0))];
    bool all_local = state.range(1) != 0;
    auto engine = all_local ? protocol::EngineKind::Hades
                            : allEngines()[std::size_t(state.range(2))];
    reportRun(state, keyFor(engine, entry, all_local),
              specFor(engine, entry, all_local));
}

BENCHMARK(runCase)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 4, 1),
                   benchmark::CreateDenseRange(0, 1, 1),
                   benchmark::CreateDenseRange(1, 2, 1)})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (const auto &entry : apps()) {
        sweep.add(keyFor(protocol::EngineKind::Hades, entry, true),
                  specFor(protocol::EngineKind::Hades, entry, true));
        for (auto engine : {protocol::EngineKind::HadesHybrid,
                            protocol::EngineKind::Hades})
            sweep.add(keyFor(engine, entry, false),
                      specFor(engine, entry, false));
    }
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Section VIII-C (1)",
                "LLC speculative-eviction squash rate, all requests "
                "forced local (paper: avg ~0.1%, worst 0.7%; scaled "
                "runs cannot fill the 20MB LLC, so ~0 here)");
    std::printf("%-12s %16s\n", "workload", "evict squash/txn");
    double sum = 0;
    for (const auto &entry : apps()) {
        const auto &res = Sweep::instance().get(
            keyFor(protocol::EngineKind::Hades, entry, true),
            specFor(protocol::EngineKind::Hades, entry, true));
        std::printf("%-12s %15.3f%%\n", entryLabel(entry).c_str(),
                    100.0 * res.evictionSquashRate);
        sum += res.evictionSquashRate;
    }
    std::printf("%-12s %15.3f%%\n", "average",
                100.0 * sum / double(apps().size()));

    printHeader("Section VIII-C (2)",
                "Bloom filter false-positive conflict rate, default "
                "placement (paper: HADES-H 0.02%, HADES 0.04%)");
    std::printf("%-12s %14s %14s\n", "workload", "HADES-H", "HADES");
    double s_h = 0, s_hh = 0;
    for (const auto &entry : apps()) {
        const auto &rh = Sweep::instance().get(
            keyFor(protocol::EngineKind::Hades, entry, false),
            specFor(protocol::EngineKind::Hades, entry, false));
        const auto &rhh = Sweep::instance().get(
            keyFor(protocol::EngineKind::HadesHybrid, entry, false),
            specFor(protocol::EngineKind::HadesHybrid, entry, false));
        std::printf("%-12s %13.4f%% %13.4f%%\n",
                    entryLabel(entry).c_str(),
                    100.0 * rhh.bfFalsePositiveRate,
                    100.0 * rh.bfFalsePositiveRate);
        s_hh += rhh.bfFalsePositiveRate;
        s_h += rh.bfFalsePositiveRate;
    }
    std::printf("%-12s %13.4f%% %13.4f%%\n", "average",
                100.0 * s_hh / double(apps().size()),
                100.0 * s_h / double(apps().size()));
    sweep.finish("char_evictions_fpr");
    benchmark::Shutdown();
    return 0;
}
