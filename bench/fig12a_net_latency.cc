/**
 * @file
 * Figure 12a: average throughput for different NIC-to-NIC round-trip
 * latencies (1us / 2us / 3us), normalized to Baseline at 2us.
 *
 * Paper shape: the relative speedup of HADES (and HADES-H) over
 * Baseline grows as the network gets faster, because the software
 * overheads that HADES eliminates become a larger fraction of the
 * remaining execution time.
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

/** Representative application subset (sweeping all 11 x 3 x 3 would
 *  dominate the suite's runtime without changing the trend). */
std::vector<core::MixEntry>
sweepApps()
{
    using workload::AppKind;
    using kvs::StoreKind;
    return {
        {AppKind::Tpcc, StoreKind::HashTable},
        {AppKind::Tatp, StoreKind::HashTable},
        {AppKind::YcsbA, StoreKind::HashTable},
        {AppKind::YcsbB, StoreKind::BTree},
        {AppKind::Smallbank, StoreKind::HashTable},
    };
}

const Tick kLatencies[] = {us(1), us(2), us(3)};

core::RunSpec
specFor(protocol::EngineKind engine, const core::MixEntry &entry,
        Tick rt)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = {entry};
    spec.cluster.netRoundTrip = rt;
    spec.txnsPerContext = 100;
    spec.scaleKeys = 150'000;
    return spec;
}

std::string
keyFor(protocol::EngineKind engine, const core::MixEntry &entry,
       Tick rt)
{
    return "fig12a/" + entryLabel(entry) + "/" +
           protocol::engineKindName(engine) + "/" +
           std::to_string(rt / kMicrosecond);
}

void
runCase(benchmark::State &state)
{
    auto entry = sweepApps()[std::size_t(state.range(0))];
    auto engine = allEngines()[std::size_t(state.range(1))];
    Tick rt = kLatencies[state.range(2)];
    reportRun(state, keyFor(engine, entry, rt),
              specFor(engine, entry, rt));
}

BENCHMARK(runCase)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 4, 1),
                   benchmark::CreateDenseRange(0, 2, 1),
                   benchmark::CreateDenseRange(0, 2, 1)})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (const auto &entry : sweepApps())
        for (auto engine : allEngines())
            for (Tick rt : kLatencies)
                sweep.add(keyFor(engine, entry, rt),
                          specFor(engine, entry, rt));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Figure 12a", "throughput vs network RT latency, "
                              "normalized to Baseline @ 2us "
                              "(geomean over apps)");
    // Geomean throughput per (engine, latency), normalized per-app to
    // Baseline at 2us.
    std::printf("%-10s %10s %10s %10s\n", "engine", "1us", "2us",
                "3us");
    for (auto engine : allEngines()) {
        std::printf("%-10s", protocol::engineKindName(engine));
        for (Tick rt : kLatencies) {
            double geo = 0;
            int n = 0;
            for (const auto &entry : sweepApps()) {
                double tps =
                    Sweep::instance()
                        .get(keyFor(engine, entry, rt),
                             specFor(engine, entry, rt))
                        .throughputTps;
                double base =
                    Sweep::instance()
                        .get(keyFor(protocol::EngineKind::Baseline,
                                    entry, us(2)),
                             specFor(protocol::EngineKind::Baseline,
                                     entry, us(2)))
                        .throughputTps;
                geo += std::log(tps / base);
                ++n;
            }
            std::printf(" %10.2f", std::exp(geo / n));
        }
        std::printf("\n");
    }
    std::printf("(paper: HADES's advantage grows as latency drops)\n");
    sweep.finish("fig12a_net_latency");
    benchmark::Shutdown();
    return 0;
}
