/**
 * @file
 * Figure 11: 95th-percentile tail latency normalized to Baseline for
 * the eleven workloads on the default cluster.
 *
 * Paper shape: tail latency follows the same relative trends as the
 * mean latency (HADES < HADES-H < Baseline).
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

core::RunSpec
specFor(protocol::EngineKind engine, const core::MixEntry &entry)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = {entry};
    spec.txnsPerContext = 100;
    spec.scaleKeys = 150'000;
    return spec;
}

std::string
keyFor(protocol::EngineKind engine, const core::MixEntry &entry)
{
    return "fig11/" + entryLabel(entry) + "/" +
           protocol::engineKindName(engine);
}

void
runCase(benchmark::State &state)
{
    auto entry = figure9Workloads()[std::size_t(state.range(0))];
    auto engine = allEngines()[std::size_t(state.range(1))];
    reportRun(state, keyFor(engine, entry), specFor(engine, entry));
}

BENCHMARK(runCase)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 10, 1),
                   benchmark::CreateDenseRange(0, 2, 1)})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (const auto &entry : figure9Workloads())
        for (auto engine : allEngines())
            sweep.add(keyFor(engine, entry), specFor(engine, entry));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Figure 11",
                "95th-percentile tail latency (us), normalized to "
                "Baseline");
    std::printf("%-12s %12s %12s %12s | %8s %8s\n", "workload",
                "Baseline", "HADES-H", "HADES", "H-H/B", "HADES/B");
    for (const auto &entry : figure9Workloads()) {
        double p95[3] = {};
        int i = 0;
        for (auto engine : allEngines())
            p95[i++] = Sweep::instance()
                           .get(keyFor(engine, entry),
                                specFor(engine, entry))
                           .p95LatencyUs;
        std::printf("%-12s %12.1f %12.1f %12.1f | %8.2f %8.2f\n",
                    entryLabel(entry).c_str(), p95[0], p95[1], p95[2],
                    p95[1] / p95[0], p95[2] / p95[0]);
    }
    sweep.finish("fig11_tail_latency");
    benchmark::Shutdown();
    return 0;
}
