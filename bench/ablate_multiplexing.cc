/**
 * @file
 * Ablation: transaction multiplexing (m) and Locking Buffer count.
 *
 * The paper's default is m=2 multiplexed transactions per core: while
 * one context waits on a 2us network round trip, the other computes.
 * This ablation sweeps m and the number of Locking Buffers per node.
 * Expected: m=2 buys a large fraction of the network-hiding benefit
 * over m=1; starving the Locking Buffer bank serializes commits and
 * costs throughput.
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

const std::uint32_t kSlots[] = {1, 2, 4};
// Note: capacities below the number of concurrently committing
// contexts are not swept -- with a single buffer per node, two
// committers on different nodes can each hold their local buffer while
// their Intend-to-commit waits for the other's (a distributed
// waits-for cycle). The bank must be sized for the commit concurrency;
// the auto size (2x contexts) guarantees that.
const std::uint32_t kBuffers[] = {4, 10, 0}; // 0 = auto (2x contexts)

core::RunSpec
specSlots(std::uint32_t m)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.mix = {core::MixEntry{workload::AppKind::Tpcc,
                               kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 100;
    spec.scaleKeys = 150'000;
    spec.cluster.slotsPerCore = m;
    return spec;
}

core::RunSpec
specBuffers(std::uint32_t buffers)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.mix = {core::MixEntry{workload::AppKind::Smallbank,
                               kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 120;
    spec.scaleKeys = 150'000;
    spec.cluster.lockingBuffersPerNode = buffers;
    return spec;
}

void
runSlots(benchmark::State &state)
{
    auto m = kSlots[state.range(0)];
    reportRun(state, "ablate_m/" + std::to_string(m), specSlots(m));
}

void
runBuffers(benchmark::State &state)
{
    auto b = kBuffers[state.range(0)];
    reportRun(state, "ablate_lb/" + std::to_string(b),
              specBuffers(b));
}

BENCHMARK(runSlots)
    ->DenseRange(0, 2, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(runBuffers)
    ->DenseRange(0, 2, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (auto m : kSlots)
        sweep.add("ablate_m/" + std::to_string(m), specSlots(m));
    for (auto b : kBuffers)
        sweep.add("ablate_lb/" + std::to_string(b), specBuffers(b));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Ablation", "multiplexed transactions per core "
                            "(HADES, TPC-C; paper default m=2)");
    std::printf("%-6s %14s %14s  %14s\n", "m", "txn/s", "per-context",
                "mean lat");
    for (auto m : kSlots) {
        const auto &res = Sweep::instance().get(
            "ablate_m/" + std::to_string(m), specSlots(m));
        std::printf("%-6u %14.0f %14.0f %12.1fus\n", m,
                    res.throughputTps,
                    res.throughputTps / (25.0 * m),
                    res.meanLatencyUs);
    }

    printHeader("Ablation", "Locking Buffers per node "
                            "(HADES, Smallbank; 0 = auto-size)");
    std::printf("%-8s %14s %12s\n", "buffers", "txn/s", "squash/att");
    for (auto b : kBuffers) {
        const auto &res = Sweep::instance().get(
            "ablate_lb/" + std::to_string(b), specBuffers(b));
        std::printf("%-8u %14.0f %11.1f%%\n", b, res.throughputTps,
                    100.0 * res.squashRate);
    }
    sweep.finish("ablate_multiplexing");
    benchmark::Shutdown();
    return 0;
}
