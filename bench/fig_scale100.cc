/**
 * @file
 * Scale experiment beyond the paper: N=100 nodes x C=50 cores, the
 * cluster size the sharded parallel kernel exists for.
 *
 * Two questions, one binary:
 *
 *  1. Model scale: TPC-C and YCSB-A throughput at 100 nodes under
 *     HADES, swept through the ordinary (model-parallel) sweep and
 *     reported in the JSON snapshot (CI's BENCH_scale.json).
 *
 *  2. Executor speed: wall-clock of the same run at --shards 1/2/4/8,
 *     timed back-to-back on an otherwise idle process, for two
 *     thread-certified families -- all-local TPC-C (no messaging) and
 *     uniform YCSB-B (the PR 8 threaded messaging path, where every
 *     commit crosses lanes through the window mailboxes). The
 *     acceptance target is >= 3x at 8 shards on an unloaded machine;
 *     every point is checked bit-identical to the serial oracle
 *     before its timing is believed.
 *
 * --smoke shrinks both parts to a seconds-scale run (the bench_smoke
 * ctest lane and the CI perf snapshot both use it). --threaded-json
 * PATH writes the part-2 timings as a `hades-bench-threaded-v1`
 * snapshot (CI's BENCH_threaded.json).
 */

#include <chrono>

#include "bench_util.hh"
#include "core/result_hash.hh"

namespace hades::bench
{
namespace
{

/** The big cluster: N=100 x C=50 x m=2 (10'000 hardware contexts).
 *  Smoke keeps the node count high -- the point of this figure -- and
 *  strips everything else. */
core::RunSpec
scaleSpec(const core::MixEntry &entry, bool smoke)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.mix = {entry};
    spec.cluster.numNodes = smoke ? 20 : 100;
    spec.cluster.coresPerNode = smoke ? 2 : 50;
    spec.cluster.slotsPerCore = 2;
    spec.txnsPerContext = smoke ? 3 : 10;
    spec.scaleKeys = smoke ? 20'000 : 1'000'000;
    spec.audit = false; // the auditor's graph is quadratic-ish at 100N
    return spec;
}

/** The two part-2 families: compute-bound all-local TPC-C, and
 *  messaging-bound uniform YCSB-B where every remote access and
 *  commit crosses lanes through the window-barrier mailboxes.
 *  smokeCores picks the smoke cluster width per family: work-per-
 *  window is what worker threads amortize the barrier against, and
 *  for the messaging family it scales with the number of concurrently
 *  active contexts (the 2-core model-scale smoke shape is too narrow
 *  to show the executor off; the local family peaks there). */
struct SpeedupFamily
{
    const char *label;
    workload::AppKind app;
    double localFraction; //!< -1 = uniform placement
    std::uint32_t smokeCores;
};

constexpr SpeedupFamily kSpeedupFamilies[] = {
    {"tpcc-local", workload::AppKind::Tpcc, 1.0, 2},
    {"ycsb-b-uniform", workload::AppKind::YcsbB, -1.0, 8},
};

/** One executor-speedup family: a thread-certified spec whose shard
 *  counts translate into worker threads over disjoint node lanes.
 *  Lock-mode fallback is effectively disabled: at C=50 the contention
 *  can trip the 48-squash livelock escape, and lock mode's global
 *  ordering forces a deterministic serial re-run -- which would
 *  silently turn this into a measurement of the non-threaded
 *  executor. Optimistic retries converge fine here; only the retry
 *  count grows. */
core::RunSpec
speedupSpec(const SpeedupFamily &family, bool smoke)
{
    auto spec =
        scaleSpec({family.app, kvs::StoreKind::HashTable}, smoke);
    spec.cluster.forcedLocalFraction = family.localFraction;
    spec.cluster.tuning.maxSquashesBeforeLockMode = 1'000'000;
    if (smoke)
        spec.cluster.coresPerNode = family.smokeCores;
    return spec;
}

/** One timed point of a speedup family. */
struct SpeedupPoint
{
    std::uint32_t shards = 1;
    double wallS = 0;
    double speedup = 1.0;
    bool threaded = false;
    std::uint64_t shardWindows = 0;
};

/** Append the `hades-bench-threaded-v1` JSON for one family. */
void
threadedJsonFamily(std::string &out, const SpeedupFamily &family,
                   const std::vector<SpeedupPoint> &points, bool first)
{
    char buf[256];
    out += first ? "{" : ",{";
    std::snprintf(buf, sizeof(buf), "\"workload\":\"%s\",\"points\":[",
                  family.label);
    out += buf;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"shards\":%u,\"wall_s\":%.6f,\"speedup\":%.4f,"
            "\"threaded\":%s,\"shard_windows\":%llu,"
            "\"bit_identical\":true}",
            i ? "," : "", p.shards, p.wallS, p.speedup,
            p.threaded ? "true" : "false",
            static_cast<unsigned long long>(p.shardWindows));
        out += buf;
    }
    out += "]}";
}

std::string
keyFor(const core::MixEntry &entry, std::uint32_t shards)
{
    return "scale100/" + entryLabel(entry) + "/shards" +
           std::to_string(shards);
}

void
registerRuns(Sweep &sweep, bool smoke)
{
    // Model-scale rows (uniform placement; fault-free and unaudited,
    // so the 8-lane points run on worker threads): serial oracle plus
    // 8 lanes, which the sweep cross-checks below.
    const std::vector<core::MixEntry> entries = {
        {workload::AppKind::Tpcc, kvs::StoreKind::HashTable},
        {workload::AppKind::YcsbA, kvs::StoreKind::HashTable},
    };
    for (const auto &entry : entries)
        for (std::uint32_t shards : {1u, 8u}) {
            auto spec = scaleSpec(entry, smoke);
            spec.shards = shards;
            sweep.add(keyFor(entry, shards), spec);
        }
}

/** Fields that must agree for two runs to count as "the same run". */
bool
sameRun(const core::RunResult &a, const core::RunResult &b)
{
    return a.simTime == b.simTime &&
           a.stats.committed == b.stats.committed &&
           a.stats.attempts == b.stats.attempts &&
           a.stats.netMessages == b.stats.netMessages &&
           a.throughputTps == b.throughputTps &&
           a.meanLatencyUs == b.meanLatencyUs &&
           a.p95LatencyUs == b.p95LatencyUs;
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;
    using Clock = std::chrono::steady_clock;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    // Strip the binary-specific flag before google-benchmark sees it.
    std::string threaded_json;
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::string(argv[i]) == "--threaded-json" &&
                i + 1 < argc) {
                threaded_json = argv[++i];
            } else {
                argv[out++] = argv[i];
            }
        }
        argc = out;
        argv[argc] = nullptr;
    }
    benchmark::Initialize(&argc, argv);
    const bool smoke = sweep.smoke();
    registerRuns(sweep, smoke);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Scale-100",
                smoke ? "N=20 x C=2 smoke of the 100-node experiment"
                      : "N=100 nodes x C=50 cores, HADES engine");

    // --- Part 1: model scale (and the sharded cross-check) ---------------
    std::printf("%-10s %14s %12s %12s %10s\n", "workload", "txn/s",
                "mean lat", "p95 lat", "sharded?");
    const std::vector<core::MixEntry> entries = {
        {workload::AppKind::Tpcc, kvs::StoreKind::HashTable},
        {workload::AppKind::YcsbA, kvs::StoreKind::HashTable},
    };
    bool all_match = true;
    for (const auto &entry : entries) {
        auto serial_spec = scaleSpec(entry, smoke);
        auto sharded_spec = serial_spec;
        sharded_spec.shards = 8;
        const auto &serial =
            sweep.get(keyFor(entry, 1), serial_spec);
        const auto &sharded =
            sweep.get(keyFor(entry, 8), sharded_spec);
        const bool match = sameRun(serial, sharded);
        all_match &= match;
        std::printf("%-10s %14.0f %10.2fus %10.2fus %10s\n",
                    entryLabel(entry).c_str(), serial.throughputTps,
                    serial.meanLatencyUs, serial.p95LatencyUs,
                    match ? "match" : "DIVERGED");
    }
    if (!all_match) {
        std::fprintf(stderr, "FATAL: sharded runs diverged from the "
                             "serial oracle\n");
        return 1;
    }

    // --- Part 2: executor wall-clock speedup ------------------------------
    // Timed back-to-back with runOne (not the sweep) so each point has
    // the machine to itself. Per family the serial oracle runs first;
    // every sharded point is verified bit-identical (full result
    // digest) before its time counts -- the divergence gate exits
    // nonzero, so a CI snapshot only ever records sound timings.
    std::string snapshot =
        "{\"schema\":\"hades-bench-threaded-v1\",\"smoke\":";
    snapshot += smoke ? "true" : "false";
    snapshot += ",\"workloads\":[";
    bool first_family = true;
    for (const auto &family : kSpeedupFamilies) {
        std::printf("\n[%s]\n%-8s %12s %10s %12s %10s\n", family.label,
                    "shards", "wall s", "speedup", "windows",
                    "threaded");
        double serial_s = 0;
        std::uint64_t oracle_digest = 0;
        std::vector<SpeedupPoint> points;
        for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
            auto spec = speedupSpec(family, smoke);
            spec.shards = shards;
            const auto t0 = Clock::now();
            const auto res = core::runOne(spec);
            const double secs =
                std::chrono::duration<double>(Clock::now() - t0)
                    .count();
            const auto digest = core::hashResult(res);
            if (shards == 1) {
                serial_s = secs;
                oracle_digest = digest;
            } else if (digest != oracle_digest) {
                std::fprintf(stderr,
                             "FATAL: %s shards=%u diverged from the "
                             "serial oracle\n",
                             family.label, shards);
                return 1;
            } else if (!res.shardsThreaded) {
                std::fprintf(stderr,
                             "FATAL: %s shards=%u fell off the "
                             "threaded executor (serialRerun=%d)\n",
                             family.label, shards,
                             res.serialRerun ? 1 : 0);
                return 1;
            }
            SpeedupPoint p;
            p.shards = shards;
            p.wallS = secs;
            p.speedup = serial_s / secs;
            p.threaded = res.shardsThreaded;
            p.shardWindows = res.shardWindows;
            points.push_back(p);
            std::printf("%-8u %12.2f %9.2fx %12llu %10s\n", shards,
                        secs, p.speedup,
                        static_cast<unsigned long long>(
                            res.shardWindows),
                        res.shardsThreaded ? "yes" : "no");
        }
        threadedJsonFamily(snapshot, family, points, first_family);
        first_family = false;
    }
    snapshot += "]}\n";
    if (!threaded_json.empty())
        core::writeJsonFile(threaded_json, snapshot);

    sweep.finish("fig_scale100");
    benchmark::Shutdown();
    return 0;
}
