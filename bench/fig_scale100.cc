/**
 * @file
 * Scale experiment beyond the paper: N=100 nodes x C=50 cores, the
 * cluster size the sharded parallel kernel exists for.
 *
 * Two questions, one binary:
 *
 *  1. Model scale: TPC-C and YCSB-A throughput at 100 nodes under
 *     HADES, swept through the ordinary (model-parallel) sweep and
 *     reported in the JSON snapshot (CI's BENCH_scale.json).
 *
 *  2. Executor speed: wall-clock of the *same* all-local TPC-C run at
 *     --shards 1/2/4/8, timed back-to-back on an otherwise idle
 *     process. The acceptance target is >= 3x at 8 shards on an
 *     unloaded machine; every point is checked bit-identical to the
 *     serial oracle before its timing is believed.
 *
 * --smoke shrinks both parts to a seconds-scale run (the bench_smoke
 * ctest lane and the CI perf snapshot both use it).
 */

#include <chrono>

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

/** The big cluster: N=100 x C=50 x m=2 (10'000 hardware contexts).
 *  Smoke keeps the node count high -- the point of this figure -- and
 *  strips everything else. */
core::RunSpec
scaleSpec(const core::MixEntry &entry, bool smoke)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.mix = {entry};
    spec.cluster.numNodes = smoke ? 20 : 100;
    spec.cluster.coresPerNode = smoke ? 2 : 50;
    spec.cluster.slotsPerCore = 2;
    spec.txnsPerContext = smoke ? 3 : 10;
    spec.scaleKeys = smoke ? 20'000 : 1'000'000;
    spec.audit = false; // the auditor's graph is quadratic-ish at 100N
    return spec;
}

/** The executor-speedup spec: all-local TPC-C qualifies for the
 *  threaded executor, so shard counts translate into worker threads
 *  over disjoint node lanes. Lock-mode fallback is effectively
 *  disabled: at C=50 the home-warehouse contention trips the
 *  48-squash livelock escape, and lock mode's global ordering forces
 *  a deterministic serial re-run -- which would silently turn this
 *  into a measurement of the non-threaded executor. Optimistic
 *  retries converge fine here; only the retry count grows. */
core::RunSpec
speedupSpec(bool smoke)
{
    auto spec = scaleSpec(
        {workload::AppKind::Tpcc, kvs::StoreKind::HashTable}, smoke);
    spec.cluster.forcedLocalFraction = 1.0;
    spec.cluster.tuning.maxSquashesBeforeLockMode = 1'000'000;
    return spec;
}

std::string
keyFor(const core::MixEntry &entry, std::uint32_t shards)
{
    return "scale100/" + entryLabel(entry) + "/shards" +
           std::to_string(shards);
}

void
registerRuns(Sweep &sweep, bool smoke)
{
    // Model-scale rows (uniform placement, so the deterministic
    // sharded executor carries them): serial oracle plus 8 lanes,
    // which the sweep cross-checks below.
    const std::vector<core::MixEntry> entries = {
        {workload::AppKind::Tpcc, kvs::StoreKind::HashTable},
        {workload::AppKind::YcsbA, kvs::StoreKind::HashTable},
    };
    for (const auto &entry : entries)
        for (std::uint32_t shards : {1u, 8u}) {
            auto spec = scaleSpec(entry, smoke);
            spec.shards = shards;
            sweep.add(keyFor(entry, shards), spec);
        }
}

/** Fields that must agree for two runs to count as "the same run". */
bool
sameRun(const core::RunResult &a, const core::RunResult &b)
{
    return a.simTime == b.simTime &&
           a.stats.committed == b.stats.committed &&
           a.stats.attempts == b.stats.attempts &&
           a.stats.netMessages == b.stats.netMessages &&
           a.throughputTps == b.throughputTps &&
           a.meanLatencyUs == b.meanLatencyUs &&
           a.p95LatencyUs == b.p95LatencyUs;
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;
    using Clock = std::chrono::steady_clock;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    const bool smoke = sweep.smoke();
    registerRuns(sweep, smoke);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Scale-100",
                smoke ? "N=20 x C=2 smoke of the 100-node experiment"
                      : "N=100 nodes x C=50 cores, HADES engine");

    // --- Part 1: model scale (and the sharded cross-check) ---------------
    std::printf("%-10s %14s %12s %12s %10s\n", "workload", "txn/s",
                "mean lat", "p95 lat", "sharded?");
    const std::vector<core::MixEntry> entries = {
        {workload::AppKind::Tpcc, kvs::StoreKind::HashTable},
        {workload::AppKind::YcsbA, kvs::StoreKind::HashTable},
    };
    bool all_match = true;
    for (const auto &entry : entries) {
        auto serial_spec = scaleSpec(entry, smoke);
        auto sharded_spec = serial_spec;
        sharded_spec.shards = 8;
        const auto &serial =
            sweep.get(keyFor(entry, 1), serial_spec);
        const auto &sharded =
            sweep.get(keyFor(entry, 8), sharded_spec);
        const bool match = sameRun(serial, sharded);
        all_match &= match;
        std::printf("%-10s %14.0f %10.2fus %10.2fus %10s\n",
                    entryLabel(entry).c_str(), serial.throughputTps,
                    serial.meanLatencyUs, serial.p95LatencyUs,
                    match ? "match" : "DIVERGED");
    }
    if (!all_match) {
        std::fprintf(stderr, "FATAL: sharded runs diverged from the "
                             "serial oracle\n");
        return 1;
    }

    // --- Part 2: executor wall-clock speedup ------------------------------
    // Timed back-to-back with runOne (not the sweep) so each point has
    // the machine to itself. The serial oracle runs first; every
    // sharded point is verified bit-identical before its time counts.
    std::printf("\n%-8s %12s %10s %12s %10s\n", "shards", "wall s",
                "speedup", "windows", "threaded");
    double serial_s = 0;
    core::RunResult oracle;
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        auto spec = speedupSpec(smoke);
        spec.shards = shards;
        const auto t0 = Clock::now();
        const auto res = core::runOne(spec);
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (shards == 1) {
            serial_s = secs;
            oracle = res;
        } else if (!sameRun(oracle, res)) {
            std::fprintf(stderr,
                         "FATAL: shards=%u diverged from the serial "
                         "oracle\n",
                         shards);
            return 1;
        }
        std::printf("%-8u %12.2f %9.2fx %12llu %10s\n", shards, secs,
                    serial_s / secs,
                    static_cast<unsigned long long>(res.shardWindows),
                    res.shardsThreaded ? "yes" : "no");
    }

    sweep.finish("fig_scale100");
    benchmark::Shutdown();
    return 0;
}
