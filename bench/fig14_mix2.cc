/**
 * @file
 * Figure 14: space-shared mixes of two workloads on N=5 nodes with
 * C=10 cores each -- one workload uses 5 cores per node, the other the
 * remaining 5.
 *
 * Paper shape: the mix's throughput gain is approximately the average
 * of the two separate workloads' gains (interference is small because
 * the LLC is large and threads share few lines).
 */

#include "bench_util.hh"

namespace hades::bench
{
namespace
{

using workload::AppKind;
using kvs::StoreKind;

std::vector<std::pair<core::MixEntry, core::MixEntry>>
mixes()
{
    return {
        {{AppKind::Tpcc, StoreKind::HashTable},
         {AppKind::Tatp, StoreKind::HashTable}},
        {{AppKind::YcsbA, StoreKind::HashTable},
         {AppKind::YcsbB, StoreKind::BTree}},
        {{AppKind::Smallbank, StoreKind::HashTable},
         {AppKind::YcsbA, StoreKind::Map}},
        {{AppKind::YcsbB, StoreKind::BPlusTree},
         {AppKind::YcsbB, StoreKind::HashTable}},
    };
}

core::RunSpec
specFor(protocol::EngineKind engine, std::size_t mix_idx)
{
    auto [a, b] = mixes()[mix_idx];
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = {a, b};
    spec.cluster.numNodes = 5;
    spec.cluster.coresPerNode = 10;
    spec.txnsPerContext = 60;
    spec.scaleKeys = 120'000;
    return spec;
}

std::string
mixLabel(std::size_t idx)
{
    auto [a, b] = mixes()[idx];
    return entryLabel(a) + "+" + entryLabel(b);
}

std::string
keyFor(protocol::EngineKind engine, std::size_t idx)
{
    return "fig14/" + mixLabel(idx) + "/" +
           protocol::engineKindName(engine);
}

void
runCase(benchmark::State &state)
{
    auto idx = std::size_t(state.range(0));
    auto engine = allEngines()[std::size_t(state.range(1))];
    reportRun(state, keyFor(engine, idx), specFor(engine, idx));
}

BENCHMARK(runCase)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 3, 1),
                   benchmark::CreateDenseRange(0, 2, 1)})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
registerRuns(Sweep &sweep)
{
    for (std::size_t m = 0; m < mixes().size(); ++m)
        for (auto engine : allEngines())
            sweep.add(keyFor(engine, m), specFor(engine, m));
}

} // namespace
} // namespace hades::bench

int
main(int argc, char **argv)
{
    using namespace hades;
    using namespace hades::bench;

    Sweep &sweep = Sweep::instance();
    sweep.parseArgs(&argc, argv);
    benchmark::Initialize(&argc, argv);
    registerRuns(sweep);
    sweep.runAll();
    benchmark::RunSpecifiedBenchmarks();

    printHeader("Figure 14", "two-workload mixes, N=5 x C=10 "
                             "(normalized to Baseline)");
    std::printf("%-24s %12s %12s %12s | %8s %8s\n", "mix", "Baseline",
                "HADES-H", "HADES", "H-H/B", "HADES/B");
    for (std::size_t m = 0; m < mixes().size(); ++m) {
        double tps[3] = {};
        int i = 0;
        for (auto engine : allEngines())
            tps[i++] = Sweep::instance()
                           .get(keyFor(engine, m), specFor(engine, m))
                           .throughputTps;
        std::printf("%-24s %12.0f %12.0f %12.0f | %8.2f %8.2f\n",
                    mixLabel(m).c_str(), tps[0], tps[1], tps[2],
                    tps[1] / tps[0], tps[2] / tps[0]);
    }
    sweep.finish("fig14_mix2");
    benchmark::Shutdown();
    return 0;
}
