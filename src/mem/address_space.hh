/**
 * @file
 * Cluster address-space layout and record placement.
 *
 * Each node owns a disjoint region of the simulated physical address
 * space, selected by the top address bits. Database records are
 * "statically distributed across all the nodes in a uniform manner"
 * (Section VII); key-value index structures allocate their internal
 * nodes from the same per-node heaps so index traversals generate
 * realistic extra line accesses on the record's home node.
 */

#ifndef HADES_MEM_ADDRESS_SPACE_HH_
#define HADES_MEM_ADDRESS_SPACE_HH_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace hades::mem
{

/** Shift that selects the owning node from an address. */
inline constexpr unsigned kNodeShift = 44;

/** Node that homes address @p a. */
inline NodeId
homeOfAddr(Addr a)
{
    return static_cast<NodeId>(a >> kNodeShift);
}

/** A bump allocator for one node's region of the address space. */
class NodeHeap
{
  public:
    explicit NodeHeap(NodeId node)
        : node_(node), next_(Addr{node} << kNodeShift)
    {}

    /** Allocate @p bytes aligned to a cache line. */
    Addr
    allocate(std::uint64_t bytes)
    {
        Addr a = next_;
        std::uint64_t aligned =
            (bytes + kCacheLineBytes - 1) & ~std::uint64_t{63};
        next_ += aligned;
        always_assert(homeOfAddr(next_) == node_, "node heap overflow");
        return a;
    }

    NodeId node() const { return node_; }
    std::uint64_t bytesUsed() const
    {
        return next_ - (Addr{node_} << kNodeShift);
    }

  private:
    NodeId node_;
    Addr next_;
};

/**
 * Uniform static placement of fixed-size records across the cluster,
 * plus per-node heaps for auxiliary allocations (index nodes, write-set
 * buffers).
 */
class Placement
{
  public:
    /**
     * @param num_nodes    cluster size N
     * @param num_records  number of records pre-allocated per table
     * @param record_bytes bytes each record occupies in memory (the
     *                     protocol config decides whether this includes
     *                     SW metadata)
     * @param owner_nodes  nodes the static hash stripes records over
     *                     (elastic membership: trailing spare nodes own
     *                     nothing until a join migrates records to
     *                     them). 0 means all num_nodes own records.
     */
    Placement(std::uint32_t num_nodes, std::uint64_t num_records,
              std::uint32_t record_bytes, std::uint32_t owner_nodes = 0)
        : numRecords_(num_records), recordBytes_(roundUp(record_bytes)),
          owners_(owner_nodes == 0 || owner_nodes > num_nodes
                      ? num_nodes
                      : owner_nodes)
    {
        for (NodeId n = 0; n < num_nodes; ++n)
            heaps_.emplace_back(n);
        recordBase_.resize(num_nodes);
        // Pre-reserve a contiguous record region on every node; records
        // are striped record->node by a hash for uniform distribution.
        std::vector<std::uint64_t> perNode(num_nodes, 0);
        for (std::uint64_t r = 0; r < num_records; ++r)
            perNode[homeOf(r)] += 1;
        for (NodeId n = 0; n < num_nodes; ++n)
            recordBase_[n] =
                heaps_[n].allocate(perNode[n] * recordBytes_ + 64);
        slotWithinNode_.resize(num_nodes, 0);
        recordAddr_.resize(num_records);
        for (std::uint64_t r = 0; r < num_records; ++r) {
            NodeId n = homeOf(r);
            recordAddr_[r] =
                recordBase_[n] + slotWithinNode_[n] * recordBytes_;
            slotWithinNode_[n] += 1;
        }
    }

    /**
     * Record ids with this bit set are *registered* records (index
     * nodes, auxiliary structures) whose home node is explicit in bits
     * 56..48 rather than hash-derived.
     */
    static constexpr std::uint64_t kRegisteredBit = std::uint64_t{1}
                                                    << 63;

    /** Build a registered record id homed at @p node. */
    static std::uint64_t
    makeRegisteredId(NodeId node, std::uint64_t seq)
    {
        return kRegisteredBit | (std::uint64_t{node} << 48) | seq;
    }

    /**
     * Register an auxiliary record (e.g. a KV index node) of @p bytes
     * homed at @p node. @return its address.
     */
    Addr
    registerRecord(std::uint64_t rid, NodeId node, std::uint32_t bytes)
    {
        Addr a = heaps_[node].allocate(roundUp(bytes));
        registered_.emplace(rid, a);
        registeredBytes_.emplace(rid, roundUp(bytes));
        return a;
    }

    /** Registered (auxiliary/index) record ids currently homed at
     *  @p node, sorted. A planned drain migrates these too -- a node
     *  that left the cluster must not keep serving index traversals. */
    std::vector<std::uint64_t>
    registeredHomedAt(NodeId node) const
    {
        std::vector<std::uint64_t> out;
        for (const auto &kv : registered_) // det-lint: ordered-ok (sorted)
            if (homeOf(kv.first) == node)
                out.push_back(kv.first);
        std::sort(out.begin(), out.end());
        return out;
    }

    /** Allocation size of a registered record (for rehome). */
    std::uint32_t
    registeredBytesOf(std::uint64_t rid) const
    {
        auto it = registeredBytes_.find(rid);
        always_assert(it != registeredBytes_.end(),
                      "unregistered auxiliary record");
        return it->second;
    }

    /** Home node of record @p r: the re-homing overlay (crash
     *  recovery) wins over the static hash placement. */
    NodeId
    homeOf(std::uint64_t r) const
    {
        if (!rehomedHome_.empty()) {
            auto it = rehomedHome_.find(r);
            if (it != rehomedHome_.end())
                return it->second;
        }
        return staticHomeOf(r);
    }

    /** Static (pre-re-homing) home of record @p r: a pure function of
     *  the id, stable for the whole run even across view changes.
     *  GroundTruth buckets by this, so a re-homed record's committed
     *  state stays findable. */
    NodeId
    staticHomeOf(std::uint64_t r) const
    {
        if (r & kRegisteredBit)
            return static_cast<NodeId>((r >> 48) & 0xff);
        return static_cast<NodeId>(mix64(r) % std::uint64_t(owners_));
    }

    /** Nodes the static hash stripes over (== numNodes unless elastic
     *  membership started some nodes as spares). */
    std::uint32_t ownerNodes() const { return owners_; }

    /** Base address of record @p r. */
    Addr
    addrOf(std::uint64_t r) const
    {
        if (!rehomedAddr_.empty()) {
            auto it = rehomedAddr_.find(r);
            if (it != rehomedAddr_.end())
                return it->second;
        }
        if (r & kRegisteredBit) {
            auto it = registered_.find(r);
            always_assert(it != registered_.end(),
                          "unregistered auxiliary record");
            return it->second;
        }
        return recordAddr_[r];
    }

    /**
     * Crash recovery / live migration: move record @p r to @p node,
     * allocating fresh backing storage from the new home's heap (a
     * dead node's memory is unreachable; a drained node's is handed
     * back). All subsequent homeOf/addrOf lookups resolve to the new
     * location; the static hash placement of every other record is
     * untouched.
     */
    void
    rehome(std::uint64_t r, NodeId node, std::uint32_t bytes)
    {
        rehomedHome_[r] = node;
        rehomedAddr_[r] = heaps_[node].allocate(roundUp(bytes));
    }

    std::size_t rehomedRecords() const { return rehomedHome_.size(); }

    std::uint32_t recordBytes() const { return recordBytes_; }
    std::uint64_t numRecords() const { return numRecords_; }

    /** The per-node heap for auxiliary allocations. */
    NodeHeap &heap(NodeId n) { return heaps_[n]; }

  private:
    static std::uint32_t
    roundUp(std::uint32_t bytes)
    {
        return (bytes + kCacheLineBytes - 1) & ~std::uint32_t{63};
    }

    std::uint64_t numRecords_;
    std::uint32_t recordBytes_;
    std::uint32_t owners_;
    std::vector<NodeHeap> heaps_;
    std::vector<Addr> recordBase_;
    std::vector<std::uint64_t> slotWithinNode_;
    std::vector<Addr> recordAddr_;
    std::unordered_map<std::uint64_t, Addr> registered_;
    std::unordered_map<std::uint64_t, std::uint32_t> registeredBytes_;
    /** Crash-recovery overlay: records moved off a dead home. Lookups
     *  are point queries, so the unordered maps stay deterministic. */
    std::unordered_map<std::uint64_t, NodeId> rehomedHome_;
    std::unordered_map<std::uint64_t, Addr> rehomedAddr_;
};

} // namespace hades::mem

#endif // HADES_MEM_ADDRESS_SPACE_HH_
