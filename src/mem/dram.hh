/**
 * @file
 * Main-memory timing model (the paper uses DRAMSim2; Table III gives
 * 64GB, 4 channels, 8 banks, ~100ns read/write round trip, 1 GHz DDR,
 * 64-bit channels).
 *
 * The model captures the first-order DRAM behaviours that matter for a
 * protocol study:
 *  - address-interleaved channels and banks,
 *  - per-bank row buffers: a row hit costs CAS only, a miss pays
 *    precharge + activate + CAS,
 *  - per-bank service occupancy, so bank conflicts queue,
 *  - burst transfer time on the channel bus.
 *
 * Defaults are chosen so that an isolated random access costs ~100ns
 * round trip, matching Table III.
 */

#ifndef HADES_MEM_DRAM_HH_
#define HADES_MEM_DRAM_HH_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/time.hh"
#include "common/types.hh"

namespace hades::mem
{

/** DRAM timing/geometry parameters. */
struct DramParams
{
    std::uint32_t channels = 4;
    std::uint32_t banksPerChannel = 8;
    std::uint32_t rowBytes = 8 * 1024;

    Tick tCas = ns(15);       //!< column access (row hit)
    Tick tRcd = ns(15);       //!< activate
    Tick tRp = ns(15);        //!< precharge
    Tick tBurst = ns(4);      //!< 64B burst on a 64-bit 1GHz DDR bus
    /** Controller + on-chip interconnect overhead per access; tuned so
     *  an isolated row-miss access lands at ~100ns (Table III). */
    Tick tController = ns(51);
};

/** Per-node DRAM with open-page row buffers and bank queueing. */
class DramModel
{
  public:
    explicit DramModel(const DramParams &params = {})
        : p_(params),
          banks_(std::size_t(params.channels) * params.banksPerChannel)
    {}

    /** Result of one access. */
    struct Access
    {
        Tick latency = 0; //!< request -> data back, including queueing
        bool rowHit = false;
    };

    /**
     * Access the line at @p addr at time @p now.
     * @p now = 0 degenerates to an uncontended timing estimate.
     */
    Access
    access(Addr addr, Tick now = 0)
    {
        Bank &bank = banks_[bankOf(addr)];
        std::uint64_t row = addr / p_.rowBytes;

        Tick start = std::max(now, bank.freeAt);
        bool hit = bank.rowOpen && bank.openRow == row;
        Tick core_time =
            hit ? p_.tCas : p_.tRp + p_.tRcd + p_.tCas;
        Tick service = core_time + p_.tBurst;

        bank.freeAt = start + service;
        bank.rowOpen = true;
        bank.openRow = row;

        ++accesses_;
        rowHits_ += hit ? 1 : 0;
        return Access{(start - now) + service + p_.tController, hit};
    }

    /** Fraction of accesses that hit an open row. */
    double
    rowHitRate() const
    {
        return accesses_ ? double(rowHits_) / double(accesses_) : 0.0;
    }

    std::uint64_t accesses() const { return accesses_; }
    const DramParams &params() const { return p_; }

    /** Bank index of an address: line-interleaved across channels,
     *  row-interleaved across banks. */
    std::size_t
    bankOf(Addr addr) const
    {
        std::uint64_t line = addr / kCacheLineBytes;
        std::uint64_t channel = line % p_.channels;
        std::uint64_t bank =
            (addr / p_.rowBytes) % p_.banksPerChannel;
        return std::size_t(channel) * p_.banksPerChannel +
               std::size_t(bank);
    }

  private:
    struct Bank
    {
        Tick freeAt = 0;
        bool rowOpen = false;
        std::uint64_t openRow = 0;
    };

    DramParams p_;
    std::vector<Bank> banks_;
    std::uint64_t accesses_ = 0;
    std::uint64_t rowHits_ = 0;
};

} // namespace hades::mem

#endif // HADES_MEM_DRAM_HH_
