/**
 * @file
 * The node's shared LLC / directory, extended with HADES Module 2:
 * a Writing-Transaction ID (WrTX ID) tag per line.
 *
 * Responsibilities:
 *  - plain tag array behaviour for latency modeling (shared by all three
 *    protocol configurations);
 *  - WrTX ID tags recording the in-progress transaction that
 *    speculatively wrote a line;
 *  - transaction-aware replacement: within a set, prefer evicting lines
 *    that are NOT speculatively modified (Section VIII-C); evicting a
 *    speculative line squashes its owner (reported via a hook);
 *  - Find-LLC-Tags (Section V-C): enumerate all lines tagged with a given
 *    WrTX ID. The hardware does this in parallel using the WrBF2 set
 *    groups; the model maintains an exact per-transaction index and the
 *    protocol engine charges the 80-120 cycle latency of Table III.
 */

#ifndef HADES_MEM_LLC_DIRECTORY_HH_
#define HADES_MEM_LLC_DIRECTORY_HH_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace hades::mem
{

/** Shared LLC with per-line WrTX ID tags. */
class LlcDirectory
{
  public:
    /** Called when a speculatively-written line must be evicted; the
     *  argument is the packed WrTX ID of the transaction to squash. */
    using SquashHook = std::function<void(std::uint64_t)>;

    LlcDirectory(std::uint64_t size_bytes, std::uint32_t ways);

    void setSquashHook(SquashHook hook) { squashHook_ = std::move(hook); }

    /** Is @p line resident? Updates LRU on hit. */
    bool probe(Addr line);

    /**
     * Bring @p line in. TX-aware replacement: the victim is the LRU way
     * among non-speculative lines; if every way in the set is
     * speculative, the LRU speculative line is evicted and its owner
     * squashed through the hook.
     */
    void insert(Addr line);

    /** WrTX ID tag of @p line, or 0 if untagged / not resident. */
    std::uint64_t wrTxIdOf(Addr line) const;

    /**
     * Tag @p line as speculatively written by @p tx_id. Inserts the line
     * if it is not resident (a transactional write allocates in the LLC:
     * speculative data cannot be evicted to memory).
     */
    void setWrTxId(Addr line, std::uint64_t tx_id);

    /** Find-LLC-Tags: all lines currently tagged by @p tx_id. */
    std::vector<Addr> linesWrittenBy(std::uint64_t tx_id) const;

    /** Number of lines currently tagged by @p tx_id. */
    std::uint64_t numLinesWrittenBy(std::uint64_t tx_id) const;

    /**
     * Clear all of @p tx_id's tags (commit step 4 makes the lines
     * non-speculative; squash invalidates them).
     * @param invalidate true on squash: the lines are dropped entirely.
     */
    void clearTxTags(std::uint64_t tx_id, bool invalidate);

    std::uint64_t numSets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** Count of speculative lines evicted (each squashed a transaction). */
    std::uint64_t speculativeEvictions() const { return specEvictions_; }

    /** Transactions with WrTX tags still in the array (leak checks). */
    std::size_t taggedTxCount() const { return writers_.size(); }

  private:
    struct Way
    {
        bool valid = false;
        Addr line = 0;
        std::uint64_t lru = 0;
        std::uint64_t wrTxId = 0; //!< 0 = not speculatively written
    };

    std::uint64_t setOf(Addr line) const
    {
        return (line / kCacheLineBytes) % sets_;
    }

    Way *find(Addr line);
    const Way *find(Addr line) const;
    void evict(Way &victim);

    std::uint64_t sets_;
    std::uint32_t ways_;
    std::vector<Way> array_;
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t specEvictions_ = 0;
    SquashHook squashHook_;

    /** Exact index: packed WrTX ID -> tagged lines (model-side stand-in
     *  for the parallel WrBF2-driven tag match of Figure 8). */
    std::unordered_map<std::uint64_t, std::unordered_set<Addr>> writers_;
};

} // namespace hades::mem

#endif // HADES_MEM_LLC_DIRECTORY_HH_
