/**
 * @file
 * Generic set-associative cache tag array with LRU replacement.
 *
 * Used to model the private L1/L2 caches (per core) purely for latency:
 * the simulator tracks which lines are resident so that hit/miss outcomes
 * -- and therefore the L1/L2/LLC/DRAM latencies of Table III -- are
 * determined by the actual access stream.
 */

#ifndef HADES_MEM_CACHE_ARRAY_HH_
#define HADES_MEM_CACHE_ARRAY_HH_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace hades::mem
{

/** Plain tag array: probe / touch / insert with LRU. */
class CacheArray
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways       associativity
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t ways);

    /** Is @p line resident? Updates LRU on hit. */
    bool probe(Addr line);

    /** Is @p line resident? No LRU update (observation only). */
    bool contains(Addr line) const;

    /**
     * Bring @p line in, evicting the LRU way if the set is full.
     * @return the evicted line address, if any.
     */
    std::optional<Addr> insert(Addr line);

    /** Drop @p line if resident. */
    void invalidate(Addr line);

    /** Drop everything. */
    void clear();

    std::uint64_t numSets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        bool valid = false;
        Addr line = 0;
        std::uint64_t lru = 0;
    };

    std::uint64_t setOf(Addr line) const
    {
        return (line / kCacheLineBytes) % sets_;
    }

    Way *find(Addr line);
    const Way *find(Addr line) const;

    std::uint64_t sets_;
    std::uint32_t ways_;
    std::vector<Way> array_;
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace hades::mem

#endif // HADES_MEM_CACHE_ARRAY_HH_
