#include "mem/cache_array.hh"

namespace hades::mem
{

CacheArray::CacheArray(std::uint64_t size_bytes, std::uint32_t ways)
    : sets_(size_bytes / (std::uint64_t{kCacheLineBytes} * ways)),
      ways_(ways)
{
    always_assert(sets_ >= 1, "cache has no sets");
    array_.resize(sets_ * ways_);
}

CacheArray::Way *
CacheArray::find(Addr line)
{
    Way *base = &array_[setOf(line) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].line == line)
            return &base[w];
    return nullptr;
}

const CacheArray::Way *
CacheArray::find(Addr line) const
{
    return const_cast<CacheArray *>(this)->find(line);
}

bool
CacheArray::probe(Addr line)
{
    if (Way *w = find(line)) {
        w->lru = ++stamp_;
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

bool
CacheArray::contains(Addr line) const
{
    return find(line) != nullptr;
}

std::optional<Addr>
CacheArray::insert(Addr line)
{
    if (Way *w = find(line)) {
        w->lru = ++stamp_;
        return std::nullopt;
    }
    Way *base = &array_[setOf(line) * ways_];
    Way *victim = &base[0];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    std::optional<Addr> evicted;
    if (victim->valid)
        evicted = victim->line;
    victim->valid = true;
    victim->line = line;
    victim->lru = ++stamp_;
    return evicted;
}

void
CacheArray::invalidate(Addr line)
{
    if (Way *w = find(line))
        w->valid = false;
}

void
CacheArray::clear()
{
    for (auto &w : array_)
        w.valid = false;
}

} // namespace hades::mem
