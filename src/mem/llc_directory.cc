#include "mem/llc_directory.hh"

#include <algorithm>

#include "common/log.hh"

namespace hades::mem
{

LlcDirectory::LlcDirectory(std::uint64_t size_bytes, std::uint32_t ways)
    : sets_(size_bytes / (std::uint64_t{kCacheLineBytes} * ways)),
      ways_(ways)
{
    always_assert(sets_ >= 1, "LLC has no sets");
    array_.resize(sets_ * ways_);
}

LlcDirectory::Way *
LlcDirectory::find(Addr line)
{
    Way *base = &array_[setOf(line) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].line == line)
            return &base[w];
    return nullptr;
}

const LlcDirectory::Way *
LlcDirectory::find(Addr line) const
{
    return const_cast<LlcDirectory *>(this)->find(line);
}

bool
LlcDirectory::probe(Addr line)
{
    if (Way *w = find(line)) {
        w->lru = ++stamp_;
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

void
LlcDirectory::evict(Way &victim)
{
    if (victim.wrTxId != 0) {
        // Evicting a speculatively-written line squashes its transaction
        // (Section V-A, "Transaction Squash").
        ++specEvictions_;
        std::uint64_t owner = victim.wrTxId;
        auto it = writers_.find(owner);
        if (it != writers_.end()) {
            it->second.erase(victim.line);
            if (it->second.empty())
                writers_.erase(it);
        }
        victim.wrTxId = 0;
        victim.valid = false;
        if (squashHook_)
            squashHook_(owner);
        return;
    }
    victim.valid = false;
}

void
LlcDirectory::insert(Addr line)
{
    if (Way *w = find(line)) {
        w->lru = ++stamp_;
        return;
    }
    Way *base = &array_[setOf(line) * ways_];
    // Pass 1: a free way.
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            base[w] = Way{true, line, ++stamp_, 0};
            return;
        }
    }
    // Pass 2: LRU among non-speculative lines (TX-aware replacement).
    Way *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].wrTxId == 0 &&
            (!victim || base[w].lru < victim->lru)) {
            victim = &base[w];
        }
    }
    // Pass 3: every way is speculative; evict the LRU one (squash).
    if (!victim) {
        victim = &base[0];
        for (std::uint32_t w = 1; w < ways_; ++w)
            if (base[w].lru < victim->lru)
                victim = &base[w];
    }
    evict(*victim);
    *victim = Way{true, line, ++stamp_, 0};
}

std::uint64_t
LlcDirectory::wrTxIdOf(Addr line) const
{
    const Way *w = find(line);
    return w ? w->wrTxId : 0;
}

void
LlcDirectory::setWrTxId(Addr line, std::uint64_t tx_id)
{
    always_assert(tx_id != 0, "WrTX ID 0 is reserved for 'untagged'");
    insert(line);
    Way *w = find(line);
    // If the insert itself squashed tx_id (pathological single-set
    // thrash), the caller will observe its own squash flag; still tag.
    if (w->wrTxId != 0 && w->wrTxId != tx_id) {
        // Overwriting another transaction's speculative line must have
        // been cleared by conflict detection first; treat as model bug.
        panic("setWrTxId over a line tagged by another transaction");
    }
    if (w->wrTxId == 0)
        writers_[tx_id].insert(line);
    w->wrTxId = tx_id;
}

std::vector<Addr>
LlcDirectory::linesWrittenBy(std::uint64_t tx_id) const
{
    std::vector<Addr> out;
    auto it = writers_.find(tx_id);
    if (it == writers_.end())
        return out;
    // The exact index is a hash set; sort so the enumeration order the
    // protocol engines act on is platform-independent.
    out.assign(it->second.begin(), it->second.end()); // det-lint: ordered-ok (sorted below)
    std::sort(out.begin(), out.end());
    return out;
}

std::uint64_t
LlcDirectory::numLinesWrittenBy(std::uint64_t tx_id) const
{
    auto it = writers_.find(tx_id);
    return it == writers_.end() ? 0 : it->second.size();
}

void
LlcDirectory::clearTxTags(std::uint64_t tx_id, bool invalidate)
{
    auto it = writers_.find(tx_id);
    if (it == writers_.end())
        return;
    // Per-line untag/invalidate is order-insensitive (no LRU stamps).
    for (Addr line : it->second) { // det-lint: ordered-ok
        if (Way *w = find(line)) {
            w->wrTxId = 0;
            if (invalidate)
                w->valid = false;
        }
    }
    writers_.erase(it);
}

} // namespace hades::mem
