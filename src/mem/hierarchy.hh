/**
 * @file
 * Per-node memory hierarchy timing: private L1/L2 per core, shared LLC
 * directory, DRAM. Returns the Tick cost of an access and keeps the tag
 * arrays in sync with the access stream.
 */

#ifndef HADES_MEM_HIERARCHY_HH_
#define HADES_MEM_HIERARCHY_HH_

#include <memory>
#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/time.hh"
#include "mem/cache_array.hh"
#include "mem/dram.hh"
#include "mem/llc_directory.hh"
#include "sim/kernel.hh"

namespace hades::mem
{

/** Which level serviced an access. */
enum class HitLevel
{
    L1,
    L2,
    LLC,
    DRAM,
};

/** The memory system of one node. */
class NodeMemory
{
  public:
    /**
     * @param cfg    cluster configuration
     * @param kernel optional simulation clock; when present, DRAM bank
     *               occupancy is tracked against real simulated time
     *               (without it the DRAM model degenerates to
     *               uncontended estimates)
     */
    explicit NodeMemory(const ClusterConfig &cfg,
                        const sim::Kernel *kernel = nullptr)
        : cfg_(cfg),
          clock_(cfg.clock()),
          kernel_(kernel),
          llc_(cfg.llcBytesPerCore * cfg.coresPerNode, cfg.llcWays)
    {
        for (std::uint32_t c = 0; c < cfg.coresPerNode; ++c) {
            l1_.push_back(std::make_unique<CacheArray>(cfg.l1.sizeBytes,
                                                       cfg.l1.ways));
            l2_.push_back(std::make_unique<CacheArray>(cfg.l2.sizeBytes,
                                                       cfg.l2.ways));
        }
    }

    /** Result of a timed access. */
    struct Access
    {
        Tick latency = 0;
        HitLevel level = HitLevel::L1;
    };

    /**
     * Perform one cache-line access by @p core; updates all tag arrays
     * and returns the latency per the Table III round-trip numbers.
     */
    Access
    access(CoreId core, Addr line)
    {
        auto &l1 = *l1_[core];
        auto &l2 = *l2_[core];
        if (l1.probe(line))
            return {clock_.cycles(cfg_.l1.accessCycles), HitLevel::L1};
        if (l2.probe(line)) {
            l1.insert(line);
            return {clock_.cycles(cfg_.l2.accessCycles), HitLevel::L2};
        }
        if (llc_.probe(line)) {
            l2.insert(line);
            l1.insert(line);
            return {clock_.cycles(cfg_.llcCycles), HitLevel::LLC};
        }
        llc_.insert(line);
        l2.insert(line);
        l1.insert(line);
        return {clock_.cycles(cfg_.llcCycles) + dramAccess(line),
                HitLevel::DRAM};
    }

    /**
     * Probe-only access: returns the latency if @p line is already
     * resident somewhere in this node's hierarchy, and nothing if it
     * would need memory/network. Used for client-side caching of
     * read-only remote index structures: a hit is served locally, a
     * miss falls back to the RDMA fetch path.
     */
    std::optional<Access>
    cachedAccess(CoreId core, Addr line)
    {
        auto &l1 = *l1_[core];
        auto &l2 = *l2_[core];
        if (l1.probe(line))
            return Access{clock_.cycles(cfg_.l1.accessCycles),
                          HitLevel::L1};
        if (l2.probe(line)) {
            l1.insert(line);
            return Access{clock_.cycles(cfg_.l2.accessCycles),
                          HitLevel::L2};
        }
        if (llc_.probe(line)) {
            l2.insert(line);
            l1.insert(line);
            return Access{clock_.cycles(cfg_.llcCycles),
                          HitLevel::LLC};
        }
        return std::nullopt;
    }

    /**
     * An access from the NIC (RDMA servicing or commit push): goes to
     * the LLC directly, then DRAM on a miss.
     */
    Access
    nicAccess(Addr line)
    {
        if (llc_.probe(line))
            return {clock_.cycles(cfg_.llcCycles), HitLevel::LLC};
        llc_.insert(line);
        return {clock_.cycles(cfg_.llcCycles) + dramAccess(line),
                HitLevel::DRAM};
    }

    /** The shared LLC / directory (HADES tag operations go through it). */
    LlcDirectory &llc() { return llc_; }
    const LlcDirectory &llc() const { return llc_; }

    /** The DRAM timing model behind the LLC. */
    DramModel &dram() { return dram_; }
    const DramModel &dram() const { return dram_; }

    CacheArray &l1(CoreId core) { return *l1_[core]; }
    CacheArray &l2(CoreId core) { return *l2_[core]; }

  private:
    Tick
    dramAccess(Addr line)
    {
        Tick now = kernel_ ? kernel_->now() : 0;
        return dram_.access(line, now).latency;
    }

    const ClusterConfig &cfg_;
    Clock clock_;
    const sim::Kernel *kernel_;
    std::vector<std::unique_ptr<CacheArray>> l1_;
    std::vector<std::unique_ptr<CacheArray>> l2_;
    LlcDirectory llc_;
    DramModel dram_;
};

} // namespace hades::mem

#endif // HADES_MEM_HIERARCHY_HH_
