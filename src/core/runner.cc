#include "core/runner.hh"

#include <algorithm>
#include <numeric>

#include "audit/auditor.hh"
#include "common/log.hh"
#include "fault/fault_plan.hh"
#include "protocol/baseline.hh"
#include "protocol/hades.hh"
#include "protocol/hades_hybrid.hh"
#include "protocol/system.hh"
#include "recovery/membership.hh"
#include "recovery/recovery_manager.hh"
#include "sim/resource.hh"
#include "sim/task.hh"

namespace hades::core
{

using protocol::EngineKind;
using protocol::ExecCtx;
using protocol::System;
using protocol::TxnEngine;

std::uint32_t
engineRecordBytes(EngineKind kind, std::uint32_t payload_bytes)
{
    txn::RecordLayout layout{payload_bytes};
    return kind == EngineKind::Hades ? layout.hwBytes()
                                     : layout.swBytes();
}

std::unique_ptr<TxnEngine>
makeEngine(EngineKind kind, System &sys, std::uint32_t payload_bytes)
{
    switch (kind) {
      case EngineKind::Baseline:
        return std::make_unique<protocol::BaselineEngine>(
            sys, payload_bytes);
      case EngineKind::Hades:
        return std::make_unique<protocol::HadesEngine>(sys,
                                                       payload_bytes);
      case EngineKind::HadesHybrid:
        return std::make_unique<protocol::HadesHybridEngine>(
            sys, payload_bytes);
    }
    panic("unknown engine kind");
}

namespace
{

/** One hardware context's driver loop. A permanent fail-stop of the
 *  context's node unwinds the in-flight transaction with NodeDead; the
 *  driver stops issuing (the node no longer executes). Either way it
 *  reports in to the recovery manager, which stops its background
 *  lease probes once every driver has finished. */
sim::DetachedTask
driveContext(TxnEngine &engine, workload::WorkloadGenerator &gen,
             ExecCtx ctx, Rng rng, std::uint64_t txns,
             recovery::RecoveryManager *recovery,
             recovery::MembershipManager *membership)
{
    // Execute in this context's node context: under sharded execution
    // the transactions then run on the node's own lane (the prologue
    // up to here runs at t=0 before kernel.run(), single-threaded).
    co_await sim::HopTo{engine.system().kernel, ctx.node};
    protocol::AdmissionController *adm =
        engine.system().admission.get();
    std::uint32_t shed_tries = 0;
    for (std::uint64_t i = 0; i < txns; ++i) {
        // Elastic membership: spares bring no client load of their
        // own, and a draining node stops issuing between transactions
        // ("stops accepting new home-node work") -- its in-flight
        // transaction always completes or squash-retries, never hangs
        // in doubt.
        if (membership && !membership->issuesLoad(ctx.node))
            break;
        // Admission control: the client asks before issuing; a refusal
        // is a shed (recorded as SquashReason::Shed), and the client
        // re-asks after a bounded deterministic backoff -- shed load is
        // delayed, never lost.
        if (adm) {
            bool gone = false;
            while (!adm->admit(ctx.node)) {
                engine.noteShed(ctx.node);
                co_await sim::Delay{engine.system().kernel,
                                    adm->shedBackoff(shed_tries)};
                shed_tries = std::min(
                    shed_tries + 1,
                    adm->config().shedBackoffCapShift);
                if (engine.system().network.nodeDead(ctx.node) ||
                    (membership &&
                     !membership->issuesLoad(ctx.node))) {
                    gone = true;
                    break;
                }
            }
            if (gone)
                break;
            shed_tries = 0;
            adm->begin(ctx.node);
        }
        txn::TxnProgram prog = gen.next(rng, ctx.node);
        bool stop = false;
        try {
            co_await engine.run(ctx, prog);
        } catch (const sim::NodeDead &) {
            stop = true;
        } catch (const sim::SerialRerunNeeded &) {
            // The threaded executor cannot run the lock-mode fallback;
            // the kernel flag is already set and runOne() redoes the
            // whole spec deterministically. Just retire this driver so
            // the doomed run drains quickly.
            stop = true;
        }
        if (adm)
            adm->end(ctx.node);
        if (stop)
            break;
    }
    if (recovery)
        recovery->driverDone();
    if (membership)
        membership->driverDone();
}

/**
 * True when @p spec qualifies for threaded sharded execution: every
 * model event must stay on its node's lane. The messaging path itself
 * is now lane-safe -- per-lane NIC port state, window-delayed
 * cross-lane delivery through the per-(src,dst) mailboxes -- so
 * cross-node workloads (YCSB, Smallbank, mixes) qualify too. What
 * still decertifies a spec is any subsystem that acts across nodes
 * outside the message fabric: fault injection (drops/resend timers
 * inspect coordinator flags from remote lanes), recovery and
 * replication (cluster-global scans), the process-global auditor, and
 * the partial-locality re-pick loop (placement probes outside the
 * generator's own node). Everything else still shards
 * deterministically on one thread when asked to.
 */
bool
certifiedForThreads(const RunSpec &spec)
{
    if (spec.cluster.faults.enabled || spec.cluster.recovery.enabled ||
        spec.replication.enabled() || spec.audit ||
        spec.cluster.membership.enabled() || spec.cluster.slo.enabled ||
        spec.cluster.admission.enabled)
        return false;
    // Uniform placement (fraction unset) and forced-full-local both
    // emit lane-pure record picks; fractional locality's re-pick
    // sweep is conservatively left to the serial executors.
    if (spec.cluster.forcedLocalFraction >= 0.0 &&
        spec.cluster.forcedLocalFraction < 1.0)
        return false;
    if (spec.cluster.sharding.forceDeterministic)
        return false;
    return true;
}

RunResult runOneImpl(const RunSpec &spec, bool force_deterministic);

} // namespace

RunResult
runOne(const RunSpec &spec)
{
    RunResult res = runOneImpl(spec, false);
    if (res.serialRerun) {
        // The threaded executor bailed out (lock-mode fallback): redo
        // the spec on the deterministic sharded executor, which
        // handles every path, and report its (bit-identical-to-serial)
        // results.
        res = runOneImpl(spec, true);
        res.serialRerun = true;
    }
    return res;
}

namespace
{

RunResult
runOneImpl(const RunSpec &spec, bool force_deterministic)
{
    always_assert(!spec.mix.empty(), "run needs at least one workload");
    if (spec.cluster.slo.enabled)
        always_assert(spec.cluster.faults.enabled,
                      "the SLO tracker observes the faulty messaging "
                      "path; slo.enabled requires faults.enabled");

    // Build the generators first: the placement needs the total record
    // count before the System exists.
    workload::WorkloadConfig wcfg;
    wcfg.numNodes = spec.cluster.numNodes;
    if (spec.cluster.membership.enabled()) {
        // Spare nodes own no records and bring no clients until their
        // join: the generators shape locality (and the KV stores place
        // their index partitions) over the initial members only.
        wcfg.numNodes =
            spec.cluster.membership.initialOwners(spec.cluster.numNodes);
    }
    wcfg.forcedLocalFraction = spec.cluster.forcedLocalFraction;
    wcfg.scaleKeys = spec.scaleKeys;

    std::vector<std::unique_ptr<workload::WorkloadGenerator>> gens;
    std::uint64_t total_records = 0;
    for (std::size_t w = 0; w < spec.mix.size(); ++w) {
        wcfg.salt = std::uint32_t(w);
        gens.push_back(workload::makeWorkload(spec.mix[w].app,
                                              spec.mix[w].store, wcfg));
        total_records += gens.back()->numRecords();
    }

    System sys(spec.cluster, total_records,
               engineRecordBytes(spec.engine,
                                 spec.cluster.recordPayloadBytes),
               spec.replication);

    // Select the execution mode before the first event is scheduled.
    // The window width is the conservative lookahead: no cross-node
    // event can land sooner than half the NIC round trip.
    const std::uint32_t shards =
        std::max(1u, std::min(spec.shards, spec.cluster.numNodes));
    if (shards > 1) {
        sim::ShardPlan plan;
        plan.shards = shards;
        plan.numNodes = spec.cluster.numNodes;
        plan.windowTicks = spec.cluster.sharding.windowFor(
            spec.cluster.netRoundTrip);
        plan.threaded =
            !force_deterministic && certifiedForThreads(spec);
        if (plan.threaded) {
            always_assert(
                plan.windowTicks <= spec.cluster.netRoundTrip / 2,
                "threaded window exceeds the network lookahead");
        }
        sys.kernel.configureSharding(plan);
    }

    std::uint64_t base = 0;
    for (auto &gen : gens) {
        gen->bind(sys.placement, base);
        base += gen->numRecords();
    }

    auto engine = makeEngine(spec.engine, sys,
                             spec.cluster.recordPayloadBytes);

    // The auditor records into side structures only (it draws no
    // random numbers and schedules no events), so an audited run is
    // bit-identical to the same run without it.
    std::unique_ptr<audit::Auditor> auditor;
    if (spec.audit) {
        auditor = std::make_unique<audit::Auditor>();
        sys.audit = auditor.get();
    }

    // Attach the fault plan (if any) before the first message flies.
    // Fault-free runs never construct one, so they stay bit-identical.
    std::unique_ptr<fault::FaultPlan> faults;
    if (spec.cluster.faults.enabled) {
        faults = std::make_unique<fault::FaultPlan>(sys.kernel,
                                                    spec.cluster);
        sys.network.setFaultInjector(faults.get());
        std::vector<std::vector<sim::ComputeResource *>> cores_by_node;
        for (auto &node : sys.nodes) {
            std::vector<sim::ComputeResource *> cores;
            for (auto &core : node->cores)
                cores.push_back(core.get());
            cores_by_node.push_back(std::move(cores));
        }
        faults->scheduleNodeEvents(sys.network, cores_by_node);
    }

    // Crash-recovery subsystem (leases, view changes, backup
    // promotion). Opt-in: fault-free runs and plain fault-injection
    // runs never construct it, so they stay bit-identical.
    std::unique_ptr<recovery::RecoveryManager> recov;
    if (spec.cluster.recovery.enabled) {
        always_assert(!spec.cluster.faults.anyForever() ||
                          spec.replication.enabled(),
                      "permanent crashes with recovery enabled need "
                      "replication degree >= 1");
        recov = std::make_unique<recovery::RecoveryManager>(sys,
                                                            *engine);
    }

    // Elastic membership (scheduled joins / planned drains with live
    // record migration). Opt-in; requires the recovery substrate
    // (epochs, fencing, squash resolution) and replication (ring
    // transitions need an image-resync source of truth). Runs without
    // a join/drain schedule never construct it.
    std::unique_ptr<recovery::MembershipManager> memb;
    const bool quarantine_possible =
        spec.cluster.slo.enabled && spec.cluster.slo.quarantine;
    if (spec.cluster.membership.enabled() || quarantine_possible) {
        always_assert(spec.cluster.recovery.enabled,
                      "membership/quarantine requires recovery.enabled "
                      "(epochs, fencing, squash resolution)");
        always_assert(spec.replication.enabled(),
                      "membership/quarantine requires replication "
                      "(image resync across ring transitions)");
        const auto &mc = spec.cluster.membership;
        std::uint32_t members = mc.initialOwners(spec.cluster.numNodes);
        for (const auto &j : mc.joins) {
            always_assert(j.node < spec.cluster.numNodes,
                          "join schedules an out-of-range node");
            members += 1;
        }
        for (const auto &d : mc.drains) {
            always_assert(d.node < spec.cluster.numNodes,
                          "drain schedules an out-of-range node");
            always_assert(members > 1, "drain would empty the cluster");
            members -= 1;
        }
        memb = std::make_unique<recovery::MembershipManager>(sys,
                                                             *recov);
        // SLO-triggered quarantine: the CM drains a sustained-degraded
        // node through this membership manager.
        if (quarantine_possible)
            recov->setMembership(memb.get());
    }

    // Launch one driver per hardware context. Cores are split into
    // contiguous blocks, one block per mix entry. Pre-size the event
    // queue for the steady state: a handful of in-flight events per
    // context plus protocol fan-out headroom.
    const auto &cc = spec.cluster;
    sys.kernel.reserve(std::size_t{cc.numNodes} * cc.contextsPerNode() *
                           8 +
                       64);
    if (recov)
        recov->start(std::uint64_t{cc.numNodes} * cc.contextsPerNode());
    if (memb)
        memb->start(std::uint64_t{cc.numNodes} * cc.contextsPerNode());
    for (NodeId n = 0; n < cc.numNodes; ++n) {
        for (CoreId c = 0; c < cc.coresPerNode; ++c) {
            std::size_t w = (std::size_t(c) * gens.size()) /
                            cc.coresPerNode;
            for (SlotId s = 0; s < cc.slotsPerCore; ++s) {
                ExecCtx ctx{n, c, s};
                Rng rng{cc.seed ^ (std::uint64_t(n) << 40) ^
                        (std::uint64_t(c) << 20) ^ s};
                driveContext(*engine, *gens[w], ctx, rng,
                             spec.txnsPerContext, recov.get(),
                             memb.get());
            }
        }
    }

    bool drained = sys.kernel.run();
    always_assert(drained, "simulation did not drain its event queue");

    if (sys.kernel.serialRerunRequested()) {
        // Threaded execution hit a path it cannot reproduce; the
        // caller redoes the spec deterministically. Results of this
        // doomed run are meaningless -- return only the flag.
        RunResult bail;
        bail.serialRerun = true;
        return bail;
    }

    // ---- Correctness audit --------------------------------------------------
    RunResult res;
    if (auditor) {
        // End-of-run drain: every piece of speculative hardware state
        // must be gone once the event queue is empty.
        for (NodeId n = 0; n < spec.cluster.numNodes; ++n) {
            // A permanently crashed node's frozen speculative state is
            // unreachable, not leaked: recovery drains the dead node's
            // footprint from the *survivors*, which are still checked.
            if (sys.network.nodeDead(n))
                continue;
            auto &node = sys.node(n);
            auditor->noteDrained(
                "llc-wrtx-tags", n,
                node.memory.llc().taggedTxCount());
            auditor->noteDrained("locking-buffer", n,
                                 node.lockBank.activeCount());
            auditor->noteDrained("nic-remote-filters", n,
                                 node.nic.remoteTxCount());
            auditor->noteDrained("nic-local-state", n,
                                 node.nic.localTxCount());
            auditor->noteDrained("record-locks", n,
                                 node.versions.lockedCount());
        }
        audit::AuditReport report = auditor->finalize();
        if (!report.ok())
            panic(report.summary().c_str());
        res.audited = true;
        res.auditedCommits = report.committedTxns;
        res.auditedAborts = report.abortedTxns;
        res.auditGraphEdges = report.graphEdges;
        res.auditChecks = report.filterProbesChecked +
                          report.findTagsChecked +
                          report.lockAcquiresChecked;
    }

    // ---- Extract metrics ----------------------------------------------------
    res.stats = engine->stats();
    res.simTime = sys.kernel.now();
    res.label = gens.size() == 1 ? gens[0]->label() : "mix";

    const auto &st = res.stats;
    double seconds = double(res.simTime) / double(kSecond);
    res.throughputTps =
        seconds > 0 ? double(st.committed) / seconds : 0;
    res.meanLatencyUs = st.latency.mean() / double(kMicrosecond);
    res.p95LatencyUs =
        double(st.latency.p95()) / double(kMicrosecond);
    res.p50LatencyUs =
        double(st.latency.p50()) / double(kMicrosecond);
    res.execUs = st.execPhase.mean() / double(kMicrosecond);
    res.validationUs =
        st.validationPhase.mean() / double(kMicrosecond);
    res.commitUs = st.commitPhase.mean() / double(kMicrosecond);

    double total_latency = st.latency.mean() * double(st.committed);
    if (total_latency > 0) {
        double categorized = 0;
        for (std::size_t i = 0;
             i < std::size_t(txn::Overhead::NumCategories); ++i) {
            res.overheadShare[i] =
                double(st.overheadTicks[i]) / total_latency;
            categorized += res.overheadShare[i];
        }
        res.otherShare = 1.0 - categorized;
    }

    res.squashRate = st.attempts
                         ? double(st.totalSquashes()) /
                               double(st.attempts)
                         : 0;
    std::uint64_t evictions = 0;
    for (auto &node : sys.nodes)
        evictions += node->memory.llc().speculativeEvictions();
    res.evictionSquashRate =
        st.committed ? double(evictions) / double(st.committed) : 0;
    res.bfFalsePositiveRate =
        st.bfConflictChecks
            ? double(st.bfFalsePositives) /
                  double(st.bfConflictChecks)
            : 0;

    res.stats.netMessages = sys.network.totalMessages();
    res.stats.netBytes = sys.network.totalBytes();
    res.stats.totalBusyTicks = 0;
    for (auto &node : sys.nodes)
        for (auto &core : node->cores)
            res.stats.totalBusyTicks += core->busyTime();
    if (sys.replicas) {
        res.replicatedCommits = sys.replicas->replicatedCommits();
        res.replicationAborts = sys.replicas->replicationAborts();
        res.lostReplicaMessages = sys.replicas->lostMessages();
    }
    if (faults) {
        const auto &fs = faults->stats();
        res.faultDrops =
            fs.totalDrops() + fs.crashDrops + fs.partitionDrops;
        res.faultDuplicates = fs.totalDuplicates();
        res.faultDelays = fs.totalDelays() + fs.pausedDeferrals;
        res.faultNicStalls = fs.totalNicStalls();
        res.faultCrashDrops = fs.crashDrops;
        res.partitionDrops = fs.partitionDrops;
        res.greyDelays = fs.greyDelays;
        res.stragglerReserves = fs.stragglerReserves;
        // Healing is lazy (no kernel event), so count the windows whose
        // scheduled heal instant the run actually reached.
        res.partitionHeals =
            faults->partitionsHealedBy(sys.kernel.now());
    }
    res.corruptDrops = sys.network.corruptDrops();
    if (sys.slo) {
        const auto &ss = sys.slo->stats();
        res.sloSamples = ss.samples;
        res.sloSuspectTransitions = ss.suspectTransitions;
        res.sloDegradedTransitions = ss.degradedTransitions;
    }
    res.hedgedSends = sys.network.hedgedSends();
    res.hedgeWins = sys.network.hedgeWins();
    if (sys.admission) {
        const auto &as = sys.admission->stats();
        res.admittedTxns = as.admittedTxns;
        res.shedTxns = as.shedTxns;
    }
    res.retryBudgetDeferrals = st.retryBudgetDeferrals;
    if (recov) {
        const auto &rs = recov->stats();
        res.recoveryEnabled = true;
        res.leaseProbes = rs.leaseProbes;
        res.viewChanges = rs.viewChanges;
        res.promotedRecords = rs.promotedRecords;
        res.inDoubtCommitted = rs.inDoubtCommitted;
        res.inDoubtAborted = rs.inDoubtAborted;
        res.replayedWrites = rs.replayedWrites;
        res.resyncedImages = rs.resyncedImages;
        res.cmFailovers = rs.cmFailovers;
        res.quorumRefusals = rs.quorumRefusals;
        res.staleLeaseGrants = rs.staleLeaseGrants;
        res.quarantines = rs.quarantines;
        // End-of-run durability check against ground truth: every live
        // backup of every record must hold the committed value. This
        // is the chaos fuzzer's primary predicate, and any crash /
        // partition / corruption scenario that leaves a stale backup
        // behind shows up here as a nonzero count.
        if (sys.replicas)
            res.divergentRecords = sys.replicas->divergentRecords(
                sys.data, [&](std::uint64_t r) {
                    return sys.placement.homeOf(r);
                });
    }
    if (memb) {
        const auto &ms = memb->stats();
        res.membershipEnabled = true;
        res.membershipComplete = memb->complete();
        res.recordsMigrated = ms.recordsMigrated;
        res.migrationBatches = ms.migrationBatches;
        res.drainDurationEvents = ms.drainDurationEvents;
        res.joinsCompleted = ms.joinsCompleted;
        res.stalePlacementRetries = st.squashes[std::size_t(
            txn::SquashReason::StalePlacement)];
    }
    res.fencedStaleMessages = sys.network.fencedStaleMessages();
    res.netRetransmits = sys.network.totalRetransmits();
    res.timeoutResends = st.timeoutResends;
    res.reliableResends = st.reliableResends;
    res.timeoutSquashes =
        st.squashes[std::size_t(txn::SquashReason::CommitTimeout)];
    res.shardsUsed = sys.kernel.shards();
    res.shardsThreaded = sys.kernel.threaded();
    res.shardWindows = sys.kernel.windowBarriers();
    res.crossShardEvents = sys.kernel.crossShardEvents();
    return res;
}

} // namespace

} // namespace hades::core
