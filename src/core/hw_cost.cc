#include "core/hw_cost.hh"

#include <bit>

namespace hades::core
{

HwStorage
computeHwStorage(const ClusterConfig &cfg,
                 std::uint32_t avg_remote_nodes,
                 std::uint32_t tx_entry_bytes)
{
    HwStorage out;
    double core_read_bits = cfg.coreReadBf.bits;
    double core_write_bits =
        double(cfg.coreWriteBf.bf1Bits) + double(cfg.coreWriteBf.bf2Bits);
    out.coreBfPairBytes = (core_read_bits + core_write_bits) / 8.0;

    double nic_bits =
        double(cfg.nicReadBf.bits) + double(cfg.nicWriteBf.bits);
    out.nicBfPairBytes = nic_bits / 8.0;

    std::uint32_t contexts = cfg.slotsPerCore * cfg.coresPerNode;
    out.corePairs = contexts;
    out.nicPairs = contexts * avg_remote_nodes;
    out.wrTxIdBits =
        std::bit_width(std::uint32_t(contexts - 1)); // log2 rounded up
    out.coreBfTotalBytes = out.coreBfPairBytes * contexts;
    out.nicTotalBytes = out.nicBfPairBytes * out.nicPairs +
                        double(tx_entry_bytes) * contexts;
    return out;
}

} // namespace hades::core
