#include "core/result_json.hh"

#include <cinttypes>
#include <cstdio>

#include "common/log.hh"

namespace hades::core
{

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
field(std::string &out, const char *name, std::uint64_t v, bool first = false)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64,
                  first ? "" : ",", name, v);
    out += buf;
}

void
fieldI(std::string &out, const char *name, std::int64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRId64, name, v);
    out += buf;
}

void
fieldD(std::string &out, const char *name, double v)
{
    // %.17g round-trips IEEE doubles, so "bit-identical results" is a
    // claim consumers can check on the JSON alone.
    char buf[128];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%.17g", name, v);
    out += buf;
}

void
fieldS(std::string &out, const char *name, const std::string &v,
       bool first = false)
{
    if (!first)
        out += ',';
    out += '"';
    out += name;
    out += "\":";
    appendEscaped(out, v);
}

void
fieldB(std::string &out, const char *name, bool v)
{
    out += ",\"";
    out += name;
    out += "\":";
    out += v ? "true" : "false";
}

} // namespace

std::string
runSpecJson(const RunSpec &spec)
{
    const ClusterConfig &cc = spec.cluster;
    std::string out = "{";
    fieldS(out, "engine", protocol::engineKindName(spec.engine), true);
    out += ",\"mix\":[";
    for (std::size_t i = 0; i < spec.mix.size(); ++i) {
        if (i)
            out += ',';
        std::string e = "{";
        fieldS(e, "app", workload::appKindName(spec.mix[i].app), true);
        fieldS(e, "store", kvs::storeKindName(spec.mix[i].store));
        e += '}';
        out += e;
    }
    out += ']';
    field(out, "txns_per_context", spec.txnsPerContext);
    field(out, "scale_keys", spec.scaleKeys);
    field(out, "nodes", cc.numNodes);
    field(out, "cores_per_node", cc.coresPerNode);
    field(out, "slots_per_core", cc.slotsPerCore);
    field(out, "seed", cc.seed);
    fieldI(out, "net_round_trip_ps", cc.netRoundTrip);
    fieldD(out, "forced_local_fraction", cc.forcedLocalFraction);
    field(out, "record_payload_bytes", cc.recordPayloadBytes);
    field(out, "replication_degree", spec.replication.degree);
    fieldB(out, "faults_enabled", cc.faults.enabled);
    fieldB(out, "recovery_enabled", cc.recovery.enabled);
    field(out, "grey_events", cc.faults.greyEvents.size());
    fieldB(out, "slo_enabled", cc.slo.enabled);
    if (cc.slo.enabled) {
        fieldB(out, "slo_hedge_reads", cc.slo.hedgeReads);
        fieldB(out, "slo_quarantine", cc.slo.quarantine);
    }
    fieldB(out, "admission_enabled", cc.admission.enabled);
    if (cc.membership.enabled()) {
        field(out, "initial_members",
              cc.membership.initialOwners(cc.numNodes));
        field(out, "migrate_batch_records",
              cc.membership.migrateBatchRecords);
        fieldI(out, "migrate_batch_interval_ps",
               cc.membership.migrateBatchInterval);
        out += ",\"joins\":[";
        for (std::size_t i = 0; i < cc.membership.joins.size(); ++i) {
            char buf[64];
            std::snprintf(buf, sizeof(buf),
                          "%s{\"node\":%u,\"at_ps\":%" PRId64 "}",
                          i ? "," : "", cc.membership.joins[i].node,
                          std::int64_t(cc.membership.joins[i].at));
            out += buf;
        }
        out += "],\"drains\":[";
        for (std::size_t i = 0; i < cc.membership.drains.size(); ++i) {
            char buf[64];
            std::snprintf(buf, sizeof(buf),
                          "%s{\"node\":%u,\"at_ps\":%" PRId64 "}",
                          i ? "," : "", cc.membership.drains[i].node,
                          std::int64_t(cc.membership.drains[i].at));
            out += buf;
        }
        out += ']';
    }
    fieldB(out, "audit", spec.audit);
    field(out, "shards", spec.shards);
    out += '}';
    return out;
}

std::string
runResultJson(const RunResult &res)
{
    const txn::EngineStats &st = res.stats;
    std::string out = "{";
    fieldS(out, "label", res.label, true);
    fieldI(out, "sim_time_ps", res.simTime);
    fieldD(out, "throughput_tps", res.throughputTps);
    fieldD(out, "mean_latency_us", res.meanLatencyUs);
    fieldD(out, "p50_latency_us", res.p50LatencyUs);
    fieldD(out, "p95_latency_us", res.p95LatencyUs);
    fieldD(out, "exec_us", res.execUs);
    fieldD(out, "validation_us", res.validationUs);
    fieldD(out, "commit_us", res.commitUs);
    out += ",\"overhead_share\":[";
    for (std::size_t i = 0; i < res.overheadShare.size(); ++i) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%s%.17g", i ? "," : "",
                      res.overheadShare[i]);
        out += buf;
    }
    out += ']';
    fieldD(out, "other_share", res.otherShare);
    fieldD(out, "squash_rate", res.squashRate);
    fieldD(out, "eviction_squash_rate", res.evictionSquashRate);
    fieldD(out, "bf_false_positive_rate", res.bfFalsePositiveRate);
    field(out, "replicated_commits", res.replicatedCommits);
    field(out, "replication_aborts", res.replicationAborts);
    field(out, "lost_replica_messages", res.lostReplicaMessages);
    field(out, "fault_drops", res.faultDrops);
    field(out, "fault_duplicates", res.faultDuplicates);
    field(out, "fault_delays", res.faultDelays);
    field(out, "fault_nic_stalls", res.faultNicStalls);
    field(out, "fault_crash_drops", res.faultCrashDrops);
    field(out, "partition_drops", res.partitionDrops);
    field(out, "partition_heals", res.partitionHeals);
    field(out, "corrupt_drops", res.corruptDrops);
    field(out, "net_retransmits", res.netRetransmits);
    field(out, "timeout_resends", res.timeoutResends);
    field(out, "reliable_resends", res.reliableResends);
    field(out, "timeout_squashes", res.timeoutSquashes);
    fieldB(out, "recovery_enabled", res.recoveryEnabled);
    field(out, "lease_probes", res.leaseProbes);
    field(out, "view_changes", res.viewChanges);
    field(out, "promoted_records", res.promotedRecords);
    field(out, "indoubt_committed", res.inDoubtCommitted);
    field(out, "indoubt_aborted", res.inDoubtAborted);
    field(out, "replayed_writes", res.replayedWrites);
    field(out, "resynced_images", res.resyncedImages);
    field(out, "fenced_stale_messages", res.fencedStaleMessages);
    field(out, "cm_failovers", res.cmFailovers);
    field(out, "quorum_refusals", res.quorumRefusals);
    field(out, "stale_lease_grants", res.staleLeaseGrants);
    field(out, "divergent_records", res.divergentRecords);
    field(out, "grey_delays", res.greyDelays);
    field(out, "straggler_reserves", res.stragglerReserves);
    field(out, "slo_samples", res.sloSamples);
    field(out, "slo_suspect_transitions", res.sloSuspectTransitions);
    field(out, "slo_degraded_transitions", res.sloDegradedTransitions);
    field(out, "hedged_sends", res.hedgedSends);
    field(out, "hedge_wins", res.hedgeWins);
    field(out, "admitted_txns", res.admittedTxns);
    field(out, "shed_txns", res.shedTxns);
    field(out, "retry_budget_deferrals", res.retryBudgetDeferrals);
    field(out, "quarantines", res.quarantines);
    fieldB(out, "membership_enabled", res.membershipEnabled);
    fieldB(out, "membership_complete", res.membershipComplete);
    field(out, "records_migrated", res.recordsMigrated);
    field(out, "migration_batches", res.migrationBatches);
    field(out, "drain_duration_events", res.drainDurationEvents);
    field(out, "joins_completed", res.joinsCompleted);
    field(out, "stale_placement_retries", res.stalePlacementRetries);
    fieldB(out, "audited", res.audited);
    field(out, "audited_commits", res.auditedCommits);
    field(out, "audited_aborts", res.auditedAborts);
    field(out, "audit_graph_edges", res.auditGraphEdges);
    field(out, "audit_checks", res.auditChecks);
    field(out, "shards_used", res.shardsUsed);
    fieldB(out, "shards_threaded", res.shardsThreaded);
    field(out, "shard_windows", res.shardWindows);
    field(out, "cross_shard_events", res.crossShardEvents);
    fieldB(out, "serial_rerun", res.serialRerun);

    out += ",\"stats\":{";
    field(out, "committed", st.committed, true);
    field(out, "attempts", st.attempts);
    field(out, "lock_mode_fallbacks", st.lockModeFallbacks);
    out += ",\"squashes\":{";
    for (std::size_t i = 0; i < st.squashes.size(); ++i) {
        std::string name =
            txn::squashReasonName(txn::SquashReason(i));
        if (i)
            out += ',';
        appendEscaped(out, name);
        char buf[32];
        std::snprintf(buf, sizeof(buf), ":%" PRIu64, st.squashes[i]);
        out += buf;
    }
    out += '}';
    field(out, "latency_count", st.latency.count());
    fieldD(out, "latency_mean_ps", st.latency.mean());
    field(out, "latency_p50_ps", st.latency.p50());
    field(out, "latency_p95_ps", st.latency.p95());
    field(out, "latency_p99_ps", st.latency.p99());
    fieldI(out, "total_busy_ticks", st.totalBusyTicks);
    field(out, "bf_conflict_checks", st.bfConflictChecks);
    field(out, "bf_false_positives", st.bfFalsePositives);
    field(out, "max_lines_read", st.maxLinesRead);
    field(out, "max_lines_written", st.maxLinesWritten);
    field(out, "net_messages", st.netMessages);
    field(out, "net_bytes", st.netBytes);
    field(out, "timeout_resends", st.timeoutResends);
    field(out, "reliable_resends", st.reliableResends);
    field(out, "retry_budget_deferrals", st.retryBudgetDeferrals);
    out += "}}";
    return out;
}

std::string
sweepReportJson(const std::string &tool, unsigned jobs, bool smoke,
                const std::vector<JsonRun> &runs)
{
    std::string out = "{";
    fieldS(out, "schema", "hades-sweep-v1", true);
    fieldS(out, "tool", tool);
    field(out, "jobs", jobs);
    fieldB(out, "smoke", smoke);
    out += ",\"runs\":[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const JsonRun &r = runs[i];
        if (i)
            out += ',';
        std::string entry = "{";
        field(entry, "index", r.outcome->index, true);
        fieldS(entry, "key", r.key);
        fieldB(entry, "ok", r.outcome->ok);
        if (!r.outcome->ok)
            fieldS(entry, "error", r.outcome->error);
        entry += ",\"spec\":";
        entry += runSpecJson(*r.spec);
        if (r.outcome->ok) {
            entry += ",\"result\":";
            entry += runResultJson(r.outcome->result);
        }
        entry += '}';
        out += entry;
    }
    out += "]}\n";
    return out;
}

void
writeJsonFile(const std::string &path, const std::string &json)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open --json output file for writing");
    const std::size_t n =
        std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = n == json.size() && std::fclose(f) == 0;
    if (!ok)
        fatal("short write to --json output file");
}

} // namespace hades::core
