/**
 * @file
 * Hardware storage cost model of Section VI ("Hardware Modifications
 * and Scalability").
 *
 * For N nodes, C cores per node, m multiplexed transactions per core,
 * and an average of D remote nodes accessed per transaction, each node
 * needs m*C pairs of core Bloom filters, log2(m*C) WrTX ID bits per LLC
 * line, and a NIC with m*C*D filter pairs plus m*C per-transaction
 * entries (Module 4b).
 */

#ifndef HADES_CORE_HW_COST_HH_
#define HADES_CORE_HW_COST_HH_

#include <cstdint>

#include "common/config.hh"

namespace hades::core
{

/** Computed storage requirements for one node. */
struct HwStorage
{
    double coreBfPairBytes = 0;   //!< one (Rd, Wr) core filter pair
    double nicBfPairBytes = 0;    //!< one (Rd, Wr) NIC filter pair
    std::uint32_t corePairs = 0;  //!< m*C
    std::uint32_t nicPairs = 0;   //!< m*C*D
    std::uint32_t wrTxIdBits = 0; //!< per LLC line
    double coreBfTotalBytes = 0;  //!< all core filters on the node
    double nicTotalBytes = 0;     //!< filters + Module 4b entries
};

/**
 * Evaluate the Section VI arithmetic.
 *
 * @param cfg             cluster configuration (BF geometries, C, m)
 * @param avg_remote_nodes D, the average remote nodes per transaction
 * @param tx_entry_bytes  bytes of the Module 4b structures per TX ID
 */
HwStorage computeHwStorage(const ClusterConfig &cfg,
                           std::uint32_t avg_remote_nodes,
                           std::uint32_t tx_entry_bytes = 90);

} // namespace hades::core

#endif // HADES_CORE_HW_COST_HH_
