/**
 * @file
 * Machine-readable sweep results.
 *
 * Serializes sweep outcomes to a stable JSON document so figure
 * pipelines and external tooling can consume bench output without
 * scraping tables. Schema (version "hades-sweep-v1"):
 *
 *   {
 *     "schema": "hades-sweep-v1",
 *     "tool":   "<bench binary / producer name>",
 *     "jobs":   <worker threads used>,
 *     "smoke":  <true if specs were smoke-shrunk>,
 *     "runs": [ {
 *         "index": <spec index>, "key": "<caller's stable key>",
 *         "ok": <bool>, "error": "<why, when !ok>",
 *         "spec": { engine/mix/cluster geometry/seed/faults/audit echo },
 *         "result": { every RunResult field, ticks as integers,
 *                     rates as doubles, "stats": EngineStats counters }
 *     } ]
 *   }
 *
 * Fields are only ever added, never renamed or removed, so consumers
 * can pin the schema string.
 */

#ifndef HADES_CORE_RESULT_JSON_HH_
#define HADES_CORE_RESULT_JSON_HH_

#include <cstdio>
#include <string>
#include <vector>

#include "core/sweep.hh"

namespace hades::core
{

/** One named sweep entry to serialize. */
struct JsonRun
{
    std::string key;       //!< caller-stable identifier of the spec
    const RunSpec *spec;   //!< spec as run (post-smoke-shrink)
    const RunOutcome *outcome;
};

/** Serialize a full sweep report document. */
std::string sweepReportJson(const std::string &tool, unsigned jobs,
                            bool smoke,
                            const std::vector<JsonRun> &runs);

/** Serialize one spec (object, no trailing newline). */
std::string runSpecJson(const RunSpec &spec);

/** Serialize one result (object, no trailing newline). */
std::string runResultJson(const RunResult &res);

/** Write @p json to @p path; fatal() on I/O failure. */
void writeJsonFile(const std::string &path, const std::string &json);

} // namespace hades::core

#endif // HADES_CORE_RESULT_JSON_HH_
