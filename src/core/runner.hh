/**
 * @file
 * Experiment runner: builds a cluster (System), binds workloads,
 * instantiates one of the three protocol engines, drives every
 * hardware context with a stream of transactions, and collects the
 * metrics the paper's figures report.
 *
 * This is the top of the public API: every bench binary and example is
 * a thin wrapper over RunSpec -> runOne()/runMix().
 */

#ifndef HADES_CORE_RUNNER_HH_
#define HADES_CORE_RUNNER_HH_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "audit/auditor.hh"
#include "common/config.hh"
#include "kvs/kvs.hh"
#include "protocol/engine.hh"
#include "replica/replication.hh"
#include "txn/txn_stats.hh"
#include "workload/workloads.hh"

namespace hades::core
{

/** One workload of a (possibly space-shared) run. */
struct MixEntry
{
    workload::AppKind app = workload::AppKind::YcsbA;
    kvs::StoreKind store = kvs::StoreKind::HashTable;
};

/** Everything one simulation needs. */
struct RunSpec
{
    ClusterConfig cluster;
    protocol::EngineKind engine = protocol::EngineKind::Baseline;
    /** Workloads; cores are split into contiguous blocks, one per
     *  entry (Figures 14/15 space sharing). */
    std::vector<MixEntry> mix{MixEntry{}};
    /** Committed transactions each hardware context contributes. */
    std::uint64_t txnsPerContext = 200;
    /** Scaled table size handed to the generators. */
    std::uint64_t scaleKeys = 100'000;
    /** Section V-A fault tolerance (degree 0 = off; HADES engine). */
    replica::ReplicationConfig replication;
    /** Run the correctness auditor (serializability + invariant
     *  checks) over this run; a violation aborts the process. On by
     *  default in debug/audit builds. Purely observational: audited
     *  and unaudited runs produce identical results. */
    bool audit = audit::kDefaultEnabled;
    /**
     * Kernel shard count (1 = the serial oracle). Any value produces
     * bit-identical results: shards > 1 selects the sharded
     * deterministic executor, upgraded to one worker thread per shard
     * when the spec qualifies for threaded execution (all-local OLTP
     * mix, no faults / recovery / replication / audit -- see DESIGN.md
     * section 11). Tuning knobs live in ClusterConfig::sharding.
     */
    std::uint32_t shards = 1;
};

/** Metrics extracted from one simulation. */
struct RunResult
{
    std::string label;
    txn::EngineStats stats;
    Tick simTime = 0;

    double throughputTps = 0;  //!< committed transactions per second
    double meanLatencyUs = 0;  //!< committed txn mean latency
    double p95LatencyUs = 0;   //!< committed txn tail latency
    double p50LatencyUs = 0;

    /** Mean phase latencies (us) of committed transactions. */
    double execUs = 0, validationUs = 0, commitUs = 0;

    /** Table I overhead category share of total transaction time
     *  (Baseline / HADES-H local path; zero for HADES). */
    std::array<double, std::size_t(txn::Overhead::NumCategories)>
        overheadShare{};

    /** Share of total transaction time not attributed to a Table I
     *  category ("Other Time" in Figure 3). */
    double otherShare = 0;

    /** Squash rate: squashes / attempts. */
    double squashRate = 0;
    /** LLC speculative-eviction squashes / committed (Section VIII-C). */
    double evictionSquashRate = 0;
    /** Bloom filter false positives / conflict checks (VIII-C). */
    double bfFalsePositiveRate = 0;

    /** Section V-A replication outcome (when enabled). */
    std::uint64_t replicatedCommits = 0;
    std::uint64_t replicationAborts = 0;
    std::uint64_t lostReplicaMessages = 0;

    /** Fault-injection outcome (all zero when faults are disabled). */
    std::uint64_t faultDrops = 0;      //!< message copies dropped
    std::uint64_t faultDuplicates = 0; //!< message copies duplicated
    std::uint64_t faultDelays = 0;     //!< message copies delayed
    std::uint64_t faultNicStalls = 0;  //!< injected NIC stalls
    std::uint64_t faultCrashDrops = 0; //!< drops due to crash windows
    std::uint64_t partitionDrops = 0;  //!< drops on partitioned links
    std::uint64_t partitionHeals = 0;  //!< partition windows healed in-run
    std::uint64_t corruptDrops = 0;    //!< NIC CRC-rejected deliveries
    std::uint64_t netRetransmits = 0;  //!< NIC-level RC retransmissions
    std::uint64_t timeoutResends = 0;  //!< commit-phase Ack-timeout resends
    std::uint64_t reliableResends = 0; //!< reliable one-way resends
    std::uint64_t timeoutSquashes = 0; //!< CommitTimeout squash-and-retries

    /** Crash-recovery outcome (src/recovery/; all zero unless
     *  ClusterConfig::recovery.enabled and a node permanently died). */
    bool recoveryEnabled = false;       //!< recovery subsystem was on
    std::uint64_t leaseProbes = 0;      //!< lease renewal round trips
    std::uint64_t viewChanges = 0;      //!< view changes executed
    std::uint64_t promotedRecords = 0;  //!< records re-homed to a backup
    std::uint64_t inDoubtCommitted = 0; //!< in-doubt txns committed
    std::uint64_t inDoubtAborted = 0;   //!< in-doubt txns aborted
    std::uint64_t replayedWrites = 0;   //!< journaled writes replayed
    std::uint64_t resyncedImages = 0;   //!< backup images re-replicated
    std::uint64_t fencedStaleMessages = 0; //!< old-epoch copies dropped
    std::uint64_t cmFailovers = 0;      //!< CM primary successions
    std::uint64_t quorumRefusals = 0;   //!< CM epoch advances refused
    std::uint64_t staleLeaseGrants = 0; //!< CM-epoch-fenced lease grants
    /** Live-backup images that disagree with ground truth at end of
     *  run (computed when replication and recovery are both on; the
     *  chaos fuzzer's primary durability predicate). */
    std::uint64_t divergentRecords = 0;

    /** Grey-failure / overload robustness outcome (src/net/slo_tracker,
     *  src/protocol/admission.hh, FaultConfig::greyEvents; all zero
     *  unless the SLO tracker, admission control, or a grey fault
     *  window is configured). */
    std::uint64_t greyDelays = 0;        //!< copies slowed by grey windows
    std::uint64_t stragglerReserves = 0; //!< core duty-cycle slices stolen
    std::uint64_t sloSamples = 0;        //!< RTTs the SLO tracker observed
    std::uint64_t sloSuspectTransitions = 0;  //!< entries into Suspect
    std::uint64_t sloDegradedTransitions = 0; //!< entries into Degraded
    std::uint64_t hedgedSends = 0;       //!< hedge copies actually sent
    std::uint64_t hedgeWins = 0;         //!< round trips the hedge won
    std::uint64_t admittedTxns = 0;      //!< admissions granted
    std::uint64_t shedTxns = 0;          //!< admissions shed (overload)
    std::uint64_t retryBudgetDeferrals = 0; //!< budget-paced squash retries
    std::uint64_t quarantines = 0;       //!< grey nodes drained by the CM

    /** Elastic-membership outcome (src/recovery/membership.hh; all
     *  zero unless ClusterConfig::membership schedules a join or a
     *  planned drain). */
    bool membershipEnabled = false;        //!< membership subsystem was on
    bool membershipComplete = false;       //!< every join/drain finished
    std::uint64_t recordsMigrated = 0;     //!< live ownership handoffs
    std::uint64_t migrationBatches = 0;    //!< throttled handoff batches
    std::uint64_t drainDurationEvents = 0; //!< drain-step events, start..leave
    std::uint64_t joinsCompleted = 0;      //!< joins fully rebalanced
    std::uint64_t stalePlacementRetries = 0; //!< squash-retries vs moved records

    /** Correctness-audit outcome (all zero when auditing is off). */
    bool audited = false;
    std::uint64_t auditedCommits = 0;  //!< committed txns audited
    std::uint64_t auditedAborts = 0;   //!< aborted attempts audited
    std::uint64_t auditGraphEdges = 0; //!< dependency edges checked
    std::uint64_t auditChecks = 0;     //!< structural checks performed

    /** Sharded-execution metadata (purely observational: these
     *  describe *how* the run executed, never *what* it computed, and
     *  are excluded from determinism hashes). */
    std::uint32_t shardsUsed = 1;        //!< kernel lanes of the run
    bool shardsThreaded = false;         //!< worker threads were used
    std::uint64_t shardWindows = 0;      //!< window barriers crossed
    std::uint64_t crossShardEvents = 0;  //!< events that changed lanes
    /** The threaded executor hit the pessimistic lock-mode fallback and
     *  the run was transparently redone on the deterministic sharded
     *  executor (the reported results are from that re-run). */
    bool serialRerun = false;
};

/** Run one configuration to completion. */
RunResult runOne(const RunSpec &spec);

/** Engine factory (exposed for tests and examples). */
std::unique_ptr<protocol::TxnEngine> makeEngine(
    protocol::EngineKind kind, protocol::System &sys,
    std::uint32_t payload_bytes);

/** Record footprint (bytes) for an engine kind at a payload size. */
std::uint32_t engineRecordBytes(protocol::EngineKind kind,
                                std::uint32_t payload_bytes);

} // namespace hades::core

#endif // HADES_CORE_RUNNER_HH_
