/**
 * @file
 * Parallel experiment execution: run a vector of RunSpecs across a
 * thread pool, one fully isolated simulation per run.
 *
 * Determinism contract (DESIGN.md section 8): runOne() builds every piece
 * of mutable state a simulation touches -- Kernel, System, workload
 * generators, RNGs, fault plan, auditor -- from the RunSpec alone, and
 * shares nothing mutable across runs. runMany() therefore produces
 * RunResults that are bit-identical to serial runOne() calls, for any
 * worker count, and returns them ordered by spec index. The golden-run
 * regression suite (tests/test_golden.cc) enforces this.
 */

#ifndef HADES_CORE_SWEEP_HH_
#define HADES_CORE_SWEEP_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "core/runner.hh"

namespace hades::core
{

/** Knobs for one runMany() invocation. */
struct SweepOptions
{
    /** Worker threads; 0 means one per available hardware thread.
     *  Never affects results, only wall-clock time. */
    unsigned jobs = 1;
};

/** Result of one sweep entry: a RunResult or a captured failure. */
struct RunOutcome
{
    std::size_t index = 0; //!< position of the spec in the input vector
    bool ok = false;
    RunResult result;      //!< valid only when ok
    std::string error;     //!< failure description when !ok
};

/** Reject obviously malformed specs before a worker dies on them.
 *  @return empty string if the spec is runnable. */
std::string validateSpec(const RunSpec &spec);

/**
 * Run every spec to completion across @p opts.jobs worker threads.
 *
 * Outcomes are ordered by spec index regardless of completion order.
 * A malformed spec or a run that throws yields a failed outcome (ok ==
 * false, error set) without disturbing the other runs.
 */
std::vector<RunOutcome> runMany(const std::vector<RunSpec> &specs,
                                const SweepOptions &opts = {});

} // namespace hades::core

#endif // HADES_CORE_SWEEP_HH_
