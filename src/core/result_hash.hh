/**
 * @file
 * Determinism-hash helper shared by the differential test suites and
 * the chaos fuzzer's threaded-messaging differential.
 *
 * hashResult() folds every *semantic* RunResult field into one FNV-1a
 * digest: two runs are "the same run" iff their digests match. The
 * sharded-execution metadata block (shardsUsed, shardsThreaded,
 * shardWindows, crossShardEvents, serialRerun) is deliberately
 * excluded -- those fields describe how the run executed, not what it
 * computed, and the whole point of a differential harness is that
 * runs with different shard counts hash equal.
 */

#ifndef HADES_CORE_RESULT_HASH_HH_
#define HADES_CORE_RESULT_HASH_HH_

#include <bit>
#include <cstdint>
#include <string>

#include "core/runner.hh"

namespace hades::core
{

/** FNV-1a over every observable RunResult field. Doubles are hashed by
 *  bit pattern: "close" is not "equal" for a determinism contract. */
class ResultHasher
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ULL;
        }
    }

    void d(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        for (unsigned char c : s) {
            h_ ^= c;
            h_ *= 0x100000001b3ULL;
        }
        u64(s.size());
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

inline std::uint64_t
hashResult(const RunResult &r)
{
    ResultHasher h;
    h.str(r.label);
    h.u64(r.stats.committed);
    h.u64(r.stats.attempts);
    h.u64(r.stats.lockModeFallbacks);
    for (auto s : r.stats.squashes)
        h.u64(s);
    for (auto t : r.stats.overheadTicks)
        h.u64(static_cast<std::uint64_t>(t));
    h.u64(static_cast<std::uint64_t>(r.stats.totalBusyTicks));
    h.u64(r.stats.bfConflictChecks);
    h.u64(r.stats.bfFalsePositives);
    h.u64(r.stats.maxLinesRead);
    h.u64(r.stats.maxLinesWritten);
    h.u64(r.stats.netMessages);
    h.u64(r.stats.netBytes);
    h.u64(r.stats.timeoutResends);
    h.u64(r.stats.reliableResends);
    h.u64(r.stats.retryBudgetDeferrals);
    h.u64(static_cast<std::uint64_t>(r.simTime));
    h.d(r.throughputTps);
    h.d(r.meanLatencyUs);
    h.d(r.p95LatencyUs);
    h.d(r.p50LatencyUs);
    h.d(r.execUs);
    h.d(r.validationUs);
    h.d(r.commitUs);
    for (double s : r.overheadShare)
        h.d(s);
    h.d(r.otherShare);
    h.d(r.squashRate);
    h.d(r.evictionSquashRate);
    h.d(r.bfFalsePositiveRate);
    h.u64(r.replicatedCommits);
    h.u64(r.replicationAborts);
    h.u64(r.lostReplicaMessages);
    h.u64(r.faultDrops);
    h.u64(r.faultDuplicates);
    h.u64(r.faultDelays);
    h.u64(r.faultNicStalls);
    h.u64(r.faultCrashDrops);
    h.u64(r.partitionDrops);
    h.u64(r.partitionHeals);
    h.u64(r.corruptDrops);
    h.u64(r.netRetransmits);
    h.u64(r.timeoutResends);
    h.u64(r.reliableResends);
    h.u64(r.timeoutSquashes);
    h.u64(r.recoveryEnabled ? 1 : 0);
    h.u64(r.leaseProbes);
    h.u64(r.viewChanges);
    h.u64(r.promotedRecords);
    h.u64(r.inDoubtCommitted);
    h.u64(r.inDoubtAborted);
    h.u64(r.replayedWrites);
    h.u64(r.resyncedImages);
    h.u64(r.fencedStaleMessages);
    h.u64(r.cmFailovers);
    h.u64(r.quorumRefusals);
    h.u64(r.staleLeaseGrants);
    h.u64(r.divergentRecords);
    h.u64(r.greyDelays);
    h.u64(r.stragglerReserves);
    h.u64(r.sloSamples);
    h.u64(r.sloSuspectTransitions);
    h.u64(r.sloDegradedTransitions);
    h.u64(r.hedgedSends);
    h.u64(r.hedgeWins);
    h.u64(r.admittedTxns);
    h.u64(r.shedTxns);
    h.u64(r.retryBudgetDeferrals);
    h.u64(r.quarantines);
    h.u64(r.membershipEnabled ? 1 : 0);
    h.u64(r.membershipComplete ? 1 : 0);
    h.u64(r.recordsMigrated);
    h.u64(r.migrationBatches);
    h.u64(r.drainDurationEvents);
    h.u64(r.joinsCompleted);
    h.u64(r.stalePlacementRetries);
    h.u64(r.audited ? 1 : 0);
    h.u64(r.auditedCommits);
    h.u64(r.auditedAborts);
    h.u64(r.auditGraphEdges);
    h.u64(r.auditChecks);
    return h.value();
}

} // namespace hades::core

#endif // HADES_CORE_RESULT_HASH_HH_
