#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace hades::core
{

std::string
validateSpec(const RunSpec &spec)
{
    if (spec.mix.empty())
        return "run needs at least one workload";
    if (spec.cluster.numNodes < 2)
        return "cluster needs at least two nodes";
    if (spec.cluster.coresPerNode < 1 || spec.cluster.slotsPerCore < 1)
        return "cluster needs at least one core and one slot per core";
    if (spec.replication.degree >= spec.cluster.numNodes)
        return "replication degree must be below the node count";
    return {};
}

std::vector<RunOutcome>
runMany(const std::vector<RunSpec> &specs, const SweepOptions &opts)
{
    std::vector<RunOutcome> out(specs.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i].index = i;

    // Each worker claims the next unclaimed spec index and writes its
    // outcome into the slot for that index: result order is a function
    // of the input alone, never of thread scheduling.
    std::atomic<std::size_t> next{0};
    auto work = [&specs, &out, &next] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= specs.size())
                return;
            RunOutcome &o = out[i];
            o.error = validateSpec(specs[i]);
            if (!o.error.empty())
                continue;
            try {
                o.result = runOne(specs[i]);
                o.ok = true;
            } catch (const std::exception &e) {
                o.error = e.what();
            } catch (...) {
                o.error = "unknown exception escaped runOne";
            }
        }
    };

    unsigned jobs = opts.jobs != 0
                        ? opts.jobs
                        : std::max(1u, std::thread::hardware_concurrency());
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, std::max<std::size_t>(specs.size(), 1)));

    if (jobs <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned j = 0; j < jobs; ++j)
            pool.emplace_back(work);
        for (auto &t : pool)
            t.join();
    }
    return out;
}

} // namespace hades::core
