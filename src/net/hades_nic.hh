/**
 * @file
 * HADES SmartNIC state: Modules 4a and 4b of Figure 5.
 *
 * Module 4a lives in the NIC of node y and holds, for every in-progress
 * *remote* transaction i that has accessed data homed in y, a pair of
 * Bloom filters (RemoteReadBF_i, RemoteWriteBF_i) encoding the local
 * addresses read/written by i.
 *
 * Module 4b lives in the NIC of the *local* node x of transaction i and
 * records (upper structure) the remote addresses written by i, tagged by
 * remote node id, with a pointer to a local buffer holding the written
 * values, and (lower structure) the set of remote nodes homing data read
 * or written by i. Both are consumed at commit.
 */

#ifndef HADES_NET_HADES_NIC_HH_
#define HADES_NET_HADES_NIC_HH_

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.hh"
#include "common/config.hh"
#include "common/types.hh"

namespace hades::net
{

/** Module 4a entry: the BF pair of one remote transaction at this
 *  node, plus the exact shadow sets behind the filters. The shadow
 *  sets are the transaction's authoritative remote footprint at this
 *  home: inserts happen in the remote-access handler on the home's own
 *  lane, and every probe (commit L-R scans, Intend-to-commit covers
 *  checks, audit exactness checks) reads them on that same lane, so
 *  the footprint never crosses a lane boundary. */
// hades-analyze: lane-escape-ok (home-NIC state: installed, probed, and cleared only by events delivered to the owning node's lane through the window-barrier mailboxes)
struct RemoteTxFilters
{
    bloom::BloomFilter readBf;
    bloom::BloomFilter writeBf;
    /** Exact lines behind readBf / writeBf (ordered: conflict scans
     *  iterate these and their order reaches squash decisions). */
    std::set<Addr> readLines;
    std::set<Addr> writeLines;

    RemoteTxFilters(const BloomParams &rd, const BloomParams &wr)
        : readBf(rd.bits, rd.numHashes), writeBf(wr.bits, wr.numHashes)
    {}

    void
    insertRead(Addr line)
    {
        readBf.insert(line);
        readLines.insert(line);
    }

    void
    insertWrite(Addr line)
    {
        writeBf.insert(line);
        writeLines.insert(line);
    }

    bool readsContain(Addr line) const
    {
        return readLines.contains(line);
    }

    bool writesContain(Addr line) const
    {
        return writeLines.contains(line);
    }
};

/** Module 4b: per-local-transaction remote-write bookkeeping. */
// hades-analyze: lane-escape-ok (per-local-txn NIC bookkeeping reached via the owning node's nic.localState(id), always on that node's own lane -- remote handlers never touch Module 4b)
struct LocalTxRemoteState
{
    /** Upper structure: remote node -> address ranges written there. */
    std::map<NodeId, std::vector<AddrRange>> writesByNode;
    /** Lower structure: remote nodes homing data this txn read/wrote. */
    std::set<NodeId> nodesInvolved;
    /** Bytes buffered locally for the remote writes (Data Location). */
    std::uint64_t bufferedBytes = 0;

    bool
    empty() const
    {
        return writesByNode.empty() && nodesInvolved.empty();
    }
};

/** The HADES hardware state of one node's NIC. */
// hades-analyze: lane-escape-ok (per-node NIC state confined to the owning lane: local_ is touched by the owning node's own transactions, and remote_ installs/probes/clears run inside message handlers delivered to this node's lane at a window barrier)
class HadesNicState
{
  public:
    explicit HadesNicState(const ClusterConfig &cfg) : cfg_(cfg) {}

    // --- Module 4a: filters for remote transactions ------------------------

    /** Get-or-create the BF pair of remote transaction @p tx. */
    RemoteTxFilters &
    remoteFilters(std::uint64_t tx)
    {
        auto it = remote_.find(tx);
        if (it == remote_.end()) {
            it = remote_
                     .emplace(tx, RemoteTxFilters{cfg_.nicReadBf,
                                                  cfg_.nicWriteBf})
                     .first;
        }
        return it->second;
    }

    /** Does remote transaction @p tx have filters here? */
    bool
    hasRemoteFilters(std::uint64_t tx) const
    {
        return remote_.contains(tx);
    }

    /** Drop @p tx's filters (commit step 5 / squash cleanup). */
    void clearRemoteFilters(std::uint64_t tx) { remote_.erase(tx); }

    /**
     * Check a line against the Remote read/write BFs of every remote
     * transaction other than @p self.
     * @return packed tx ids whose filters (may) contain the line.
     */
    std::vector<std::uint64_t>
    conflictingRemoteTxns(Addr line, std::uint64_t self,
                          bool check_reads) const
    {
        std::vector<std::uint64_t> out;
        for (const auto &[tx, f] : remote_) {
            if (tx == self)
                continue;
            bool hit = f.writeBf.mayContain(line) ||
                       (check_reads && f.readBf.mayContain(line));
            if (hit)
                out.push_back(tx);
        }
        return out;
    }

    /** Number of remote transactions tracked (occupancy stat). */
    std::size_t remoteTxCount() const { return remote_.size(); }

    /** All tracked remote transactions (iteration for conflict scans). */
    const std::map<std::uint64_t, RemoteTxFilters> &
    remote() const
    {
        return remote_;
    }

    // --- Module 4b: local transactions' remote state ------------------------

    LocalTxRemoteState &localState(std::uint64_t tx)
    {
        return local_[tx];
    }

    /** Does @p tx have Module 4b state here? (No default-create.) */
    bool hasLocalState(std::uint64_t tx) const
    {
        return local_.contains(tx);
    }

    /** Number of local transactions tracked (drain checks). */
    std::size_t localTxCount() const { return local_.size(); }

    void clearLocalState(std::uint64_t tx) { local_.erase(tx); }

  private:
    const ClusterConfig &cfg_;
    /** Ordered: conflict scans iterate this and their enumeration
     *  order reaches protocol decisions (squash victim selection). */
    std::map<std::uint64_t, RemoteTxFilters> remote_;
    std::unordered_map<std::uint64_t, LocalTxRemoteState> local_;
};

} // namespace hades::net

#endif // HADES_NET_HADES_NIC_HH_
