/**
 * @file
 * Cluster interconnect model.
 *
 * Timing follows Table III: a 2 us NIC-to-NIC round trip, 200 Gb/s
 * links, and a fixed per-message NIC pipeline cost. Each node's NIC has
 * a transmit port modeled as a serially-reusable resource, so message
 * serialization contends under load while propagation overlaps.
 *
 * The model supports the verbs the protocols need:
 *  - roundTrip(): one-sided RDMA-style request/response. A handler runs
 *    at the destination on arrival (modeling NIC-offloaded work such as
 *    Bloom filter insertion or conflict checks) and returns the extra
 *    processing ticks it consumed.
 *  - post(): one-way message (Validation, Squash) with a handler at the
 *    destination.
 *
 * The 400 queue pairs of Table III are far more than the handful of
 * contexts per node ever have outstanding, so QP exhaustion is not
 * modeled.
 */

#ifndef HADES_NET_NETWORK_HH_
#define HADES_NET_NETWORK_HH_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "sim/kernel.hh"
#include "sim/resource.hh"
#include "sim/task.hh"

namespace hades::net
{

/** Message categories, for statistics (Table I's operation counts). */
enum class MsgType : std::uint8_t
{
    RdmaRead,
    RdmaWrite,
    RdmaCas,
    IntendToCommit,
    Ack,
    Validation,
    Squash,
    Lease,      //!< configuration-manager lease renewal probe
    ViewChange, //!< epoch-numbered reconfiguration broadcast
    Migrate,    //!< membership record-migration / image-stream transfer
    NumTypes,
};

/** Human-readable verb name. */
const char *msgTypeName(MsgType t);

/** What the fault injector decided for one message transmission. */
struct FaultDecision
{
    bool drop = false;        //!< the copy is lost on the wire
    Tick delay = 0;           //!< extra reorder delay before arrival
    bool duplicate = false;   //!< deliver a second copy
    Tick duplicateDelay = 0;  //!< extra delay of the duplicate copy
    Tick stall = 0;           //!< source NIC pipeline stall after send
    /** The primary copy's payload is corrupted in flight: it arrives,
     *  fails the destination NIC's CRC check, and is discarded there
     *  (counted in Network::corruptDrops). A duplicate copy is an
     *  independent transmission and is delivered intact. */
    bool corrupt = false;
};

/**
 * Perturbs message deliveries. Consulted once per transmitted copy
 * (including NIC retransmissions); never consulted when unset, so the
 * fault-free fast path is unchanged.
 */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;
    virtual FaultDecision judge(MsgType t, NodeId src, NodeId dst) = 0;

    /**
     * Partition oracle: is the directed link src->dst inside a blocked
     * partition window at instant @p t? judge() already drops blocked
     * copies; this read-only view exists for control planes (the
     * recovery manager's CM quorum check) that must reason about
     * reachability without sending anything.
     */
    virtual bool
    linkBlocked(NodeId src, NodeId dst, Tick t) const
    {
        (void)src;
        (void)dst;
        (void)t;
        return false;
    }
};

class SloTracker;

/**
 * Hedge plan for one round trip: after @p delay without a response,
 * send one additional request copy to @p backup (a live backup replica
 * of the record), whose NIC serves the same handler and responds.
 * First response wins; the loser is absorbed by the round trip's
 * idempotent-replay guard exactly like a duplicate delivery.
 */
// hades-analyze: lane-escape-ok (stack-local out-parameter filled by the coordinator and consumed immediately by faultyRoundTrip; SLO-enabled specs never certify for threaded execution)
struct HedgeSpec
{
    NodeId backup = 0;
    Tick delay = 0;
};

/** The cluster interconnect. */
class Network
{
  public:
    /** Work executed at the destination NIC; returns processing Ticks. */
    using RemoteWork = std::function<Tick()>;

    Network(sim::Kernel &kernel, const ClusterConfig &cfg);

    /**
     * RDMA-style round trip from @p src to @p dst.
     *
     * @param type       verb, for accounting
     * @param req_bytes  request payload (headers added internally)
     * @param resp_bytes response payload
     * @param at_dst     optional work at the destination on arrival
     *
     * Completes (as a coroutine) when the response arrives back at src.
     */
    sim::Task roundTrip(MsgType type, NodeId src, NodeId dst,
                        std::uint32_t req_bytes, std::uint32_t resp_bytes,
                        RemoteWork at_dst = nullptr);

    /**
     * roundTrip() with a latency hedge (grey-failure mitigation; only
     * meaningful while a fault injector is attached -- hedging rides
     * the RC retransmission machinery). If the home @p dst has not
     * responded @p hedge.delay after the first send, one extra copy
     * goes to @p hedge.backup; whichever response lands first
     * completes the call and the other is suppressed by the active
     * guard. The handler runs for every delivered copy (idempotent by
     * the protocol's own duplicate-delivery contract), so conflict
     * tracking at the home is never bypassed.
     */
    sim::Task hedgedRoundTrip(MsgType type, NodeId src, NodeId dst,
                              const HedgeSpec &hedge,
                              std::uint32_t req_bytes,
                              std::uint32_t resp_bytes,
                              RemoteWork at_dst = nullptr);

    /**
     * One-way message; @p at_dst runs on arrival. Returns immediately
     * (the sender does not wait).
     */
    void post(MsgType type, NodeId src, NodeId dst,
              std::uint32_t bytes, std::function<void()> at_dst);

    /** One-way wire latency for a payload of @p bytes (no port queue). */
    Tick oneWay(std::uint32_t bytes) const;

    // --- fault injection ----------------------------------------------------
    /**
     * Attach (or detach, with nullptr) a fault injector. While attached,
     * roundTrip() runs an RC-style NIC retransmission loop (lost
     * request/response copies are resent after a capped exponential
     * timeout) and post() copies may be dropped, delayed, or duplicated
     * -- one-way verbs carry no NIC-level reliability; recovery is the
     * protocol engines' job.
     */
    void setFaultInjector(FaultInjector *f) { fault_ = f; }
    FaultInjector *faultInjector() const { return fault_; }

    /** Attach the latency-SLO tracker: every completed fault-path
     *  round trip then reports its observed RTT, attributed to the
     *  node that served the winning response. */
    void setSloTracker(SloTracker *t) { slo_ = t; }
    SloTracker *sloTracker() const { return slo_; }

    /** Hedge copies actually sent / round trips the hedge won. */
    std::uint64_t hedgedSends() const { return hedgedSends_; }
    std::uint64_t hedgeWins() const { return hedgeWins_; }
    /** Count a hedge copy issued outside hedgedRoundTrip (protocol
     *  layers that hedge one-way batches charge it here). */
    // hades-analyze: lane-escape-ok (hedging requires the SLO tracker, and SLO-enabled specs never certify for threaded execution -- see Runner::certifiedForThreads)
    void noteHedgedSend() { hedgedSends_ += 1; }

    /** Stall @p node's TX port for @p duration (node pause/crash). */
    void stallNode(NodeId node, Tick duration);

    // --- permanent crashes and epoch fencing --------------------------------
    /**
     * Mark @p node permanently crashed (crash_forever window opened).
     * Its TX port freezes, round trips from it unwind their caller with
     * sim::NodeDead, and round trips *to* it are abandoned -- the NIC
     * gives up retransmitting to a peer that will never respond. The
     * fault injector independently drops every in-flight copy whose
     * window covers the endpoint, so the two mechanisms agree.
     */
    void markNodeDead(NodeId node);
    bool nodeDead(NodeId node) const { return dead_[node] != 0; }
    bool anyNodeDead() const { return anyDead_; }

    /**
     * Current configuration epoch. Every transmitted copy is stamped
     * with the epoch at its send instant while faults are attached;
     * advanceEpoch() (called by the recovery manager at a view change)
     * fences all still-in-flight older-epoch copies: they are dropped
     * at delivery and counted, so delayed pre-crash messages cannot
     * corrupt the new view. Lease/ViewChange/Migrate control traffic
     * is exempt.
     */
    std::uint64_t epoch() const { return epoch_; }
    void advanceEpoch() { epoch_ += 1; }
    std::uint64_t fencedStaleMessages() const { return fencedStale_; }

    /** Copies delivered with a corrupted payload and discarded by the
     *  destination NIC's CRC check (see FaultDecision::corrupt). */
    std::uint64_t corruptDrops() const { return corruptDrops_; }

    // --- statistics ---------------------------------------------------------
    /** Counters are kept per node (each node's lane increments only its
     *  own slot, so threaded messaging runs never share a statistics
     *  cache line); the getters sum over the fixed node order. */
    std::uint64_t messageCount(MsgType t) const;
    std::uint64_t totalMessages() const;
    std::uint64_t totalBytes() const;

    /** One node's share of the transmission statistics (the request
     *  legs it sent plus the response legs it served). Only that
     *  node's lane ever writes the slot, so per-node telemetry is a
     *  lane-isolation witness for the tests. */
    std::uint64_t nodeMessages(NodeId n) const;
    std::uint64_t nodeBytes(NodeId n) const;

    /** NIC-level retransmitted round-trip request copies, per verb. */
    std::uint64_t retransmits(MsgType t) const;
    std::uint64_t totalRetransmits() const;

    const ClusterConfig &config() const { return cfg_; }
    sim::Kernel &kernel() { return kernel_; }

  private:
    Tick serialize(std::uint32_t bytes) const;
    /** Count one transmission against @p node's statistics slot. Must
     *  be called on @p node's lane (the sender counts the request leg,
     *  the responder counts the response leg). */
    void account(NodeId node, MsgType t, std::uint32_t bytes);

    /** True (and counted) if a copy stamped @p sent_epoch must be
     *  fenced at delivery time. */
    bool fenceStale(MsgType t, std::uint64_t sent_epoch);

    /** True (and counted) if a delivered copy fails the destination
     *  NIC's CRC check and must be discarded. */
    bool
    crcReject(bool corrupt)
    {
        if (corrupt)
            corruptDrops_ += 1;
        return corrupt;
    }

    /** roundTrip() body used while a fault injector is attached.
     *  @p hedge, when non-null, arms the one-shot backup copy of
     *  hedgedRoundTrip(). */
    sim::Task faultyRoundTrip(MsgType type, NodeId src, NodeId dst,
                              std::uint32_t req_bytes,
                              std::uint32_t resp_bytes,
                              RemoteWork at_dst,
                              const HedgeSpec *hedge = nullptr);

    /**
     * The hard gate behind the runner's threaded-executor
     * certification. Fault-free messaging is lane-safe (every verb
     * delivers through the kernel's window-barrier mailboxes and runs
     * its handler on the destination's own lane), so plain round trips
     * and posts no longer refuse. The genuinely serial paths still do:
     * fault-injected traffic (the RC retransmission loop shares timer /
     * delivery state across copies racing on both endpoints' lanes) and
     * the recovery control plane (Lease / ViewChange, whose view-change
     * handler walks every node's state). Hitting this aborts the
     * attempt and re-runs the spec on the deterministic sharded
     * executor (which handles every model path bit-identically) --
     * only reachable when the static certification in runner.cc admits
     * a spec that turns out to use a serial path; the run is redone,
     * never silently wrong.
     */
    void
    refuseIfThreaded()
    {
        if (kernel_.threadedActive()) [[unlikely]] {
            kernel_.requestSerialRerun();
            throw sim::SerialRerunNeeded{};
        }
    }

    /** Every send must originate on the sender's own lane (the source
     *  TX port and the source statistics slot are lane-owned state).
     *  Checked only while worker threads are live; the serial modes
     *  are correct for any caller context. */
    void
    assertLaneLocalSend(NodeId src) const
    {
        if (kernel_.threadedActive()) [[unlikely]] {
            always_assert(
                sim::Kernel::laneOf(kernel_.currentNode(),
                                    kernel_.shards()) ==
                    sim::Kernel::laneOf(src, kernel_.shards()),
                "network send from a foreign lane");
        }
    }

    sim::Kernel &kernel_;
    const ClusterConfig &cfg_;
    FaultInjector *fault_ = nullptr;
    SloTracker *slo_ = nullptr;
    std::vector<std::unique_ptr<sim::ComputeResource>> txPort_;
    /** One node's share of the message statistics; see account(). */
    struct NodeStats
    {
        std::array<std::uint64_t,
                   static_cast<std::size_t>(MsgType::NumTypes)>
            msgCount{};
        std::array<std::uint64_t,
                   static_cast<std::size_t>(MsgType::NumTypes)>
            retransmits{};
        std::uint64_t bytes = 0;
    };
    std::vector<NodeStats> statsByNode_;
    std::vector<char> dead_;
    bool anyDead_ = false;
    std::uint64_t epoch_ = 0;
    std::uint64_t fencedStale_ = 0;
    std::uint64_t corruptDrops_ = 0;
    std::uint64_t hedgedSends_ = 0;
    std::uint64_t hedgeWins_ = 0;
};

} // namespace hades::net

#endif // HADES_NET_NETWORK_HH_
