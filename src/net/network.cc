#include "net/network.hh"

#include "common/log.hh"

namespace hades::net
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::RdmaRead:
        return "RdmaRead";
      case MsgType::RdmaWrite:
        return "RdmaWrite";
      case MsgType::RdmaCas:
        return "RdmaCas";
      case MsgType::IntendToCommit:
        return "IntendToCommit";
      case MsgType::Ack:
        return "Ack";
      case MsgType::Validation:
        return "Validation";
      case MsgType::Squash:
        return "Squash";
      default:
        return "?";
    }
}

Network::Network(sim::Kernel &kernel, const ClusterConfig &cfg)
    : kernel_(kernel), cfg_(cfg)
{
    for (std::uint32_t n = 0; n < cfg.numNodes; ++n)
        txPort_.push_back(std::make_unique<sim::ComputeResource>(kernel));
}

Tick
Network::serialize(std::uint32_t bytes) const
{
    // bits / (Gb/s) = ns; keep picosecond precision.
    double ns_exact = double(bytes) * 8.0 / cfg_.netBandwidthGbps;
    return static_cast<Tick>(ns_exact * double(kNanosecond));
}

Tick
Network::oneWay(std::uint32_t bytes) const
{
    std::uint32_t total = bytes + cfg_.messageHeaderBytes;
    return cfg_.netRoundTrip / 2 + serialize(total) + cfg_.nicProcessing;
}

void
Network::account(MsgType t, std::uint32_t bytes)
{
    msgCount_[static_cast<std::size_t>(t)] += 1;
    totalBytes_ += bytes + cfg_.messageHeaderBytes;
}

sim::Task
Network::roundTrip(MsgType type, NodeId src, NodeId dst,
                   std::uint32_t req_bytes, std::uint32_t resp_bytes,
                   RemoteWork at_dst)
{
    always_assert(src != dst, "round trip to self");
    account(type, req_bytes);

    // Outbound serialization occupies the source TX port.
    co_await txPort_[src]->occupy(serialize(req_bytes +
                                            cfg_.messageHeaderBytes));
    // Propagation + destination NIC pipeline.
    co_await sim::Delay{kernel_, cfg_.netRoundTrip / 2 +
                                     cfg_.nicProcessing};
    // NIC-offloaded work at the destination.
    Tick work = at_dst ? at_dst() : 0;
    if (work > 0)
        co_await sim::Delay{kernel_, work};

    // Response path.
    account(type, resp_bytes);
    co_await txPort_[dst]->occupy(serialize(resp_bytes +
                                            cfg_.messageHeaderBytes));
    co_await sim::Delay{kernel_, cfg_.netRoundTrip / 2 +
                                     cfg_.nicProcessing};
}

void
Network::post(MsgType type, NodeId src, NodeId dst, std::uint32_t bytes,
              std::function<void()> at_dst)
{
    always_assert(src != dst, "post to self");
    account(type, bytes);
    Tick depart =
        txPort_[src]->reserve(serialize(bytes + cfg_.messageHeaderBytes));
    Tick arrive = depart + cfg_.netRoundTrip / 2 + cfg_.nicProcessing;
    kernel_.scheduleAt(arrive, std::move(at_dst));
}

std::uint64_t
Network::totalMessages() const
{
    std::uint64_t n = 0;
    for (auto c : msgCount_)
        n += c;
    return n;
}

} // namespace hades::net
