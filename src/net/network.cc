#include "net/network.hh"

#include <algorithm>

#include "common/log.hh"
#include "net/slo_tracker.hh"

namespace hades::net
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::RdmaRead:
        return "RdmaRead";
      case MsgType::RdmaWrite:
        return "RdmaWrite";
      case MsgType::RdmaCas:
        return "RdmaCas";
      case MsgType::IntendToCommit:
        return "IntendToCommit";
      case MsgType::Ack:
        return "Ack";
      case MsgType::Validation:
        return "Validation";
      case MsgType::Squash:
        return "Squash";
      case MsgType::Lease:
        return "Lease";
      case MsgType::ViewChange:
        return "ViewChange";
      case MsgType::Migrate:
        return "Migrate";
      default:
        return "?";
    }
}

Network::Network(sim::Kernel &kernel, const ClusterConfig &cfg)
    : kernel_(kernel), cfg_(cfg), statsByNode_(cfg.numNodes),
      dead_(cfg.numNodes, 0)
{
    for (std::uint32_t n = 0; n < cfg.numNodes; ++n)
        txPort_.push_back(std::make_unique<sim::ComputeResource>(kernel));
}

void
Network::markNodeDead(NodeId node)
{
    dead_[node] = 1;
    anyDead_ = true;
    txPort_[node]->freeze();
}

bool
Network::fenceStale(MsgType t, std::uint64_t sent_epoch)
{
    if (sent_epoch >= epoch_)
        return false;
    if (t == MsgType::Lease || t == MsgType::ViewChange ||
        t == MsgType::Migrate)
        return false;
    fencedStale_ += 1;
    return true;
}

Tick
Network::serialize(std::uint32_t bytes) const
{
    // bits / (Gb/s) = ns; keep picosecond precision.
    double ns_exact = double(bytes) * 8.0 / cfg_.netBandwidthGbps;
    return static_cast<Tick>(ns_exact * double(kNanosecond));
}

Tick
Network::oneWay(std::uint32_t bytes) const
{
    std::uint32_t total = bytes + cfg_.messageHeaderBytes;
    return cfg_.netRoundTrip / 2 + serialize(total) + cfg_.nicProcessing;
}

void
Network::account(NodeId node, MsgType t, std::uint32_t bytes)
{
    NodeStats &st = statsByNode_[node];
    st.msgCount[static_cast<std::size_t>(t)] += 1;
    st.bytes += bytes + cfg_.messageHeaderBytes;
}

sim::Task
Network::roundTrip(MsgType type, NodeId src, NodeId dst,
                   std::uint32_t req_bytes, std::uint32_t resp_bytes,
                   RemoteWork at_dst)
{
    always_assert(src != dst, "round trip to self");
    if (type == MsgType::Lease || type == MsgType::ViewChange ||
        type == MsgType::Migrate)
        refuseIfThreaded(); // recovery/membership control plane stays serial
    assertLaneLocalSend(src);
    if (fault_) {
        co_await faultyRoundTrip(type, src, dst, req_bytes, resp_bytes,
                                 std::move(at_dst));
        co_return;
    }
    account(src, type, req_bytes);

    // Outbound serialization occupies the source TX port.
    co_await txPort_[src]->occupy(serialize(req_bytes +
                                            cfg_.messageHeaderBytes));

    // Propagation + destination NIC pipeline, delivered on the
    // *destination's* lane: the NIC-offloaded handler and the response
    // port occupancy touch dst-owned state, so they must execute in
    // dst's node context. The one-way latency is at least the
    // conservative lookahead, so under worker threads this send always
    // lands at or beyond the next window barrier.
    const Tick half = cfg_.netRoundTrip / 2 + cfg_.nicProcessing;
    sim::Completion done;
    kernel_.scheduleAs(dst, half, [this, &done, &at_dst, type, src, dst,
                                   resp_bytes, half] {
        // NIC-offloaded work at the destination.
        Tick work = at_dst ? at_dst() : 0;
        kernel_.schedule(work, [this, &done, type, src, dst, resp_bytes,
                                half] {
            // Response path (counted and serialized at dst, received
            // back on the requester's lane).
            account(dst, type, resp_bytes);
            Tick depart = txPort_[dst]->reserve(
                serialize(resp_bytes + cfg_.messageHeaderBytes));
            kernel_.scheduleAtAs(depart + half, src,
                                 [this, &done] { done.fire(kernel_); });
        });
    });
    co_await done.wait();
}

sim::Task
Network::hedgedRoundTrip(MsgType type, NodeId src, NodeId dst,
                         const HedgeSpec &hedge, std::uint32_t req_bytes,
                         std::uint32_t resp_bytes, RemoteWork at_dst)
{
    always_assert(src != dst, "round trip to self");
    always_assert(hedge.backup != dst && hedge.backup != src,
                  "hedge backup must be a third node");
    assertLaneLocalSend(src);
    if (!fault_) {
        // Hedging only exists to escape injected grey failures; the
        // pristine fabric needs no second copy.
        co_await roundTrip(type, src, dst, req_bytes, resp_bytes,
                           std::move(at_dst));
        co_return;
    }
    co_await faultyRoundTrip(type, src, dst, req_bytes, resp_bytes,
                             std::move(at_dst), &hedge);
}

sim::Task
Network::faultyRoundTrip(MsgType type, NodeId src, NodeId dst,
                         std::uint32_t req_bytes,
                         std::uint32_t resp_bytes, RemoteWork at_dst,
                         const HedgeSpec *hedge)
{
    // The retransmission machinery below shares one RtState between
    // delivery events racing on both endpoints' lanes, so fault-
    // injected traffic is a genuinely serial path.
    refuseIfThreaded();
    // RDMA RC semantics under loss: the requester NIC retransmits after
    // a capped exponential timeout until the response arrives. Delivered
    // request copies (duplicates included) each run the destination
    // handler, so handlers must be idempotent -- exactly the semantics
    // the protocol relies on.
    struct RtState
    {
        bool active = true;       //!< round trip not yet completed
        bool respArrived = false;
        std::uint32_t gen = 0;    //!< current retransmission attempt
        NodeId servedBy = 0;      //!< node whose response won
        sim::AutoResetEvent wake;
        RemoteWork work;
    };
    auto st = std::make_shared<RtState>();
    st->work = std::move(at_dst);
    st->servedBy = dst;
    const Tick start = kernel_.now();

    // The handler typically holds references into the caller's
    // coroutine frame, so it must never run after this round trip ends
    // -- on *any* exit: completion, the NodeDead throw of a crashed
    // requester (the unwind destroys the caller frame while request
    // copies are still in flight), or destruction of this suspended
    // frame. An RAII guard covers all three; in-flight deliveries then
    // see active == false and do nothing.
    struct Deactivate
    {
        std::shared_ptr<RtState> st;
        ~Deactivate()
        {
            st->active = false;
            st->work = nullptr;
        }
    } guard{st};

    const Tick half = cfg_.netRoundTrip / 2 + cfg_.nicProcessing;

    // Delivery of one request copy (stamped with the epoch of its send
    // instant): CRC-check the payload, run the handler, then send the
    // response (which is itself subject to faults and carries its own
    // epoch stamp). A corrupted copy dies at the destination NIC and
    // the requester's retransmission timer recovers it, exactly like a
    // wire drop. @p server is the node the copy was addressed to --
    // the home for primary/retransmitted copies, the backup for a
    // hedge copy -- and the response leg is judged on its own link, so
    // a hedge genuinely escapes the slow endpoint.
    auto deliver = [this, st, type, src, resp_bytes,
                    half](NodeId server, std::uint64_t sent_epoch,
                          bool corrupt) {
        if (!st->active || fenceStale(type, sent_epoch) ||
            crcReject(corrupt))
            return;
        Tick work = st->work ? st->work() : 0;
        kernel_.schedule(work, [this, st, type, src, server, resp_bytes,
                                half] {
            if (!st->active)
                return;
            account(server, type, resp_bytes);
            Tick depart = txPort_[server]->reserve(
                serialize(resp_bytes + cfg_.messageHeaderBytes));
            FaultDecision fd = fault_->judge(type, server, src);
            if (fd.stall > 0)
                txPort_[server]->reserve(fd.stall);
            const std::uint64_t resp_epoch = epoch_;
            auto arrive = [this, st, type, server,
                           resp_epoch](bool resp_corrupt) {
                if (!st->active || fenceStale(type, resp_epoch) ||
                    crcReject(resp_corrupt))
                    return;
                if (!st->respArrived)
                    st->servedBy = server;
                st->respArrived = true;
                st->wake.notify(kernel_);
            };
            if (!fd.drop)
                kernel_.scheduleAtAs(depart + half + fd.delay, src,
                                     [arrive, corrupt = fd.corrupt] {
                                         arrive(corrupt);
                                     });
            if (fd.duplicate)
                kernel_.scheduleAtAs(depart + half + fd.duplicateDelay,
                                     src, [arrive] { arrive(false); });
        });
    };

    Tick rto = cfg_.tuning.retryTimeoutBase;
    for (std::uint32_t attempt = 0;; ++attempt) {
        // Fail-stop: a crashed requester unwinds its caller (the dead
        // node stops executing); a crashed responder makes the NIC give
        // up -- the protocol layer above owns recovery.
        if (dead_[src])
            throw sim::NodeDead{};
        if (dead_[dst])
            co_return; // the guard deactivates pending deliveries
        if (attempt > 0)
            statsByNode_[src]
                .retransmits[static_cast<std::size_t>(type)] += 1;
        account(src, type, req_bytes);
        co_await txPort_[src]->occupy(serialize(req_bytes +
                                                cfg_.messageHeaderBytes));
        if (st->respArrived)
            break; // a late response of an earlier copy arrived
        FaultDecision fd = fault_->judge(type, src, dst);
        if (fd.stall > 0)
            txPort_[src]->reserve(fd.stall);
        const std::uint64_t sent_epoch = epoch_;
        if (!fd.drop)
            kernel_.scheduleAs(dst, half + fd.delay,
                               [deliver, dst, sent_epoch,
                                corrupt = fd.corrupt] {
                                   deliver(dst, sent_epoch, corrupt);
                               });
        if (fd.duplicate)
            kernel_.scheduleAs(dst, half + fd.duplicateDelay,
                               [deliver, dst, sent_epoch] {
                                   deliver(dst, sent_epoch, false);
                               });

        // Arm the one-shot latency hedge after the first send: if the
        // home stays silent past the hedge delay, one extra copy goes
        // to the backup replica. The copy is judged on its own
        // src->backup link (escaping the home's grey windows), runs
        // the same idempotent handler, and races the home's response
        // through the shared active guard -- first response wins.
        if (hedge && attempt == 0) {
            kernel_.schedule(
                hedge->delay,
                [this, st, deliver, type, src, backup = hedge->backup,
                 req_bytes] {
                    if (!st->active || st->respArrived ||
                        dead_[backup] || dead_[src])
                        return;
                    hedgedSends_ += 1;
                    account(src, type, req_bytes);
                    txPort_[src]->reserve(serialize(
                        req_bytes + cfg_.messageHeaderBytes));
                    FaultDecision hd = fault_->judge(type, src, backup);
                    if (hd.stall > 0)
                        txPort_[src]->reserve(hd.stall);
                    const std::uint64_t hedge_epoch = epoch_;
                    const Tick hhalf =
                        cfg_.netRoundTrip / 2 + cfg_.nicProcessing;
                    if (!hd.drop)
                        kernel_.scheduleAs(
                            backup, hhalf + hd.delay,
                            [deliver, backup, hedge_epoch,
                             corrupt = hd.corrupt] {
                                deliver(backup, hedge_epoch, corrupt);
                            });
                    if (hd.duplicate)
                        kernel_.scheduleAs(
                            backup, hhalf + hd.duplicateDelay,
                            [deliver, backup, hedge_epoch] {
                                deliver(backup, hedge_epoch, false);
                            });
                });
        }

        // Wait for the response or the retransmission timeout,
        // whichever comes first.
        std::uint32_t gen = ++st->gen;
        kernel_.schedule(rto, [this, st, gen] {
            if (st->active && !st->respArrived && st->gen == gen)
                st->wake.notify(kernel_);
        });
        co_await st->wake.wait();
        if (st->respArrived)
            break;
        rto = std::min(rto * 2, cfg_.tuning.retryTimeoutCap);
    }

    if (hedge && st->servedBy == hedge->backup)
        hedgeWins_ += 1;
    // Feed the latency-SLO tracker: the client-observed RTT of the
    // whole exchange (retransmissions included), attributed to the
    // node that served the winning response.
    if (slo_)
        slo_->observe(src, st->servedBy, kernel_.now() - start);
}

void
Network::post(MsgType type, NodeId src, NodeId dst, std::uint32_t bytes,
              std::function<void()> at_dst)
{
    always_assert(src != dst, "post to self");
    if (fault_ || type == MsgType::Lease ||
        type == MsgType::ViewChange || type == MsgType::Migrate)
        refuseIfThreaded(); // see refuseIfThreaded(): serial paths only
    assertLaneLocalSend(src);
    account(src, type, bytes);
    Tick depart =
        txPort_[src]->reserve(serialize(bytes + cfg_.messageHeaderBytes));
    Tick arrive = depart + cfg_.netRoundTrip / 2 + cfg_.nicProcessing;
    if (!fault_) {
        kernel_.scheduleAtAs(arrive, dst, std::move(at_dst));
        return;
    }
    // One-way messages carry no NIC-level reliability: a dropped copy is
    // simply gone (recovery is the protocol's job), a duplicated copy
    // runs the handler twice. Copies are stamped with the send-instant
    // epoch and fenced at delivery if a view change overtook them.
    FaultDecision fd = fault_->judge(type, src, dst);
    if (fd.stall > 0)
        txPort_[src]->reserve(fd.stall);
    if (fd.drop && !fd.duplicate)
        return;
    const std::uint64_t sent_epoch = epoch_;
    if (fd.drop || !fd.duplicate) {
        // The surviving copy is the duplicate when the primary was
        // dropped on the wire; only the primary carries the injected
        // corruption, so a dropped-primary survivor passes CRC.
        const bool corrupt = !fd.drop && fd.corrupt;
        kernel_.scheduleAtAs(arrive + (fd.drop ? fd.duplicateDelay
                                               : fd.delay),
                             dst,
                             [this, type, sent_epoch, corrupt,
                              h = std::move(at_dst)] {
                                 if (!fenceStale(type, sent_epoch) &&
                                     !crcReject(corrupt))
                                     h();
                             });
        return;
    }
    auto handler =
        std::make_shared<std::function<void()>>(std::move(at_dst));
    auto copy = [this, type, sent_epoch, handler](bool corrupt) {
        if (!fenceStale(type, sent_epoch) && !crcReject(corrupt))
            (*handler)();
    };
    kernel_.scheduleAtAs(arrive + fd.delay, dst,
                         [copy, corrupt = fd.corrupt] { copy(corrupt); });
    kernel_.scheduleAtAs(arrive + fd.duplicateDelay, dst,
                         [copy] { copy(false); });
}

void
Network::stallNode(NodeId node, Tick duration)
{
    if (duration > 0)
        txPort_[node]->reserve(duration);
}

std::uint64_t
Network::messageCount(MsgType t) const
{
    std::uint64_t n = 0;
    for (const NodeStats &st : statsByNode_)
        n += st.msgCount[static_cast<std::size_t>(t)];
    return n;
}

std::uint64_t
Network::totalMessages() const
{
    std::uint64_t n = 0;
    for (const NodeStats &st : statsByNode_)
        for (auto c : st.msgCount)
            n += c;
    return n;
}

std::uint64_t
Network::totalBytes() const
{
    std::uint64_t n = 0;
    for (const NodeStats &st : statsByNode_)
        n += st.bytes;
    return n;
}

std::uint64_t
Network::nodeMessages(NodeId n) const
{
    std::uint64_t c = 0;
    for (auto m : statsByNode_[n].msgCount)
        c += m;
    return c;
}

std::uint64_t
Network::nodeBytes(NodeId n) const
{
    return statsByNode_[n].bytes;
}

std::uint64_t
Network::retransmits(MsgType t) const
{
    std::uint64_t n = 0;
    for (const NodeStats &st : statsByNode_)
        n += st.retransmits[static_cast<std::size_t>(t)];
    return n;
}

std::uint64_t
Network::totalRetransmits() const
{
    std::uint64_t n = 0;
    for (const NodeStats &st : statsByNode_)
        for (auto c : st.retransmits)
            n += c;
    return n;
}

} // namespace hades::net
