/**
 * @file
 * Latency-SLO tracker for grey-failure detection (SloConfig).
 *
 * Every completed fault-path round trip reports its observed RTT here,
 * attributed to the node that actually served the response. The
 * tracker keeps a per-(observer, peer) EWMA in fixed-point integer
 * arithmetic -- Q8, alpha = 1 / 2^ewmaShift -- and classifies each
 * peer against integer-percent multiples of the healthy network round
 * trip: Healthy below suspectPct, Suspect at or above it, Degraded at
 * or above degradedPct. A peer whose samples stay Degraded for
 * sustainedSamples consecutive observations counts as *sustained*
 * degraded, the trigger the CM's quarantine loop polls.
 *
 * Everything is simulated-time integers; there is no wall clock and no
 * floating point, so classification is bit-reproducible across
 * platforms and shard counts (the tracker is only fed from the faulty
 * messaging path, which runs on the serial executors).
 */

#ifndef HADES_NET_SLO_TRACKER_HH_
#define HADES_NET_SLO_TRACKER_HH_

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace hades::net
{

/** SLO classification of a peer as seen by one observer. */
enum class PeerHealth : std::uint8_t
{
    Healthy,
    Suspect,  //!< EWMA >= suspectPct% of the healthy RTT
    Degraded, //!< EWMA >= degradedPct% of the healthy RTT
};

/** Aggregate tracker telemetry (RunResult surfaces these). */
// hades-analyze: lane-escape-ok (SLO-only telemetry; SLO-enabled specs never certify for threaded execution -- see Runner::certifiedForThreads)
struct SloStats
{
    std::uint64_t samples = 0;             //!< RTTs observed
    std::uint64_t suspectTransitions = 0;  //!< entries into Suspect
    std::uint64_t degradedTransitions = 0; //!< entries into Degraded
};

class SloTracker
{
  public:
    SloTracker(const SloConfig &cfg, std::uint32_t num_nodes,
               Tick healthy_rtt)
        : cfg_(cfg), numNodes_(num_nodes),
          healthyRtt_(healthy_rtt > 0 ? healthy_rtt : 1),
          peers_(std::size_t(num_nodes) * num_nodes)
    {
    }

    /** One completed round trip: @p observer measured @p rtt against
     *  the node that served the response, @p peer. */
    void
    observe(NodeId observer, NodeId peer, Tick rtt)
    {
        if (observer == peer || observer >= numNodes_ ||
            peer >= numNodes_)
            return;
        auto &p = at(observer, peer);
        stats_.samples += 1;
        p.samples += 1;
        // Fixed-point EWMA (Q8): ewma += (sample - ewma) >> shift.
        const std::int64_t sample_q8 = std::int64_t(rtt) << 8;
        if (p.samples == 1)
            p.ewmaQ8 = sample_q8;
        else
            p.ewmaQ8 += (sample_q8 - p.ewmaQ8) >>
                        std::int64_t(cfg_.ewmaShift);

        PeerHealth next = PeerHealth::Healthy;
        if (p.samples >= cfg_.warmupSamples) {
            const std::int64_t pct =
                p.ewmaQ8 * 100 /
                (std::int64_t(healthyRtt_) << 8);
            if (pct >= std::int64_t(cfg_.degradedPct))
                next = PeerHealth::Degraded;
            else if (pct >= std::int64_t(cfg_.suspectPct))
                next = PeerHealth::Suspect;
        }
        if (next == PeerHealth::Degraded)
            p.consecutiveDegraded += 1;
        else
            p.consecutiveDegraded = 0;
        if (next != p.cls) {
            if (next == PeerHealth::Suspect)
                stats_.suspectTransitions += 1;
            else if (next == PeerHealth::Degraded)
                stats_.degradedTransitions += 1;
            p.cls = next;
        }
    }

    PeerHealth
    classify(NodeId observer, NodeId peer) const
    {
        if (observer == peer || observer >= numNodes_ ||
            peer >= numNodes_)
            return PeerHealth::Healthy;
        return at(observer, peer).cls;
    }

    /** Deadline inflation for @p observer's view of @p peer: the EWMA
     *  RTT as an integer percent of healthy, floored at 100; 100 until
     *  warmup. Engines stretch fixed ack deadlines by this factor so a
     *  known-slow peer is treated as slow rather than dead -- the
     *  false-timeout suppression half of fail-slow mitigation (hedging
     *  being the other half). */
    std::uint32_t
    inflationPct(NodeId observer, NodeId peer) const
    {
        if (observer == peer || observer >= numNodes_ ||
            peer >= numNodes_)
            return 100;
        const auto &p = at(observer, peer);
        if (p.samples < cfg_.warmupSamples)
            return 100;
        const std::int64_t pct =
            p.ewmaQ8 * 100 / (std::int64_t(healthyRtt_) << 8);
        return pct > 100 ? std::uint32_t(pct) : 100;
    }

    /** Smallest peer id currently seen as sustained degraded
     *  (consecutiveDegraded >= sustainedSamples) by at least two
     *  independent observers; false if none. One observer is never
     *  enough: a node whose own NIC is fail-slow observes *everyone*
     *  as degraded, so a single verdict is as likely to incriminate
     *  the observer as the observed -- cross-observer agreement is
     *  what separates "X is slow" from "X thinks the world is slow".
     *  (A two-node cluster has no second witness, so one suffices
     *  there.) Scan order is fixed, so the pick is deterministic. */
    bool
    sustainedDegraded(NodeId &victim) const
    {
        const std::uint32_t needed = numNodes_ > 2 ? 2 : 1;
        for (NodeId peer = 0; peer < numNodes_; ++peer) {
            std::uint32_t votes = 0;
            for (NodeId obs = 0; obs < numNodes_; ++obs) {
                if (obs == peer)
                    continue;
                if (at(obs, peer).consecutiveDegraded >=
                    cfg_.sustainedSamples)
                    votes += 1;
            }
            if (votes >= needed) {
                victim = peer;
                return true;
            }
        }
        return false;
    }

    const SloConfig &config() const { return cfg_; }
    const SloStats &stats() const { return stats_; }

  private:
    // hades-analyze: lane-escape-ok (per-(observer, peer) control state fed only from the serial fault path; SLO-enabled specs never certify for threaded execution -- see Runner::certifiedForThreads)
    struct PeerState
    {
        std::int64_t ewmaQ8 = 0; //!< Q8 fixed-point EWMA of the RTT
        std::uint64_t samples = 0;
        std::uint32_t consecutiveDegraded = 0;
        PeerHealth cls = PeerHealth::Healthy;
    };

    PeerState &
    at(NodeId observer, NodeId peer)
    {
        return peers_[std::size_t(observer) * numNodes_ + peer];
    }
    const PeerState &
    at(NodeId observer, NodeId peer) const
    {
        return peers_[std::size_t(observer) * numNodes_ + peer];
    }

    SloConfig cfg_;
    std::uint32_t numNodes_;
    Tick healthyRtt_;
    SloStats stats_;
    std::vector<PeerState> peers_;
};

} // namespace hades::net

#endif // HADES_NET_SLO_TRACKER_HH_
