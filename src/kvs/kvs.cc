#include "kvs/kvs.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace hades::kvs
{

const char *
storeKindName(StoreKind k)
{
    switch (k) {
      case StoreKind::HashTable:
        return "HT";
      case StoreKind::Map:
        return "Map";
      case StoreKind::BTree:
        return "BTree";
      case StoreKind::BPlusTree:
        return "B+Tree";
      default:
        return "?";
    }
}

std::unique_ptr<KeyValueStore>
makeStore(StoreKind kind, std::uint32_t num_nodes, std::uint32_t salt)
{
    switch (kind) {
      case StoreKind::HashTable:
        return std::make_unique<HashTableKvs>(num_nodes, salt);
      case StoreKind::Map:
        return std::make_unique<SkipListKvs>(num_nodes, salt);
      case StoreKind::BTree:
        return std::make_unique<BTreeKvs>(num_nodes, salt);
      case StoreKind::BPlusTree:
        return std::make_unique<BPlusTreeKvs>(num_nodes, salt);
    }
    panic("unknown store kind");
}

namespace
{

/** Keys of each node's partition, sorted ascending. */
std::vector<std::vector<Key>>
partitionKeys(std::uint64_t num_keys, std::uint64_t record_base,
              std::uint32_t num_nodes)
{
    std::vector<std::vector<Key>> per_node(num_nodes);
    for (Key k = 0; k < num_keys; ++k)
        per_node[mix64(record_base + k) % num_nodes].push_back(k);
    return per_node; // insertion in ascending key order
}

std::uint64_t
pow2Ceil(std::uint64_t v)
{
    std::uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

// --------------------------------------------------------------------------
// HashTableKvs
// --------------------------------------------------------------------------

HashTableKvs::HashTableKvs(std::uint32_t num_nodes, std::uint32_t salt)
{
    numNodes_ = num_nodes;
    salt_ = salt;
    parts_.resize(num_nodes);
}

std::uint64_t
HashTableKvs::bucketOf(const Partition &p, Key k) const
{
    return mix64(k ^ 0x9e3779b97f4a7c15ULL) & (p.numBuckets - 1);
}

void
HashTableKvs::populate(mem::Placement &placement, std::uint64_t num_keys,
                       std::uint64_t record_base)
{
    numKeys_ = num_keys;
    recordBase_ = record_base;
    auto per_node = partitionKeys(num_keys, record_base, numNodes_);
    for (NodeId n = 0; n < numNodes_; ++n) {
        Partition &p = parts_[n];
        std::uint64_t keys_here = per_node[n].size();
        p.numBuckets =
            pow2Ceil(std::max<std::uint64_t>(1, keys_here / 3));
        p.buckets.assign(p.numBuckets, {});
        p.bucketRecord.resize(p.numBuckets);
        p.chainRecords.assign(p.numBuckets, {});
        for (Key k : per_node[n])
            p.buckets[bucketOf(p, k)].push_back(k);
        for (std::uint64_t b = 0; b < p.numBuckets; ++b) {
            p.bucketRecord[b] =
                newIndexRecord(placement, n, kBucketBytes);
            std::size_t len = p.buckets[b].size();
            std::size_t chains =
                len > kEntriesPerBucket ? (len - 1) / kEntriesPerBucket
                                        : 0;
            for (std::size_t c = 0; c < chains; ++c)
                p.chainRecords[b].push_back(
                    newIndexRecord(placement, n, kBucketBytes));
        }
    }
}

void
HashTableKvs::lookup(Key k, std::vector<IndexStep> &out) const
{
    const Partition &p = parts_[homeOfKey(k)];
    std::uint64_t b = bucketOf(p, k);
    out.push_back(IndexStep{p.bucketRecord[b], kBucketBytes});
    const auto &keys = p.buckets[b];
    auto it = std::find(keys.begin(), keys.end(), k);
    always_assert(it != keys.end(), "hash table lookup of absent key");
    auto pos = std::size_t(it - keys.begin());
    if (pos >= kEntriesPerBucket) {
        // The overflow chain is walked up to the node holding the key.
        std::size_t chain = pos / kEntriesPerBucket - 1;
        for (std::size_t c = 0; c <= chain; ++c)
            out.push_back(IndexStep{p.chainRecords[b][c], kBucketBytes});
    }
}

// --------------------------------------------------------------------------
// SkipListKvs
// --------------------------------------------------------------------------

SkipListKvs::SkipListKvs(std::uint32_t num_nodes, std::uint32_t salt)
{
    numNodes_ = num_nodes;
    salt_ = salt;
    parts_.resize(num_nodes);
}

void
SkipListKvs::populate(mem::Placement &placement, std::uint64_t num_keys,
                      std::uint64_t record_base)
{
    numKeys_ = num_keys;
    recordBase_ = record_base;
    auto per_node = partitionKeys(num_keys, record_base, numNodes_);
    Rng rng{0x5eed + salt_};
    for (NodeId n = 0; n < numNodes_; ++n) {
        Partition &p = parts_[n];
        const auto &keys = per_node[n];
        p.nodes.clear();
        p.nodes.reserve(keys.size() + 1);
        SkipNode head{};
        head.record = newIndexRecord(placement, n, kNodeBytes);
        std::fill(std::begin(head.fwd), std::end(head.fwd), -1);
        p.nodes.push_back(head);

        // Geometric levels (p = 1/4), the classic distribution.
        p.level = 1;
        std::vector<std::int32_t> last(kMaxLevel, 0); // head index
        for (Key k : keys) {
            int lvl = 1;
            while (lvl < kMaxLevel && rng.below(4) == 0)
                ++lvl;
            p.level = std::max(p.level, lvl);

            SkipNode node{};
            node.key = k;
            node.record = newIndexRecord(placement, n, kNodeBytes);
            std::fill(std::begin(node.fwd), std::end(node.fwd), -1);
            p.nodes.push_back(node);
            auto idx = std::int32_t(p.nodes.size() - 1);
            // Keys arrive sorted: link at the tail of each level chain.
            for (int l = 0; l < lvl; ++l) {
                p.nodes[std::size_t(last[l])].fwd[l] = idx;
                last[l] = idx;
            }
        }
    }
}

void
SkipListKvs::lookup(Key k, std::vector<IndexStep> &out) const
{
    const Partition &p = parts_[homeOfKey(k)];
    out.push_back(IndexStep{p.nodes[0].record, kNodeBytes});
    std::int32_t cur = 0;
    for (int l = p.level - 1; l >= 0; --l) {
        for (;;) {
            std::int32_t nxt = p.nodes[std::size_t(cur)].fwd[l];
            if (nxt < 0)
                break;
            const SkipNode &cand = p.nodes[std::size_t(nxt)];
            // Examining a candidate reads its node record.
            if (out.back().record != cand.record)
                out.push_back(IndexStep{cand.record, kNodeBytes});
            if (cand.key < k) {
                cur = nxt;
            } else if (cand.key == k) {
                return;
            } else {
                break;
            }
        }
    }
    panic("skip list lookup of absent key");
}

// --------------------------------------------------------------------------
// BTreeKvs
// --------------------------------------------------------------------------

BTreeKvs::BTreeKvs(std::uint32_t num_nodes, std::uint32_t salt)
{
    numNodes_ = num_nodes;
    salt_ = salt;
    parts_.resize(num_nodes);
}

std::int32_t
BTreeKvs::buildSubtree(Partition &p, const std::vector<Key> &keys,
                       std::size_t lo, std::size_t hi)
{
    std::size_t count = hi - lo;
    if (count <= kFanout) {
        Node node;
        node.keys.assign(keys.begin() + std::ptrdiff_t(lo),
                         keys.begin() + std::ptrdiff_t(hi));
        p.nodes.push_back(std::move(node));
        return std::int32_t(p.nodes.size() - 1);
    }
    // Interior node: kFanout separator keys, kFanout+1 children.
    Node node;
    std::size_t children = kFanout + 1;
    std::size_t per_child = (count - kFanout) / children;
    std::size_t extra = (count - kFanout) % children;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    std::size_t cursor = lo;
    for (std::size_t c = 0; c < children; ++c) {
        std::size_t len = per_child + (c < extra ? 1 : 0);
        ranges.emplace_back(cursor, cursor + len);
        cursor += len;
        if (c + 1 < children) {
            node.keys.push_back(keys[cursor]);
            cursor += 1;
        }
    }
    // Reserve our slot before recursing so node order stays stable.
    p.nodes.push_back(Node{});
    auto self = std::int32_t(p.nodes.size() - 1);
    std::vector<std::int32_t> child_idx;
    for (auto [clo, chi] : ranges)
        child_idx.push_back(buildSubtree(p, keys, clo, chi));
    node.children = std::move(child_idx);
    p.nodes[std::size_t(self)] = std::move(node);
    return self;
}

void
BTreeKvs::populate(mem::Placement &placement, std::uint64_t num_keys,
                   std::uint64_t record_base)
{
    numKeys_ = num_keys;
    recordBase_ = record_base;
    auto per_node = partitionKeys(num_keys, record_base, numNodes_);
    for (NodeId n = 0; n < numNodes_; ++n) {
        Partition &p = parts_[n];
        p.nodes.clear();
        if (per_node[n].empty()) {
            p.root = -1;
            continue;
        }
        p.root = buildSubtree(p, per_node[n], 0, per_node[n].size());
        for (auto &node : p.nodes)
            node.record = newIndexRecord(placement, n, kNodeBytes);
    }
}

void
BTreeKvs::lookup(Key k, std::vector<IndexStep> &out) const
{
    const Partition &p = parts_[homeOfKey(k)];
    always_assert(p.root >= 0, "B-tree lookup in empty partition");
    std::int32_t cur = p.root;
    for (;;) {
        const Node &node = p.nodes[std::size_t(cur)];
        out.push_back(IndexStep{node.record, kNodeBytes});
        auto it =
            std::lower_bound(node.keys.begin(), node.keys.end(), k);
        if (it != node.keys.end() && *it == k)
            return;
        always_assert(!node.children.empty(),
                      "B-tree lookup of absent key");
        cur = node.children[std::size_t(it - node.keys.begin())];
    }
}

// --------------------------------------------------------------------------
// BPlusTreeKvs
// --------------------------------------------------------------------------

BPlusTreeKvs::BPlusTreeKvs(std::uint32_t num_nodes, std::uint32_t salt)
{
    numNodes_ = num_nodes;
    salt_ = salt;
    parts_.resize(num_nodes);
}

void
BPlusTreeKvs::populate(mem::Placement &placement, std::uint64_t num_keys,
                       std::uint64_t record_base)
{
    numKeys_ = num_keys;
    recordBase_ = record_base;
    auto per_node = partitionKeys(num_keys, record_base, numNodes_);
    for (NodeId n = 0; n < numNodes_; ++n) {
        Partition &p = parts_[n];
        const auto &keys = per_node[n];
        p.inners.clear();
        p.leaves.clear();

        for (std::size_t i = 0; i < keys.size(); i += kLeafEntries) {
            Leaf leaf;
            std::size_t end = std::min(keys.size(), i + kLeafEntries);
            leaf.keys.assign(keys.begin() + std::ptrdiff_t(i),
                             keys.begin() + std::ptrdiff_t(end));
            leaf.firstKey = leaf.keys.front();
            leaf.record = newIndexRecord(placement, n, kLeafBytes);
            p.leaves.push_back(std::move(leaf));
        }
        if (p.leaves.size() <= 1) {
            p.rootIsLeaf = true;
            p.root = 0;
            continue;
        }

        // Build inner levels bottom-up until a single root remains.
        // Children are encoded as ~leaf_index for leaves.
        std::vector<std::int32_t> level;
        for (std::size_t i = 0; i < p.leaves.size(); ++i)
            level.push_back(~std::int32_t(i));
        auto first_key = [&](std::int32_t child) -> Key {
            if (child < 0)
                return p.leaves[std::size_t(~child)].firstKey;
            return p.inners[std::size_t(child)].splitKeys.front();
        };
        while (level.size() > 1) {
            std::vector<std::int32_t> next;
            for (std::size_t i = 0; i < level.size();
                 i += kInnerFanout) {
                Inner inner;
                std::size_t end =
                    std::min(level.size(), i + kInnerFanout);
                for (std::size_t c = i; c < end; ++c) {
                    inner.children.push_back(level[c]);
                    inner.splitKeys.push_back(first_key(level[c]));
                }
                inner.record =
                    newIndexRecord(placement, n, kInnerBytes);
                p.inners.push_back(std::move(inner));
                next.push_back(std::int32_t(p.inners.size() - 1));
            }
            level = std::move(next);
        }
        p.rootIsLeaf = false;
        p.root = level[0];
    }
}

void
BPlusTreeKvs::lookup(Key k, std::vector<IndexStep> &out) const
{
    const Partition &p = parts_[homeOfKey(k)];
    if (p.rootIsLeaf) {
        always_assert(!p.leaves.empty(),
                      "B+tree lookup in empty partition");
        out.push_back(IndexStep{p.leaves[0].record, kLeafBytes});
        return;
    }
    std::int32_t cur = p.root;
    for (;;) {
        const Inner &inner = p.inners[std::size_t(cur)];
        out.push_back(IndexStep{inner.record, kInnerBytes});
        // Child whose first key is the largest one <= k.
        auto it = std::upper_bound(inner.splitKeys.begin(),
                                   inner.splitKeys.end(), k);
        std::size_t idx =
            it == inner.splitKeys.begin()
                ? 0
                : std::size_t(it - inner.splitKeys.begin()) - 1;
        std::int32_t child = inner.children[idx];
        if (child < 0) {
            const Leaf &leaf = p.leaves[std::size_t(~child)];
            out.push_back(IndexStep{leaf.record, kLeafBytes});
            always_assert(std::binary_search(leaf.keys.begin(),
                                             leaf.keys.end(), k),
                          "B+tree lookup of absent key");
            return;
        }
        cur = child;
    }
}

void
BPlusTreeKvs::scan(Key start, std::uint32_t count,
                   std::vector<IndexStep> &out) const
{
    // Partitioned range scan over [start, end): keys are hash-striped
    // across partitions, so every partition descends once to the leaf
    // holding its first in-range key and then walks consecutive leaves
    // (they were bulk-built in ascending key order, so "next leaf" is
    // the next index).
    const Key end = std::min<Key>(start + count, numKeys_);
    if (start >= end)
        return;
    for (NodeId n = 0; n < numNodes_; ++n) {
        const Partition &p = parts_[n];
        if (p.leaves.empty())
            continue;
        // First leaf whose last key reaches into the range.
        std::size_t leaf = 0;
        while (leaf < p.leaves.size() &&
               p.leaves[leaf].keys.back() < start)
            ++leaf;
        if (leaf >= p.leaves.size() ||
            p.leaves[leaf].firstKey >= end) {
            // The partition's in-range span may still start inside
            // this leaf even if its first key precedes the range.
            if (leaf >= p.leaves.size())
                continue;
            auto it = std::lower_bound(p.leaves[leaf].keys.begin(),
                                       p.leaves[leaf].keys.end(),
                                       start);
            if (it == p.leaves[leaf].keys.end() || *it >= end)
                continue;
        }
        // Descent to the first in-range leaf (charged via lookup of a
        // key that lives there), then the chain.
        auto it = std::lower_bound(p.leaves[leaf].keys.begin(),
                                   p.leaves[leaf].keys.end(), start);
        Key anchor = it != p.leaves[leaf].keys.end()
                         ? *it
                         : p.leaves[leaf].keys.back();
        std::vector<IndexStep> path;
        lookup(anchor, path);
        for (const auto &s : path)
            out.push_back(s);
        for (std::size_t l = leaf + 1; l < p.leaves.size(); ++l) {
            if (p.leaves[l].firstKey >= end)
                break;
            out.push_back(IndexStep{p.leaves[l].record, kLeafBytes});
        }
    }
}

} // namespace hades::kvs
