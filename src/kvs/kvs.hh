/**
 * @file
 * Key-value store substrate: the four stores of Section VII (HashTable,
 * Map, B-Tree, B+Tree).
 *
 * FaRM-style stores build their indexes out of ordinary records, so an
 * index traversal is a sequence of transactional reads that the
 * protocols must track, validate, and (for remote keys) fetch over
 * RDMA. Each store here is a real data structure: its index nodes are
 * registered as records with the cluster placement (homed on the same
 * node as the keys they index), and a lookup returns the exact list of
 * index records a transaction has to read before touching the data
 * record. Different structures therefore produce genuinely different
 * footprints -- a hash table costs one bucket read, a skip list a tower
 * descent, the trees a root-to-leaf path -- which is what differentiates
 * them in Figure 9.
 *
 * Keys are pre-loaded (populate) and the evaluated workloads perform
 * updates in place, so index nodes are read-only after population
 * (YCSB A/B contain no inserts; the OLTP generators model inserts as
 * writes to pre-allocated rows).
 */

#ifndef HADES_KVS_KVS_HH_
#define HADES_KVS_KVS_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "common/hash.hh"
#include "mem/address_space.hh"

namespace hades::kvs
{

/** One index record a lookup must read. */
struct IndexStep
{
    std::uint64_t record;     //!< registered record id of the index node
    std::uint32_t bytes;      //!< payload size of that node
};

/** Store flavours of Section VII. */
enum class StoreKind
{
    HashTable,
    Map,
    BTree,
    BPlusTree,
};

const char *storeKindName(StoreKind k);

/** Abstract distributed key-value index. */
class KeyValueStore
{
  public:
    virtual ~KeyValueStore() = default;

    virtual StoreKind kind() const = 0;
    const char *name() const { return storeKindName(kind()); }

    /**
     * Bulk-load keys 0..n-1, whose data records are
     * record_base..record_base+n-1. Index nodes are registered with
     * @p placement on the home node of the key's data record.
     */
    virtual void populate(mem::Placement &placement,
                          std::uint64_t num_keys,
                          std::uint64_t record_base = 0) = 0;

    /** Data record id of key @p k. */
    std::uint64_t recordOf(Key k) const { return recordBase_ + k; }

    /**
     * Index records a transaction reads to locate key @p k, in
     * traversal order (the data record k itself is not included).
     */
    virtual void lookup(Key k, std::vector<IndexStep> &out) const = 0;

    /**
     * Index records a range scan of @p count keys starting at @p start
     * must read. The default walks one lookup per key and deduplicates
     * consecutive repeats; ordered stores with linked leaves (B+Tree)
     * override this with a single descent plus the leaf chain.
     */
    virtual void
    scan(Key start, std::uint32_t count,
         std::vector<IndexStep> &out) const
    {
        std::vector<IndexStep> steps;
        for (std::uint32_t i = 0; i < count; ++i) {
            Key k = (start + i) % numKeys_;
            steps.clear();
            lookup(k, steps);
            for (const auto &s : steps)
                if (out.empty() || out.back().record != s.record)
                    out.push_back(s);
        }
    }

    /** Average index steps per lookup (for sanity checks). */
    double
    averageDepth(std::uint64_t probes = 1000) const
    {
        std::vector<IndexStep> steps;
        std::uint64_t total = 0;
        std::uint64_t n = numKeys_ < probes ? numKeys_ : probes;
        for (std::uint64_t k = 0; k < n; ++k) {
            steps.clear();
            lookup(k * (numKeys_ / (n ? n : 1) + 1) % numKeys_, steps);
            total += steps.size();
        }
        return n ? double(total) / double(n) : 0.0;
    }

    std::uint64_t numKeys() const { return numKeys_; }

  protected:
    std::uint64_t numKeys_ = 0;
    std::uint64_t recordBase_ = 0;
    std::uint32_t numNodes_ = 1;
    std::uint32_t salt_ = 0;     //!< disambiguates index ids per store
    std::uint64_t nextSeq_ = 0;  //!< index-node allocation counter

    /** Home node of key @p k (same hash the Placement uses). */
    NodeId
    homeOfKey(Key k) const
    {
        return static_cast<NodeId>(mix64(recordBase_ + k) % numNodes_);
    }

    /** Register one index node of @p bytes on @p node. */
    std::uint64_t
    newIndexRecord(mem::Placement &placement, NodeId node,
                   std::uint32_t bytes)
    {
        std::uint64_t rid = mem::Placement::makeRegisteredId(
            node, (std::uint64_t{salt_} << 32) | nextSeq_++);
        placement.registerRecord(rid, node, bytes);
        return rid;
    }
};

/** Factory for the four evaluated stores. */
std::unique_ptr<KeyValueStore> makeStore(StoreKind kind,
                                         std::uint32_t num_nodes,
                                         std::uint32_t salt = 0);

/**
 * Hash table with per-node bucket arrays and overflow chaining. A
 * lookup reads the 64-byte bucket record and, for overflowed buckets,
 * the chain node holding the key.
 */
class HashTableKvs : public KeyValueStore
{
  public:
    explicit HashTableKvs(std::uint32_t num_nodes,
                 std::uint32_t salt = 0);

    StoreKind kind() const override { return StoreKind::HashTable; }
    void populate(mem::Placement &placement, std::uint64_t num_keys,
                  std::uint64_t record_base = 0) override;
    void lookup(Key k, std::vector<IndexStep> &out) const override;

    static constexpr std::uint32_t kBucketBytes = 64;
    static constexpr std::uint32_t kEntriesPerBucket = 4;

  private:
    struct Partition
    {
        std::uint64_t numBuckets = 0;
        /** keys stored per bucket, in insertion order. */
        std::vector<std::vector<Key>> buckets;
        /** record id of each bucket's main node. */
        std::vector<std::uint64_t> bucketRecord;
        /** record ids of each bucket's overflow chain nodes. */
        std::vector<std::vector<std::uint64_t>> chainRecords;
    };

    std::uint64_t bucketOf(const Partition &p, Key k) const;

    std::vector<Partition> parts_;
};

/**
 * "Map": an ordered map implemented as a skip list (one tower per key).
 * A lookup replays the exact descent, so the trace length is the real
 * number of distinct skip nodes visited.
 */
class SkipListKvs : public KeyValueStore
{
  public:
    explicit SkipListKvs(std::uint32_t num_nodes,
                 std::uint32_t salt = 0);

    StoreKind kind() const override { return StoreKind::Map; }
    void populate(mem::Placement &placement, std::uint64_t num_keys,
                  std::uint64_t record_base = 0) override;
    void lookup(Key k, std::vector<IndexStep> &out) const override;

    static constexpr int kMaxLevel = 8;
    static constexpr std::uint32_t kNodeBytes = 64;

  private:
    struct SkipNode
    {
        Key key;
        std::uint64_t record;
        std::int32_t fwd[kMaxLevel];
    };

    struct Partition
    {
        std::vector<SkipNode> nodes; //!< node 0 is the head sentinel
        int level = 1;
    };

    std::vector<Partition> parts_;
};

/**
 * B-Tree (records in every node, cpp-btree-style). Bulk-loaded from the
 * sorted per-node key lists; a lookup reads the node path from root to
 * the node containing the key.
 */
class BTreeKvs : public KeyValueStore
{
  public:
    explicit BTreeKvs(std::uint32_t num_nodes,
                 std::uint32_t salt = 0);

    StoreKind kind() const override { return StoreKind::BTree; }
    void populate(mem::Placement &placement, std::uint64_t num_keys,
                  std::uint64_t record_base = 0) override;
    void lookup(Key k, std::vector<IndexStep> &out) const override;

    static constexpr std::uint32_t kFanout = 16;
    static constexpr std::uint32_t kNodeBytes = 256;

  private:
    struct Node
    {
        std::vector<Key> keys;
        std::vector<std::int32_t> children; //!< empty for leaves
        std::uint64_t record = 0;
    };

    struct Partition
    {
        std::vector<Node> nodes;
        std::int32_t root = -1;
    };

    std::int32_t buildSubtree(Partition &p, const std::vector<Key> &keys,
                              std::size_t lo, std::size_t hi);

    std::vector<Partition> parts_;
};

/**
 * B+Tree (TLX-style): keys only in inner nodes, all data pointers in
 * leaves; higher inner fanout and shallower data paths than the B-Tree.
 */
class BPlusTreeKvs : public KeyValueStore
{
  public:
    explicit BPlusTreeKvs(std::uint32_t num_nodes,
                 std::uint32_t salt = 0);

    StoreKind kind() const override { return StoreKind::BPlusTree; }
    void populate(mem::Placement &placement, std::uint64_t num_keys,
                  std::uint64_t record_base = 0) override;
    void lookup(Key k, std::vector<IndexStep> &out) const override;

    /** Leaf-chained scan: one descent, then consecutive leaves. */
    void scan(Key start, std::uint32_t count,
              std::vector<IndexStep> &out) const override;

    static constexpr std::uint32_t kInnerFanout = 32;
    static constexpr std::uint32_t kLeafEntries = 16;
    static constexpr std::uint32_t kInnerBytes = 256;
    static constexpr std::uint32_t kLeafBytes = 256;

  private:
    struct Inner
    {
        std::vector<Key> splitKeys;
        std::vector<std::int32_t> children; //!< >=0 inner, <0 ~leaf
        std::uint64_t record = 0;
    };

    struct Leaf
    {
        Key firstKey = 0;
        std::vector<Key> keys;
        std::uint64_t record = 0;
    };

    struct Partition
    {
        std::vector<Inner> inners;
        std::vector<Leaf> leaves;
        std::int32_t root = 0;     //!< index into inners, or -1 if
                                   //!< a single leaf holds everything
        bool rootIsLeaf = false;
    };

    std::vector<Partition> parts_;
};

} // namespace hades::kvs

#endif // HADES_KVS_KVS_HH_
