/**
 * @file
 * Admission control and retry budgets (AdmissionConfig): overload
 * protection that keeps a grey failure from amplifying into a
 * metastable retry storm.
 *
 * Per node, three mechanisms compose:
 *  - a token bucket paces *new* transaction admission (tokens refill
 *    lazily from simulated time -- integer arithmetic, no kernel
 *    events of its own);
 *  - a queue-depth bound sheds admissions outright while too many
 *    transactions are already in flight at the node
 *    (txn::SquashReason::Shed; the client re-asks after a bounded
 *    deterministic backoff, so shed work is delayed, never lost);
 *  - a retry *budget*: squash retries are granted against a ratio of
 *    admitted transactions (retryBudgetPct per 100 admits), and an
 *    exhausted budget paces the retry -- the engine waits and re-asks
 *    up to maxRetryDeferrals times, then proceeds regardless, so
 *    forward progress survives pathological schedules.
 *
 * All state is integers updated from the node's own lane; the runner
 * decertifies admission-controlled specs from the worker-threaded
 * executor, so no synchronization is needed (same contract as the
 * fault plan).
 */

#ifndef HADES_PROTOCOL_ADMISSION_HH_
#define HADES_PROTOCOL_ADMISSION_HH_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "sim/kernel.hh"

namespace hades::protocol
{

/** Controller telemetry (RunResult surfaces these). */
// hades-analyze: lane-escape-ok (admission-only telemetry; admission-enabled specs never certify for threaded execution -- see Runner::certifiedForThreads)
struct AdmissionStats
{
    std::uint64_t admittedTxns = 0;   //!< admissions granted
    std::uint64_t shedTxns = 0;       //!< admissions shed (token/depth)
    std::uint64_t retriesGranted = 0; //!< budget-charged retries
};

class AdmissionController
{
  public:
    AdmissionController(const AdmissionConfig &cfg, sim::Kernel &kernel,
                        std::uint32_t num_nodes)
        : cfg_(cfg), kernel_(kernel), nodes_(num_nodes)
    {
        for (auto &n : nodes_)
            n.tokens = cfg_.bucketCap;
    }

    /** Ask to admit one new transaction at @p node. A refusal is a
     *  shed: the caller records SquashReason::Shed, backs off
     *  (shedBackoff) and asks again. */
    bool
    admit(NodeId node)
    {
        auto &s = nodes_[node];
        refill(s);
        if ((cfg_.maxInFlight > 0 && s.inFlight >= cfg_.maxInFlight) ||
            s.tokens == 0) {
            stats_.shedTxns += 1;
            return false;
        }
        s.tokens -= 1;
        s.admitted += 1;
        stats_.admittedTxns += 1;
        return true;
    }

    /** In-flight depth tracking around one admitted transaction. */
    void begin(NodeId node) { nodes_[node].inFlight += 1; }
    void
    end(NodeId node)
    {
        if (nodes_[node].inFlight > 0)
            nodes_[node].inFlight -= 1;
    }

    /** True while @p node's retry budget (retryBudgetPct per 100
     *  admitted txns) still covers another squash retry. */
    bool
    retryAllowed(NodeId node) const
    {
        const auto &s = nodes_[node];
        const std::uint64_t budget =
            s.admitted * cfg_.retryBudgetPct / 100;
        return s.retries < budget;
    }

    /** Charge one retry against @p node's budget. */
    void
    noteRetry(NodeId node)
    {
        nodes_[node].retries += 1;
        stats_.retriesGranted += 1;
    }

    /** Deterministic client re-admission backoff after the @p tries-th
     *  consecutive shed: base doubling, capped. No jitter draw -- the
     *  controller must not perturb any RNG stream. */
    Tick
    shedBackoff(std::uint32_t tries) const
    {
        const std::uint32_t shift =
            std::min(tries, cfg_.shedBackoffCapShift);
        return cfg_.shedBackoffBase << shift;
    }

    /** Pacing delay before re-asking for an exhausted retry budget. */
    Tick
    retryPace(std::uint32_t waits) const
    {
        const std::uint32_t shift = std::min(waits, 3u);
        return cfg_.retryPaceBase << shift;
    }

    const AdmissionConfig &config() const { return cfg_; }
    const AdmissionStats &stats() const { return stats_; }

  private:
    // hades-analyze: lane-escape-ok (per-node integer control state written from the node's own lane; admission-enabled specs never certify for threaded execution -- see Runner::certifiedForThreads)
    struct NodeState
    {
        std::uint64_t tokens = 0;
        Tick lastRefill = 0;
        std::uint32_t inFlight = 0;
        std::uint64_t admitted = 0;
        std::uint64_t retries = 0;
    };

    /** Lazy token refill from simulated time (whole intervals only,
     *  remainder carried by keeping lastRefill on the grid). */
    void
    refill(NodeState &s)
    {
        if (cfg_.refillInterval <= 0) {
            s.tokens = cfg_.bucketCap;
            return;
        }
        const Tick now = kernel_.now();
        const Tick intervals = (now - s.lastRefill) / cfg_.refillInterval;
        if (intervals > 0) {
            s.tokens = std::min<std::uint64_t>(
                cfg_.bucketCap,
                s.tokens + std::uint64_t(intervals) * cfg_.refillTokens);
            s.lastRefill += intervals * cfg_.refillInterval;
        }
    }

    AdmissionConfig cfg_;
    sim::Kernel &kernel_;
    AdmissionStats stats_;
    std::vector<NodeState> nodes_;
};

} // namespace hades::protocol

#endif // HADES_PROTOCOL_ADMISSION_HH_
