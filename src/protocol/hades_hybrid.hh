/**
 * @file
 * HADES-H: the hybrid hardware-software protocol of Section V-D.
 *
 * Remote operations use the HADES NIC hardware (cache-line granularity,
 * Remote read/write BFs in the home node's NIC, Intend-to-commit / Ack /
 * Validation verbs). Local operations run in software exactly like
 * SW-Impl: records are augmented as in Figure 1, local reads/writes are
 * tracked at record granularity in Read and Write sets, and local
 * conflicts are found by a software Local Validation (version re-reads)
 * after all Acks arrive.
 *
 * Of the processor-side hardware only the partial directory-locking
 * primitive survives: at commit the local record addresses are passed
 * to the NIC, which builds the equivalent of LocalRead/WriteBF and
 * installs them in a Locking Buffer.
 */

#ifndef HADES_PROTOCOL_HADES_HYBRID_HH_
#define HADES_PROTOCOL_HADES_HYBRID_HH_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bloom/bloom_filter.hh"
#include "protocol/engine.hh"

namespace hades::protocol
{

/** Hybrid HW/SW engine (HADES-H). */
class HadesHybridEngine : public TxnEngine
{
  public:
    HadesHybridEngine(System &sys, std::uint32_t payload_bytes);

    EngineKind kind() const override { return EngineKind::HadesHybrid; }

    std::uint32_t
    recordBytes(std::uint32_t payload_bytes) const override
    {
        // Local operations are software: records carry Figure 1 metadata.
        return txn::RecordLayout{payload_bytes}.swBytes();
    }

    sim::Task run(ExecCtx ctx, const txn::TxnProgram &prog) override;

    /** Release the pessimistic-fallback token if the dead node held
     *  it, so surviving fallback transactions make progress. */
    void
    onNodeDead(NodeId node) override
    {
        if (tokenBusy_ && tokenOwner_ == node)
            tokenBusy_ = false;
    }

  private:
    struct LocalReadEntry
    {
        std::uint64_t record;
        std::uint64_t version;
    };

    struct LocalWriteEntry
    {
        std::uint64_t record;
        std::uint64_t version;
        std::int64_t value;
    };

    // hades-analyze: lane-escape-ok (coordinator-lane state: every mutable field is written either by the coordinator's own events or by ack/squash deliveries routed to the coordinator's lane through the window-barrier mailboxes; remote handlers read only immutable fields -- id, homeNode -- plus faultsOn()-gated flags that only matter on the serial executors)
    struct Attempt
    {
        explicit Attempt(const ClusterConfig &cfg)
            : nicLocalReadBf(cfg.nicReadBf.bits, cfg.nicReadBf.numHashes),
              nicLocalWriteBf(cfg.nicWriteBf.bits,
                              cfg.nicWriteBf.numHashes)
        {}

        AttemptControl ctrl;
        // Software local path (record granularity).
        std::vector<LocalReadEntry> localReads;
        std::vector<LocalWriteEntry> localWrites;
        // Hardware remote path (line granularity). The write buffer is
        // ordered: commit iterates it into Validation payloads.
        std::unordered_set<Addr> recordedRd, recordedWr;
        std::map<std::uint64_t, std::pair<NodeId, std::int64_t>>
            remoteWriteBuffer;
        std::set<NodeId> nodesInvolved;
        // NIC-built local filters, populated at commit time.
        bloom::BloomFilter nicLocalReadBf;
        bloom::BloomFilter nicLocalWriteBf;
        std::unordered_set<Addr> localReadLinesExact;
        std::unordered_set<Addr> localWriteLinesExact;
        /** Backup nodes holding staged replica updates (Section V-A). */
        std::set<NodeId> replicaNodes;
        std::uint32_t acksPending = 0;
        /** Nodes whose commit Ack arrived (dedupes replayed Acks and
         *  selects the targets of a timeout resend). */
        std::set<NodeId> ackedBy;
        /** Backups whose replica-staging Ack arrived. */
        std::set<NodeId> replicaAckedBy;
        /** Intend-to-commit address list per node, kept for resends. */
        std::map<NodeId, std::vector<Addr>> itcLines;
        /** Remote record values (and ground-truth versions) captured at
         *  the home node when the RDMA fetch returns. Reads are served
         *  from here, so the coordinator never touches another home's
         *  ground-truth bucket (the store is lane-partitioned by home). */
        std::map<std::uint64_t, std::pair<std::int64_t, std::uint64_t>>
            remoteReadCache;
        bool localDirLocked = false;
        bool finished = false;
        std::uint64_t id = 0;
        std::uint64_t auditId = 0; //!< auditor observation (0 = off)
        NodeId homeNode = 0;
    };

    using AttemptPtr = std::shared_ptr<Attempt>;

    sim::Task attempt(ExecCtx ctx, const txn::TxnProgram &prog,
                      std::uint64_t id, bool &committed);
    sim::Task attemptPessimistic(ExecCtx ctx,
                                 const txn::TxnProgram &prog);

    /** Software local read/write at record granularity (SW-Impl path). */
    sim::Task localAccess(ExecCtx ctx, AttemptPtr at,
                          const txn::Request &req,
                          std::vector<std::int64_t> &read_vals);

    /** Hardware remote read/write (same behaviour as HADES).
     *  @p record identifies the fetched record so a read can cache its
     *  value/version for the lane-local read path. */
    sim::Task remoteAccess(ExecCtx ctx, AttemptPtr at, NodeId home,
                           std::uint64_t record, AddrRange range,
                           bool is_write);

    /** Commit: NIC-built local BFs + HADES remote flow + Local
     *  Validation. */
    sim::Task commit(ExecCtx ctx, AttemptPtr at);

    /** Process an Intend-to-commit at remote node @p y (NIC offload).
     *  Runs as a coroutine on y's lane; everything it touches -- y's
     *  Locking Buffer and y's NIC filters with their exact shadow sets
     *  -- is owned by that lane. NoBuffer retries are bounded: a
     *  capped number of rounds breaks distributed waits-for cycles on
     *  exhausted banks. */
    sim::Task handleIntendToCommit(NodeId y, AttemptPtr at,
                                   std::vector<Addr> write_lines);

    /** Fire-and-forget wrapper: runs handleIntendToCommit as a
     *  detached coroutine from the message-delivery event, absorbing
     *  the unwind exceptions (NodeDead, SerialRerunNeeded) that have
     *  no coordinator frame to land in here. */
    sim::DetachedTask spawnIntendToCommit(NodeId y, AttemptPtr at,
                                          std::vector<Addr> write_lines);

    /** Undo all speculative state of a squashed/finished attempt.
     *  Fault-free the remote teardown is awaited (round trips), so the
     *  next attempt epoch starts only after every involved node has
     *  dropped this one's filters and locks. */
    sim::Task cleanupAborted(ExecCtx ctx, AttemptPtr at);

    /** Send one commit Ack from @p y back to the committer (idempotent
     *  at the receiver via Attempt::ackedBy). */
    void postCommitAck(AttemptPtr at, NodeId y);

    /** Faults-on only: Intend-to-commit resend chain (see HADES). */
    void armCommitResend(ExecCtx ctx, AttemptPtr at,
                         std::uint32_t round);

    /** Throw sim::NodeDead if the attempt's node crashed permanently,
     *  else Squashed if a squash request is pending. */
    void
    checkSquash(const AttemptPtr &at) const
    {
        if (sys_.network.nodeDead(at->homeNode))
            throw sim::NodeDead{};
        if (at->ctrl.squashRequested)
            throw Squashed{at->ctrl.reason};
    }

    bool probeFilter(const bloom::AddressFilter &bf, Addr line,
                     bool truth);

    /** All sw-layout cache lines of a record (header + payload). */
    std::vector<Addr> recordLines(std::uint64_t record) const;

    /** All in-flight attempts by id. Keeps the AttemptControl the
     *  SquashRouter points to alive after a NodeDead unwind (which
     *  skips the normal epilogue), so recovery's in-doubt scan reads
     *  valid control blocks. Ordered for deterministic enumeration. */
    // hades-analyze: lane-escape-ok (writes are recoveryOn()-gated; recovery specs never certify for threaded execution)
    std::map<std::uint64_t, AttemptPtr> attempts_;

    bool tokenBusy_ = false;
    NodeId tokenOwner_ = 0;
    txn::RecordLayout layout_;
};

} // namespace hades::protocol

#endif // HADES_PROTOCOL_HADES_HYBRID_HH_
