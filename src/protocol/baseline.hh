/**
 * @file
 * The Baseline engine: an optimized software-only FaRM-style OCC
 * protocol (SW-Impl of Section III).
 *
 * It includes the four published optimizations the paper lists:
 *  (1) batched lock/unlock messages per remote node during validation,
 *  (2) writes and unlock messages sent without serialization,
 *  (3) no stalls waiting for unlock completion,
 *  (4) the read set is never locked during validation.
 *
 * The engine is instrumented to attribute time to the Table I overhead
 * categories so Figure 3 can be regenerated.
 */

#ifndef HADES_PROTOCOL_BASELINE_HH_
#define HADES_PROTOCOL_BASELINE_HH_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "protocol/engine.hh"

namespace hades::protocol
{

/** FaRM-style software OCC engine. */
class BaselineEngine : public TxnEngine
{
  public:
    /**
     * @param sys           the cluster this engine drives
     * @param payload_bytes payload size of the records this run uses
     */
    BaselineEngine(System &sys, std::uint32_t payload_bytes)
        : TxnEngine(sys), layout_(payload_bytes)
    {}

    EngineKind kind() const override { return EngineKind::Baseline; }

    /** Release the pessimistic-fallback token if the dead node held
     *  it, so surviving fallback transactions make progress. */
    void
    onNodeDead(NodeId node) override
    {
        if (tokenBusy_ && tokenOwner_ == node)
            tokenBusy_ = false;
    }

    std::uint32_t
    recordBytes(std::uint32_t payload_bytes) const override
    {
        return txn::RecordLayout{payload_bytes}.swBytes();
    }

    sim::Task run(ExecCtx ctx, const txn::TxnProgram &prog) override;

  private:
    struct ReadEntry
    {
        std::uint64_t record;
        std::uint64_t version;
        NodeId home;
    };

    // hades-analyze: lane-escape-ok (entries live inside the owning attempt's coroutine-local write_set; never shared across lanes)
    struct WriteEntry
    {
        std::uint64_t record;
        NodeId home;
        std::int64_t value;
        std::uint32_t payloadBytes;
        bool locked = false;
    };

    /** One optimistic attempt; sets @p committed on success. */
    sim::Task attempt(ExecCtx ctx, const txn::TxnProgram &prog,
                      bool &committed);

    /**
     * FaRM livelock fallback: lock every record up front (in record-id
     * order, waiting rather than aborting) and then execute. Always
     * commits.
     */
    sim::Task attemptPessimistic(ExecCtx ctx,
                                 const txn::TxnProgram &prog);

    /** Release all locks this attempt still holds (abort path).
     *  @p self is the (possibly epoch-tagged) lock-owner id. */
    void releaseLocks(ExecCtx ctx, std::uint64_t self,
                      std::vector<WriteEntry> &writes);

    /**
     * Await one reply per node of a lock/validation fan-out. Fault-free
     * this reduces to a single wait for the last reply, reproducing the
     * CountdownLatch event sequence exactly. With faults on it re-posts
     * the batch to unresponsive nodes on a capped-exponential timer and
     * fails the batch (Fanout::anyFail) after
     * ClusterConfig::maxCommitResends rounds. Fanout::closed is set on
     * every exit so late deliveries of stale batches are discarded.
     */
    sim::Task awaitFanout(
        std::shared_ptr<Fanout> fo,
        std::map<NodeId, std::vector<std::size_t>> by_node,
        std::function<void(NodeId, const std::vector<std::size_t> &)>
            repost);

    /** Serializes pessimistic fallbacks: running several lock-all
     *  transactions concurrently creates lock convoys on skewed
     *  workloads (each holds hot locks while waiting for the next).
     *  The holder is tracked so recovery can release a dead holder's
     *  token (see onNodeDead). */
    bool tokenBusy_ = false;
    NodeId tokenOwner_ = 0;

    /** Recovery only: control blocks of in-flight attempts, keyed by
     *  the epoch-tagged lock-owner id and registered with the
     *  SquashRouter. Keeps the control block the router points to
     *  alive after a NodeDead unwind destroys the coroutine frame (the
     *  unwind skips the normal retire), so recovery's in-doubt scan
     *  reads valid state. Ordered for deterministic enumeration. */
    // hades-analyze: lane-escape-ok (writes are recoveryOn()-gated; recovery specs never certify for threaded execution)
    std::map<std::uint64_t, std::shared_ptr<AttemptControl>> attempts_;

    /** Next per-context attempt epoch (faults-on or recovery-on):
     *  makes lock owner ids unique across attempts, so a replayed
     *  unlock or commit write from an earlier attempt can never touch
     *  the locks of a later one -- and so recovery's per-transaction
     *  state (staged replica images, pending-apply journal entries)
     *  never aliases across attempts. Fault-free the bare packed
     *  context id is used, as before. */

    txn::RecordLayout layout_;
};

} // namespace hades::protocol

#endif // HADES_PROTOCOL_BASELINE_HH_
