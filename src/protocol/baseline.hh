/**
 * @file
 * The Baseline engine: an optimized software-only FaRM-style OCC
 * protocol (SW-Impl of Section III).
 *
 * It includes the four published optimizations the paper lists:
 *  (1) batched lock/unlock messages per remote node during validation,
 *  (2) writes and unlock messages sent without serialization,
 *  (3) no stalls waiting for unlock completion,
 *  (4) the read set is never locked during validation.
 *
 * The engine is instrumented to attribute time to the Table I overhead
 * categories so Figure 3 can be regenerated.
 */

#ifndef HADES_PROTOCOL_BASELINE_HH_
#define HADES_PROTOCOL_BASELINE_HH_

#include <cstdint>
#include <map>
#include <vector>

#include "protocol/engine.hh"

namespace hades::protocol
{

/** FaRM-style software OCC engine. */
class BaselineEngine : public TxnEngine
{
  public:
    /**
     * @param sys           the cluster this engine drives
     * @param payload_bytes payload size of the records this run uses
     */
    BaselineEngine(System &sys, std::uint32_t payload_bytes)
        : TxnEngine(sys), layout_(payload_bytes)
    {}

    EngineKind kind() const override { return EngineKind::Baseline; }

    std::uint32_t
    recordBytes(std::uint32_t payload_bytes) const override
    {
        return txn::RecordLayout{payload_bytes}.swBytes();
    }

    sim::Task run(ExecCtx ctx, const txn::TxnProgram &prog) override;

  private:
    struct ReadEntry
    {
        std::uint64_t record;
        std::uint64_t version;
        NodeId home;
    };

    struct WriteEntry
    {
        std::uint64_t record;
        NodeId home;
        std::int64_t value;
        std::uint32_t payloadBytes;
        bool locked = false;
    };

    /** One optimistic attempt; sets @p committed on success. */
    sim::Task attempt(ExecCtx ctx, const txn::TxnProgram &prog,
                      bool &committed);

    /**
     * FaRM livelock fallback: lock every record up front (in record-id
     * order, waiting rather than aborting) and then execute. Always
     * commits.
     */
    sim::Task attemptPessimistic(ExecCtx ctx,
                                 const txn::TxnProgram &prog);

    /** Release all locks this attempt still holds (abort path). */
    void releaseLocks(ExecCtx ctx, std::vector<WriteEntry> &writes);

    /** Serializes pessimistic fallbacks: running several lock-all
     *  transactions concurrently creates lock convoys on skewed
     *  workloads (each holds hot locks while waiting for the next). */
    bool tokenBusy_ = false;

    txn::RecordLayout layout_;
};

} // namespace hades::protocol

#endif // HADES_PROTOCOL_BASELINE_HH_
