/**
 * @file
 * Shared simulation state the protocol engines operate on: per-node
 * hardware (memory hierarchy, Locking Buffers, HADES NIC state, record
 * metadata), the interconnect, record placement, the functional ground
 * truth, and the squash router that delivers conflict-induced squashes
 * to running transaction attempts.
 */

#ifndef HADES_PROTOCOL_SYSTEM_HH_
#define HADES_PROTOCOL_SYSTEM_HH_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/auditor.hh"
#include "bloom/locking_buffer.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "mem/address_space.hh"
#include "mem/hierarchy.hh"
#include "net/hades_nic.hh"
#include "net/network.hh"
#include "replica/replication.hh"
#include "sim/kernel.hh"
#include "sim/resource.hh"
#include "sim/task.hh"
#include "sim/trace.hh"
#include "txn/ground_truth.hh"
#include "txn/txn_stats.hh"
#include "txn/version_table.hh"

namespace hades::protocol
{

/** Identity of one hardware transaction context executing a program. */
struct ExecCtx
{
    NodeId node = 0;
    CoreId core = 0;
    SlotId slot = 0;

    GlobalTxId gid() const { return GlobalTxId{node, core, slot}; }
    std::uint64_t packed() const { return gid().pack(); }
};

/**
 * Control block of one in-flight transaction attempt, registered with
 * the SquashRouter so conflicts detected anywhere in the cluster can
 * squash it. Also carries the *exact* access footprint of the attempt,
 * which is the measurement oracle for Bloom-filter false positives
 * (hardware would not have it; Section VIII-C reports the rates).
 */
struct AttemptControl
{
    bool squashRequested = false;
    txn::SquashReason reason = txn::SquashReason::LazyConflict;
    /** Set once all Acks are received: the attempt can no longer be
     *  squashed ("After this, i cannot be squashed anymore"). */
    bool uncommittable = false;
    /** Wakes the attempt's wait loop (ack progress or squash). */
    sim::AutoResetEvent wake;

    // Exact footprints (oracle for false-positive accounting).
    std::unordered_set<Addr> localReadLines;
    std::unordered_set<Addr> localWriteLines;
    std::unordered_map<NodeId, std::unordered_set<Addr>> remoteReadLines;
    std::unordered_map<NodeId, std::unordered_set<Addr>> remoteWriteLines;

    bool
    remoteReadsContain(NodeId n, Addr line) const
    {
        auto it = remoteReadLines.find(n);
        return it != remoteReadLines.end() && it->second.contains(line);
    }

    bool
    remoteWritesContain(NodeId n, Addr line) const
    {
        auto it = remoteWriteLines.find(n);
        return it != remoteWriteLines.end() &&
               it->second.contains(line);
    }
};

/** Result of asking the router to squash a transaction. */
enum class SquashOutcome
{
    Delivered,     //!< the victim will unwind and retry
    Uncommittable, //!< victim already received all Acks; cannot squash
    NotFound,      //!< no such attempt (already finished/squashed)
};

/** Delivers squashes to registered attempts by packed GlobalTxId. */
class SquashRouter
{
  public:
    /** Attach an (optional) tracer; squash deliveries are logged. */
    void setTracer(sim::Tracer *t) { tracer_ = t; }

    void
    add(std::uint64_t tx, AttemptControl *ctrl)
    {
        active_[tx] = ctrl;
    }

    void remove(std::uint64_t tx) { active_.erase(tx); }

    AttemptControl *
    find(std::uint64_t tx)
    {
        auto it = active_.find(tx);
        return it == active_.end() ? nullptr : it->second;
    }

    /** Request the squash of @p tx. */
    SquashOutcome
    squash(sim::Kernel &kernel, std::uint64_t tx, txn::SquashReason why)
    {
        AttemptControl *c = find(tx);
        if (!c)
            return SquashOutcome::NotFound;
        if (c->uncommittable)
            return SquashOutcome::Uncommittable;
        if (!c->squashRequested) {
            c->squashRequested = true;
            c->reason = why;
            if (tracer_) {
                tracer_->log(kernel.now(), sim::TraceEvent::TxnSquash,
                             tx, NodeId((tx >> 32) & 0xfff),
                             std::uint64_t(why));
            }
        }
        c->wake.notify(kernel);
        return SquashOutcome::Delivered;
    }

  private:
    std::unordered_map<std::uint64_t, AttemptControl *> active_;
    sim::Tracer *tracer_ = nullptr;
};

/** All per-node state. */
struct NodeCtx
{
    NodeCtx(NodeId id_, const ClusterConfig &cfg, sim::Kernel &kernel)
        : id(id_),
          memory(cfg, &kernel),
          lockBank(cfg.lockingBuffersPerNode
                       ? cfg.lockingBuffersPerNode
                       : 2 * cfg.contextsPerNode()),
          nic(cfg)
    {
        for (std::uint32_t c = 0; c < cfg.coresPerNode; ++c)
            cores.push_back(std::make_unique<sim::ComputeResource>(kernel));
    }

    NodeId id;
    mem::NodeMemory memory;
    bloom::LockingBufferBank lockBank;
    net::HadesNicState nic;
    txn::VersionTable versions;
    std::vector<std::unique_ptr<sim::ComputeResource>> cores;
};

/** The complete simulated cluster an engine runs against. */
class System
{
  public:
    /**
     * @param cfg          cluster configuration
     * @param num_records  records pre-placed across the nodes
     * @param record_bytes in-memory footprint of one record (depends on
     *                     the engine's layout: swBytes or hwBytes)
     */
    System(const ClusterConfig &cfg, std::uint64_t num_records,
           std::uint32_t record_bytes,
           const replica::ReplicationConfig &repl = {})
        : config(cfg),
          clock(cfg.clock()),
          network(kernel, config),
          placement(cfg.numNodes, num_records, record_bytes),
          rng(cfg.seed ^ 0x5ca1ab1e)
    {
        for (NodeId n = 0; n < cfg.numNodes; ++n)
            nodes.push_back(
                std::make_unique<NodeCtx>(n, config, kernel));
        if (repl.enabled())
            replicas = std::make_unique<replica::ReplicaManager>(
                repl, cfg.numNodes, cfg.seed ^ 0xface);
        router.setTracer(&tracer);
    }

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    NodeCtx &node(NodeId n) { return *nodes[n]; }
    Tick cycles(std::int64_t n) const { return clock.cycles(n); }

    sim::Kernel kernel;
    ClusterConfig config;
    Clock clock;
    net::Network network;
    mem::Placement placement;
    txn::GroundTruth data;
    SquashRouter router;
    Rng rng;
    std::vector<std::unique_ptr<NodeCtx>> nodes;
    /** Optional Section V-A fault-tolerance substrate. */
    std::unique_ptr<replica::ReplicaManager> replicas;
    /** Protocol event trace (off by default; tracer.enable()). */
    sim::Tracer tracer;
    /** Correctness auditor; null when auditing is off. Engines report
     *  reads/writes/commits and hardware invariant checks into it;
     *  purely observational, so it cannot perturb the simulation. */
    audit::Auditor *audit = nullptr;
};

} // namespace hades::protocol

#endif // HADES_PROTOCOL_SYSTEM_HH_
