/**
 * @file
 * Shared simulation state the protocol engines operate on: per-node
 * hardware (memory hierarchy, Locking Buffers, HADES NIC state, record
 * metadata), the interconnect, record placement, the functional ground
 * truth, and the squash router that delivers conflict-induced squashes
 * to running transaction attempts.
 */

#ifndef HADES_PROTOCOL_SYSTEM_HH_
#define HADES_PROTOCOL_SYSTEM_HH_

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/auditor.hh"
#include "bloom/locking_buffer.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "mem/address_space.hh"
#include "mem/hierarchy.hh"
#include "net/hades_nic.hh"
#include "net/network.hh"
#include "net/slo_tracker.hh"
#include "protocol/admission.hh"
#include "replica/replication.hh"
#include "sim/kernel.hh"
#include "sim/resource.hh"
#include "sim/task.hh"
#include "sim/trace.hh"
#include "txn/ground_truth.hh"
#include "txn/txn_stats.hh"
#include "txn/version_table.hh"

namespace hades::protocol
{

/** Identity of one hardware transaction context executing a program. */
struct ExecCtx
{
    NodeId node = 0;
    CoreId core = 0;
    SlotId slot = 0;

    GlobalTxId gid() const { return GlobalTxId{node, core, slot}; }
    std::uint64_t packed() const { return gid().pack(); }
};

/**
 * Control block of one in-flight transaction attempt, registered with
 * the SquashRouter so conflicts detected anywhere in the cluster can
 * squash it. Also carries the *exact* local-access footprint of the
 * attempt, the measurement oracle for Bloom-filter false positives
 * (hardware would not have it; Section VIII-C reports the rates). The
 * remote footprint lives with the Bloom filters it shadows, in the
 * home node's NIC (net::RemoteTxFilters), so footprint probes are
 * always lane-local.
 */
// hades-analyze: lane-escape-ok (owned by the coordinator's lane: all fields are written either by the coordinator's own events or by squash/ack deliveries routed to the coordinator's lane through the window-barrier mailboxes)
struct AttemptControl
{
    bool squashRequested = false;
    txn::SquashReason reason = txn::SquashReason::LazyConflict;
    /** Set once all Acks are received: the attempt can no longer be
     *  squashed ("After this, i cannot be squashed anymore"). */
    bool uncommittable = false;
    /** Wakes the attempt's wait loop (ack progress or squash). */
    sim::AutoResetEvent wake;

    // ---- Crash-recovery bookkeeping (see src/recovery/). ----
    /** Correctness-audit id of this attempt (0 when auditing is off). */
    std::uint64_t auditId = 0;
    /** Commit/abort fully processed; recovery leaves it alone. */
    bool finished = false;
    /** The coordinator reached its serialization point: the commit
     *  sequence was drawn and the writes applied to ground truth,
     *  atomically in one kernel event (models a durable commit record).
     *  An in-doubt transaction whose coordinator died permanently is
     *  committed by recovery iff this is set, else aborted -- the
     *  paper's all-Acks rule made checkable at a single instant. */
    bool decisionRecorded = false;
    /** Commit sequence drawn at the serialization point (see
     *  replica::ReplicaManager::nextCommitSeq). */
    std::uint64_t commitSeq = 0;
    /** Recovery committed/aborted this attempt on the (dead)
     *  coordinator's behalf; the attempt's NodeDead unwind must not
     *  double-count stats or re-touch protocol state. */
    bool resolvedByRecovery = false;

    // ---- Elastic-membership bookkeeping (see src/recovery/). ----
    /** Data records this attempt has accessed so far (filled only when
     *  membership is enabled). The MembershipManager's batch handoff
     *  consults it: a record with an in-flight attempt against it is
     *  deferred (and the attempt squash-retried with StalePlacement)
     *  rather than moved under the attempt's feet. Point queries only;
     *  never iterated. */
    std::unordered_set<std::uint64_t> recordsTouched;
    /** Attempt cannot honor a squash request (the lock-all pessimistic
     *  fallback's acquisition loop ignores squashes by design), so
     *  migration must defer every record it pins until it finishes. */
    bool pinned = false;

    // Exact local footprint (oracle for false-positive accounting).
    std::unordered_set<Addr> localReadLines;
    std::unordered_set<Addr> localWriteLines;
};

/** Result of asking the router to squash a transaction. */
enum class SquashOutcome
{
    Delivered,     //!< the victim will unwind and retry
    Uncommittable, //!< victim already received all Acks; cannot squash
    NotFound,      //!< no such attempt (already finished/squashed)
};

/** Delivers squashes to registered attempts by packed GlobalTxId. */
// hades-analyze: lane-escape-ok (per-node shard indexed by coordinator; engines reach a foreign coordinator's shard only from message handlers already executing on that coordinator's lane -- see TxnEngine::squashVictim)
class SquashRouter
{
  public:
    /** Attach an (optional) tracer; squash deliveries are logged. */
    void setTracer(sim::Tracer *t) { tracer_ = t; }

    void
    add(std::uint64_t tx, AttemptControl *ctrl)
    {
        active_[tx] = ctrl;
    }

    void remove(std::uint64_t tx) { active_.erase(tx); }

    AttemptControl *
    find(std::uint64_t tx)
    {
        auto it = active_.find(tx);
        return it == active_.end() ? nullptr : it->second;
    }

    /** Request the squash of @p tx. */
    SquashOutcome
    squash(sim::Kernel &kernel, std::uint64_t tx, txn::SquashReason why)
    {
        AttemptControl *c = find(tx);
        if (!c)
            return SquashOutcome::NotFound;
        if (c->uncommittable)
            return SquashOutcome::Uncommittable;
        if (!c->squashRequested) {
            c->squashRequested = true;
            c->reason = why;
            if (tracer_) {
                tracer_->log(kernel.now(), sim::TraceEvent::TxnSquash,
                             tx, NodeId((tx >> 32) & 0xfff),
                             std::uint64_t(why));
            }
        }
        c->wake.notify(kernel);
        return SquashOutcome::Delivered;
    }

    /** All registered attempts, keyed by packed GlobalTxId. Recovery's
     *  in-doubt scan iterates this; std::map (point-ops only, so the
     *  container swap is behavior-neutral) keeps the iteration -- and
     *  with it every recovery action -- deterministic. */
    const std::map<std::uint64_t, AttemptControl *> &
    active() const
    {
        return active_;
    }

  private:
    std::map<std::uint64_t, AttemptControl *> active_;
    sim::Tracer *tracer_ = nullptr;
};

/** All per-node state. */
struct NodeCtx
{
    NodeCtx(NodeId id_, const ClusterConfig &cfg, sim::Kernel &kernel)
        : id(id_),
          memory(cfg, &kernel),
          lockBank(cfg.lockingBuffersPerNode
                       ? cfg.lockingBuffersPerNode
                       : 2 * cfg.contextsPerNode()),
          nic(cfg)
    {
        for (std::uint32_t c = 0; c < cfg.coresPerNode; ++c)
            cores.push_back(std::make_unique<sim::ComputeResource>(kernel));
    }

    NodeId id;
    mem::NodeMemory memory;
    bloom::LockingBufferBank lockBank;
    net::HadesNicState nic;
    txn::VersionTable versions;
    std::vector<std::unique_ptr<sim::ComputeResource>> cores;
};

/**
 * One decided-but-not-yet-applied remote write (crash recovery only).
 *
 * A coordinator applies *local* writes to ground truth atomically at
 * its serialization point, but each *remote* write only lands when the
 * Validation / commit-write message reaches the record's home node. If
 * either endpoint dies permanently in that window the message never
 * arrives, yet the transaction is committed (the client was acked) --
 * the write must not be lost. With recovery enabled, coordinators
 * journal every remote write here in the same kernel event that records
 * the commit decision, and the home node's apply handler retires the
 * entry when (and only when) it actually installs the write. A view
 * change replays whatever is left for dead endpoints.
 */
struct PendingApply
{
    NodeId home = 0;          //!< record's home at decision time
    std::int64_t value = 0;   //!< committed value to install
    std::uint64_t auditId = 0; //!< observation to note the write under
};

/** The complete simulated cluster an engine runs against. */
class System
{
  public:
    /**
     * @param cfg          cluster configuration
     * @param num_records  records pre-placed across the nodes
     * @param record_bytes in-memory footprint of one record (depends on
     *                     the engine's layout: swBytes or hwBytes)
     */
    System(const ClusterConfig &cfg, std::uint64_t num_records,
           std::uint32_t record_bytes,
           const replica::ReplicationConfig &repl = {})
        : config(cfg),
          clock(cfg.clock()),
          network(kernel, config),
          placement(cfg.numNodes, num_records, record_bytes,
                    cfg.membership.initialOwners(cfg.numNodes))
    {
        for (NodeId n = 0; n < cfg.numNodes; ++n)
            nodes.push_back(
                std::make_unique<NodeCtx>(n, config, kernel));
        if (repl.enabled()) {
            replicas = std::make_unique<replica::ReplicaManager>(
                repl, cfg.numNodes, cfg.seed ^ 0xface);
            // Elastic membership: nodes beyond the initial member count
            // start as spares -- outside the backup rings until their
            // scheduled join admits them.
            for (NodeId n = cfg.membership.initialOwners(cfg.numNodes);
                 n < cfg.numNodes; ++n)
                replicas->markAbsent(n);
        }
        // One router and one RNG stream per node (plus a control
        // bucket): protocol state touched on a transaction's
        // coordinator node stays on that node's shard lane, and each
        // node draws from its own deterministic stream regardless of
        // how other nodes' draws interleave.
        routers_.resize(cfg.numNodes + 1);
        for (auto &r : routers_)
            r.setTracer(&tracer);
        rngs_.reserve(cfg.numNodes + 1);
        for (NodeId n = 0; n <= cfg.numNodes; ++n)
            rngs_.emplace_back(cfg.seed ^ 0x5ca1ab1e ^
                               (std::uint64_t{n} + 1) * 0x9e3779b97f4a7c15ULL);
        data.shard(cfg.numNodes, [this](std::uint64_t record) {
            return placement.staticHomeOf(record);
        });
        if (cfg.slo.enabled) {
            // Healthy reference RTT: one wire round trip plus the NIC
            // processing at both endpoints (serialization and remote
            // work push observed samples above it, which the percent
            // thresholds absorb).
            slo = std::make_unique<net::SloTracker>(
                cfg.slo, cfg.numNodes,
                cfg.netRoundTrip + 2 * cfg.nicProcessing);
            network.setSloTracker(slo.get());
        }
        if (cfg.admission.enabled)
            admission = std::make_unique<AdmissionController>(
                cfg.admission, kernel, cfg.numNodes);
    }

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    NodeCtx &node(NodeId n) { return *nodes[n]; }
    Tick cycles(std::int64_t n) const { return clock.cycles(n); }

    /** Coordinator node encoded in a packed GlobalTxId (bits 32..47;
     *  epoch restamping touches bits 48+ only, so this survives
     *  recovery's epoch-stamped ids). */
    static NodeId
    txnNode(std::uint64_t tx)
    {
        return NodeId((tx >> 32) & 0xffff);
    }

    /** Squash router shard of @p tx's coordinator node. All register /
     *  squash / find traffic for a transaction goes through its
     *  coordinator's shard, which keeps the state lane-local under
     *  sharded execution. */
    SquashRouter &
    routerFor(std::uint64_t tx)
    {
        NodeId n = txnNode(tx);
        return routers_[n < config.numNodes ? n : config.numNodes];
    }

    /** Router shard of node @p n (recovery iterates per node). */
    SquashRouter &routerForNode(NodeId n) { return routers_[n]; }
    const SquashRouter &routerForNode(NodeId n) const { return routers_[n]; }

    /**
     * Deterministic RNG stream of the node whose context is currently
     * executing (the control stream outside any node context). Keyed on
     * the kernel's execution context so each node's draw sequence is
     * independent of how other nodes' events interleave -- the property
     * that makes results shard-count invariant.
     */
    Rng &
    rng()
    {
        NodeId n = kernel.currentNode();
        return rngs_[n < config.numNodes ? n : config.numNodes];
    }

    sim::Kernel kernel;
    ClusterConfig config;
    Clock clock;
    net::Network network;
    mem::Placement placement;
    txn::GroundTruth data;
    std::vector<std::unique_ptr<NodeCtx>> nodes;
    /** Optional Section V-A fault-tolerance substrate. */
    std::unique_ptr<replica::ReplicaManager> replicas;
    /** Latency-SLO grey-failure detector; null unless config.slo is
     *  enabled. Fed by the faulty messaging path, read by engines
     *  (hedging decisions) and the CM (quarantine trigger). */
    std::unique_ptr<net::SloTracker> slo;
    /** Admission control + retry budgets; null unless enabled. */
    std::unique_ptr<AdmissionController> admission;
    /** Protocol event trace (off by default; tracer.enable()). */
    sim::Tracer tracer;
    /** Correctness auditor; null when auditing is off. Engines report
     *  reads/writes/commits and hardware invariant checks into it;
     *  purely observational, so it cannot perturb the simulation. */
    audit::Auditor *audit = nullptr;
    /** Decided remote writes still in flight, keyed (txn id, record);
     *  only populated when config.recovery.enabled (see PendingApply).
     *  Ordered so recovery's replay pass is deterministic. */
    std::map<std::pair<std::uint64_t, std::uint64_t>, PendingApply>
        pendingApplies; // hades-analyze: lane-escape-ok (recovery-only journal; recovery-enabled specs never certify for threaded execution)
    /** Durable commit-decision log: txn id -> commit sequence, written
     *  at each coordinator's serialization point (recovery only). A
     *  view change uses it to finish the promotion of staged replica
     *  images whose coordinator died after deciding but whose promote
     *  message was lost -- and, conversely, to discard staged images
     *  of transactions that never decided. */
    // hades-analyze: lane-escape-ok (recovery-only journal; recovery-enabled specs never certify for threaded execution)
    std::map<std::uint64_t, std::uint64_t> decisionLog;

  private:
    /** Per-node squash-router shards, indexed by coordinator node;
     *  slot numNodes is the control bucket (never used by engines, it
     *  exists so routerFor is total). */
    std::vector<SquashRouter> routers_;
    /** Per-node RNG streams + one control stream (see rng()). */
    std::vector<Rng> rngs_;
};

} // namespace hades::protocol

#endif // HADES_PROTOCOL_SYSTEM_HH_
