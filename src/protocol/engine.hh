/**
 * @file
 * Abstract transaction engine interface plus the timing helpers shared
 * by the three protocol implementations (Baseline / HADES / HADES-H).
 */

#ifndef HADES_PROTOCOL_ENGINE_HH_
#define HADES_PROTOCOL_ENGINE_HH_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>

#include "protocol/system.hh"
#include "sim/task.hh"
#include "txn/program.hh"
#include "txn/record.hh"
#include "txn/txn_stats.hh"

namespace hades::protocol
{

/** Thrown inside an attempt coroutine when the attempt is squashed. */
struct Squashed
{
    txn::SquashReason reason;
};

/** Which of the three evaluated configurations an engine implements. */
enum class EngineKind
{
    Baseline,
    Hades,
    HadesHybrid,
};

inline const char *
engineKindName(EngineKind k)
{
    switch (k) {
      case EngineKind::Baseline:
        return "Baseline";
      case EngineKind::Hades:
        return "HADES";
      case EngineKind::HadesHybrid:
        return "HADES-H";
      default:
        return "?";
    }
}

/**
 * Shared state of one batched fan-out awaiting one reply per node
 * (Baseline lock / validation batches). Replies are idempotent per
 * node, so duplicated or retransmitted response deliveries cannot
 * over-release the waiter; `closed` discards replies that arrive after
 * the coordinator abandoned the batch. The waiter is notified exactly
 * when the pending set empties, mirroring CountdownLatch's fault-free
 * event sequence.
 */
// hades-analyze: lane-escape-ok (coordinator-lane state: remote handlers never touch the tracker directly, they post the reply back to the coordinator, whose delivery handler calls reply() on the coordinator's own lane)
struct Fanout
{
    /** Ordered: resend paths iterate the survivors, and that order
     *  reaches message timing under faults. */
    std::set<NodeId> pending;
    bool anyFail = false;
    bool closed = false;
    sim::AutoResetEvent wake;

    void
    reply(sim::Kernel &kernel, NodeId node, bool ok)
    {
        if (closed || pending.erase(node) == 0)
            return; // stale batch or duplicate reply
        if (!ok)
            anyFail = true;
        if (pending.empty())
            wake.notify(kernel);
    }
};

/** A distributed transaction protocol implementation. */
class TxnEngine
{
  public:
    explicit TxnEngine(System &sys)
        : sys_(sys), statsByNode_(sys.config.numNodes + 1),
          epochsByNode_(sys.config.numNodes)
    {
    }
    virtual ~TxnEngine() = default;

    virtual EngineKind kind() const = 0;
    const char *name() const { return engineKindName(kind()); }

    /**
     * Execute one transaction to commit, retrying on squashes. The
     * coroutine completes when the transaction has committed (or, for
     * repeatedly squashed transactions, committed via the pessimistic
     * fallback).
     */
    virtual sim::Task run(ExecCtx ctx, const txn::TxnProgram &prog) = 0;

    /**
     * In-memory footprint a record of @p payload_bytes needs under this
     * engine's layout (SW metadata or bare payload).
     */
    virtual std::uint32_t recordBytes(std::uint32_t payload_bytes)
        const = 0;

    /**
     * Aggregate statistics over the whole run. Counters are kept in
     * per-node buckets (so each shard lane only touches its own nodes'
     * buckets) and merged on read; the merge is bit-exact because every
     * accumulated sample is an integer-valued double far below 2^53.
     */
    txn::EngineStats
    stats() const
    {
        txn::EngineStats out;
        for (const auto &s : statsByNode_)
            out.merge(s);
        return out;
    }

    /** The system this engine runs against (recovery operates on it). */
    System &system() { return sys_; }

    /**
     * Crash-recovery hook: @p node was declared permanently dead by a
     * view change. Engines release any cluster-wide resource the dead
     * node may hold (e.g. the pessimistic-fallback token) so survivors
     * make progress. Default: nothing to release.
     */
    virtual void onNodeDead(NodeId node) { (void)node; }

    /** Record one admission-control shed of a would-be transaction at
     *  @p node (the driver calls this when admit() refuses; the
     *  transaction never starts, so no attempt is charged). */
    void
    noteShed(NodeId node)
    {
        statsByNode_[node < sys_.config.numNodes ? node
                                                 : sys_.config.numNodes]
            .addSquash(txn::SquashReason::Shed);
    }

  protected:
    /** Core compute resource of a context. */
    sim::ComputeResource &
    coreOf(const ExecCtx &ctx)
    {
        return *sys_.node(ctx.node).cores[ctx.core];
    }

    Tick cycles(std::int64_t n) const { return sys_.cycles(n); }

    /**
     * Timed multi-line access from a core: the first line pays the full
     * hierarchy latency; subsequent lines stream behind it.
     */
    Tick
    accessLines(NodeId node, CoreId core, Addr base, std::uint32_t lines)
    {
        if (lines == 0)
            return 0;
        auto &memsys = sys_.node(node).memory;
        Tick worst = 0;
        for (std::uint32_t i = 0; i < lines; ++i) {
            Addr line = lineAddr(base) + Addr{i} * kCacheLineBytes;
            worst = std::max(worst, memsys.access(core, line).latency);
        }
        return worst + Tick(lines - 1) * cycles(kStreamCycles);
    }

    /** Timed multi-line access by a NIC servicing an RDMA request. */
    Tick
    nicAccessLines(NodeId node, Addr base, std::uint32_t lines)
    {
        if (lines == 0)
            return 0;
        auto &memsys = sys_.node(node).memory;
        Tick worst = 0;
        for (std::uint32_t i = 0; i < lines; ++i) {
            Addr line = lineAddr(base) + Addr{i} * kCacheLineBytes;
            worst = std::max(worst, memsys.nicAccess(line).latency);
        }
        return worst + Tick(lines - 1) * cycles(kStreamCycles);
    }

    /** Cycle cost of copying @p bytes in software. */
    std::int64_t
    copyCycles(std::uint64_t bytes) const
    {
        const auto &c = sys_.config.costs;
        return std::int64_t(bytes / std::max(1u, c.copyBytesPerCycle)) + 1;
    }

    /** Exponential backoff with jitter before a retry. */
    Tick
    backoff(std::uint32_t attempt)
    {
        std::uint32_t shift = std::min(attempt, 6u);
        std::int64_t base =
            std::int64_t(sys_.config.tuning.retryBackoffBaseCycles) << shift;
        return cycles(base + std::int64_t(sys_.rng().below(
                                 std::uint64_t(base) + 1)));
    }

    /** Uniform Find-LLC-Tags latency in [min, max] cycles (Table III). */
    Tick
    findTagsLatency()
    {
        const auto &cfg = sys_.config;
        std::uint32_t span = cfg.findTagsMaxCycles -
                             cfg.findTagsMinCycles + 1;
        return cycles(cfg.findTagsMinCycles +
                      std::int64_t(sys_.rng().below(span)));
    }

    /**
     * Timed read of a read-only index structure homed at @p home with
     * client-side caching (standard practice in FaRM-family stores:
     * internal index nodes are cached at the client, and the structures
     * are immutable between resize epochs, so the reads need no
     * conflict tracking). Resident lines are served from the local
     * hierarchy; missing lines are fetched with one RDMA read and then
     * fill the local caches.
     */
    sim::Task
    indexRead(ExecCtx ctx, NodeId home, AddrRange range)
    {
        auto &core = coreOf(ctx);
        auto &mem = sys_.node(ctx.node).memory;
        std::vector<Addr> missing;
        for (Addr line = range.firstLine(); line <= range.lastLine();
             line += kCacheLineBytes) {
            if (home == ctx.node) {
                co_await core.occupy(
                    mem.access(ctx.core, line).latency);
            } else if (auto acc = mem.cachedAccess(ctx.core, line)) {
                co_await core.occupy(acc->latency);
            } else {
                missing.push_back(line);
            }
        }
        if (missing.empty())
            co_return;
        co_await core.occupy(cycles(sys_.config.costs.rdmaPostCycles));
        co_await sys_.network.roundTrip(
            net::MsgType::RdmaRead, ctx.node, home, 24,
            std::uint32_t(missing.size()) * kCacheLineBytes,
            [&]() -> Tick {
                Tick t = 0;
                for (Addr l : missing)
                    t += sys_.node(home).memory.nicAccess(l).latency /
                         4;
                return t;
            });
        for (Addr l : missing)
            mem.access(ctx.core, l); // fill the local caches
    }

    /** Layout of the record a request targets (index nodes carry their
     *  own size; data records use the run default @p def). */
    static txn::RecordLayout
    layoutOf(const txn::Request &req, const txn::RecordLayout &def)
    {
        return req.recordPayloadBytes
                   ? txn::RecordLayout{req.recordPayloadBytes}
                   : def;
    }

    /** True when the fault-injection layer is active. Every recovery
     *  code path (timers, resends, extra Acks) is gated on this so
     *  fault-free runs stay bit-identical to the pre-fault simulator. */
    bool faultsOn() const { return sys_.config.faults.enabled; }

    /** True when the crash-recovery subsystem is configured; the
     *  engines mirror write sets / participants into AttemptControl
     *  only under this gate (fault-free runs stay untouched). */
    bool recoveryOn() const { return sys_.config.recovery.enabled; }

    /** True when elastic membership (planned joins/drains with live
     *  record migration) is configured; the engines record each
     *  attempt's record footprint into AttemptControl only under this
     *  gate, so membership-free runs stay bit-identical. Quarantine
     *  (SLO-triggered drains) reuses the migration machinery, so it
     *  needs the same footprints even without scheduled joins/drains. */
    bool
    membershipOn() const
    {
        return sys_.config.membership.enabled() ||
               (sys_.config.slo.enabled && sys_.config.slo.quarantine);
    }

    /**
     * Hedging decision for a remote access of @p record homed at
     * @p home, coordinated from @p ctx.node: fill @p out and return
     * true when the SLO tracker classifies the home as Suspect (or
     * worse) and a live backup replica exists to duplicate the request
     * to. The hedge copy runs the same destination handler as the
     * primary copy -- exactly a wire duplicate with an alternate path,
     * which the protocol already absorbs (idempotent delivery) -- so
     * home-side conflict tracking is never bypassed.
     */
    bool
    hedgeTarget(const ExecCtx &ctx, NodeId home, std::uint64_t record,
                net::HedgeSpec &out)
    {
        if (!sys_.slo || !sys_.slo->config().hedgeReads ||
            !sys_.replicas || home == ctx.node)
            return false;
        if (sys_.slo->classify(ctx.node, home) ==
            net::PeerHealth::Healthy)
            return false;
        for (NodeId b : sys_.replicas->backupsOf(record, home)) {
            if (b == ctx.node || b == home ||
                sys_.network.nodeDead(b))
                continue;
            out.backup = b;
            out.delay = sys_.config.netRoundTrip *
                        Tick(sys_.slo->config().hedgeDelayPct) / 100;
            return true;
        }
        return false;
    }

    /**
     * SLO-adaptive replica-ack deadline: stretch @p base by the worst
     * observed slowness across every peer the attempt's ack counter
     * awaits -- the @p plan backups plus, for the HADES engines,
     * @p also_awaited (the Intend-to-commit fan-out shares the same
     * counter, so a slow ITC ack must not lose the race against an
     * un-inflated deadline). A fail-slow peer then reads as slow
     * instead of dead -- without this, a fixed deadline false-timeouts
     * every commit touching the victim and the retry loop goes
     * metastable (the hedged read path cannot help, since the replica
     * set is fixed). Identity when the SLO tracker is off or still
     * warming up.
     */
    template <class Plan>
    Tick
    replicaDeadline(const ExecCtx &ctx, const Plan &plan, Tick base,
                    const std::set<NodeId> *also_awaited = nullptr) const
    {
        if (!sys_.slo)
            return base;
        std::uint32_t worst = 100;
        for (const auto &kv : plan)
            worst = std::max(worst,
                             sys_.slo->inflationPct(ctx.node, kv.first));
        if (also_awaited)
            for (NodeId y : *also_awaited)
                worst = std::max(worst,
                                 sys_.slo->inflationPct(ctx.node, y));
        return base * Tick(worst) / 100;
    }

    /**
     * Fail-stop guard for retry loops: a context that slept through
     * its own node's failure (retry backoff, admission deferral) must
     * not open a fresh attempt. The view change resolves every
     * in-flight transaction of the dead coordinator through the
     * squash router, so an attempt begun *after* that resolution is
     * adopted by nothing and would dangle in the audit forever.
     */
    void
    throwIfNodeDead(const ExecCtx &ctx) const
    {
        if (faultsOn() && sys_.network.nodeDead(ctx.node))
            throw sim::NodeDead{};
    }

    /**
     * Admission-control retry gate, awaited after a squash before the
     * retry backoff. An exhausted per-node retry budget *paces* the
     * retry -- wait, re-ask, up to maxRetryDeferrals times -- then
     * proceeds regardless: budgets shape load under a retry storm,
     * they never strand a transaction.
     */
    sim::Task
    retryGate(const ExecCtx &ctx)
    {
        AdmissionController *adm = sys_.admission.get();
        if (!adm)
            co_return;
        std::uint32_t waits = 0;
        while (!adm->retryAllowed(ctx.node) &&
               waits < adm->config().maxRetryDeferrals) {
            st().retryBudgetDeferrals += 1;
            co_await sim::Delay{sys_.kernel, adm->retryPace(waits)};
            waits += 1;
        }
        adm->noteRetry(ctx.node);
    }

    /**
     * Protocol-level resend timeout for attempt @p attempt: capped
     * exponential in retryTimeoutBase..retryTimeoutCap plus up to 25%
     * jitter. Only called on faults-on paths, so the RNG draw does not
     * perturb fault-free runs.
     */
    Tick
    resendTimeout(std::uint32_t attempt)
    {
        Tick base = sys_.config.tuning.retryTimeoutBase
                    << std::min(attempt, 4u);
        base = std::min(base, sys_.config.tuning.retryTimeoutCap);
        return base + Tick(sys_.rng().below(std::uint64_t(base / 4) + 1));
    }

    /**
     * One-way message with protocol-level reliability. Fault-free this
     * is exactly Network::post. With faults enabled the destination
     * confirms every delivered copy with a small Ack, and the sender
     * re-posts on a capped-exponential timer until confirmed -- so
     * @p handler runs once per delivered copy and MUST be idempotent.
     */
    void
    reliablePost(net::MsgType type, NodeId src, NodeId dst,
                 std::uint32_t bytes, std::function<void()> handler)
    {
        if (!faultsOn()) {
            sys_.network.post(type, src, dst, bytes,
                              std::move(handler));
            return;
        }
        auto rs = std::make_shared<ReliableSend>();
        rs->type = type;
        rs->src = src;
        rs->dst = dst;
        rs->bytes = bytes;
        rs->handler = std::move(handler);
        reliableAttempt(std::move(rs), 0);
    }

    /**
     * Stats bucket of the node whose context is currently executing
     * (control bucket outside any node context). Engines charge every
     * counter through this accessor so counting is lane-local under
     * sharded execution and the merged totals are shard-invariant.
     */
    txn::EngineStats &
    st()
    {
        NodeId n = sys_.kernel.currentNode();
        return statsByNode_[n < sys_.config.numNodes ? n
                                                     : sys_.config.numNodes];
    }

    /**
     * The pessimistic lock-mode fallback serializes on a cluster-wide
     * token, which the threaded sharded executor cannot reproduce
     * bit-identically. Engines call this at the top of the fallback:
     * under threaded execution it asks the runner for a transparent
     * re-run on the (fully general) deterministic executor and unwinds
     * the attempt. Every other execution mode is a no-op.
     */
    void
    ensureSerialForLockMode()
    {
        if (sys_.kernel.threadedActive()) {
            sys_.kernel.requestSerialRerun();
            throw sim::SerialRerunNeeded{};
        }
    }

    /**
     * Squash transaction @p victim on behalf of node @p from (whose
     * lane the caller is executing on), staying lane-correct: a victim
     * coordinated on @p from is squashed directly (its control block
     * is lane-local), while a victim coordinated elsewhere is squashed
     * by a Squash round trip whose handler runs on the victim
     * coordinator's own lane -- the response carries the outcome back,
     * because the caller must distinguish Delivered from Uncommittable
     * (an uncommittable victim forces the *caller* to back off before
     * its own serialization point, or two conflicting transactions
     * would both commit). The round trip does real accounting, so every
     * cross-node squash shows up in the Squash message counters.
     */
    sim::Task
    squashVictim(NodeId from, std::uint64_t victim,
                 txn::SquashReason why, SquashOutcome &out)
    {
        const NodeId vnode = System::txnNode(victim);
        if (vnode >= sys_.config.numNodes || vnode == from) {
            out = sys_.routerFor(victim).squash(sys_.kernel, victim,
                                                why);
            co_return;
        }
        if (faultsOn()) {
            // Serial executors only (fault specs never certify for
            // threads): act on the victim's control block at the
            // instant the conflict is detected -- a dropped or delayed
            // Squash could otherwise cross with the victim's own
            // commit completion and let two mutually-conflicting
            // transactions both commit (the model note in hades.hh).
            // The wire message is still charged for accounting.
            out = sys_.routerFor(victim).squash(sys_.kernel, victim,
                                                why);
            // hades-analyze: verb-reliability-ok (accounting-only message: the squash already took effect instantaneously above, so a lost delivery changes nothing)
            sys_.network.post(net::MsgType::Squash, from, vnode, 16,
                              [] {});
            co_return;
        }
        SquashOutcome res = SquashOutcome::NotFound;
        co_await sys_.network.roundTrip(
            net::MsgType::Squash, from, vnode, 16, 16, [&]() -> Tick {
                res = sys_.routerFor(victim).squash(sys_.kernel, victim,
                                                    why);
                return sys_.cycles(20);
            });
        out = res;
    }

    /** Per-line streaming cost after the first line of a bulk access. */
    static constexpr std::int64_t kStreamCycles = 4;

    /** Next attempt epoch of context @p ctx (attempt ids embed it so a
     *  retry is distinguishable from its squashed predecessor). Stored
     *  per node so the bookkeeping stays lane-local. */
    std::uint64_t
    nextEpoch(const ExecCtx &ctx)
    {
        return epochsByNode_[ctx.node][ctx.packed()]++;
    }

    System &sys_;
    /** Per-node stats buckets + control bucket (see st()). */
    std::vector<txn::EngineStats> statsByNode_;
    /** Per-node attempt-epoch counters (see nextEpoch()). */
    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>>
        epochsByNode_;

  private:
    /** In-flight reliablePost state, owned by the kernel closures. */
    // hades-analyze: lane-escape-ok (constructed only when faults are on -- fault-free reliablePost degenerates to a plain post -- and fault-injected traffic is hard-gated by Network::refuseIfThreaded)
    struct ReliableSend
    {
        net::MsgType type{};
        NodeId src = 0;
        NodeId dst = 0;
        std::uint32_t bytes = 0;
        std::function<void()> handler;
        bool confirmed = false;
    };

    void
    reliableAttempt(std::shared_ptr<ReliableSend> rs, std::uint32_t n)
    {
        if (rs->confirmed)
            return;
        // Fail-stop: a permanently dead endpoint ends the resend chain
        // (the message can never be confirmed; recovery owns whatever
        // the post was trying to accomplish).
        if (sys_.network.nodeDead(rs->src) ||
            sys_.network.nodeDead(rs->dst))
            return;
        // Optional resend budget (RobustnessTuning::maxReliableResends;
        // 0 = unbounded): under a never-healing partition the Ack may
        // be unreachable forever, and an exhausted chain simply stops
        // -- the protocol-level timeouts above own further recovery.
        const std::uint32_t cap = sys_.config.tuning.maxReliableResends;
        if (cap > 0 && n > cap)
            return;
        if (n > 0)
            st().reliableResends += 1;
        sys_.network.post(rs->type, rs->src, rs->dst, rs->bytes,
                          [this, rs] {
                              rs->handler();
                              // Confirm this delivered copy; the Ack is
                              // itself lossy, so the sender may resend
                              // (handler idempotency absorbs it).
                              sys_.network.post(
                                  net::MsgType::Ack, rs->dst, rs->src, 8,
                                  [rs] { rs->confirmed = true; });
                          });
        sys_.kernel.schedule(resendTimeout(n), [this, rs, n] {
            if (!rs->confirmed)
                reliableAttempt(rs, n + 1);
        });
    }
};

} // namespace hades::protocol

#endif // HADES_PROTOCOL_ENGINE_HH_
