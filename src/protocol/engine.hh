/**
 * @file
 * Abstract transaction engine interface plus the timing helpers shared
 * by the three protocol implementations (Baseline / HADES / HADES-H).
 */

#ifndef HADES_PROTOCOL_ENGINE_HH_
#define HADES_PROTOCOL_ENGINE_HH_

#include <algorithm>
#include <cstdint>

#include "protocol/system.hh"
#include "sim/task.hh"
#include "txn/program.hh"
#include "txn/record.hh"
#include "txn/txn_stats.hh"

namespace hades::protocol
{

/** Thrown inside an attempt coroutine when the attempt is squashed. */
struct Squashed
{
    txn::SquashReason reason;
};

/** Which of the three evaluated configurations an engine implements. */
enum class EngineKind
{
    Baseline,
    Hades,
    HadesHybrid,
};

inline const char *
engineKindName(EngineKind k)
{
    switch (k) {
      case EngineKind::Baseline:
        return "Baseline";
      case EngineKind::Hades:
        return "HADES";
      case EngineKind::HadesHybrid:
        return "HADES-H";
      default:
        return "?";
    }
}

/** A distributed transaction protocol implementation. */
class TxnEngine
{
  public:
    explicit TxnEngine(System &sys) : sys_(sys) {}
    virtual ~TxnEngine() = default;

    virtual EngineKind kind() const = 0;
    const char *name() const { return engineKindName(kind()); }

    /**
     * Execute one transaction to commit, retrying on squashes. The
     * coroutine completes when the transaction has committed (or, for
     * repeatedly squashed transactions, committed via the pessimistic
     * fallback).
     */
    virtual sim::Task run(ExecCtx ctx, const txn::TxnProgram &prog) = 0;

    /**
     * In-memory footprint a record of @p payload_bytes needs under this
     * engine's layout (SW metadata or bare payload).
     */
    virtual std::uint32_t recordBytes(std::uint32_t payload_bytes)
        const = 0;

    txn::EngineStats &stats() { return stats_; }
    const txn::EngineStats &stats() const { return stats_; }

  protected:
    /** Core compute resource of a context. */
    sim::ComputeResource &
    coreOf(const ExecCtx &ctx)
    {
        return *sys_.node(ctx.node).cores[ctx.core];
    }

    Tick cycles(std::int64_t n) const { return sys_.cycles(n); }

    /**
     * Timed multi-line access from a core: the first line pays the full
     * hierarchy latency; subsequent lines stream behind it.
     */
    Tick
    accessLines(NodeId node, CoreId core, Addr base, std::uint32_t lines)
    {
        if (lines == 0)
            return 0;
        auto &memsys = sys_.node(node).memory;
        Tick worst = 0;
        for (std::uint32_t i = 0; i < lines; ++i) {
            Addr line = lineAddr(base) + Addr{i} * kCacheLineBytes;
            worst = std::max(worst, memsys.access(core, line).latency);
        }
        return worst + Tick(lines - 1) * cycles(kStreamCycles);
    }

    /** Timed multi-line access by a NIC servicing an RDMA request. */
    Tick
    nicAccessLines(NodeId node, Addr base, std::uint32_t lines)
    {
        if (lines == 0)
            return 0;
        auto &memsys = sys_.node(node).memory;
        Tick worst = 0;
        for (std::uint32_t i = 0; i < lines; ++i) {
            Addr line = lineAddr(base) + Addr{i} * kCacheLineBytes;
            worst = std::max(worst, memsys.nicAccess(line).latency);
        }
        return worst + Tick(lines - 1) * cycles(kStreamCycles);
    }

    /** Cycle cost of copying @p bytes in software. */
    std::int64_t
    copyCycles(std::uint64_t bytes) const
    {
        const auto &c = sys_.config.costs;
        return std::int64_t(bytes / std::max(1u, c.copyBytesPerCycle)) + 1;
    }

    /** Exponential backoff with jitter before a retry. */
    Tick
    backoff(std::uint32_t attempt)
    {
        std::uint32_t shift = std::min(attempt, 6u);
        std::int64_t base =
            std::int64_t(sys_.config.retryBackoffBaseCycles) << shift;
        return cycles(base + std::int64_t(sys_.rng.below(
                                 std::uint64_t(base) + 1)));
    }

    /** Uniform Find-LLC-Tags latency in [min, max] cycles (Table III). */
    Tick
    findTagsLatency()
    {
        const auto &cfg = sys_.config;
        std::uint32_t span = cfg.findTagsMaxCycles -
                             cfg.findTagsMinCycles + 1;
        return cycles(cfg.findTagsMinCycles +
                      std::int64_t(sys_.rng.below(span)));
    }

    /**
     * Timed read of a read-only index structure homed at @p home with
     * client-side caching (standard practice in FaRM-family stores:
     * internal index nodes are cached at the client, and the structures
     * are immutable between resize epochs, so the reads need no
     * conflict tracking). Resident lines are served from the local
     * hierarchy; missing lines are fetched with one RDMA read and then
     * fill the local caches.
     */
    sim::Task
    indexRead(ExecCtx ctx, NodeId home, AddrRange range)
    {
        auto &core = coreOf(ctx);
        auto &mem = sys_.node(ctx.node).memory;
        std::vector<Addr> missing;
        for (Addr line = range.firstLine(); line <= range.lastLine();
             line += kCacheLineBytes) {
            if (home == ctx.node) {
                co_await core.occupy(
                    mem.access(ctx.core, line).latency);
            } else if (auto acc = mem.cachedAccess(ctx.core, line)) {
                co_await core.occupy(acc->latency);
            } else {
                missing.push_back(line);
            }
        }
        if (missing.empty())
            co_return;
        co_await core.occupy(cycles(sys_.config.costs.rdmaPostCycles));
        co_await sys_.network.roundTrip(
            net::MsgType::RdmaRead, ctx.node, home, 24,
            std::uint32_t(missing.size()) * kCacheLineBytes,
            [&]() -> Tick {
                Tick t = 0;
                for (Addr l : missing)
                    t += sys_.node(home).memory.nicAccess(l).latency /
                         4;
                return t;
            });
        for (Addr l : missing)
            mem.access(ctx.core, l); // fill the local caches
    }

    /** Layout of the record a request targets (index nodes carry their
     *  own size; data records use the run default @p def). */
    static txn::RecordLayout
    layoutOf(const txn::Request &req, const txn::RecordLayout &def)
    {
        return req.recordPayloadBytes
                   ? txn::RecordLayout{req.recordPayloadBytes}
                   : def;
    }

    /** Per-line streaming cost after the first line of a bulk access. */
    static constexpr std::int64_t kStreamCycles = 4;

    System &sys_;
    txn::EngineStats stats_;
};

} // namespace hades::protocol

#endif // HADES_PROTOCOL_ENGINE_HH_
