/**
 * @file
 * The hardware-only HADES protocol engine (Section V-A, Table II).
 *
 * Per transaction attempt the engine maintains the hardware the paper
 * adds: a Local read BF and a split Local write BF (Module 3), the
 * Recorded RD/WR filter bits (Module 1, modeled as exact sets), WrTX ID
 * tags in the home node's LLC directory (Module 2), Remote read/write
 * BFs in the NICs of remote nodes (Module 4a), and the per-transaction
 * remote-write tables in the local NIC (Module 4b).
 *
 * Conflict policy (Section IV-B): L-L conflicts are detected eagerly at
 * access time (the second accessor squashes itself); conflicts with at
 * least one remote access are detected lazily when the first transaction
 * commits (the committer squashes the other).
 *
 * Model notes (documented deviations):
 *  - Fault-free, squash notifications are real round trips delivered on
 *    the victim coordinator's lane (TxnEngine::squashVictim); the
 *    paper's narrow window where two mutually-conflicting commits could
 *    cross is closed by the outcome protocol -- a committer that finds
 *    its victim already uncommittable squashes itself instead, and
 *    abort cleanup is awaited before the next attempt epoch begins.
 *    With fault injection enabled (serial executors only) squashes act
 *    on the victim's control block at the instant a conflict is
 *    detected, as a dropped or delayed Squash could cross with the
 *    victim's own commit completion; the wire message is still charged
 *    for traffic accounting.
 *  - The Locking Buffer copy installed by a remote commit includes the
 *    Intend-to-commit address list in addition to RemoteWriteBF, so
 *    fully-written lines (which the paper deliberately keeps out of the
 *    write BF) are also protected during the commit window.
 */

#ifndef HADES_PROTOCOL_HADES_HH_
#define HADES_PROTOCOL_HADES_HH_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bloom/bloom_filter.hh"
#include "bloom/split_write_bloom.hh"
#include "protocol/engine.hh"

namespace hades::protocol
{

/** Hardware-only HADES engine. */
class HadesEngine : public TxnEngine
{
  public:
    HadesEngine(System &sys, std::uint32_t payload_bytes);
    ~HadesEngine() override;

    EngineKind kind() const override { return EngineKind::Hades; }

    std::uint32_t
    recordBytes(std::uint32_t payload_bytes) const override
    {
        // HADES needs no record metadata (Table I row 2).
        return txn::RecordLayout{payload_bytes}.hwBytes();
    }

    sim::Task run(ExecCtx ctx, const txn::TxnProgram &prog) override;

    /** Release the pessimistic-fallback token if the dead node held
     *  it, so surviving fallback transactions make progress. */
    void
    onNodeDead(NodeId node) override
    {
        if (tokenBusy_ && tokenOwner_ == node)
            tokenBusy_ = false;
    }

  private:
    /** Live hardware state of one attempt. */
    // hades-analyze: lane-escape-ok (coordinator-lane state: every mutable field is written either by the coordinator's own events or by ack/squash deliveries routed to the coordinator's lane through the window-barrier mailboxes; remote handlers read only immutable fields -- id, homeNode -- plus faultsOn()-gated flags that only matter on the serial executors)
    struct Attempt
    {
        Attempt(const ClusterConfig &cfg, std::uint64_t llc_sets)
            : localReadBf(cfg.coreReadBf.bits, cfg.coreReadBf.numHashes),
              localWriteBf(cfg.coreWriteBf, llc_sets)
        {}

        AttemptControl ctrl;
        bloom::BloomFilter localReadBf;
        bloom::SplitWriteBloomFilter localWriteBf;
        /** Module 1 Recorded RD/WR bits + locally-cached remote lines. */
        std::unordered_set<Addr> recordedRd, recordedWr;
        /** Buffered writes: record -> (home, value). Ordered: commit
         *  iterates it and the order reaches message/write timing. */
        std::map<std::uint64_t, std::pair<NodeId, std::int64_t>>
            writeBuffer;
        /** Remote nodes this attempt touched (Module 4b lower struct). */
        std::set<NodeId> nodesInvolved;
        /** Backup nodes holding staged replica updates (Section V-A). */
        std::set<NodeId> replicaNodes;
        std::uint32_t acksPending = 0;
        /** Nodes whose commit Ack arrived (dedupes replayed Acks and
         *  selects the targets of a timeout resend). */
        std::set<NodeId> ackedBy;
        /** Backups whose replica-staging Ack arrived. */
        std::set<NodeId> replicaAckedBy;
        /** Intend-to-commit address list per node, kept for resends. */
        std::map<NodeId, std::vector<Addr>> itcLines;
        /** Remote record values (and ground-truth versions) captured at
         *  the home node when the RDMA fetch returns. Reads are served
         *  from here, so the coordinator never touches another home's
         *  ground-truth bucket (the store is lane-partitioned by home). */
        std::map<std::uint64_t, std::pair<std::int64_t, std::uint64_t>>
            remoteReadCache;
        bool localDirLocked = false;
        bool finished = false;
        std::uint64_t id = 0; //!< packed gid | epoch (WrTX ID value)
        std::uint64_t auditId = 0; //!< auditor observation (0 = off)
        NodeId homeNode = 0;
    };

    using AttemptPtr = std::shared_ptr<Attempt>;

    /** One optimistic attempt; sets @p committed. */
    sim::Task attempt(ExecCtx ctx, const txn::TxnProgram &prog,
                      std::uint64_t id, bool &committed);

    /** Pessimistic fallback after repeated squashes (Section VI). */
    sim::Task attemptPessimistic(ExecCtx ctx,
                                 const txn::TxnProgram &prog);

    /** Timed local read/write with eager L-L conflict detection. */
    sim::Task localAccess(ExecCtx ctx, AttemptPtr at, AddrRange range,
                          bool is_write);

    /** Timed remote read/write (RDMA + NIC BF insertion at the home).
     *  @p record identifies the fetched record so a read can cache its
     *  value/version for the lane-local read path. */
    sim::Task remoteAccess(ExecCtx ctx, AttemptPtr at, NodeId home,
                           std::uint64_t record, AddrRange range,
                           bool is_write);

    /** The commit sequence of Table II (both sides). */
    sim::Task commit(ExecCtx ctx, AttemptPtr at);

    /** Process an Intend-to-commit at remote node @p y (NIC offload).
     *  Runs as a coroutine on y's lane; every structure it touches --
     *  y's Locking Buffer, y's NIC filters with their exact shadow
     *  sets, y's local-transaction registry -- is owned by that lane.
     *  NoBuffer retries are bounded: a capped number of rounds breaks
     *  distributed waits-for cycles on exhausted banks (the committer
     *  is squashed, releasing its own buffers). */
    sim::Task handleIntendToCommit(NodeId y, AttemptPtr at,
                                   std::vector<Addr> write_lines);

    /** Fire-and-forget wrapper: runs handleIntendToCommit as a
     *  detached coroutine from the message-delivery event, absorbing
     *  the unwind exceptions (NodeDead, SerialRerunNeeded) that have
     *  no coordinator frame to land in here. */
    sim::DetachedTask spawnIntendToCommit(NodeId y, AttemptPtr at,
                                          std::vector<Addr> write_lines);

    /** Undo all speculative state of a squashed/finished attempt.
     *  Fault-free the remote teardown is awaited (round trips), so the
     *  next attempt epoch starts only after every involved node has
     *  dropped this one's filters and locks. */
    sim::Task cleanupAborted(ExecCtx ctx, AttemptPtr at);

    /** Send one commit Ack from @p y back to the committer (idempotent
     *  at the receiver via Attempt::ackedBy). */
    void postCommitAck(AttemptPtr at, NodeId y);

    /**
     * Faults-on only: timer chain that re-posts Intend-to-commit to
     * nodes that have not Acked; after maxCommitResends rounds the
     * committer squashes itself (CommitTimeout) and retries.
     */
    void armCommitResend(ExecCtx ctx, AttemptPtr at,
                         std::uint32_t round);

    /** Throw sim::NodeDead if the attempt's node crashed permanently
     *  (fail-stop: the coroutine stack unwinds instead of executing
     *  on), else Squashed if a squash request is pending. */
    void
    checkSquash(const AttemptPtr &at) const
    {
        if (sys_.network.nodeDead(at->homeNode))
            throw sim::NodeDead{};
        if (at->ctrl.squashRequested)
            throw Squashed{at->ctrl.reason};
    }

    /** Probe one BF and account the check + false positives. */
    bool probeFilter(const bloom::AddressFilter &bf, Addr line,
                     bool truth);

    /** Registry of running local attempts, per node (Module 3 bank).
     *  Ordered: eager conflict scans iterate a node's registry and
     *  their enumeration order picks squash victims. */
    std::vector<std::map<std::uint64_t, AttemptPtr>> localTxns_;

    /** Next per-context attempt epoch (keys WrTX IDs uniquely). */

    /** Cluster-wide pessimistic-fallback token (Section VI), with its
     *  holder so recovery can release it when the holder dies. */
    bool tokenBusy_ = false;
    NodeId tokenOwner_ = 0;

    txn::RecordLayout layout_;
};

} // namespace hades::protocol

#endif // HADES_PROTOCOL_HADES_HH_
