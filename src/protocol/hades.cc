#include "protocol/hades.hh"

#include <algorithm>

#include "common/log.hh"

namespace hades::protocol
{

using net::MsgType;
using txn::SquashReason;

namespace
{

/** Expand an address range into its cache-line addresses. */
std::vector<Addr>
linesOf(AddrRange range)
{
    std::vector<Addr> out;
    for (Addr l = range.firstLine(); l <= range.lastLine();
         l += kCacheLineBytes)
        out.push_back(l);
    return out;
}

/** Epoch shift used to make WrTX IDs unique across retries. */
constexpr unsigned kEpochShift = 48;

} // namespace

HadesEngine::HadesEngine(System &sys, std::uint32_t payload_bytes)
    : TxnEngine(sys), layout_(payload_bytes)
{
    localTxns_.resize(sys.config.numNodes);
    // Evicting a speculatively-written LLC line squashes its owner.
    for (auto &node : sys_.nodes) {
        node->memory.llc().setSquashHook([this](std::uint64_t tx) {
            sys_.routerFor(tx).squash(sys_.kernel, tx,
                               SquashReason::LlcEviction);
        });
    }
}

HadesEngine::~HadesEngine()
{
    for (auto &node : sys_.nodes)
        node->memory.llc().setSquashHook(nullptr);
}

bool
HadesEngine::probeFilter(const bloom::AddressFilter &bf, Addr line,
                         bool truth)
{
    st().bfConflictChecks += 1;
    bool hit = bf.mayContain(line);
    if (hit && !truth)
        st().bfFalsePositives += 1;
    if (sys_.audit)
        sys_.audit->noteFilterProbe(hit, truth, "hades-conflict-probe");
    return hit;
}

sim::Task
HadesEngine::run(ExecCtx ctx, const txn::TxnProgram &prog)
{
    const Tick start = sys_.kernel.now();
    sys_.tracer.log(start, sim::TraceEvent::TxnStart, ctx.packed(),
                    ctx.node);
    std::uint32_t squash_count = 0;
    for (;;) {
        throwIfNodeDead(ctx);
        st().attempts += 1;
        std::uint64_t epoch = (nextEpoch(ctx) & 0x3fff);
        std::uint64_t id = ctx.packed() | (epoch << kEpochShift);
        bool committed = false;
        co_await attempt(ctx, prog, id, committed);
        if (committed)
            break;
        squash_count += 1;
        co_await retryGate(ctx);
        if (squash_count >= sys_.config.tuning.maxSquashesBeforeLockMode) {
            st().lockModeFallbacks += 1;
            co_await attemptPessimistic(ctx, prog);
            break;
        }
        co_await sim::Delay{sys_.kernel, backoff(squash_count)};
    }
    st().committed += 1;
    st().latency.add(std::uint64_t(sys_.kernel.now() - start));
    sys_.tracer.log(sys_.kernel.now(), sim::TraceEvent::TxnCommit,
                    ctx.packed(), ctx.node);
}

sim::Task
HadesEngine::localAccess(ExecCtx ctx, AttemptPtr at, AddrRange range,
                         bool is_write)
{
    auto &kernel = sys_.kernel;
    auto &core = coreOf(ctx);
    auto &node = sys_.node(ctx.node);
    auto &llc = node.memory.llc();
    const auto lines = linesOf(range);

    // Multi-line reads use a transient Locking Buffer read guard for
    // atomicity instead of per-record version checks (Table I row 3).
    bool guard_held = false;
    if (!is_write && lines.size() > 1) {
        for (int tries = 0; tries < 64; ++tries) {
            if (node.lockBank.acquireReadGuard(at->id, lines)) {
                guard_held = true;
                if (sys_.audit)
                    sys_.audit->noteLockAcquire(at->id);
                break;
            }
            co_await sim::Delay{kernel, cycles(100)};
            checkSquash(at);
        }
        if (guard_held) {
            co_await core.occupy(cycles(
                std::int64_t(sys_.config.crcHashCycles) *
                std::int64_t(lines.size())));
        }
    }

    for (Addr line : lines) {
        bool need_dir = is_write ? !at->recordedWr.contains(line)
                                 : !(at->recordedRd.contains(line) ||
                                     at->recordedWr.contains(line));
        // Latency of the data access itself.
        co_await core.occupy(
            node.memory.access(ctx.core, line).latency);

        if (!need_dir)
            continue;

        // First access by this transaction: it must reach the
        // directory/LLC for conflict detection (Module 1 semantics).
        int stall_guard = 0;
        while (node.lockBank.accessBlocked(line, is_write, at->id)) {
            co_await sim::Delay{kernel, cycles(sys_.config.llcCycles)};
            checkSquash(at);
            always_assert(++stall_guard < 1000000,
                          "directory stall did not resolve");
        }

        // Charge the BF hashing up front: the tag check + filter probe
        // + tag set below are one atomic directory operation in the
        // hardware, so no simulated time may pass inside the block.
        co_await core.occupy(cycles(sys_.config.crcHashCycles));
        checkSquash(at);

        // WrTX ID tag check (Module 2): eager L-L detection.
        std::uint64_t tag = llc.wrTxIdOf(line);
        if (tag != 0 && tag != at->id) {
            if (guard_held)
                node.lockBank.release(at->id);
            throw Squashed{SquashReason::EagerLocalConflict};
        }

        if (is_write) {
            // Check every other local transaction's LocalReadBF.
            for (auto &[oid, other] : localTxns_[ctx.node]) {
                if (oid == at->id)
                    continue;
                bool truth = other->ctrl.localReadLines.contains(line);
                if (probeFilter(other->localReadBf, line, truth)) {
                    if (guard_held)
                        node.lockBank.release(at->id);
                    throw Squashed{SquashReason::EagerLocalConflict};
                }
            }
            at->localWriteBf.insert(line);
            at->ctrl.localWriteLines.insert(line);
            llc.setWrTxId(line, at->id);
            at->recordedWr.insert(line);
            // An eviction squash fired by setWrTxId targets us directly.
            checkSquash(at);
        } else {
            at->localReadBf.insert(line);
            at->ctrl.localReadLines.insert(line);
            at->recordedRd.insert(line);
        }
    }

    if (guard_held)
        node.lockBank.release(at->id);
}

sim::Task
HadesEngine::remoteAccess(ExecCtx ctx, AttemptPtr at, NodeId home,
                          std::uint64_t record, AddrRange range,
                          bool is_write)
{
    auto &kernel = sys_.kernel;
    auto &core = coreOf(ctx);
    const auto lines = linesOf(range);

    // Already-fetched lines are served from the local copies.
    bool all_cached = true;
    for (Addr line : lines) {
        bool cached = is_write ? at->recordedWr.contains(line)
                               : (at->recordedRd.contains(line) ||
                                  at->recordedWr.contains(line));
        all_cached &= cached;
    }
    if (all_cached) {
        for (Addr line : lines) {
            co_await core.occupy(
                sys_.node(ctx.node).memory.access(ctx.core, line)
                    .latency);
        }
        co_return;
    }

    at->nodesInvolved.insert(home);
    auto &nic4b = sys_.node(ctx.node).nic.localState(at->id);
    nic4b.nodesInvolved.insert(home);

    // Partially-written lines must be fetched (and go into the remote
    // write BF); fully-written lines are neither fetched nor filtered --
    // their addresses travel with the Intend-to-commit at commit.
    std::vector<Addr> filter_lines; // lines to insert into the NIC BF
    std::vector<Addr> fetch_lines;  // lines brought to the local node
    if (is_write) {
        for (Addr line : lines) {
            bool full = line >= range.base &&
                        line + kCacheLineBytes <= range.end();
            if (!full) {
                filter_lines.push_back(line);
                fetch_lines.push_back(line);
            }
        }
        nic4b.writesByNode[home].push_back(range);
        nic4b.bufferedBytes += range.bytes;
    } else {
        filter_lines = lines;
        fetch_lines = lines;
    }

    // Fully-written lines need no exec-time message at all: the data is
    // buffered locally and their addresses travel with Intend-to-commit.
    if (!fetch_lines.empty()) {
        co_await core.occupy(cycles(sys_.config.costs.rdmaPostCycles));
        // The response of a read fetch carries the record's committed
        // value back; at_dst captures it (with its ground-truth
        // version) into the caller's frame, and the caller installs it
        // into the attempt's read cache below. Both the filter inserts
        // and the ground-truth lookup run at the home node -- under
        // worker threads that is the home's own lane, the only lane
        // allowed to touch the home's NIC filters and data bucket.
        std::int64_t fetched_val = 0;
        std::uint64_t fetched_ver = 0;
        for (;;) {
            bool blocked = false;
            // Filter inserts and the data read always act on the home
            // node's state (a hedge copy served by a backup replica is
            // a wire duplicate: the home's conflict tracking still sees
            // every access, and duplicate inserts are idempotent).
            auto at_dst = [&]() -> Tick {
                auto &ynode = sys_.node(home);
                for (Addr line : lines) {
                    if (ynode.lockBank.accessBlocked(line, is_write,
                                                     at->id)) {
                        blocked = true;
                        return sys_.cycles(20);
                    }
                }
                auto &filters = ynode.nic.remoteFilters(at->id);
                for (Addr line : filter_lines) {
                    if (is_write)
                        filters.insertWrite(line);
                    else
                        filters.insertRead(line);
                }
                if (!is_write) {
                    fetched_val = sys_.data.read(record);
                    fetched_ver = sys_.data.version(record);
                }
                Tick t = sys_.cycles(
                    std::int64_t(sys_.config.crcHashCycles) *
                    std::int64_t(filter_lines.size()));
                for (Addr line : fetch_lines)
                    t += ynode.memory.nicAccess(line).latency / 4;
                return t;
            };
            const std::uint32_t resp_bytes =
                std::uint32_t(fetch_lines.size()) * kCacheLineBytes;
            net::HedgeSpec hedge;
            if (!is_write && hedgeTarget(ctx, home, record, hedge)) {
                co_await sys_.network.hedgedRoundTrip(
                    MsgType::RdmaRead, ctx.node, home, hedge, 24,
                    resp_bytes, at_dst);
            } else {
                co_await sys_.network.roundTrip(
                    MsgType::RdmaRead, ctx.node, home, 24, resp_bytes,
                    at_dst);
            }
            if (!blocked)
                break;
            co_await sim::Delay{kernel, ns(300)};
            checkSquash(at);
        }
        if (!is_write)
            at->remoteReadCache[record] = {fetched_val, fetched_ver};
    }

    // The fetched lines now live in the local caches.
    for (Addr line : fetch_lines) {
        sys_.node(ctx.node).memory.access(ctx.core, line);
        if (is_write)
            at->recordedWr.insert(line);
        else
            at->recordedRd.insert(line);
    }
    if (is_write) {
        // Non-fetched (fully written) lines are buffered locally too.
        for (Addr line : lines)
            at->recordedWr.insert(line);
    }
}

sim::Task
HadesEngine::commit(ExecCtx ctx, AttemptPtr at)
{
    auto &core = coreOf(ctx);
    auto &node = sys_.node(ctx.node);
    auto &llc = node.memory.llc();
    const std::uint64_t id = at->id;

    // --- Step 1: partially lock the local directory --------------------------
    co_await core.occupy(findTagsLatency());
    std::vector<Addr> local_write_lines = llc.linesWrittenBy(id);
    // Find-LLC-Tags must enumerate exactly the lines this attempt
    // wrote, all covered by the split WrBF signature -- unless an
    // eviction squash already tore tags out from under us (the squash
    // throws at the next checkSquash).
    if (sys_.audit && !at->ctrl.squashRequested) {
        sys_.audit->noteFindTags(id, local_write_lines,
                                 at->ctrl.localWriteLines,
                                 &at->localWriteBf);
        sys_.audit->checkFilterCovers(at->localReadBf,
                                      at->ctrl.localReadLines,
                                      "hades-core-read-bf");
    }
    co_await core.occupy(cycles(8)); // load BFs into the Locking Buffer
    for (;;) {
        auto acq = node.lockBank.tryAcquire(id, at->localReadBf,
                                            at->localWriteBf,
                                            local_write_lines);
        if (acq == bloom::AcquireResult::Acquired) {
            if (sys_.audit)
                sys_.audit->noteLockAcquire(id);
            break;
        }
        if (acq == bloom::AcquireResult::Conflict)
            throw Squashed{SquashReason::LockFailure};
        // Bank exhausted: wait for a committing transaction to drain.
        // Commits hold buffers for network round trips, so retrying
        // faster than a fraction of an RTT just burns simulation events.
        co_await sim::Delay{sys_.kernel, ns(200)};
        checkSquash(at);
    }
    at->localDirLocked = true;

    // --- Step 2: local data vs. remote transactions -------------------------
    // Snapshot the victims before squashing any: squashing a remote
    // victim awaits a network round trip, and the NIC's remote-filter
    // map mutates while this frame is suspended (new filters install,
    // cleanup messages erase entries), so iterating it across awaits
    // would be invalid. The filters' exact shadow sets double as the
    // probe ground truth -- both live at this node, on this lane.
    std::vector<std::uint64_t> victims;
    for (Addr line : local_write_lines) {
        for (const auto &[k, filters] : node.nic.remote()) {
            if (k == id)
                continue;
            bool hit = probeFilter(filters.readBf, line,
                                   filters.readsContain(line)) ||
                       probeFilter(filters.writeBf, line,
                                   filters.writesContain(line));
            if (hit)
                victims.push_back(k);
        }
    }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());
    for (std::uint64_t k : victims) {
        auto outcome = SquashOutcome::NotFound;
        co_await squashVictim(ctx.node, k, SquashReason::LazyConflict,
                              outcome);
        if (outcome == SquashOutcome::Uncommittable) {
            // The victim is past its serialization point; the only
            // safe resolution is to squash ourselves.
            sys_.routerFor(id).squash(sys_.kernel, id,
                                      SquashReason::LazyConflict);
        }
        checkSquash(at); // throws if we squashed ourselves above
    }
    co_await core.occupy(
        cycles(2 * std::int64_t(local_write_lines.size()) + 10));
    checkSquash(at);

    // --- Step 3: Intend-to-commit to all involved remote nodes --------------
    at->acksPending = std::uint32_t(at->nodesInvolved.size());
    auto &nic4b = node.nic.localState(id);
    for (NodeId y : at->nodesInvolved) {
        std::vector<Addr> itc_lines;
        auto wit = nic4b.writesByNode.find(y);
        if (wit != nic4b.writesByNode.end()) {
            for (const auto &range : wit->second)
                for (Addr l : linesOf(range))
                    itc_lines.push_back(l);
            std::sort(itc_lines.begin(), itc_lines.end());
            itc_lines.erase(
                std::unique(itc_lines.begin(), itc_lines.end()),
                itc_lines.end());
        }
        at->itcLines[y] = itc_lines; // kept for timeout resends
        // hades-analyze: verb-reliability-ok (initial send; armCommitResend re-posts from itcLines until Ack or CommitTimeout squash)
        sys_.network.post(
            MsgType::IntendToCommit, ctx.node, y,
            std::uint32_t(8 * itc_lines.size() + 16),
            [this, y, at, itc_lines] {
                spawnIntendToCommit(y, at, itc_lines);
            });
    }
    // --- Section V-A: replica updates ride the two-phase commit -----------
    // Each backup stages the update in temporary durable storage,
    // persists it, and Acks; a lost update (failure injection) leaves
    // the Ack count short and the timeout below aborts the transaction.
    if (sys_.replicas && !at->writeBuffer.empty()) {
        std::map<NodeId, std::vector<std::pair<std::uint64_t,
                                               std::int64_t>>>
            plan;
        for (const auto &[rec, hv] : at->writeBuffer)
            for (NodeId b : sys_.replicas->backupsOf(rec, hv.first))
                plan[b].emplace_back(rec, hv.second);
        at->acksPending += std::uint32_t(plan.size());
        const Tick persist = sys_.replicas->config().persistLatency();
        // Replica acks are RTT observations too: without them the
        // tracker is blind to a slow backup (hedge wins attribute the
        // read samples to the fast replica) and replicaDeadline never
        // inflates.
        const Tick sentAt = sys_.kernel.now();
        const NodeId obs = ctx.node;
        auto ack = [this, at, sentAt, obs](NodeId b) {
            if (sys_.slo)
                sys_.slo->observe(obs, b, sys_.kernel.now() - sentAt);
            if (at->finished || at->ctrl.squashRequested)
                return;
            if (!at->replicaAckedBy.insert(b).second)
                return; // replayed staging Ack
            if (at->acksPending > 0) {
                at->acksPending -= 1;
                if (at->acksPending == 0)
                    at->ctrl.wake.notify(sys_.kernel);
            }
        };
        for (auto &[b, updates] : plan) {
            at->replicaNodes.insert(b);
            if (sys_.replicas->injectLoss())
                continue; // the update never arrives: no Ack
            const std::uint64_t id_c = id;
            auto payload = updates;
            if (b == ctx.node) {
                sys_.kernel.schedule(persist, [this, at, id_c, payload,
                                               ack, b] {
                    auto &store = sys_.replicas->store(b);
                    for (const auto &[rec, val] : payload)
                        store.stage(id_c, rec, val);
                    ack(b);
                });
            } else {
                NodeId x = ctx.node;
                sys_.network.post(
                    MsgType::RdmaWrite, ctx.node, b,
                    std::uint32_t(payload.size() *
                                  (layout_.payloadBytes() + 16)),
                    [this, at, id_c, payload, ack, persist, b, x] {
                        auto &store = sys_.replicas->store(b);
                        for (const auto &[rec, val] : payload)
                            store.stage(id_c, rec, val);
                        // Persist, then Ack over the wire.
                        sys_.kernel.schedule(persist, [this, at, ack,
                                                       b, x] {
                            sys_.network.post(MsgType::Ack, b, x, 16,
                                              [ack, b] { ack(b); });
                        });
                    });
            }
        }
        if (!plan.empty()) {
            Tick deadline = replicaDeadline(
                ctx, plan,
                4 * sys_.config.netRoundTrip + 2 * persist + us(2),
                &at->nodesInvolved);
            sys_.kernel.schedule(deadline, [this, at] {
                if (!at->finished && !at->ctrl.uncommittable &&
                    at->acksPending > 0) {
                    sys_.routerFor(at->id).squash(sys_.kernel, at->id,
                                       SquashReason::ReplicaTimeout);
                }
            });
        }
    }

    // Faults on: a lost Intend-to-commit or Ack would strand the wait
    // below, so arm the commit resend timer chain (CommitTimeout squash
    // after maxCommitResends fruitless rounds).
    if (faultsOn() && at->acksPending > 0)
        armCommitResend(ctx, at, 0);

    while (at->acksPending > 0 && !at->ctrl.squashRequested)
        co_await at->ctrl.wake.wait();
    checkSquash(at);

    // All Acks received: the transaction can no longer be squashed.
    at->ctrl.uncommittable = true;

    // --- Step 4: clear local speculative state ------------------------------
    co_await core.occupy(findTagsLatency());
    // Serialization point. Everything from here through the Validation
    // and promote posts of step 5 runs in this one resumption (no
    // simulated time passes), so drawing the commit sequence here makes
    // the decision record atomic with the applies: recovery observes
    // either no decision (safe to abort -- the client was never acked)
    // or a decision whose local writes are already in ground truth.
    std::uint64_t commit_seq = 0;
    if (sys_.replicas) {
        commit_seq = sys_.replicas->nextCommitSeq();
        at->ctrl.commitSeq = commit_seq;
        at->ctrl.decisionRecorded = true;
        if (recoveryOn())
            // hades-analyze: epoch-fence-ok (coordinator's own-attempt journal entry; stale deliveries are fenced by Network::advanceEpoch, and the in-doubt scan resolves entries by attempt id)
            sys_.decisionLog[id] = commit_seq;
        for (const auto &[record, hv] : at->writeBuffer)
            sys_.replicas->noteCommittedWrite(record, commit_seq);
    }
    for (const auto &[record, hv] : at->writeBuffer) {
        if (hv.first == ctx.node) {
            std::uint64_t v = sys_.data.write(record, hv.second);
            if (sys_.audit)
                sys_.audit->noteWrite(at->auditId, record, v);
        }
    }
    llc.clearTxTags(id, /*invalidate=*/false);

    // --- Step 5: Validation + updates to the remote nodes --------------------
    for (NodeId y : at->nodesInvolved) {
        std::uint32_t bytes = 16;
        std::vector<std::pair<std::uint64_t, std::int64_t>> updates;
        for (const auto &[record, hv] : at->writeBuffer) {
            if (hv.first == y) {
                updates.emplace_back(record, hv.second);
                bytes += layout_.payloadLines() * kCacheLineBytes;
            }
        }
        const std::uint64_t aid = at->auditId;
        // Journal the decided remote writes: if this Validation never
        // lands (either endpoint crashes permanently), the view change
        // replays the entry so the committed write is not lost.
        if (recoveryOn()) {
            for (const auto &[record, value] : updates)
                // hades-analyze: epoch-fence-ok (coordinator's own-attempt journal entry; stale deliveries are fenced by Network::advanceEpoch and replay is idempotent per record)
                sys_.pendingApplies[{id, record}] =
                    PendingApply{y, value, aid};
        }
        reliablePost(
            MsgType::Validation, ctx.node, y, bytes,
            [this, y, id, aid, updates] {
                auto &ynode = sys_.node(y);
                // Replay guard: the first delivery clears the filters,
                // so a duplicated/re-sent Validation must not re-apply
                // writes over a lock some later transaction now holds.
                if (faultsOn() && !ynode.nic.hasRemoteFilters(id))
                    return;
                for (const auto &[record, value] : updates) {
                    std::uint64_t v = sys_.data.write(record, value);
                    if (sys_.audit)
                        sys_.audit->noteWrite(aid, record, v);
                    nicAccessLines(y, sys_.placement.addrOf(record),
                                   layout_.payloadLines());
                    if (recoveryOn())
                        // hades-analyze: epoch-fence-ok (journal retirement keyed by attempt id; a view change that already replayed the entry makes this erase a no-op)
                        sys_.pendingApplies.erase({id, record});
                }
                ynode.lockBank.release(id);
                ynode.nic.clearRemoteFilters(id);
            });
    }

    // Promote staged replica images to permanent durable storage
    // (the Validation of Section V-A's two-phase durability).
    if (sys_.replicas && !at->replicaNodes.empty()) {
        sys_.replicas->noteCommit();
        for (NodeId b : at->replicaNodes) {
            if (b == ctx.node) {
                sys_.replicas->store(b).promote(id, commit_seq);
            } else {
                // promote() is idempotent: replayed copies are no-ops,
                // and max-seq-wins absorbs reordered deliveries.
                reliablePost(MsgType::Validation, ctx.node, b, 16,
                             [this, b, id, commit_seq] {
                                 sys_.replicas->store(b).promote(
                                     id, commit_seq);
                             });
            }
        }
    }

    // --- Step 6: unlock the local directory and clear local state ------------
    co_await core.occupy(cycles(6));
    node.lockBank.release(id);
    at->localDirLocked = false;
}

sim::DetachedTask
HadesEngine::spawnIntendToCommit(NodeId y, AttemptPtr at,
                                 std::vector<Addr> write_lines)
{
    try {
        co_await handleIntendToCommit(y, at, std::move(write_lines));
    } catch (const sim::NodeDead &) {
        // Fail-stop unwind of the remote handler; recovery tears the
        // dead node's state down, nothing to finish here.
    } catch (const sim::SerialRerunNeeded &) {
        // The rerun flag is already set; the run is being abandoned.
    }
}

sim::Task
HadesEngine::handleIntendToCommit(NodeId y, AttemptPtr at,
                                  std::vector<Addr> write_lines)
{
    auto &kernel = sys_.kernel;
    auto &ynode = sys_.node(y);
    const std::uint64_t id = at->id;

    // Serial executors only: with faults on, a duplicated or resent
    // delivery can arrive after the committer finished or was squashed
    // (its cleanup messages take care of the state here). Fault-free
    // there is exactly one delivery and it precedes any cleanup on
    // this (src,dst) channel, so the coordinator-side flags need not
    // -- and, under worker threads, must not -- be read on y's lane.
    if (faultsOn() && (at->finished || at->ctrl.squashRequested))
        co_return;

    // Idempotency guard (duplicated or timeout-resent delivery, both
    // faults-only): if this node's directory is already partially
    // locked for the committer -- or the committer is already past its
    // serialization point -- re-acquiring would corrupt the Locking
    // Buffer bank. Just confirm with another Ack; the committer
    // dedupes by node. The held() probe is y-local and so runs
    // unconditionally.
    if (ynode.lockBank.held(id) ||
        (faultsOn() && at->ctrl.uncommittable)) {
        co_await sim::Delay{kernel, sys_.cycles(20)};
        postCommitAck(at, y);
        co_return;
    }

    // Step 1 (remote): partially lock y's directory for the committer.
    for (int tries = 0;; ++tries) {
        // Re-fetched each round: the map cell can be erased (and the
        // reference invalidated) by a cleanup delivery while this
        // frame sleeps between retries.
        auto &filters = ynode.nic.remoteFilters(id);
        if (sys_.audit) {
            sys_.audit->checkFilterCovers(filters.readBf,
                                          filters.readLines,
                                          "hades-nic-read-bf");
            sys_.audit->checkFilterCovers(filters.writeBf,
                                          filters.writeLines,
                                          "hades-nic-write-bf");
        }
        bloom::BloomFilter write_filter = filters.writeBf;
        for (Addr line : write_lines)
            write_filter.insert(line); // cover fully-written lines too
        auto acq = ynode.lockBank.tryAcquire(id, filters.readBf,
                                             write_filter, write_lines);
        if (acq == bloom::AcquireResult::Acquired)
            break;
        if (acq == bloom::AcquireResult::Conflict ||
            /* NoBuffer, out of retries: */ tries >= 64) {
            // Squash the committer. The retry bound matters:
            // committers hold their local buffers while waiting here,
            // so unbounded retries could form a distributed waits-for
            // cycle between exhausted banks.
            auto outcome = SquashOutcome::NotFound;
            co_await squashVictim(y, id, SquashReason::LockFailure,
                                  outcome);
            co_return;
        }
        co_await sim::Delay{kernel, ns(200)};
        // The committer may have been squashed while we slept; its
        // cleanup delivery then already dropped our filters and lock
        // here, and re-acquiring would leak a Locking Buffer entry
        // forever. The filters' presence is the y-local liveness
        // signal (the first delivery materialized them above).
        if (!ynode.nic.hasRemoteFilters(id))
            co_return;
        // A concurrently-delivered duplicate (faults-only) may have
        // acquired for the committer while we slept: fall back to the
        // idempotent re-ack instead of double-registering.
        if (ynode.lockBank.held(id)) {
            postCommitAck(at, y);
            co_return;
        }
    }
    if (sys_.audit)
        sys_.audit->noteLockAcquire(id);

    // Step 2 (remote): conflicts on y's data with any transaction.
    // Snapshot the victims before squashing any (remote squashes await
    // round trips; y's NIC filter map and y's local-transaction
    // registry both mutate while this frame is suspended). Probe truth
    // comes from y-owned state only: the filters' exact shadow sets
    // for remote transactions, the control blocks of y-homed ones.
    std::vector<std::uint64_t> victims;
    for (Addr line : write_lines) {
        // Other remote transactions with filters at y.
        for (const auto &[k, kf] : ynode.nic.remote()) {
            if (k == id)
                continue;
            bool hit = probeFilter(kf.readBf, line,
                                   kf.readsContain(line)) ||
                       probeFilter(kf.writeBf, line,
                                   kf.writesContain(line));
            if (hit)
                victims.push_back(k);
        }
        // Local transactions running at y.
        for (auto &[oid, other] : localTxns_[y]) {
            if (oid == id)
                continue;
            bool truth_rd = other->ctrl.localReadLines.contains(line);
            bool truth_wr = other->ctrl.localWriteLines.contains(line);
            bool hit =
                probeFilter(other->localReadBf, line, truth_rd) ||
                probeFilter(other->localWriteBf, line, truth_wr);
            if (hit)
                victims.push_back(oid);
        }
    }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());
    bool self_squashed = false;
    for (std::uint64_t k : victims) {
        auto outcome = SquashOutcome::NotFound;
        co_await squashVictim(y, k, SquashReason::LazyConflict,
                              outcome);
        if (outcome == SquashOutcome::Uncommittable) {
            // The victim is past its serialization point; the
            // conservative ordering rule squashes the committer
            // instead.
            self_squashed = true;
            break;
        }
    }
    if (self_squashed) {
        auto outcome = SquashOutcome::NotFound;
        co_await squashVictim(y, id, SquashReason::LazyConflict,
                              outcome);
        ynode.lockBank.release(id);
        co_return;
    }

    // Step 3 (remote): send the Ack after the NIC processing time.
    Tick work = sys_.cycles(20 + 2 * std::int64_t(write_lines.size()));
    co_await sim::Delay{kernel, work};
    postCommitAck(at, y);
}

void
HadesEngine::postCommitAck(AttemptPtr at, NodeId y)
{
    sys_.network.post(MsgType::Ack, y, at->homeNode, 16, [this, at, y] {
        if (at->finished || at->ctrl.squashRequested)
            return;
        if (!at->ackedBy.insert(y).second)
            return; // duplicated/re-sent Ack: already counted
        if (at->acksPending > 0) {
            at->acksPending -= 1;
            if (at->acksPending == 0)
                at->ctrl.wake.notify(sys_.kernel);
        }
    });
}

void
HadesEngine::armCommitResend(ExecCtx ctx, AttemptPtr at,
                             std::uint32_t round)
{
    sys_.kernel.schedule(resendTimeout(round), [this, ctx, at, round] {
        if (at->finished || at->ctrl.uncommittable ||
            at->ctrl.squashRequested || at->acksPending == 0)
            return;
        if (round >= sys_.config.tuning.maxCommitResends) {
            // Out of resend budget: a peer is unreachable (crashed or
            // partitioned). Squash-and-retry from a clean slate.
            sys_.routerFor(at->id).squash(sys_.kernel, at->id,
                               SquashReason::CommitTimeout);
            return;
        }
        for (NodeId y : at->nodesInvolved) {
            if (at->ackedBy.contains(y))
                continue;
            st().timeoutResends += 1;
            const std::vector<Addr> itc_lines = at->itcLines[y];
            sys_.network.post(
                MsgType::IntendToCommit, ctx.node, y,
                std::uint32_t(8 * itc_lines.size() + 16),
                [this, y, at, itc_lines] {
                    spawnIntendToCommit(y, at, itc_lines);
                });
        }
        armCommitResend(ctx, at, round + 1);
    });
}

sim::Task
HadesEngine::cleanupAborted(ExecCtx ctx, AttemptPtr at)
{
    auto &node = sys_.node(ctx.node);
    const std::uint64_t id = at->id;

    // Invalidate speculative lines and drop all local hardware state.
    // The Locking Buffer release is unconditional: it also reclaims a
    // transient read guard if the squash landed mid-read.
    node.memory.llc().clearTxTags(id, /*invalidate=*/true);
    node.lockBank.release(id);
    at->localDirLocked = false;
    node.nic.clearLocalState(id);

    // Tell every involved remote node to drop our filters/locks, each
    // handler running on its node's own lane. Fault-free the teardown
    // is awaited round trips: the next attempt epoch must not start
    // until every remote node has processed the cleanup, or a stale
    // Intend-to-commit retry could lock for this (dead) epoch after
    // its successor already began (the audit's lock-epoch monotonicity
    // invariant). With faults on, cleanup instead rides the reliable
    // channel fire-and-forget -- a lost message must not stall the
    // retry loop forever, and the serial-only coordinator-flag guards
    // in handleIntendToCommit cover the stale-retry window; both
    // handler operations are idempotent under replay.
    for (NodeId y : at->nodesInvolved) {
        if (!faultsOn()) {
            co_await sys_.network.roundTrip(
                MsgType::Squash, ctx.node, y, 16, 16, [&]() -> Tick {
                    sys_.node(y).lockBank.release(id);
                    sys_.node(y).nic.clearRemoteFilters(id);
                    return sys_.cycles(20);
                });
        } else {
            reliablePost(MsgType::Squash, ctx.node, y, 16,
                         [this, y, id] {
                             sys_.node(y).lockBank.release(id);
                             sys_.node(y).nic.clearRemoteFilters(id);
                         });
        }
    }

    // Abort message to replica nodes: drop staged images (V-A).
    if (sys_.replicas && !at->replicaNodes.empty()) {
        sys_.replicas->noteAbort();
        for (NodeId b : at->replicaNodes) {
            if (b == ctx.node) {
                sys_.replicas->store(b).discard(id);
            } else {
                reliablePost(
                    MsgType::Squash, ctx.node, b, 16,
                    [this, b, id] {
                        sys_.replicas->store(b).discard(id);
                    });
            }
        }
    }
}

sim::Task
HadesEngine::attempt(ExecCtx ctx, const txn::TxnProgram &prog,
                     std::uint64_t id, bool &committed)
{
    auto &kernel = sys_.kernel;
    auto &core = coreOf(ctx);

    auto at = std::make_shared<Attempt>(
        sys_.config, sys_.node(ctx.node).memory.llc().numSets());
    at->id = id;
    at->homeNode = ctx.node;
    sys_.routerFor(id).add(id, &at->ctrl);
    localTxns_[ctx.node][id] = at;
    if (sys_.audit) {
        at->auditId = sys_.audit->begin(id);
        at->ctrl.auditId = at->auditId;
    }

    const Tick exec_start = kernel.now();
    Tick exec_end = exec_start;

    bool ok = false;
    bool aborted = false;
    try {
        std::vector<std::int64_t> read_vals;
        co_await core.occupy(cycles(prog.setupCycles));
        checkSquash(at);

        for (const auto &req : prog.requests) {
            co_await core.occupy(cycles(prog.computeCyclesPerRequest));
            checkSquash(at);

            const NodeId home = sys_.placement.homeOf(req.record);
            const Addr base = sys_.placement.addrOf(req.record);
            const std::uint32_t size =
                req.sizeBytes ? req.sizeBytes
                              : layoutOf(req, layout_).payloadBytes();
            AddrRange range{base + req.offsetBytes, size};

            // Membership: publish the footprint so a migration batch
            // defers (and squash-retries) rather than moving a record
            // this attempt resolved a home for.
            if (membershipOn() && !req.isIndex)
                at->ctrl.recordsTouched.insert(req.record);

            if (req.isIndex && !req.isWrite) {
                // Client-cached read-only index structures need no
                // conflict tracking (see TxnEngine::indexRead).
                co_await indexRead(ctx, home, range);
            } else if (home == ctx.node) {
                co_await localAccess(ctx, at, range, req.isWrite);
            } else {
                co_await remoteAccess(ctx, at, home, req.record, range,
                                      req.isWrite);
            }
            checkSquash(at);

            if (req.isWrite) {
                std::int64_t value =
                    req.derivedFromReadIdx >= 0
                        ? read_vals[std::size_t(
                              req.derivedFromReadIdx)] +
                              req.delta
                        : req.delta;
                at->writeBuffer[req.record] = {home, value};
            } else if (!req.isIndex) {
                // Index reads return structure pointers, not values;
                // keep read_vals indices consistent across engines.
                auto wit = at->writeBuffer.find(req.record);
                if (wit != at->writeBuffer.end()) {
                    // Read-your-own-write: served from the write
                    // buffer, invisible to the history audit.
                    read_vals.push_back(wit->second.second);
                } else if (home != ctx.node) {
                    // Remote record: the value (and its ground-truth
                    // version) traveled back with the RDMA fetch;
                    // reading sys_.data here would touch another
                    // home's bucket from this lane. A conflicting
                    // commit between fetch and use squashes us via
                    // the NIC read filter, so a committed attempt
                    // never observes a stale cached value.
                    auto cit = at->remoteReadCache.find(req.record);
                    always_assert(cit != at->remoteReadCache.end(),
                                  "remote read missed the fetch cache");
                    read_vals.push_back(cit->second.first);
                    if (sys_.audit) {
                        sys_.audit->noteRead(at->auditId, req.record,
                                             cit->second.second);
                    }
                } else {
                    read_vals.push_back(sys_.data.read(req.record));
                    if (sys_.audit) {
                        sys_.audit->noteRead(
                            at->auditId, req.record,
                            sys_.data.version(req.record));
                    }
                }
            }
        }
        exec_end = kernel.now();

        // recordedRd/Wr span local and remote lines: they are the full
        // per-transaction footprint (Section VIII-C quotes <=76 / <=40).
        st().maxLinesRead = std::max(
            st().maxLinesRead, std::uint64_t(at->recordedRd.size()));
        st().maxLinesWritten = std::max(
            st().maxLinesWritten, std::uint64_t(at->recordedWr.size()));

        co_await commit(ctx, at);
        ok = true;
    } catch (const Squashed &sq) {
        // A recovery-resolved attempt was already cleaned up (and its
        // audit fate decided) by the view change; its unwind must not
        // double-count.
        if (!at->ctrl.resolvedByRecovery) {
            st().addSquash(at->ctrl.squashRequested ? at->ctrl.reason
                                                      : sq.reason);
            aborted = true; // awaited cleanup below (no co_await here)
            if (sys_.audit)
                sys_.audit->noteAbort(at->auditId);
        }
    }
    if (aborted)
        co_await cleanupAborted(ctx, at);

    at->finished = true;
    at->ctrl.finished = true;
    sys_.routerFor(id).remove(id);
    localTxns_[ctx.node].erase(id);

    if (ok) {
        sys_.node(ctx.node).nic.clearLocalState(id);
        st().execPhase.add(double(exec_end - exec_start));
        st().validationPhase.add(double(kernel.now() - exec_end));
        committed = true;
        if (sys_.audit)
            sys_.audit->noteCommit(at->auditId);
    }

    // Per-attempt drain check: every piece of this attempt's local
    // hardware state must be gone (remote state drains asynchronously
    // and is re-checked at end of run).
    if (sys_.audit) {
        auto &n = sys_.node(ctx.node);
        sys_.audit->noteDrained("llc-wrtx-tags", ctx.node,
                                n.memory.llc().numLinesWrittenBy(id));
        sys_.audit->noteDrained("locking-buffer", ctx.node,
                                n.lockBank.held(id) ? 1 : 0);
        sys_.audit->noteDrained("nic-local-state", ctx.node,
                                n.nic.hasLocalState(id) ? 1 : 0);
    }
}

sim::Task
HadesEngine::attemptPessimistic(ExecCtx ctx, const txn::TxnProgram &prog)
{
    // Livelock escape (Section VI): after repeated squashes the
    // transaction acquires a cluster-wide token that serializes all
    // fallback transactions, then retries without the squash cap. The
    // paper instead pre-locks all data; the token models the same
    // "guaranteed progress" property with the hardware we already have.
    ensureSerialForLockMode();
    while (tokenBusy_) {
        co_await sim::Delay{sys_.kernel, us(1)};
        // Fail-stop: a dead node must not spin here forever (the wait
        // has no occupy to throw for it), and onNodeDead frees the
        // token if its holder died.
        if (sys_.network.nodeDead(ctx.node))
            throw sim::NodeDead{};
    }
    tokenBusy_ = true;
    tokenOwner_ = ctx.node;
    for (;;) {
        throwIfNodeDead(ctx);
        st().attempts += 1;
        std::uint64_t epoch = (nextEpoch(ctx) & 0x3fff);
        std::uint64_t id = ctx.packed() | (epoch << kEpochShift);
        bool committed = false;
        co_await attempt(ctx, prog, id, committed);
        if (committed)
            break;
        co_await sim::Delay{sys_.kernel, backoff(4)};
    }
    tokenBusy_ = false;
}

} // namespace hades::protocol
