#include "protocol/baseline.hh"

#include <algorithm>
#include <set>

#include "common/log.hh"

namespace hades::protocol
{

using net::MsgType;
using txn::Overhead;
using txn::SquashReason;

namespace
{

/** Bit position of the attempt epoch inside a lock-owner id. */
constexpr unsigned kEpochShift = 48;

/** Group request indices by home node, excluding @p local. */
std::map<NodeId, std::vector<std::size_t>>
groupRemote(const std::vector<NodeId> &homes, NodeId local)
{
    std::map<NodeId, std::vector<std::size_t>> g;
    for (std::size_t i = 0; i < homes.size(); ++i)
        if (homes[i] != local)
            g[homes[i]].push_back(i);
    return g;
}

} // namespace

sim::Task
BaselineEngine::run(ExecCtx ctx, const txn::TxnProgram &prog)
{
    const Tick start = sys_.kernel.now();
    sys_.tracer.log(start, sim::TraceEvent::TxnStart, ctx.packed(),
                    ctx.node);
    std::uint32_t squash_count = 0;
    for (;;) {
        throwIfNodeDead(ctx);
        st().attempts += 1;
        bool committed = false;
        co_await attempt(ctx, prog, committed);
        if (committed)
            break;
        squash_count += 1;
        co_await retryGate(ctx);
        if (squash_count >= sys_.config.tuning.maxSquashesBeforeLockMode) {
            st().lockModeFallbacks += 1;
            co_await attemptPessimistic(ctx, prog);
            break;
        }
        co_await sim::Delay{sys_.kernel, backoff(squash_count)};
    }
    st().committed += 1;
    st().latency.add(std::uint64_t(sys_.kernel.now() - start));
    sys_.tracer.log(sys_.kernel.now(), sim::TraceEvent::TxnCommit,
                    ctx.packed(), ctx.node);
}

void
BaselineEngine::releaseLocks(ExecCtx ctx, std::uint64_t self,
                             std::vector<WriteEntry> &writes)
{
    // Batch unlock messages per remote node; local unlocks are direct.
    // With faults on the unlocks ride the reliable channel (unlock is
    // owner-guarded, so replayed copies are no-ops) -- a lost unlock
    // would leak the lock forever.
    std::map<NodeId, std::vector<std::uint64_t>> remote_unlocks;
    for (auto &w : writes) {
        if (!w.locked)
            continue;
        w.locked = false;
        if (w.home == ctx.node) {
            sys_.node(w.home).versions.unlock(w.record, self);
        } else {
            remote_unlocks[w.home].push_back(w.record);
        }
    }
    for (auto &[node, records] : remote_unlocks) {
        auto recs = records; // copy into the handler
        NodeId home = node;
        reliablePost(
            MsgType::RdmaWrite, ctx.node, home,
            std::uint32_t(8 * recs.size()), [this, home, recs, self] {
                for (auto r : recs)
                    sys_.node(home).versions.unlock(r, self);
            });
    }
}

sim::Task
BaselineEngine::awaitFanout(
    std::shared_ptr<Fanout> fo,
    std::map<NodeId, std::vector<std::size_t>> by_node,
    std::function<void(NodeId, const std::vector<std::size_t> &)> repost)
{
    if (fo->pending.empty()) {
        fo->closed = true;
        co_return;
    }
    if (!faultsOn()) {
        co_await fo->wake.wait();
        fo->closed = true;
        co_return;
    }
    // Wake on either the last reply or a resend timer; the generation
    // counter discards timers from earlier rounds.
    auto gen = std::make_shared<std::uint32_t>(0);
    for (std::uint32_t round = 0;; ++round) {
        std::uint32_t g = ++*gen;
        sys_.kernel.schedule(resendTimeout(round), [this, fo, gen, g] {
            if (*gen == g && !fo->closed && !fo->pending.empty())
                fo->wake.notify(sys_.kernel);
        });
        co_await fo->wake.wait();
        if (fo->pending.empty())
            break;
        if (round >= sys_.config.tuning.maxCommitResends) {
            // Give up on the unresponsive nodes and fail the batch;
            // `closed` below makes any late deliveries inert.
            fo->anyFail = true;
            break;
        }
        for (NodeId n : fo->pending) {
            st().timeoutResends += 1;
            repost(n, by_node.at(n));
        }
    }
    fo->closed = true;
}

sim::Task
BaselineEngine::attempt(ExecCtx ctx, const txn::TxnProgram &prog,
                        bool &committed)
{
    auto &kernel = sys_.kernel;
    auto &core = coreOf(ctx);
    const auto &costs = sys_.config.costs;
    // Faults (or recovery) on: tag the lock-owner id with a per-attempt
    // epoch so a replayed unlock/commit-write of attempt N can never
    // touch the locks of attempt N+1, and so recovery's per-transaction
    // state never aliases across attempts. Fault-free the bare id is
    // used, as before.
    std::uint64_t self = ctx.packed();
    if (faultsOn() || recoveryOn())
        self |= (nextEpoch(ctx) & 0x3fff) << kEpochShift;
    const std::uint64_t audit_id =
        sys_.audit ? sys_.audit->begin(self) : 0;

    // Recovery on: register a control block with the squash router so
    // a view change can find this attempt (and resolve it in-doubt) if
    // this node dies mid-flight. The NodeDead unwind skips retire(), on
    // purpose: recovery owns the entry from that point.
    std::shared_ptr<AttemptControl> ctrl;
    if (recoveryOn()) {
        ctrl = std::make_shared<AttemptControl>();
        ctrl->auditId = audit_id;
        sys_.routerFor(self).add(self, ctrl.get());
        attempts_[self] = ctrl;
    }
    auto retire = [this, self, ctrl] {
        if (!ctrl)
            return;
        ctrl->finished = true;
        sys_.routerFor(self).remove(self);
        attempts_.erase(self);
    };

    // The sets are shared with the message handlers below: under
    // injected faults a delayed or duplicated delivery can outlive this
    // coroutine frame, so the handlers must not hold frame references.
    auto rs = std::make_shared<std::vector<ReadEntry>>();
    auto ws = std::make_shared<std::vector<WriteEntry>>();
    auto &read_set = *rs;
    auto &write_set = *ws;
    std::vector<std::int64_t> read_vals;

    const Tick exec_start = kernel.now();

    // Fetch one whole record (data + metadata) from its home, capturing
    // the version/lock snapshot and, for reads, the value, at the
    // moment the memory is actually accessed.
    struct Snapshot
    {
        bool lockedByOther = false;
        std::uint64_t version = 0;
        std::int64_t value = 0;
        std::uint64_t gtVersion = 0; //!< ground truth, for the audit
    };
    auto fetch_record = [&](NodeId home, Addr base,
                            std::uint32_t record_lines,
                            std::uint64_t record,
                            Snapshot &snap) -> sim::Task {
        if (home == ctx.node) {
            Tick lat = accessLines(home, ctx.core, base, record_lines);
            co_await core.occupy(lat);
            const auto m = sys_.node(home).versions.peek(record);
            snap.lockedByOther =
                m.lockOwner != 0 && m.lockOwner != self;
            snap.version = m.version;
            snap.value = sys_.data.read(record);
            snap.gtVersion = sys_.data.version(record);
        } else {
            co_await core.occupy(cycles(costs.rdmaPostCycles));
            // The snapshot is always taken against the home's version
            // table (a hedge copy served by a backup is a wire
            // duplicate; repeated peeks are side-effect free).
            auto at_dst = [&]() -> Tick {
                const auto m = sys_.node(home).versions.peek(record);
                snap.lockedByOther =
                    m.lockOwner != 0 && m.lockOwner != self;
                snap.version = m.version;
                snap.value = sys_.data.read(record);
                snap.gtVersion = sys_.data.version(record);
                return nicAccessLines(home, base, record_lines);
            };
            net::HedgeSpec hedge;
            if (hedgeTarget(ctx, home, record, hedge)) {
                co_await sys_.network.hedgedRoundTrip(
                    MsgType::RdmaRead, ctx.node, home, hedge, 24,
                    record_lines * kCacheLineBytes, at_dst);
            } else {
                co_await sys_.network.roundTrip(
                    MsgType::RdmaRead, ctx.node, home, 24,
                    record_lines * kCacheLineBytes, at_dst);
            }
            co_await core.occupy(cycles(costs.rdmaPollCycles));
        }
    };

    // ---------------- Execution phase -------------------------------------
    co_await core.occupy(cycles(prog.setupCycles));
    for (const auto &req : prog.requests) {
        co_await core.occupy(cycles(prog.computeCyclesPerRequest));

        const NodeId home = sys_.placement.homeOf(req.record);
        const Addr base = sys_.placement.addrOf(req.record);
        const txn::RecordLayout lay = layoutOf(req, layout_);
        const std::uint32_t record_lines = lay.swLines();
        const std::uint32_t payload_lines = lay.payloadLines();

        // Index traversal reads: atomic, client-cached, unvalidated
        // (txn::Request::isIndex); the software still checks the node
        // image for torn reads.
        if (req.isIndex && !req.isWrite) {
            co_await indexRead(ctx, home,
                               AddrRange{base, lay.swBytes()});
            Tick ti = kernel.now();
            co_await core.occupy(cycles(
                std::int64_t(costs.atomicityCheckPerLineCycles) *
                lay.payloadLines()));
            st().addOverhead(Overhead::ReadAtomicity,
                               kernel.now() - ti);
            continue;
        }

        // Membership: publish the footprint so a migration batch
        // defers (and squash-retries) rather than moving a record this
        // attempt resolved a home for.
        if (ctrl && membershipOn())
            ctrl->recordsTouched.insert(req.record);

        // Read-your-own-write short circuit.
        auto wit = std::find_if(write_set.begin(), write_set.end(),
                                [&](const WriteEntry &w) {
                                    return w.record == req.record;
                                });
        if (wit != write_set.end()) {
            co_await core.occupy(cycles(costs.setWalkCycles));
            if (req.isWrite) {
                wit->value =
                    req.derivedFromReadIdx >= 0
                        ? read_vals[std::size_t(
                              req.derivedFromReadIdx)] +
                              req.delta
                        : req.delta;
            } else {
                read_vals.push_back(wit->value);
            }
            continue;
        }

        // Fetch the whole record (record granularity), re-reading a few
        // times if it is locked by a committing transaction.
        Snapshot snap;
        bool gave_up = false;
        Tick t0 = kernel.now();
        for (std::uint32_t tries = 0;; ++tries) {
            co_await fetch_record(home, base, record_lines, req.record,
                                  snap);
            if (!snap.lockedByOther)
                break;
            if (tries >= costs.lockedReadRetries) {
                gave_up = true;
                break;
            }
            co_await sim::Delay{kernel, ns(400)};
        }
        if (req.isWrite)
            st().addOverhead(Overhead::RdBeforeWr, kernel.now() - t0);
        if (gave_up) {
            st().addSquash(SquashReason::LockBusy);
            releaseLocks(ctx, self, write_set);
            if (sys_.audit)
                sys_.audit->noteAbort(audit_id);
            retire();
            co_return;
        }

        if (req.isWrite) {
            std::int64_t value =
                req.derivedFromReadIdx >= 0
                    ? read_vals[std::size_t(req.derivedFromReadIdx)] +
                          req.delta
                    : req.delta;
            // Buffer the write in the Write Set (copy the payload).
            t0 = kernel.now();
            co_await core.occupy(
                cycles(costs.setInsertCycles +
                       copyCycles(lay.payloadBytes())));
            st().addOverhead(Overhead::ManageSets, kernel.now() - t0);
            write_set.push_back(WriteEntry{req.record, home, value,
                                           lay.payloadBytes(), false});
        } else {
            // Read atomicity: compare the per-line versions VC_i of all
            // payload lines and copy out of the bounce buffer (reads
            // cannot be zero-copy in SW-Impl).
            t0 = kernel.now();
            co_await core.occupy(cycles(
                std::int64_t(costs.atomicityCheckPerLineCycles) *
                    payload_lines +
                copyCycles(lay.payloadBytes())));
            st().addOverhead(Overhead::ReadAtomicity,
                               kernel.now() - t0);

            // Index traversal reads are atomic but unvalidated (see
            // txn::Request::isIndex); only data reads join the Read Set.
            if (!req.isIndex) {
                t0 = kernel.now();
                co_await core.occupy(cycles(costs.setInsertCycles));
                st().addOverhead(Overhead::ManageSets,
                                   kernel.now() - t0);
                read_set.push_back(
                    ReadEntry{req.record, snap.version, home});
                read_vals.push_back(snap.value);
                if (sys_.audit)
                    sys_.audit->noteRead(audit_id, req.record,
                                         snap.gtVersion);
            }
        }
    }
    const Tick exec_end = kernel.now();

    // ---------------- Validation phase ------------------------------------
    // Step 1: lock the write set. Local locks via CAS; remote locks in
    // one batched RDMA CAS message per node, all batches in flight in
    // parallel (optimization 1).
    bool lock_failed = false;
    bool lock_timed_out = false;
    {
        Tick t0 = kernel.now();
        for (auto &w : write_set) {
            if (w.home != ctx.node)
                continue;
            co_await core.occupy(cycles(costs.localCasCycles));
            if (!sys_.node(w.home).versions.tryLock(w.record, self)) {
                lock_failed = true;
                break;
            }
            w.locked = true;
            if (sys_.audit)
                sys_.audit->noteLockAcquire(self);
        }
        if (!lock_failed) {
            std::vector<NodeId> homes;
            for (const auto &w : write_set)
                homes.push_back(w.home);
            auto by_node = groupRemote(homes, ctx.node);
            auto fo = std::make_shared<Fanout>();
            for (const auto &[node, idx_list] : by_node)
                fo->pending.insert(node);
            auto post_batch = [this, ws, fo, self, ctx](
                                  NodeId home,
                                  const std::vector<std::size_t>
                                      &idxs) {
                sys_.network.post(
                    MsgType::RdmaCas, ctx.node, home,
                    std::uint32_t(16 * idxs.size()),
                    [this, ws, fo, home, idxs, self, ctx] {
                        if (fo->closed)
                            return; // stale delivery of an old batch
                        auto &write_set = *ws;
                        bool ok = true;
                        std::vector<std::size_t> acquired;
                        for (auto i : idxs) {
                            auto &w = write_set[i];
                            if (sys_.node(home).versions.tryLock(
                                    w.record, self)) {
                                acquired.push_back(i);
                            } else {
                                ok = false;
                                for (auto j : acquired)
                                    sys_.node(home).versions.unlock(
                                        write_set[j].record, self);
                                acquired.clear();
                                break;
                            }
                        }
                        if (ok) {
                            for (auto i : acquired) {
                                write_set[i].locked = true;
                                if (sys_.audit)
                                    sys_.audit->noteLockAcquire(self);
                            }
                        }
                        // CAS response back to the coordinator.
                        sys_.network.post(
                            MsgType::RdmaCas, home, ctx.node,
                            std::uint32_t(8 * idxs.size()),
                            [this, fo, home, ok] {
                                fo->reply(sys_.kernel, home, ok);
                            });
                    });
            };
            for (const auto &[node, idx_list] : by_node) {
                co_await core.occupy(cycles(costs.rdmaPostCycles));
                post_batch(node, idx_list);
            }
            co_await awaitFanout(fo, by_node, post_batch);
            co_await core.occupy(
                cycles(std::int64_t(costs.rdmaPollCycles) *
                       std::int64_t(by_node.size())));
            lock_failed = fo->anyFail;
            lock_timed_out = !fo->pending.empty();
        }
        st().addOverhead(Overhead::ConflictDetection,
                           kernel.now() - t0);
    }
    if (lock_failed) {
        st().addSquash(lock_timed_out ? SquashReason::CommitTimeout
                                        : SquashReason::LockBusy);
        releaseLocks(ctx, self, write_set);
        if (sys_.audit)
            sys_.audit->noteAbort(audit_id);
        retire();
        co_return;
    }

    // Step 2: validate the read set by re-reading versions; the read
    // set is never locked (optimization 4). Remote batches fly in
    // parallel, one message per node.
    bool validation_failed = false;
    bool validation_timed_out = false;
    {
        Tick t0 = kernel.now();
        for (const auto &r : read_set) {
            if (r.home != ctx.node)
                continue;
            Tick lat = accessLines(r.home, ctx.core,
                                   sys_.placement.addrOf(r.record), 1);
            co_await core.occupy(lat +
                                 cycles(costs.versionCompareCycles));
            const auto m = sys_.node(r.home).versions.peek(r.record);
            if (m.version != r.version ||
                (m.lockOwner != 0 && m.lockOwner != self)) {
                validation_failed = true;
                break;
            }
        }
        if (!validation_failed) {
            std::vector<NodeId> homes;
            for (const auto &r : read_set)
                homes.push_back(r.home);
            auto by_node = groupRemote(homes, ctx.node);
            auto fo = std::make_shared<Fanout>();
            for (const auto &[node, idx_list] : by_node)
                fo->pending.insert(node);
            // The version peeks always run against the home's table
            // even when a hedge copy is served by a backup replica
            // (@p server): peeks are side-effect free, the fanout
            // absorbs duplicate replies per home, and the serial
            // executor (faults on) makes the cross-lane read safe.
            auto post_batch_to = [this, rs, fo, self, ctx](
                                     NodeId home, NodeId server,
                                     const std::vector<std::size_t>
                                         &idxs) {
                sys_.network.post(
                    MsgType::RdmaRead, ctx.node, server,
                    std::uint32_t(8 * idxs.size()),
                    [this, rs, fo, home, server, idxs, self, ctx] {
                        if (fo->closed)
                            return; // stale delivery of an old batch
                        auto &read_set = *rs;
                        bool ok = true;
                        for (auto i : idxs) {
                            const auto &r = read_set[i];
                            nicAccessLines(
                                server, sys_.placement.addrOf(r.record),
                                1);
                            const auto m =
                                sys_.node(home).versions.peek(
                                    r.record);
                            if (m.version != r.version ||
                                (m.lockOwner != 0 &&
                                 m.lockOwner != self))
                                ok = false;
                        }
                        sys_.network.post(
                            MsgType::RdmaRead, server, ctx.node,
                            std::uint32_t(16 * idxs.size()),
                            [this, fo, home, ok] {
                                fo->reply(sys_.kernel, home, ok);
                            });
                    });
            };
            auto post_batch = [post_batch_to](
                                  NodeId home,
                                  const std::vector<std::size_t>
                                      &idxs) {
                post_batch_to(home, home, idxs);
            };
            for (const auto &[node, idx_list] : by_node) {
                co_await core.occupy(cycles(costs.rdmaPostCycles));
                post_batch(node, idx_list);
                // Validation hedge: when the home looks slow, race a
                // duplicate batch against a backup replica after a
                // short wait; whichever reply lands first settles the
                // fanout slot (duplicates are absorbed).
                net::HedgeSpec hedge;
                if (!idx_list.empty() &&
                    hedgeTarget(ctx, node,
                                read_set[idx_list.front()].record,
                                hedge)) {
                    sys_.kernel.schedule(
                        hedge.delay,
                        [this, fo, post_batch_to, home = node,
                         backup = hedge.backup, idxs = idx_list] {
                            if (fo->closed ||
                                fo->pending.count(home) == 0 ||
                                sys_.network.nodeDead(backup))
                                return;
                            sys_.network.noteHedgedSend();
                            post_batch_to(home, backup, idxs);
                        });
                }
            }
            co_await awaitFanout(fo, by_node, post_batch);
            std::uint64_t remote_reads = 0;
            for (const auto &r : read_set)
                remote_reads += r.home != ctx.node ? 1 : 0;
            co_await core.occupy(
                cycles(std::int64_t(costs.rdmaPollCycles) *
                           std::int64_t(by_node.size()) +
                       std::int64_t(costs.versionCompareCycles) *
                           std::int64_t(remote_reads)));
            validation_failed = fo->anyFail;
            validation_timed_out = !fo->pending.empty();
        }
        st().addOverhead(Overhead::ConflictDetection,
                           kernel.now() - t0);
    }
    if (validation_failed) {
        st().addSquash(validation_timed_out
                             ? SquashReason::CommitTimeout
                             : SquashReason::ValidationFailure);
        releaseLocks(ctx, self, write_set);
        if (sys_.audit)
            sys_.audit->noteAbort(audit_id);
        retire();
        co_return;
    }

    // ---------------- Replica staging (recovery configured only) ------------
    // Section V-A adapted to SW-Impl: with the write set locked and the
    // read set validated, stage every write at its backups and wait for
    // their persistence Acks before deciding. A missing Ack (lost
    // message or dead backup) aborts the attempt. Gated on the recovery
    // subsystem: the Baseline had no replication before crash recovery
    // existed, and recovery-off runs keep their original timing.
    std::set<NodeId> replica_nodes;
    if (sys_.replicas && recoveryOn() && !write_set.empty()) {
        Tick t0 = kernel.now();
        std::map<NodeId,
                 std::vector<std::pair<std::uint64_t, std::int64_t>>>
            plan;
        for (const auto &w : write_set)
            for (NodeId b : sys_.replicas->backupsOf(w.record, w.home))
                plan[b].emplace_back(w.record, w.value);
        if (!plan.empty()) {
            const Tick persist =
                sys_.replicas->config().persistLatency();
            auto pending = std::make_shared<std::uint32_t>(
                std::uint32_t(plan.size()));
            auto acked = std::make_shared<std::set<NodeId>>();
            auto timed_out = std::make_shared<bool>(false);
            auto c = ctrl; // keep-alive for the handlers below
            // Replica acks feed the SLO tracker: hedge wins attribute
            // read samples to the fast replica, so without these the
            // tracker is blind to a slow backup and replicaDeadline
            // never inflates.
            const Tick sentAt = kernel.now();
            const NodeId obs = ctx.node;
            auto ack = [this, pending, acked, c, sentAt, obs](NodeId b) {
                if (sys_.slo)
                    sys_.slo->observe(obs, b,
                                      sys_.kernel.now() - sentAt);
                if (c->finished || *pending == 0)
                    return;
                if (!acked->insert(b).second)
                    return; // replayed staging Ack
                *pending -= 1;
                if (*pending == 0)
                    c->wake.notify(sys_.kernel);
            };
            for (auto &[b, updates] : plan) {
                replica_nodes.insert(b);
                if (sys_.replicas->injectLoss())
                    continue; // the update never arrives: no Ack
                const std::uint64_t id_c = self;
                auto payload = updates;
                if (b == ctx.node) {
                    kernel.schedule(persist, [this, id_c, payload, ack,
                                              b] {
                        auto &store = sys_.replicas->store(b);
                        for (const auto &[rec, val] : payload)
                            store.stage(id_c, rec, val);
                        ack(b);
                    });
                } else {
                    NodeId x = ctx.node;
                    sys_.network.post(
                        MsgType::RdmaWrite, ctx.node, b,
                        std::uint32_t(payload.size() *
                                      (layout_.payloadBytes() + 16)),
                        [this, id_c, payload, ack, persist, b, x] {
                            auto &store = sys_.replicas->store(b);
                            for (const auto &[rec, val] : payload)
                                store.stage(id_c, rec, val);
                            sys_.kernel.schedule(
                                persist, [this, ack, b, x] {
                                    sys_.network.post(
                                        MsgType::Ack, b, x, 16,
                                        [ack, b] { ack(b); });
                                });
                        });
                }
            }
            kernel.schedule(replicaDeadline(ctx, plan,
                                            4 * sys_.config.netRoundTrip +
                                                2 * persist + us(2)),
                            [this, c, pending, timed_out] {
                                if (*pending > 0) {
                                    *timed_out = true;
                                    c->wake.notify(sys_.kernel);
                                }
                            });
            while (*pending > 0 && !*timed_out) {
                co_await ctrl->wake.wait();
                if (sys_.network.nodeDead(ctx.node))
                    throw sim::NodeDead{};
            }
            st().addOverhead(Overhead::ConflictDetection,
                               kernel.now() - t0);
            if (*pending > 0) {
                // Staging incomplete: abort and drop whatever landed.
                sys_.replicas->noteAbort();
                for (const auto &[b, updates] : plan) {
                    (void)updates;
                    if (b == ctx.node) {
                        sys_.replicas->store(b).discard(self);
                    } else {
                        const std::uint64_t id_c = self;
                        reliablePost(MsgType::RdmaWrite, ctx.node, b, 16,
                                     [this, b, id_c] {
                                         sys_.replicas->store(b)
                                             .discard(id_c);
                                     });
                    }
                }
                st().addSquash(SquashReason::ReplicaTimeout);
                releaseLocks(ctx, self, write_set);
                if (sys_.audit)
                    sys_.audit->noteAbort(audit_id);
                retire();
                co_return;
            }
        }
    }
    const Tick validation_end = kernel.now();

    // ---------------- Commit phase -----------------------------------------
    // Local writes: apply value + bump version + unlock atomically (one
    // simulated instant), then charge the time.
    {
        // Serialization point (recovery on): the decision record, the
        // local applies below, the staged-image promotions and the
        // remote-write journal all land in this one resumption, so
        // recovery observes either no decision (safe to abort -- the
        // client was never acked) or a fully recorded one.
        if (recoveryOn()) {
            std::uint64_t commit_seq = 0;
            if (sys_.replicas) {
                commit_seq = sys_.replicas->nextCommitSeq();
                ctrl->commitSeq = commit_seq;
                // hades-analyze: epoch-fence-ok (coordinator's own-attempt journal entry; stale deliveries are fenced by Network::advanceEpoch, and the in-doubt scan resolves entries by attempt id)
                sys_.decisionLog[self] = commit_seq;
                for (const auto &w : write_set)
                    sys_.replicas->noteCommittedWrite(w.record,
                                                      commit_seq);
            }
            ctrl->decisionRecorded = true;
            if (sys_.replicas && !replica_nodes.empty()) {
                sys_.replicas->noteCommit();
                for (NodeId b : replica_nodes) {
                    if (b == ctx.node) {
                        sys_.replicas->store(b).promote(self,
                                                        commit_seq);
                    } else {
                        // promote() is idempotent and max-seq-wins
                        // absorbs reordered deliveries.
                        const std::uint64_t id_c = self;
                        reliablePost(MsgType::RdmaWrite, ctx.node, b,
                                     16, [this, b, id_c, commit_seq] {
                                         sys_.replicas->store(b).promote(
                                             id_c, commit_seq);
                                     });
                    }
                }
            }
            // Journal the decided remote writes: if a commit-write
            // message below never lands (either endpoint crashes
            // permanently), the view change replays the entry.
            for (const auto &w : write_set)
                if (w.home != ctx.node)
                    // hades-analyze: epoch-fence-ok (coordinator's own-attempt journal entry; stale deliveries are fenced by Network::advanceEpoch and replay is idempotent per record)
                    sys_.pendingApplies[{self, w.record}] =
                        PendingApply{w.home, w.value, audit_id};
        }
        std::int64_t local_cycles = 0;
        Tick mem_ticks = 0;
        Tick t_manage = 0, t_version = 0;
        for (auto &w : write_set) {
            if (w.home != ctx.node)
                continue;
            std::uint64_t v = sys_.data.write(w.record, w.value);
            if (sys_.audit)
                sys_.audit->noteWrite(audit_id, w.record, v);
            sys_.node(w.home).versions.bumpVersion(w.record);
            sys_.node(w.home).versions.unlock(w.record, self);
            w.locked = false;
            t_manage += cycles(costs.setWalkCycles +
                               copyCycles(w.payloadBytes));
            t_version += cycles(costs.versionUpdateCycles);
            local_cycles += costs.localCasCycles; // unlock CAS
            mem_ticks += accessLines(
                w.home, ctx.core, sys_.placement.addrOf(w.record),
                txn::RecordLayout{w.payloadBytes}.payloadLines());
        }
        st().addOverhead(Overhead::ManageSets, t_manage);
        st().addOverhead(Overhead::UpdateVersion, t_version);
        co_await core.occupy(t_manage + t_version +
                             cycles(local_cycles) + mem_ticks);

        // Remote writes: one unserialized message per node carrying the
        // data, version updates, and unlocks (optimizations 2 and 3: no
        // waiting for completion).
        std::vector<NodeId> homes;
        for (const auto &w : write_set)
            homes.push_back(w.home);
        auto by_node = groupRemote(homes, ctx.node);
        for (auto &[node, idxs] : by_node) {
            NodeId home = node;
            std::vector<WriteEntry> payload;
            std::uint64_t batch_bytes = 0;
            for (auto i : idxs) {
                payload.push_back(write_set[i]);
                write_set[i].locked = false;
                batch_bytes += write_set[i].payloadBytes + 16;
            }
            Tick t0 = kernel.now();
            co_await core.occupy(
                cycles(costs.rdmaPostCycles +
                       std::int64_t(costs.setWalkCycles) *
                           std::int64_t(idxs.size()) +
                       copyCycles(batch_bytes)));
            st().addOverhead(Overhead::ManageSets, kernel.now() - t0);
            // Faults on: the commit write must eventually arrive (it
            // both applies the data and releases the locks), so it
            // rides the reliable channel. The first delivered copy
            // releases the lock, so a replayed copy is skipped by the
            // owner check (self is epoch-unique: no ABA with later
            // attempts of the same context).
            reliablePost(
                MsgType::RdmaWrite, ctx.node, home,
                std::uint32_t(batch_bytes),
                [this, home, payload, self, audit_id] {
                    for (const auto &w : payload) {
                        if (faultsOn() &&
                            sys_.node(home).versions.peek(w.record)
                                    .lockOwner != self)
                            continue;
                        std::uint64_t v =
                            sys_.data.write(w.record, w.value);
                        if (sys_.audit)
                            sys_.audit->noteWrite(audit_id, w.record,
                                                  v);
                        sys_.node(home).versions.bumpVersion(w.record);
                        sys_.node(home).versions.unlock(w.record, self);
                        nicAccessLines(
                            home, sys_.placement.addrOf(w.record),
                            txn::RecordLayout{w.payloadBytes}
                                .payloadLines());
                        if (recoveryOn())
                            // hades-analyze: epoch-fence-ok (journal retirement keyed by attempt id; a view change that already replayed the entry makes this erase a no-op)
                            sys_.pendingApplies.erase(
                                {self, w.record});
                    }
                });
        }
    }
    const Tick commit_end = kernel.now();

    st().execPhase.add(double(exec_end - exec_start));
    st().validationPhase.add(double(validation_end - exec_end));
    st().commitPhase.add(double(commit_end - validation_end));
    committed = true;
    if (sys_.audit)
        sys_.audit->noteCommit(audit_id);
    retire();
}

sim::Task
BaselineEngine::attemptPessimistic(ExecCtx ctx,
                                   const txn::TxnProgram &prog)
{
    ensureSerialForLockMode();
    auto &kernel = sys_.kernel;
    auto &core = coreOf(ctx);
    const auto &costs = sys_.config.costs;
    std::uint64_t self = ctx.packed();
    if (faultsOn() || recoveryOn())
        self |= (nextEpoch(ctx) & 0x3fff) << kEpochShift;
    const std::uint64_t audit_id =
        sys_.audit ? sys_.audit->begin(self) : 0;

    // Recovery on: register with the squash router so a view change
    // can abort this attempt (and drain its locks) if this node dies.
    std::shared_ptr<AttemptControl> ctrl;
    if (recoveryOn()) {
        ctrl = std::make_shared<AttemptControl>();
        ctrl->auditId = audit_id;
        sys_.routerFor(self).add(self, ctrl.get());
        attempts_[self] = ctrl;
    }

    while (tokenBusy_) {
        co_await sim::Delay{kernel, us(1)};
        // Fail-stop: the pure-Delay wait has no occupy() to throw for
        // us, so check for our own death explicitly.
        if (sys_.network.nodeDead(ctx.node))
            throw sim::NodeDead{};
    }
    tokenBusy_ = true;
    tokenOwner_ = ctx.node;

    // Lock every data record the transaction touches, in record-id
    // order (deadlock-free), waiting rather than aborting. Index
    // records are read-only and never locked.
    std::vector<std::uint64_t> records;
    for (const auto &r : prog.requests)
        if (!r.isIndex)
            records.push_back(r.record);
    std::sort(records.begin(), records.end());
    records.erase(std::unique(records.begin(), records.end()),
                  records.end());

    // Membership: pin the whole footprint up front -- the lock-all
    // fallback cannot be squash-retried, so migration must defer every
    // record it holds (or will hold) until this attempt finishes.
    if (ctrl && membershipOn()) {
        ctrl->pinned = true;
        for (auto rec : records)
            ctrl->recordsTouched.insert(rec);
    }

    for (auto rec : records) {
        for (;;) {
            // Re-resolve the home every round: a view change may have
            // re-homed the record away from a dead node mid-wait.
            NodeId home = sys_.placement.homeOf(rec);
            bool got = false;
            if (home == ctx.node) {
                co_await core.occupy(cycles(costs.localCasCycles));
                got = sys_.node(home).versions.tryLock(rec, self);
            } else {
                co_await core.occupy(cycles(costs.rdmaPostCycles));
                co_await sys_.network.roundTrip(
                    MsgType::RdmaCas, ctx.node, home, 16, 8,
                    [&]() -> Tick {
                        got = sys_.node(home).versions.tryLock(rec,
                                                               self);
                        return sys_.cycles(20);
                    });
            }
            if (got) {
                if (sys_.audit)
                    sys_.audit->noteLockAcquire(self);
                break;
            }
            co_await sim::Delay{kernel, cycles(500)};
            if (sys_.network.nodeDead(ctx.node))
                throw sim::NodeDead{};
        }
    }

    // Execute with all permissions held. Recovery on: writes are
    // buffered and applied in one atomic instant at the end (below), so
    // a crash mid-execution leaves ground truth untouched and recovery
    // can abort the attempt cleanly -- incremental applies would be
    // unrecoverable, as the not-yet-computed tail of the write set only
    // exists in this (dead) coroutine frame. Recovery off keeps the
    // original incremental applies.
    struct BufferedWrite
    {
        std::uint64_t record;
        NodeId home;
        std::int64_t value;
    };
    std::vector<BufferedWrite> buffered;
    std::vector<std::int64_t> read_vals;
    for (const auto &req : prog.requests) {
        co_await core.occupy(cycles(prog.computeCyclesPerRequest));
        NodeId home = sys_.placement.homeOf(req.record);
        Addr base = sys_.placement.addrOf(req.record);
        const txn::RecordLayout lay = layoutOf(req, layout_);
        if (req.isIndex && !req.isWrite) {
            co_await indexRead(ctx, home,
                               AddrRange{base, lay.swBytes()});
            continue;
        }
        if (home == ctx.node) {
            co_await core.occupy(accessLines(home, ctx.core, base,
                                             lay.swLines()));
        } else {
            co_await sys_.network.roundTrip(
                MsgType::RdmaRead, ctx.node, home, 24,
                lay.swLines() * kCacheLineBytes, [&]() -> Tick {
                    return nicAccessLines(home, base, lay.swLines());
                });
        }
        if (req.isWrite) {
            std::int64_t value =
                req.derivedFromReadIdx >= 0
                    ? read_vals[std::size_t(req.derivedFromReadIdx)] +
                          req.delta
                    : req.delta;
            if (recoveryOn()) {
                buffered.push_back(
                    BufferedWrite{req.record, home, value});
            } else {
                std::uint64_t v = sys_.data.write(req.record, value);
                if (sys_.audit)
                    sys_.audit->noteWrite(audit_id, req.record, v);
                sys_.node(home).versions.bumpVersion(req.record);
            }
        } else {
            // Read-your-own-write: a buffered value shadows ground
            // truth (which has not been updated yet in buffered mode).
            auto bit = std::find_if(buffered.rbegin(), buffered.rend(),
                                    [&](const BufferedWrite &w) {
                                        return w.record == req.record;
                                    });
            if (bit != buffered.rend()) {
                read_vals.push_back(bit->value);
            } else {
                read_vals.push_back(sys_.data.read(req.record));
                if (sys_.audit)
                    sys_.audit->noteRead(audit_id, req.record,
                                         sys_.data.version(req.record));
            }
        }
    }

    // Recovery on: serialization point. The decision record, all
    // ground-truth applies, version bumps and backup images land in one
    // kernel event -- the record-level equivalents of the messages this
    // saves are a model shortcut the lock-all fallback already takes
    // for its incremental remote applies.
    if (recoveryOn() && !buffered.empty()) {
        std::uint64_t commit_seq = 0;
        if (sys_.replicas) {
            commit_seq = sys_.replicas->nextCommitSeq();
            // hades-analyze: epoch-fence-ok (coordinator's own-attempt journal entry; stale deliveries are fenced by Network::advanceEpoch, and the in-doubt scan resolves entries by attempt id)
            sys_.decisionLog[self] = commit_seq;
            for (const auto &w : buffered)
                sys_.replicas->noteCommittedWrite(w.record, commit_seq);
        }
        if (ctrl) {
            ctrl->commitSeq = commit_seq;
            ctrl->decisionRecorded = true;
        }
        for (const auto &w : buffered) {
            std::uint64_t v = sys_.data.write(w.record, w.value);
            if (sys_.audit)
                sys_.audit->noteWrite(audit_id, w.record, v);
            sys_.node(w.home).versions.bumpVersion(w.record);
            if (sys_.replicas) {
                for (NodeId b :
                     sys_.replicas->backupsOf(w.record, w.home))
                    sys_.replicas->store(b).installDurable(
                        w.record, w.value, commit_seq);
            }
        }
        if (sys_.replicas)
            sys_.replicas->noteCommit();
    }

    // Unlock everything (batched per node, unserialized).
    std::map<NodeId, std::vector<std::uint64_t>> by_node;
    for (auto rec : records)
        by_node[sys_.placement.homeOf(rec)].push_back(rec);
    for (auto &[node, recs] : by_node) {
        NodeId home = node;
        if (home == ctx.node) {
            for (auto rec : recs) {
                co_await core.occupy(cycles(costs.localCasCycles));
                sys_.node(home).versions.unlock(rec, self);
            }
        } else {
            auto payload = recs;
            reliablePost(MsgType::RdmaWrite, ctx.node, home,
                         std::uint32_t(8 * payload.size()),
                         [this, home, payload, self] {
                             for (auto rec : payload)
                                 sys_.node(home).versions.unlock(
                                     rec, self);
                         });
        }
    }
    tokenBusy_ = false;
    if (sys_.audit)
        sys_.audit->noteCommit(audit_id);
    if (ctrl) {
        ctrl->finished = true;
        sys_.routerFor(self).remove(self);
        attempts_.erase(self);
    }
}

} // namespace hades::protocol
