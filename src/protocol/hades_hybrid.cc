#include "protocol/hades_hybrid.hh"

#include <algorithm>

#include "common/log.hh"

namespace hades::protocol
{

using net::MsgType;
using txn::Overhead;
using txn::SquashReason;

namespace
{

std::vector<Addr>
linesOf(AddrRange range)
{
    std::vector<Addr> out;
    for (Addr l = range.firstLine(); l <= range.lastLine();
         l += kCacheLineBytes)
        out.push_back(l);
    return out;
}

constexpr unsigned kEpochShift = 48;

} // namespace

HadesHybridEngine::HadesHybridEngine(System &sys,
                                     std::uint32_t payload_bytes)
    : TxnEngine(sys), layout_(payload_bytes)
{}

bool
HadesHybridEngine::probeFilter(const bloom::AddressFilter &bf, Addr line,
                               bool truth)
{
    st().bfConflictChecks += 1;
    bool hit = bf.mayContain(line);
    if (hit && !truth)
        st().bfFalsePositives += 1;
    if (sys_.audit)
        sys_.audit->noteFilterProbe(hit, truth, "hybrid-conflict-probe");
    return hit;
}

std::vector<Addr>
HadesHybridEngine::recordLines(std::uint64_t record) const
{
    Addr base = sys_.placement.addrOf(record);
    std::vector<Addr> out;
    for (std::uint32_t i = 0; i < layout_.swLines(); ++i)
        out.push_back(lineAddr(base) + Addr{i} * kCacheLineBytes);
    return out;
}

sim::Task
HadesHybridEngine::run(ExecCtx ctx, const txn::TxnProgram &prog)
{
    const Tick start = sys_.kernel.now();
    sys_.tracer.log(start, sim::TraceEvent::TxnStart, ctx.packed(),
                    ctx.node);
    std::uint32_t squash_count = 0;
    for (;;) {
        throwIfNodeDead(ctx);
        st().attempts += 1;
        std::uint64_t epoch = (nextEpoch(ctx) & 0x3fff);
        std::uint64_t id = ctx.packed() | (epoch << kEpochShift);
        bool committed = false;
        co_await attempt(ctx, prog, id, committed);
        if (committed)
            break;
        squash_count += 1;
        co_await retryGate(ctx);
        if (squash_count >= sys_.config.tuning.maxSquashesBeforeLockMode) {
            st().lockModeFallbacks += 1;
            co_await attemptPessimistic(ctx, prog);
            break;
        }
        co_await sim::Delay{sys_.kernel, backoff(squash_count)};
    }
    st().committed += 1;
    st().latency.add(std::uint64_t(sys_.kernel.now() - start));
    sys_.tracer.log(sys_.kernel.now(), sim::TraceEvent::TxnCommit,
                    ctx.packed(), ctx.node);
}

sim::Task
HadesHybridEngine::localAccess(ExecCtx ctx, AttemptPtr at,
                               const txn::Request &req,
                               std::vector<std::int64_t> &read_vals)
{
    auto &kernel = sys_.kernel;
    auto &core = coreOf(ctx);
    auto &node = sys_.node(ctx.node);
    const auto &costs = sys_.config.costs;
    const Addr base = sys_.placement.addrOf(req.record);
    const txn::RecordLayout lay = layoutOf(req, layout_);
    const std::uint32_t record_lines = lay.swLines();

    // Software accesses still traverse the directory when they miss in
    // the private caches, so a partially locked directory stalls them.
    int stall_guard = 0;
    while (node.lockBank.accessBlocked(lineAddr(base), req.isWrite,
                                       at->id)) {
        co_await sim::Delay{kernel, cycles(sys_.config.llcCycles)};
        checkSquash(at);
        always_assert(++stall_guard < 1000000,
                      "HADES-H local access stall did not resolve");
    }

    if (req.isWrite) {
        std::int64_t value =
            req.derivedFromReadIdx >= 0
                ? read_vals[std::size_t(req.derivedFromReadIdx)] +
                      req.delta
                : req.delta;
        auto it = std::find_if(at->localWrites.begin(),
                               at->localWrites.end(),
                               [&](const LocalWriteEntry &w) {
                                   return w.record == req.record;
                               });
        if (it != at->localWrites.end()) {
            co_await core.occupy(cycles(costs.setWalkCycles));
            it->value = value;
            co_return;
        }

        // RD before WR at record granularity.
        Tick t0 = kernel.now();
        co_await core.occupy(
            accessLines(ctx.node, ctx.core, base, record_lines));
        st().addOverhead(Overhead::RdBeforeWr, kernel.now() - t0);

        const auto m = node.versions.peek(req.record);
        t0 = kernel.now();
        co_await core.occupy(
            cycles(costs.setInsertCycles +
                   copyCycles(lay.payloadBytes())));
        st().addOverhead(Overhead::ManageSets, kernel.now() - t0);
        at->localWrites.push_back(
            LocalWriteEntry{req.record, m.version, value});
    } else {
        auto wit = std::find_if(at->localWrites.begin(),
                                at->localWrites.end(),
                                [&](const LocalWriteEntry &w) {
                                    return w.record == req.record;
                                });
        if (wit != at->localWrites.end()) {
            co_await core.occupy(cycles(costs.setWalkCycles));
            read_vals.push_back(wit->value);
            co_return;
        }

        co_await core.occupy(
            accessLines(ctx.node, ctx.core, base, record_lines));
        const auto m = node.versions.peek(req.record);
        std::int64_t value = sys_.data.read(req.record);
        // Capture the ground-truth version at the same instant as the
        // value: simulated time passes below before the entry lands in
        // the read set.
        const std::uint64_t gt_version = sys_.data.version(req.record);

        // Read atomicity: per-line version compares + copy-out.
        Tick t0 = kernel.now();
        co_await core.occupy(cycles(
            std::int64_t(costs.atomicityCheckPerLineCycles) *
                lay.payloadLines() +
            copyCycles(lay.payloadBytes())));
        st().addOverhead(Overhead::ReadAtomicity, kernel.now() - t0);

        if (!req.isIndex) {
            t0 = kernel.now();
            co_await core.occupy(cycles(costs.setInsertCycles));
            st().addOverhead(Overhead::ManageSets, kernel.now() - t0);
            at->localReads.push_back(
                LocalReadEntry{req.record, m.version});
            read_vals.push_back(value);
            if (sys_.audit)
                sys_.audit->noteRead(at->auditId, req.record,
                                     gt_version);
        }
    }
}

sim::Task
HadesHybridEngine::remoteAccess(ExecCtx ctx, AttemptPtr at, NodeId home,
                                std::uint64_t record, AddrRange range,
                                bool is_write)
{
    auto &kernel = sys_.kernel;
    auto &core = coreOf(ctx);
    const auto lines = linesOf(range);

    bool all_cached = true;
    for (Addr line : lines) {
        bool cached = is_write ? at->recordedWr.contains(line)
                               : (at->recordedRd.contains(line) ||
                                  at->recordedWr.contains(line));
        all_cached &= cached;
    }
    if (all_cached) {
        for (Addr line : lines)
            co_await core.occupy(
                sys_.node(ctx.node).memory.access(ctx.core, line)
                    .latency);
        co_return;
    }

    at->nodesInvolved.insert(home);
    auto &nic4b = sys_.node(ctx.node).nic.localState(at->id);
    nic4b.nodesInvolved.insert(home);

    std::vector<Addr> filter_lines;
    std::vector<Addr> fetch_lines;
    if (is_write) {
        for (Addr line : lines) {
            bool full = line >= range.base &&
                        line + kCacheLineBytes <= range.end();
            if (!full) {
                filter_lines.push_back(line);
                fetch_lines.push_back(line);
            }
        }
        nic4b.writesByNode[home].push_back(range);
        nic4b.bufferedBytes += range.bytes;
    } else {
        filter_lines = lines;
        fetch_lines = lines;
    }

    if (!fetch_lines.empty()) {
        co_await core.occupy(cycles(sys_.config.costs.rdmaPostCycles));
        // As in HADES: the response of a read fetch carries the
        // record's committed value back. at_dst captures it (with its
        // ground-truth version) into this frame at the home node --
        // the only lane allowed to touch the home's NIC filters and
        // ground-truth bucket -- and the caller installs it into the
        // attempt's read cache below.
        std::int64_t fetched_val = 0;
        std::uint64_t fetched_ver = 0;
        for (;;) {
            bool blocked = false;
            // Always acts on the home node's state: a hedge copy served
            // by a backup is a wire duplicate, so the home's conflict
            // tracking still sees every access (inserts idempotent).
            auto at_dst = [&]() -> Tick {
                auto &ynode = sys_.node(home);
                for (Addr line : lines) {
                    if (ynode.lockBank.accessBlocked(line, is_write,
                                                     at->id)) {
                        blocked = true;
                        return sys_.cycles(20);
                    }
                }
                auto &filters = ynode.nic.remoteFilters(at->id);
                for (Addr line : filter_lines) {
                    if (is_write)
                        filters.insertWrite(line);
                    else
                        filters.insertRead(line);
                }
                if (!is_write) {
                    fetched_val = sys_.data.read(record);
                    fetched_ver = sys_.data.version(record);
                }
                Tick t = sys_.cycles(
                    std::int64_t(sys_.config.crcHashCycles) *
                    std::int64_t(filter_lines.size()));
                for (Addr line : fetch_lines)
                    t += ynode.memory.nicAccess(line).latency / 4;
                return t;
            };
            const std::uint32_t resp_bytes =
                std::uint32_t(fetch_lines.size()) * kCacheLineBytes;
            net::HedgeSpec hedge;
            if (!is_write && hedgeTarget(ctx, home, record, hedge)) {
                co_await sys_.network.hedgedRoundTrip(
                    MsgType::RdmaRead, ctx.node, home, hedge, 24,
                    resp_bytes, at_dst);
            } else {
                co_await sys_.network.roundTrip(
                    MsgType::RdmaRead, ctx.node, home, 24, resp_bytes,
                    at_dst);
            }
            if (!blocked)
                break;
            co_await sim::Delay{kernel, ns(300)};
            checkSquash(at);
        }
        if (!is_write)
            at->remoteReadCache[record] = {fetched_val, fetched_ver};
    }

    for (Addr line : fetch_lines) {
        sys_.node(ctx.node).memory.access(ctx.core, line);
        if (is_write)
            at->recordedWr.insert(line);
        else
            at->recordedRd.insert(line);
    }
    if (is_write) {
        for (Addr line : lines)
            at->recordedWr.insert(line);
    }
}

sim::Task
HadesHybridEngine::commit(ExecCtx ctx, AttemptPtr at)
{
    auto &kernel = sys_.kernel;
    auto &core = coreOf(ctx);
    auto &node = sys_.node(ctx.node);
    const auto &costs = sys_.config.costs;
    const std::uint64_t id = at->id;

    // --- Build the NIC-resident local BFs from the software sets ------------
    std::vector<Addr> local_write_lines;
    {
        std::uint32_t hashed = 0;
        for (const auto &r : at->localReads) {
            for (Addr line : recordLines(r.record)) {
                at->nicLocalReadBf.insert(line);
                at->ctrl.localReadLines.insert(line);
                ++hashed;
            }
        }
        for (const auto &w : at->localWrites) {
            for (Addr line : recordLines(w.record)) {
                at->nicLocalWriteBf.insert(line);
                at->ctrl.localWriteLines.insert(line);
                local_write_lines.push_back(line);
                ++hashed;
            }
        }
        // Software passes the addresses to the NIC; the NIC hashes them.
        co_await core.occupy(
            cycles(costs.rdmaPostCycles +
                   std::int64_t(sys_.config.crcHashCycles) * hashed));
        checkSquash(at);
    }
    // The NIC-built filters must cover the exact local footprint.
    if (sys_.audit) {
        sys_.audit->checkFilterCovers(at->nicLocalReadBf,
                                      at->ctrl.localReadLines,
                                      "hybrid-nic-local-read-bf");
        sys_.audit->checkFilterCovers(at->nicLocalWriteBf,
                                      at->ctrl.localWriteLines,
                                      "hybrid-nic-local-write-bf");
    }

    // --- Partially lock the local directory ---------------------------------
    for (;;) {
        auto acq = node.lockBank.tryAcquire(id, at->nicLocalReadBf,
                                            at->nicLocalWriteBf,
                                            local_write_lines);
        if (acq == bloom::AcquireResult::Acquired) {
            if (sys_.audit)
                sys_.audit->noteLockAcquire(id);
            break;
        }
        if (acq == bloom::AcquireResult::Conflict)
            throw Squashed{SquashReason::LockFailure};
        co_await sim::Delay{sys_.kernel, ns(200)};
        checkSquash(at);
    }
    at->localDirLocked = true;

    // --- L-R conflicts: LocalWriteBF vs the NIC's remote filters -------------
    // Snapshot the victims before squashing any: squashing a remote
    // victim awaits a network round trip, and the NIC's remote-filter
    // map mutates while this frame is suspended. The filters' exact
    // shadow sets double as the probe ground truth -- both live at
    // this node, on this lane.
    std::vector<std::uint64_t> victims;
    for (Addr line : local_write_lines) {
        for (const auto &[k, filters] : node.nic.remote()) {
            if (k == id)
                continue;
            bool hit = probeFilter(filters.readBf, line,
                                   filters.readsContain(line)) ||
                       probeFilter(filters.writeBf, line,
                                   filters.writesContain(line));
            if (hit)
                victims.push_back(k);
        }
    }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());
    for (std::uint64_t k : victims) {
        auto outcome = SquashOutcome::NotFound;
        co_await squashVictim(ctx.node, k, SquashReason::LazyConflict,
                              outcome);
        if (outcome == SquashOutcome::Uncommittable) {
            // The victim is past its serialization point; the only
            // safe resolution is to squash ourselves.
            sys_.routerFor(id).squash(sys_.kernel, id,
                                      SquashReason::LazyConflict);
        }
        checkSquash(at); // throws if we squashed ourselves above
    }
    co_await core.occupy(
        cycles(2 * std::int64_t(local_write_lines.size()) + 10));
    checkSquash(at);

    // --- Intend-to-commit to involved remote nodes ---------------------------
    at->acksPending = std::uint32_t(at->nodesInvolved.size());
    auto &nic4b = node.nic.localState(id);
    for (NodeId y : at->nodesInvolved) {
        std::vector<Addr> itc_lines;
        auto wit = nic4b.writesByNode.find(y);
        if (wit != nic4b.writesByNode.end()) {
            for (const auto &range : wit->second)
                for (Addr l : linesOf(range))
                    itc_lines.push_back(l);
            std::sort(itc_lines.begin(), itc_lines.end());
            itc_lines.erase(
                std::unique(itc_lines.begin(), itc_lines.end()),
                itc_lines.end());
        }
        at->itcLines[y] = itc_lines; // kept for timeout resends
        // hades-analyze: verb-reliability-ok (initial send; armCommitResend re-posts from itcLines until Ack or CommitTimeout squash)
        sys_.network.post(
            MsgType::IntendToCommit, ctx.node, y,
            std::uint32_t(8 * itc_lines.size() + 16),
            [this, y, at, itc_lines] {
                spawnIntendToCommit(y, at, itc_lines);
            });
    }
    // --- Section V-A: replica updates ride the two-phase commit -----------
    // Same flow as HADES: each backup stages the update in temporary
    // durable storage, persists it, and Acks; a lost update leaves the
    // Ack count short and the deadline below aborts the transaction.
    // Gated on the recovery subsystem: the hybrid engine had no
    // replication before crash recovery existed, and keeping the extra
    // round trip out of recovery-off runs preserves their timing.
    if (sys_.replicas && recoveryOn() &&
        (!at->localWrites.empty() || !at->remoteWriteBuffer.empty())) {
        std::map<NodeId,
                 std::vector<std::pair<std::uint64_t, std::int64_t>>>
            plan;
        for (const auto &w : at->localWrites)
            for (NodeId b : sys_.replicas->backupsOf(w.record, ctx.node))
                plan[b].emplace_back(w.record, w.value);
        for (const auto &[rec, hv] : at->remoteWriteBuffer)
            for (NodeId b : sys_.replicas->backupsOf(rec, hv.first))
                plan[b].emplace_back(rec, hv.second);
        at->acksPending += std::uint32_t(plan.size());
        const Tick persist = sys_.replicas->config().persistLatency();
        // Replica acks are RTT observations too: without them the
        // tracker is blind to a slow backup (hedge wins attribute the
        // read samples to the fast replica) and replicaDeadline never
        // inflates.
        const Tick sentAt = sys_.kernel.now();
        const NodeId obs = ctx.node;
        auto ack = [this, at, sentAt, obs](NodeId b) {
            if (sys_.slo)
                sys_.slo->observe(obs, b, sys_.kernel.now() - sentAt);
            if (at->finished || at->ctrl.squashRequested)
                return;
            if (!at->replicaAckedBy.insert(b).second)
                return; // replayed staging Ack
            if (at->acksPending > 0) {
                at->acksPending -= 1;
                if (at->acksPending == 0)
                    at->ctrl.wake.notify(sys_.kernel);
            }
        };
        for (auto &[b, updates] : plan) {
            at->replicaNodes.insert(b);
            if (sys_.replicas->injectLoss())
                continue; // the update never arrives: no Ack
            const std::uint64_t id_c = id;
            auto payload = updates;
            if (b == ctx.node) {
                sys_.kernel.schedule(persist, [this, at, id_c, payload,
                                               ack, b] {
                    auto &store = sys_.replicas->store(b);
                    for (const auto &[rec, val] : payload)
                        store.stage(id_c, rec, val);
                    ack(b);
                });
            } else {
                NodeId x = ctx.node;
                sys_.network.post(
                    MsgType::RdmaWrite, ctx.node, b,
                    std::uint32_t(payload.size() *
                                  (layout_.payloadBytes() + 16)),
                    [this, at, id_c, payload, ack, persist, b, x] {
                        auto &store = sys_.replicas->store(b);
                        for (const auto &[rec, val] : payload)
                            store.stage(id_c, rec, val);
                        sys_.kernel.schedule(persist, [this, at, ack,
                                                       b, x] {
                            sys_.network.post(MsgType::Ack, b, x, 16,
                                              [ack, b] { ack(b); });
                        });
                    });
            }
        }
        if (!plan.empty()) {
            Tick deadline = replicaDeadline(
                ctx, plan,
                4 * sys_.config.netRoundTrip + 2 * persist + us(2),
                &at->nodesInvolved);
            sys_.kernel.schedule(deadline, [this, at] {
                if (!at->finished && !at->ctrl.uncommittable &&
                    at->acksPending > 0) {
                    sys_.routerFor(at->id).squash(sys_.kernel, at->id,
                                       SquashReason::ReplicaTimeout);
                }
            });
        }
    }

    // Faults on: recover from lost Intend-to-commit/Ack messages.
    if (faultsOn() && at->acksPending > 0)
        armCommitResend(ctx, at, 0);

    while (at->acksPending > 0 && !at->ctrl.squashRequested)
        co_await at->ctrl.wake.wait();
    checkSquash(at);

    // --- Local Validation (software, Section V-D) ----------------------------
    {
        Tick t0 = kernel.now();
        bool failed = false;
        for (const auto &r : at->localReads) {
            Addr base = sys_.placement.addrOf(r.record);
            if (node.lockBank.accessBlocked(lineAddr(base), false, id)) {
                failed = true; // another commit owns these lines
                break;
            }
            co_await core.occupy(
                accessLines(ctx.node, ctx.core, base, 1) +
                cycles(costs.versionCompareCycles));
            if (node.versions.peek(r.record).version != r.version) {
                failed = true;
                break;
            }
        }
        if (!failed) {
            for (const auto &w : at->localWrites) {
                Addr base = sys_.placement.addrOf(w.record);
                co_await core.occupy(
                    accessLines(ctx.node, ctx.core, base, 1) +
                    cycles(costs.versionCompareCycles));
                if (node.versions.peek(w.record).version != w.version) {
                    failed = true;
                    break;
                }
            }
        }
        st().addOverhead(Overhead::ConflictDetection,
                           kernel.now() - t0);
        checkSquash(at);
        if (failed)
            throw Squashed{SquashReason::ValidationFailure};
    }

    // Serialization point: the transaction can no longer fail. With
    // replication on, the commit decision record (sequence draw), the
    // local ground-truth applies below and the staged-image promotions
    // all land in this one resumption, so recovery observes either no
    // decision or a fully recorded one.
    at->ctrl.uncommittable = true;
    std::uint64_t commit_seq = 0;
    if (sys_.replicas) {
        commit_seq = sys_.replicas->nextCommitSeq();
        at->ctrl.commitSeq = commit_seq;
        at->ctrl.decisionRecorded = true;
        if (recoveryOn())
            // hades-analyze: epoch-fence-ok (coordinator's own-attempt journal entry; stale deliveries are fenced by Network::advanceEpoch, and the in-doubt scan resolves entries by attempt id)
            sys_.decisionLog[id] = commit_seq;
        for (const auto &w : at->localWrites)
            sys_.replicas->noteCommittedWrite(w.record, commit_seq);
        for (const auto &[record, hv] : at->remoteWriteBuffer)
            sys_.replicas->noteCommittedWrite(record, commit_seq);
    }
    // Journal the decided remote writes now, atomically with the
    // decision record: the Validation posts below run in a *later*
    // resumption, and a crash in between must not lose them.
    if (recoveryOn()) {
        for (const auto &[record, hv] : at->remoteWriteBuffer)
            // hades-analyze: epoch-fence-ok (coordinator's own-attempt journal entry; stale deliveries are fenced by Network::advanceEpoch and replay is idempotent per record)
            sys_.pendingApplies[{id, record}] =
                PendingApply{hv.first, hv.second, at->auditId};
    }
    if (sys_.replicas && !at->replicaNodes.empty()) {
        sys_.replicas->noteCommit();
        for (NodeId b : at->replicaNodes) {
            if (b == ctx.node) {
                sys_.replicas->store(b).promote(id, commit_seq);
            } else {
                // promote() is idempotent and max-seq-wins absorbs
                // reordered deliveries.
                reliablePost(MsgType::Validation, ctx.node, b, 16,
                             [this, b, id, commit_seq] {
                                 sys_.replicas->store(b).promote(
                                     id, commit_seq);
                             });
            }
        }
    }

    // --- Apply local updates (atomic instant), then charge the time ----------
    {
        Tick apply_ticks = 0;
        Tick t_version = 0;
        for (const auto &w : at->localWrites) {
            std::uint64_t v = sys_.data.write(w.record, w.value);
            if (sys_.audit)
                sys_.audit->noteWrite(at->auditId, w.record, v);
            node.versions.bumpVersion(w.record);
            apply_ticks += accessLines(ctx.node, ctx.core,
                                       sys_.placement.addrOf(w.record),
                                       layout_.payloadLines());
            apply_ticks += cycles(copyCycles(layout_.payloadBytes()));
            t_version += cycles(costs.versionUpdateCycles);
        }
        st().addOverhead(Overhead::UpdateVersion, t_version);
        co_await core.occupy(apply_ticks + t_version);
    }

    // --- Validation + updates to remote nodes --------------------------------
    for (NodeId y : at->nodesInvolved) {
        std::uint32_t bytes = 16;
        std::vector<std::pair<std::uint64_t, std::int64_t>> updates;
        for (const auto &[record, hv] : at->remoteWriteBuffer) {
            if (hv.first == y) {
                updates.emplace_back(record, hv.second);
                bytes += layout_.payloadLines() * kCacheLineBytes;
            }
        }
        const std::uint64_t aid = at->auditId;
        reliablePost(
            MsgType::Validation, ctx.node, y, bytes,
            [this, y, id, aid, updates] {
                auto &ynode = sys_.node(y);
                // Replay guard: bumpVersion is NOT idempotent -- a
                // duplicated Validation must not bump versions (or
                // overwrite data) a second time after the first copy
                // cleared the filters and released the locks.
                if (faultsOn() && !ynode.nic.hasRemoteFilters(id))
                    return;
                for (const auto &[record, value] : updates) {
                    std::uint64_t v = sys_.data.write(record, value);
                    if (sys_.audit)
                        sys_.audit->noteWrite(aid, record, v);
                    // Bump the version so software Local Validations of
                    // transactions at y that read this record fail.
                    ynode.versions.bumpVersion(record);
                    nicAccessLines(y, sys_.placement.addrOf(record),
                                   layout_.payloadLines());
                    if (recoveryOn())
                        // hades-analyze: epoch-fence-ok (journal retirement keyed by attempt id; a view change that already replayed the entry makes this erase a no-op)
                        sys_.pendingApplies.erase({id, record});
                }
                ynode.lockBank.release(id);
                ynode.nic.clearRemoteFilters(id);
            });
    }

    // --- Unlock and clear ------------------------------------------------------
    co_await core.occupy(cycles(6));
    node.lockBank.release(id);
    at->localDirLocked = false;
}

sim::DetachedTask
HadesHybridEngine::spawnIntendToCommit(NodeId y, AttemptPtr at,
                                       std::vector<Addr> write_lines)
{
    try {
        co_await handleIntendToCommit(y, at, std::move(write_lines));
    } catch (const sim::NodeDead &) {
        // Fail-stop unwind of the remote handler; recovery tears the
        // dead node's state down, nothing to finish here.
    } catch (const sim::SerialRerunNeeded &) {
        // The rerun flag is already set; the run is being abandoned.
    }
}

sim::Task
HadesHybridEngine::handleIntendToCommit(NodeId y, AttemptPtr at,
                                        std::vector<Addr> write_lines)
{
    auto &kernel = sys_.kernel;
    auto &ynode = sys_.node(y);
    const std::uint64_t id = at->id;

    // Serial executors only: with faults on, a duplicated or resent
    // delivery can arrive after the committer finished or was squashed
    // (its cleanup messages take care of the state here). Fault-free
    // there is exactly one delivery and it precedes any cleanup on
    // this (src,dst) channel, so the coordinator-side flags need not
    // -- and, under worker threads, must not -- be read on y's lane.
    if (faultsOn() && (at->finished || at->ctrl.squashRequested))
        co_return;

    // Idempotency guard for duplicated/re-sent deliveries (both
    // faults-only): the directory is already locked here, or the
    // committer is already past its serialization point; just re-Ack.
    // The held() probe is y-local and so runs unconditionally.
    if (ynode.lockBank.held(id) ||
        (faultsOn() && at->ctrl.uncommittable)) {
        co_await sim::Delay{kernel, sys_.cycles(20)};
        postCommitAck(at, y);
        co_return;
    }

    for (int tries = 0;; ++tries) {
        // Re-fetched each round: the map cell can be erased (and the
        // reference invalidated) by a cleanup delivery while this
        // frame sleeps between retries.
        auto &filters = ynode.nic.remoteFilters(id);
        if (sys_.audit) {
            sys_.audit->checkFilterCovers(filters.readBf,
                                          filters.readLines,
                                          "hybrid-nic-read-bf");
            sys_.audit->checkFilterCovers(filters.writeBf,
                                          filters.writeLines,
                                          "hybrid-nic-write-bf");
        }
        bloom::BloomFilter write_filter = filters.writeBf;
        for (Addr line : write_lines)
            write_filter.insert(line);
        auto acq = ynode.lockBank.tryAcquire(id, filters.readBf,
                                             write_filter, write_lines);
        if (acq == bloom::AcquireResult::Acquired)
            break;
        if (acq == bloom::AcquireResult::Conflict ||
            /* NoBuffer, out of retries: */ tries >= 64) {
            auto outcome = SquashOutcome::NotFound;
            co_await squashVictim(y, id, SquashReason::LockFailure,
                                  outcome);
            co_return;
        }
        co_await sim::Delay{kernel, ns(200)};
        // The committer may have been squashed while we slept; its
        // cleanup delivery then already dropped our filters and lock
        // here, and re-acquiring would leak a Locking Buffer entry
        // forever. The filters' presence is the y-local liveness
        // signal (the first delivery materialized them above).
        if (!ynode.nic.hasRemoteFilters(id))
            co_return;
        // A concurrently-delivered duplicate (faults-only) may have
        // acquired for the committer while we slept: fall back to the
        // idempotent re-ack instead of double-registering.
        if (ynode.lockBank.held(id)) {
            postCommitAck(at, y);
            co_return;
        }
    }
    if (sys_.audit)
        sys_.audit->noteLockAcquire(id);

    // Conflicts with other *remote* transactions only: local HADES-H
    // transactions have no standing BFs; they self-detect during their
    // own Local Validation ("y will return an Ack to i without checking
    // for conflicts with local transactions"). Snapshot the victims
    // before squashing any (remote squashes await round trips; y's NIC
    // filter map mutates while this frame is suspended). Probe truth
    // comes from the filters' exact shadow sets, owned by y's lane.
    std::vector<std::uint64_t> victims;
    for (Addr line : write_lines) {
        for (const auto &[k, kf] : ynode.nic.remote()) {
            if (k == id)
                continue;
            bool hit = probeFilter(kf.readBf, line,
                                   kf.readsContain(line)) ||
                       probeFilter(kf.writeBf, line,
                                   kf.writesContain(line));
            if (hit)
                victims.push_back(k);
        }
    }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());
    bool self_squashed = false;
    for (std::uint64_t k : victims) {
        auto outcome = SquashOutcome::NotFound;
        co_await squashVictim(y, k, SquashReason::LazyConflict,
                              outcome);
        if (outcome == SquashOutcome::Uncommittable) {
            // The victim is past its serialization point; the
            // conservative ordering rule squashes the committer
            // instead.
            self_squashed = true;
            break;
        }
    }
    if (self_squashed) {
        auto outcome = SquashOutcome::NotFound;
        co_await squashVictim(y, id, SquashReason::LazyConflict,
                              outcome);
        ynode.lockBank.release(id);
        co_return;
    }

    Tick work = sys_.cycles(20 + 2 * std::int64_t(write_lines.size()));
    co_await sim::Delay{kernel, work};
    postCommitAck(at, y);
}

void
HadesHybridEngine::postCommitAck(AttemptPtr at, NodeId y)
{
    sys_.network.post(MsgType::Ack, y, at->homeNode, 16, [this, at, y] {
        if (at->finished || at->ctrl.squashRequested)
            return;
        if (!at->ackedBy.insert(y).second)
            return; // duplicated/re-sent Ack: already counted
        if (at->acksPending > 0) {
            at->acksPending -= 1;
            if (at->acksPending == 0)
                at->ctrl.wake.notify(sys_.kernel);
        }
    });
}

void
HadesHybridEngine::armCommitResend(ExecCtx ctx, AttemptPtr at,
                                   std::uint32_t round)
{
    sys_.kernel.schedule(resendTimeout(round), [this, ctx, at, round] {
        if (at->finished || at->ctrl.uncommittable ||
            at->ctrl.squashRequested || at->acksPending == 0)
            return;
        if (round >= sys_.config.tuning.maxCommitResends) {
            sys_.routerFor(at->id).squash(sys_.kernel, at->id,
                               SquashReason::CommitTimeout);
            return;
        }
        for (NodeId y : at->nodesInvolved) {
            if (at->ackedBy.contains(y))
                continue;
            st().timeoutResends += 1;
            const std::vector<Addr> itc_lines = at->itcLines[y];
            sys_.network.post(
                MsgType::IntendToCommit, ctx.node, y,
                std::uint32_t(8 * itc_lines.size() + 16),
                [this, y, at, itc_lines] {
                    spawnIntendToCommit(y, at, itc_lines);
                });
        }
        armCommitResend(ctx, at, round + 1);
    });
}

sim::Task
HadesHybridEngine::cleanupAborted(ExecCtx ctx, AttemptPtr at)
{
    auto &node = sys_.node(ctx.node);
    const std::uint64_t id = at->id;

    node.lockBank.release(id); // unconditional: also reclaims guards
    at->localDirLocked = false;
    node.nic.clearLocalState(id);

    // Abort message to replica nodes: drop staged images (V-A).
    if (sys_.replicas && !at->replicaNodes.empty()) {
        sys_.replicas->noteAbort();
        for (NodeId b : at->replicaNodes) {
            if (b == ctx.node) {
                sys_.replicas->store(b).discard(id);
            } else {
                reliablePost(
                    MsgType::Squash, ctx.node, b, 16,
                    [this, b, id] {
                        sys_.replicas->store(b).discard(id);
                    });
            }
        }
    }

    // Drop this attempt's filters/locks at every involved node, each
    // handler on its node's own lane. Fault-free the teardown is
    // awaited round trips: the next attempt epoch must not start until
    // every remote node processed the cleanup, or a stale
    // Intend-to-commit retry could lock for this (dead) epoch after
    // its successor began (lock-epoch monotonicity). With faults on it
    // rides the reliable channel fire-and-forget -- a lost message
    // must not stall the retry loop, and the serial-only
    // coordinator-flag guards in handleIntendToCommit cover the
    // stale-retry window; both handler operations are idempotent.
    for (NodeId y : at->nodesInvolved) {
        if (!faultsOn()) {
            co_await sys_.network.roundTrip(
                MsgType::Squash, ctx.node, y, 16, 16, [&]() -> Tick {
                    sys_.node(y).lockBank.release(id);
                    sys_.node(y).nic.clearRemoteFilters(id);
                    return sys_.cycles(20);
                });
        } else {
            reliablePost(MsgType::Squash, ctx.node, y, 16,
                         [this, y, id] {
                             sys_.node(y).lockBank.release(id);
                             sys_.node(y).nic.clearRemoteFilters(id);
                         });
        }
    }
}

sim::Task
HadesHybridEngine::attempt(ExecCtx ctx, const txn::TxnProgram &prog,
                           std::uint64_t id, bool &committed)
{
    auto &kernel = sys_.kernel;
    auto &core = coreOf(ctx);

    auto at = std::make_shared<Attempt>(sys_.config);
    at->id = id;
    at->homeNode = ctx.node;
    sys_.routerFor(id).add(id, &at->ctrl);
    // The keep-alive registry only matters when recovery can observe
    // an attempt after a NodeDead unwind; registering unconditionally
    // would also mutate an engine-wide map from every coordinator lane
    // under the threaded executor (hades-analyze: lane-escape).
    if (recoveryOn())
        attempts_[id] = at;
    if (sys_.audit) {
        at->auditId = sys_.audit->begin(id);
        at->ctrl.auditId = at->auditId;
    }

    const Tick exec_start = kernel.now();
    Tick exec_end = exec_start;

    bool ok = false;
    bool aborted = false;
    try {
        std::vector<std::int64_t> read_vals;
        co_await core.occupy(cycles(prog.setupCycles));
        checkSquash(at);

        for (const auto &req : prog.requests) {
            co_await core.occupy(cycles(prog.computeCyclesPerRequest));
            checkSquash(at);

            const NodeId home = sys_.placement.homeOf(req.record);
            // Membership: publish the footprint so a migration batch
            // defers (and squash-retries) rather than moving a record
            // this attempt resolved a home for.
            if (membershipOn() && !req.isIndex)
                at->ctrl.recordsTouched.insert(req.record);
            if (req.isIndex && !req.isWrite) {
                const txn::RecordLayout lay = layoutOf(req, layout_);
                co_await indexRead(
                    ctx, home,
                    AddrRange{sys_.placement.addrOf(req.record),
                              lay.swBytes()});
                if (home == ctx.node) {
                    // The software local path still pays the node
                    // consistency check.
                    Tick ti = kernel.now();
                    co_await coreOf(ctx).occupy(cycles(
                        std::int64_t(sys_.config.costs
                                         .atomicityCheckPerLineCycles) *
                        lay.payloadLines()));
                    st().addOverhead(Overhead::ReadAtomicity,
                                       kernel.now() - ti);
                }
            } else if (home == ctx.node) {
                co_await localAccess(ctx, at, req, read_vals);
            } else {
                const Addr base =
                    sys_.placement.addrOf(req.record) +
                    layoutOf(req, layout_).swPayloadOffset();
                const std::uint32_t size =
                    req.sizeBytes
                        ? req.sizeBytes
                        : layoutOf(req, layout_).payloadBytes();
                AddrRange range{base + req.offsetBytes, size};
                co_await remoteAccess(ctx, at, home, req.record, range,
                                      req.isWrite);
                if (req.isWrite) {
                    std::int64_t value =
                        req.derivedFromReadIdx >= 0
                            ? read_vals[std::size_t(
                                  req.derivedFromReadIdx)] +
                                  req.delta
                            : req.delta;
                    at->remoteWriteBuffer[req.record] = {home, value};
                } else if (!req.isIndex) {
                    auto wit = at->remoteWriteBuffer.find(req.record);
                    if (wit != at->remoteWriteBuffer.end()) {
                        // Read-your-own-write: invisible to the audit.
                        read_vals.push_back(wit->second.second);
                    } else {
                        // The value (and its ground-truth version)
                        // traveled back with the RDMA fetch; reading
                        // sys_.data here would touch the remote home's
                        // bucket from this lane. A conflicting commit
                        // between fetch and use squashes us via the
                        // NIC read filter, so a committed attempt
                        // never observes a stale cached value.
                        auto cit =
                            at->remoteReadCache.find(req.record);
                        always_assert(
                            cit != at->remoteReadCache.end(),
                            "remote read missed the fetch cache");
                        read_vals.push_back(cit->second.first);
                        if (sys_.audit) {
                            sys_.audit->noteRead(at->auditId,
                                                 req.record,
                                                 cit->second.second);
                        }
                    }
                }
            }
            checkSquash(at);
        }
        exec_end = kernel.now();

        st().maxLinesRead = std::max(
            st().maxLinesRead, std::uint64_t(at->recordedRd.size()));
        st().maxLinesWritten = std::max(
            st().maxLinesWritten, std::uint64_t(at->recordedWr.size()));

        co_await commit(ctx, at);
        ok = true;
    } catch (const Squashed &sq) {
        // A recovery-resolved attempt was already cleaned up (and its
        // audit fate decided) by the view change.
        if (!at->ctrl.resolvedByRecovery) {
            st().addSquash(at->ctrl.squashRequested ? at->ctrl.reason
                                                      : sq.reason);
            aborted = true; // awaited cleanup below (no co_await here)
            if (sys_.audit)
                sys_.audit->noteAbort(at->auditId);
        }
    }
    if (aborted)
        co_await cleanupAborted(ctx, at);

    at->finished = true;
    at->ctrl.finished = true;
    sys_.routerFor(id).remove(id);
    if (recoveryOn())
        attempts_.erase(id);

    if (ok) {
        sys_.node(ctx.node).nic.clearLocalState(id);
        st().execPhase.add(double(exec_end - exec_start));
        st().validationPhase.add(double(kernel.now() - exec_end));
        committed = true;
        if (sys_.audit)
            sys_.audit->noteCommit(at->auditId);
    }

    // Per-attempt drain check of local hardware state (remote state
    // drains asynchronously; checked again at end of run).
    if (sys_.audit) {
        auto &n = sys_.node(ctx.node);
        sys_.audit->noteDrained("locking-buffer", ctx.node,
                                n.lockBank.held(id) ? 1 : 0);
        sys_.audit->noteDrained("nic-local-state", ctx.node,
                                n.nic.hasLocalState(id) ? 1 : 0);
    }
}

sim::Task
HadesHybridEngine::attemptPessimistic(ExecCtx ctx,
                                      const txn::TxnProgram &prog)
{
    ensureSerialForLockMode();
    while (tokenBusy_) {
        co_await sim::Delay{sys_.kernel, us(1)};
        // Fail-stop: a dead node must not spin here forever; onNodeDead
        // frees the token if its holder died.
        if (sys_.network.nodeDead(ctx.node))
            throw sim::NodeDead{};
    }
    tokenBusy_ = true;
    tokenOwner_ = ctx.node;
    for (;;) {
        throwIfNodeDead(ctx);
        st().attempts += 1;
        std::uint64_t epoch = (nextEpoch(ctx) & 0x3fff);
        std::uint64_t id = ctx.packed() | (epoch << kEpochShift);
        bool committed = false;
        co_await attempt(ctx, prog, id, committed);
        if (committed)
            break;
        co_await sim::Delay{sys_.kernel, backoff(4)};
    }
    tokenBusy_ = false;
}

} // namespace hades::protocol
