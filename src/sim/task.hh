/**
 * @file
 * C++20 coroutine plumbing for the simulator.
 *
 * Protocol code is written as coroutines so that Table II of the paper
 * translates almost line-by-line into C++: each `co_await` is a point
 * where simulated time passes (compute occupancy, cache access, NIC round
 * trip). Two coroutine types exist:
 *
 *  - Task:         lazy, awaitable child coroutine. The parent frame owns
 *                  the Task object, so lifetimes nest naturally and
 *                  exceptions (e.g. transaction squashes) propagate up
 *                  through co_await.
 *  - DetachedTask: eager fire-and-forget root coroutine used for per-core
 *                  driver loops; it self-destroys at completion.
 */

#ifndef HADES_SIM_TASK_HH_
#define HADES_SIM_TASK_HH_

#include <coroutine>
#include <exception>
#include <utility>

#include "common/log.hh"
#include "sim/kernel.hh"

namespace hades::sim
{

/** Lazily-started awaitable coroutine; see file comment. */
class [[nodiscard]] Task
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;
        std::exception_ptr exception;

        Task
        get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    Task &operator=(Task &&) = delete;

    ~Task()
    {
        if (handle_)
            handle_.destroy();
    }

    /** Awaiter: start the child and resume the parent when it finishes. */
    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> child;

            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent) noexcept
            {
                child.promise().continuation = parent;
                return child; // symmetric transfer into the child
            }

            void
            await_resume()
            {
                if (child.promise().exception)
                    std::rethrow_exception(child.promise().exception);
            }
        };
        return Awaiter{handle_};
    }

  private:
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    std::coroutine_handle<promise_type> handle_;
};

/**
 * Eager root coroutine. Runs until its first suspension immediately and
 * self-destroys at the end; an escaped exception is a simulator bug.
 */
class DetachedTask
{
  public:
    struct promise_type
    {
        DetachedTask get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            panic("exception escaped a detached simulation task");
        }
    };
};

/** Awaitable that suspends the coroutine for @p delay simulated ticks. */
class Delay
{
  public:
    Delay(Kernel &kernel, Tick delay) : kernel_(kernel), delay_(delay) {}

    bool await_ready() const noexcept { return delay_ == 0; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        kernel_.schedule(delay_, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}

  private:
    Kernel &kernel_;
    Tick delay_;
};

/**
 * Awaitable that re-enters the coroutine in @p node's execution
 * context (at the current simulated time). The per-context transaction
 * drivers hop to their node before running transaction bodies, so that
 * under sharded execution each transaction executes on its node's
 * lane; in serial mode it degenerates to a zero-delay reschedule.
 */
class HopTo
{
  public:
    HopTo(Kernel &kernel, NodeId node) : kernel_(kernel), node_(node) {}

    bool
    await_ready() const noexcept
    {
        return kernel_.currentNode() == node_;
    }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        kernel_.scheduleAs(node_, 0, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}

  private:
    Kernel &kernel_;
    NodeId node_;
};

/**
 * One-shot completion event: a coroutine waits on it, some other event
 * (e.g. a NIC delivering a response) fires it. Resumption is routed
 * through the kernel at the firing time so event ordering stays FIFO and
 * stack depth stays bounded.
 */
class Completion
{
  public:
    /** True once fire() has been called. */
    bool done() const { return done_; }

    /** Trigger the completion, waking the waiter (if any). */
    void
    fire(Kernel &kernel)
    {
        always_assert(!done_, "Completion fired twice");
        done_ = true;
        if (waiter_) {
            auto h = std::exchange(waiter_, nullptr);
            kernel.schedule(0, [h] { h.resume(); });
        }
    }

    /** Awaitable returned to the waiting coroutine. */
    auto
    wait()
    {
        struct Awaiter
        {
            Completion &c;
            bool await_ready() const noexcept { return c.done_; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                always_assert(c.waiter_ == nullptr,
                              "Completion supports a single waiter");
                c.waiter_ = h;
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

    /** Rearm for reuse (only when no waiter is pending). */
    void
    reset()
    {
        always_assert(waiter_ == nullptr, "reset with pending waiter");
        done_ = false;
    }

  private:
    bool done_ = false;
    std::coroutine_handle<> waiter_ = nullptr;
};

/**
 * Auto-reset event: notify() wakes the (single) waiter, or is remembered
 * if nobody is waiting yet. Used for "wait until either all Acks arrived
 * or a Squash was delivered" loops, where multiple wake sources race.
 */
class AutoResetEvent
{
  public:
    /** Wake the waiter (through the kernel), or latch if none. */
    void
    notify(Kernel &kernel)
    {
        if (waiter_) {
            auto h = std::exchange(waiter_, nullptr);
            kernel.schedule(0, [h] { h.resume(); });
        } else {
            pending_ = true;
        }
    }

    /** Awaitable: consumes a pending notify or suspends until one. */
    auto
    wait()
    {
        struct Awaiter
        {
            AutoResetEvent &e;

            bool
            await_ready() noexcept
            {
                if (e.pending_) {
                    e.pending_ = false;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                always_assert(e.waiter_ == nullptr,
                              "AutoResetEvent supports a single waiter");
                e.waiter_ = h;
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

  private:
    bool pending_ = false;
    std::coroutine_handle<> waiter_ = nullptr;
};

/**
 * Counts down from N completions; used for fan-out protocol steps such as
 * "receive Acks from all the remote nodes involved in the transaction".
 */
class CountdownLatch
{
  public:
    explicit CountdownLatch(std::uint32_t count = 0) : remaining_(count) {}

    void arm(std::uint32_t count)
    {
        always_assert(waiter_ == nullptr, "arm with pending waiter");
        remaining_ = count;
    }

    std::uint32_t remaining() const { return remaining_; }

    /** One event arrived; wakes the waiter when the count hits zero. */
    void
    countDown(Kernel &kernel)
    {
        always_assert(remaining_ > 0, "countDown below zero");
        if (--remaining_ == 0 && waiter_) {
            auto h = std::exchange(waiter_, nullptr);
            kernel.schedule(0, [h] { h.resume(); });
        }
    }

    auto
    wait()
    {
        struct Awaiter
        {
            CountdownLatch &l;
            bool await_ready() const noexcept { return l.remaining_ == 0; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                always_assert(l.waiter_ == nullptr,
                              "CountdownLatch supports a single waiter");
                l.waiter_ = h;
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

  private:
    std::uint32_t remaining_;
    std::coroutine_handle<> waiter_ = nullptr;
};

} // namespace hades::sim

#endif // HADES_SIM_TASK_HH_
