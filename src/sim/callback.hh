/**
 * @file
 * Small-buffer-optimized move-only callable for the DES kernel hot path.
 *
 * Every simulated event is a closure; the overwhelmingly common case is
 * a coroutine-resumption lambda capturing a single coroutine_handle
 * (8 bytes). std::function heap-allocates many such closures and drags
 * in copyability machinery the kernel never uses. EventCallback stores
 * any callable up to kInlineBytes directly inside the object (no heap
 * allocation), spills larger ones to the heap, and is move-only, which
 * is exactly the ownership model of a fire-once event queue.
 */

#ifndef HADES_SIM_CALLBACK_HH_
#define HADES_SIM_CALLBACK_HH_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hades::sim
{

/** Move-only type-erased void() callable with inline storage. */
class EventCallback
{
  public:
    /** Inline storage size: fits coroutine-resumption lambdas, the
     *  kernel-internal closures, and a std::function by value. */
    static constexpr std::size_t kInlineBytes = 48;

    EventCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&fn) // NOLINT: implicit from any callable
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "event callbacks take no arguments");
        if constexpr (fitsInline<Fn>()) {
            new (storage_) Fn(std::forward<F>(fn));
            ops_ = inlineOps<Fn>();
            heap_ = false;
        } else {
            void *p = new Fn(std::forward<F>(fn));
            std::memcpy(storage_, &p, sizeof(p));
            ops_ = heapOps<Fn>();
            heap_ = true;
        }
    }

    EventCallback(EventCallback &&o) noexcept
        : ops_(o.ops_), heap_(o.heap_)
    {
        if (!ops_)
            return;
        if (heap_)
            std::memcpy(storage_, o.storage_, sizeof(void *));
        else
            ops_->relocate(o.storage_, storage_);
        o.ops_ = nullptr;
    }

    EventCallback &
    operator=(EventCallback &&o) noexcept
    {
        if (this == &o)
            return *this;
        reset();
        ops_ = o.ops_;
        heap_ = o.heap_;
        if (ops_) {
            if (heap_)
                std::memcpy(storage_, o.storage_, sizeof(void *));
            else
                ops_->relocate(o.storage_, storage_);
            o.ops_ = nullptr;
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** True if the callable spilled to a heap allocation. */
    bool onHeap() const noexcept { return ops_ != nullptr && heap_; }

    void
    operator()()
    {
        ops_->invoke(target());
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src (inline
         *  storage only; heap relocation is a pointer copy). */
        void (*relocate)(void *src, void *dst);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static const Ops *
    inlineOps()
    {
        static constexpr Ops ops{
            [](void *p) { (*static_cast<Fn *>(p))(); },
            [](void *src, void *dst) {
                new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                static_cast<Fn *>(src)->~Fn();
            },
            [](void *p) { static_cast<Fn *>(p)->~Fn(); }};
        return &ops;
    }

    template <typename Fn>
    static const Ops *
    heapOps()
    {
        static constexpr Ops ops{
            [](void *p) { (*static_cast<Fn *>(p))(); },
            nullptr,
            [](void *p) { delete static_cast<Fn *>(p); }};
        return &ops;
    }

    void *
    target() noexcept
    {
        if (!heap_)
            return storage_;
        void *p;
        std::memcpy(&p, storage_, sizeof(p));
        return p;
    }

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(target());
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops *ops_ = nullptr;
    bool heap_ = false;
};

} // namespace hades::sim

#endif // HADES_SIM_CALLBACK_HH_
