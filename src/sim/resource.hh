/**
 * @file
 * Serially-reusable resources for the timing model.
 *
 * ComputeResource models a core's execution bandwidth: a hardware context
 * that "occupies" the core for d ticks delays any later occupancy request
 * accordingly. Network waits do NOT occupy the core, which is exactly how
 * the m multiplexed transactions per core of the paper hide network
 * latency behind each other's compute.
 */

#ifndef HADES_SIM_RESOURCE_HH_
#define HADES_SIM_RESOURCE_HH_

#include <algorithm>
#include <coroutine>

#include "sim/kernel.hh"

namespace hades::sim
{

/**
 * A pipelined FCFS resource. occupy(d) returns an awaitable that resumes
 * the caller once the resource has been held for d ticks starting at the
 * earliest time the resource is free.
 */
class ComputeResource
{
  public:
    explicit ComputeResource(Kernel &kernel) : kernel_(kernel) {}

    /** Time at which the resource next becomes free. */
    Tick freeAt() const { return std::max(freeAt_, kernel_.now()); }

    /** Total busy time accumulated (for utilization stats). */
    Tick busyTime() const { return busyTime_; }

    /**
     * Reserve the resource for @p duration ticks without suspending:
     * bumps the backlog and returns the time the reservation completes.
     * Used by fire-and-forget senders (e.g. one-way NIC posts).
     */
    Tick
    reserve(Tick duration)
    {
        Tick start = std::max(freeAt_, kernel_.now());
        freeAt_ = start + duration;
        busyTime_ += duration;
        return freeAt_;
    }

    /** Hold the resource for @p duration ticks (FCFS). */
    auto
    occupy(Tick duration)
    {
        struct Awaiter
        {
            ComputeResource &res;
            Tick duration;

            bool await_ready() const noexcept { return duration == 0; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                Tick done = res.reserve(duration);
                res.kernel_.scheduleAt(done, [h] { h.resume(); });
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this, duration};
    }

  private:
    Kernel &kernel_;
    Tick freeAt_ = 0;
    Tick busyTime_ = 0;
};

} // namespace hades::sim

#endif // HADES_SIM_RESOURCE_HH_
