/**
 * @file
 * Serially-reusable resources for the timing model.
 *
 * ComputeResource models a core's execution bandwidth: a hardware context
 * that "occupies" the core for d ticks delays any later occupancy request
 * accordingly. Network waits do NOT occupy the core, which is exactly how
 * the m multiplexed transactions per core of the paper hide network
 * latency behind each other's compute.
 */

#ifndef HADES_SIM_RESOURCE_HH_
#define HADES_SIM_RESOURCE_HH_

#include <algorithm>
#include <coroutine>

#include "sim/kernel.hh"

namespace hades::sim
{

/**
 * Thrown into a coroutine that tries to make progress on a permanently
 * crashed node (frozen core, dead NIC endpoint). It unwinds the whole
 * protocol stack of the affected hardware context -- Task propagates it
 * through every co_await -- until the per-context driver loop catches it
 * and retires the context. This is how fail-stop is modeled: crashed
 * nodes stop executing, they do not keep simulating.
 */
struct NodeDead
{
};

/**
 * A pipelined FCFS resource. occupy(d) returns an awaitable that resumes
 * the caller once the resource has been held for d ticks starting at the
 * earliest time the resource is free.
 */
class ComputeResource
{
  public:
    explicit ComputeResource(Kernel &kernel) : kernel_(kernel) {}

    /** Time at which the resource next becomes free. */
    Tick freeAt() const { return std::max(freeAt_, kernel_.now()); }

    /** Total busy time accumulated (for utilization stats). */
    Tick busyTime() const { return busyTime_; }

    /**
     * Reserve the resource for @p duration ticks without suspending:
     * bumps the backlog and returns the time the reservation completes.
     * Used by fire-and-forget senders (e.g. one-way NIC posts).
     */
    Tick
    reserve(Tick duration)
    {
        Tick start = std::max(freeAt_, kernel_.now());
        freeAt_ = start + duration;
        busyTime_ += duration;
        return freeAt_;
    }

    /**
     * Permanently crash the resource. Occupancies still suspended when
     * the freeze lands (their wake-up events are already in the kernel
     * queue) resume only to throw NodeDead, and so do all later
     * occupy() calls: code running on a crashed core cannot advance.
     */
    void freeze() { frozen_ = true; }
    bool frozen() const { return frozen_; }

    /** Hold the resource for @p duration ticks (FCFS). */
    auto
    occupy(Tick duration)
    {
        struct Awaiter
        {
            ComputeResource &res;
            Tick duration;

            bool
            await_ready() const noexcept
            {
                return duration == 0 && !res.frozen_;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                // A frozen resource resumes immediately; await_resume
                // then throws into the caller. Not reserving keeps the
                // dead core's counters at their crash-instant values.
                Tick done = res.frozen_ ? res.kernel_.now()
                                        : res.reserve(duration);
                res.kernel_.scheduleAt(done, [h] { h.resume(); });
            }

            void
            await_resume() const
            {
                if (res.frozen_)
                    throw NodeDead{};
            }
        };
        return Awaiter{*this, duration};
    }

  private:
    Kernel &kernel_;
    Tick freeAt_ = 0;
    Tick busyTime_ = 0;
    bool frozen_ = false;
};

} // namespace hades::sim

#endif // HADES_SIM_RESOURCE_HH_
