/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue with deterministic ordering: events fire
 * in (time, insertion-sequence) order, so runs are bit-reproducible for a
 * fixed seed. All protocol engines, NIC models, and core contexts express
 * time by scheduling closures (usually coroutine resumptions) here.
 *
 * Hot-path layout: the priority queue is a hand-managed binary heap of
 * 24-byte POD entries (when, seq, slot) over a contiguous arena of
 * small-buffer-optimized callbacks. Sift operations move only the POD
 * entries -- never the closures -- and closures small enough for the
 * inline buffer (the coroutine-resumption common case) are stored
 * without any heap allocation. The arena, free list, and heap are
 * bulk-reserved so steady-state scheduling allocates nothing.
 */

#ifndef HADES_SIM_KERNEL_HH_
#define HADES_SIM_KERNEL_HH_

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/callback.hh"

namespace hades::sim
{

/** The DES scheduler. */
class Kernel
{
  public:
    using Callback = EventCallback;

    /** Default bulk reservation (events); see reserve(). */
    static constexpr std::size_t kDefaultReserve = 256;

    Kernel() { reserve(kDefaultReserve); }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far (for progress accounting). */
    std::uint64_t eventsRun() const { return eventsRun_; }

    /** Number of events scheduled so far. */
    std::uint64_t eventsScheduled() const { return nextSeq_; }

    /** Callbacks too large for the inline buffer (heap spills). A
     *  well-behaved hot path keeps this at (or near) zero. */
    std::uint64_t callbackHeapAllocs() const { return heapSpills_; }

    /** High-water mark of pending events. */
    std::size_t peakQueueDepth() const { return peakDepth_; }

    /** Pre-size the heap and callback arena for @p events pending
     *  events, so steady-state scheduling performs no allocation. */
    void
    reserve(std::size_t events)
    {
        heap_.reserve(events);
        slots_.reserve(events);
        freeSlots_.reserve(events);
    }

    /** Schedule @p fn to run @p delay ticks from now. @pre delay >= 0. */
    void
    schedule(Tick delay, Callback fn)
    {
        always_assert(delay >= 0, "negative event delay");
        scheduleAt(now_ + delay, std::move(fn));
    }

    /** Schedule @p fn at absolute time @p when. @pre when >= now(). */
    void
    scheduleAt(Tick when, Callback fn)
    {
        always_assert(when >= now_, "event scheduled in the past");
        if (fn.onHeap())
            ++heapSpills_;
        std::uint32_t slot;
        if (!freeSlots_.empty()) {
            slot = freeSlots_.back();
            freeSlots_.pop_back();
            slots_[slot] = std::move(fn);
        } else {
            slot = static_cast<std::uint32_t>(slots_.size());
            slots_.push_back(std::move(fn));
        }
        heap_.push_back(HeapEntry{when, nextSeq_++, slot});
        siftUp(heap_.size() - 1);
        if (heap_.size() > peakDepth_)
            peakDepth_ = heap_.size();
    }

    /**
     * Run until the queue drains or @p maxTime is reached.
     * @return true if the queue drained, false if the horizon stopped us.
     */
    bool
    run(Tick maxTime = -1)
    {
        stopped_ = false;
        while (!heap_.empty() && !stopped_) {
            const HeapEntry &top = heap_.front();
            if (maxTime >= 0 && top.when > maxTime) {
                now_ = maxTime;
                return false;
            }
            const Tick when = top.when;
            const std::uint32_t slot = top.slot;
            popTop();
            // Move the closure out of the arena before invoking it:
            // the callback may schedule new events, which can grow the
            // arena and invalidate references into it.
            Callback fn = std::move(slots_[slot]);
            freeSlots_.push_back(slot);
            now_ = when;
            ++eventsRun_;
            fn();
        }
        return heap_.empty();
    }

    /** Request that run() return after the current event completes. */
    void stop() { stopped_ = true; }

    bool empty() const { return heap_.empty(); }

  private:
    /** POD heap entry; closures stay put in the arena while entries
     *  sift, so reordering is three 8-byte stores per level. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Earliest-first strict weak ordering: (when, seq) lexicographic. */
    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void
    siftUp(std::size_t i)
    {
        const HeapEntry e = heap_[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!earlier(e, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = heap_.size();
        const HeapEntry e = heap_[i];
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && earlier(heap_[child + 1], heap_[child]))
                ++child;
            if (!earlier(heap_[child], e))
                break;
            heap_[i] = heap_[child];
            i = child;
        }
        heap_[i] = e;
    }

    void
    popTop()
    {
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
    }

    std::vector<HeapEntry> heap_;       //!< binary heap of pending events
    std::vector<Callback> slots_;       //!< contiguous closure arena
    std::vector<std::uint32_t> freeSlots_; //!< recycled arena slots
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t eventsRun_ = 0;
    std::uint64_t heapSpills_ = 0;
    std::size_t peakDepth_ = 0;
    bool stopped_ = false;
};

} // namespace hades::sim

#endif // HADES_SIM_KERNEL_HH_
