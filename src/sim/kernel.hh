/**
 * @file
 * Discrete-event simulation kernel, optionally sharded by node.
 *
 * Event ordering is deterministic and *shard-count invariant*: every
 * event is stamped at schedule time with the identity of the node
 * context that scheduled it (the "source node") and a per-source-node
 * sequence number, and events fire in (time, source-node, source-seq)
 * lexicographic order. Because the per-node sequence streams do not
 * depend on how the other nodes' events interleave, the total order --
 * and therefore every simulation result -- is a pure function of the
 * model, not of the shard count or of thread scheduling. This is the
 * tie-break contract the parallel differential tests rely on.
 *
 * Three execution modes share that one total order:
 *
 *  - serial (shards == 1, the default and the oracle): a single binary
 *    heap pops events in key order, exactly as before.
 *  - sharded deterministic (shards > 1): nodes are partitioned into
 *    lanes by the pure function laneOf(node) = node % shards; each lane
 *    owns a heap, and a single thread merges the lane fronts in key
 *    order while advancing conservative time windows. Cross-lane events
 *    at or beyond the next window barrier travel through per-lane-pair
 *    mailboxes drained at the barrier. Works for every model (faults,
 *    recovery, audit included) because same-window cross-lane events
 *    are simply executed in exact key order.
 *  - sharded threaded (shards > 1, ShardPlan::threaded): one worker
 *    thread per lane executes its lane's events inside the current
 *    window concurrently with the other lanes. The window width is the
 *    conservative lookahead (no cross-node message can arrive sooner
 *    than the NIC round-trip floor allows), so lanes never need each
 *    other mid-window; cross-lane events are exchanged only at window
 *    barriers through the phase-separated mailboxes. A cross-lane
 *    event scheduled *inside* the current window is a lookahead
 *    violation and panics. Identical results to the serial oracle
 *    follow from the shard-invariant key order plus lane-disjoint
 *    model state (the runner certifies specs before enabling this
 *    mode; see DESIGN.md section 11).
 *
 * Hot-path layout: the priority queue is a hand-managed binary heap of
 * 24-byte POD entries (when, key, slot, exec-node) over a contiguous
 * arena of small-buffer-optimized callbacks. Sift operations move only
 * the POD entries -- never the closures -- and closures small enough
 * for the inline buffer (the coroutine-resumption common case) are
 * stored without any heap allocation.
 */

#ifndef HADES_SIM_KERNEL_HH_
#define HADES_SIM_KERNEL_HH_

#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/callback.hh"

namespace hades::sim
{

/**
 * Pseudo-node identity for events scheduled outside any node's context
 * (experiment setup, fault plans, recovery timers, driver launch).
 * Control-context events sort *before* same-tick node events.
 */
inline constexpr NodeId kControlNode = 0xffffffffu;

/**
 * Thrown by protocol code that reaches a path the threaded executor
 * cannot run bit-identically (today: the global pessimistic-token
 * fallback). The per-context driver retires the context, the kernel
 * drains, and the runner transparently re-runs the spec through the
 * sharded deterministic executor, which handles every path.
 */
struct SerialRerunNeeded
{
};

/** Sharding configuration handed to Kernel::configureSharding(). */
struct ShardPlan
{
    /** Number of lanes; 1 keeps the serial oracle. */
    std::uint32_t shards = 1;
    /** Cluster size, for pre-sizing the per-node sequence streams. */
    std::uint32_t numNodes = 0;
    /** Conservative window width (the lookahead). @pre > 0 if
     *  shards > 1. */
    Tick windowTicks = 0;
    /** Execute lanes on worker threads (certified specs only). */
    bool threaded = false;
};

/** The DES scheduler. */
class Kernel
{
  public:
    using Callback = EventCallback;

    /** Default bulk reservation (events); see reserve(). */
    static constexpr std::size_t kDefaultReserve = 256;
    /** Bits of the per-source-node sequence counter inside the key. */
    static constexpr unsigned kSeqBits = 48;

    Kernel() : lanes_(1) { reserve(kDefaultReserve); }

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /**
     * Lane assignment: a pure function of the node id and the shard
     * count only (the parallel property tests assert this).
     */
    static std::uint32_t
    laneOf(NodeId node, std::uint32_t shards)
    {
        return node == kControlNode ? 0 : node % shards;
    }

    /**
     * Select the sharded execution mode. Must be called before any
     * event is scheduled (the runner configures right after building
     * the System).
     */
    void
    configureSharding(const ShardPlan &plan)
    {
        always_assert(totalScheduled() == 0 && eventsRun_ == 0,
                      "configureSharding on a kernel already in use");
        always_assert(plan.shards >= 1, "need at least one shard");
        shards_ = plan.shards;
        threaded_ = plan.threaded && shards_ > 1;
        windowTicks_ = plan.windowTicks;
        if (shards_ > 1) {
            always_assert(windowTicks_ > 0,
                          "sharded execution needs a positive window");
            windowEnd_ = windowTicks_;
        }
        lanes_.clear();
        lanes_.resize(shards_);
        mail_.clear();
        mail_.resize(shards_);
        for (auto &row : mail_)
            row.resize(shards_);
        seqByRank_.assign(std::size_t{plan.numNodes} + 2, 0);
        reserve(kDefaultReserve);
    }

    /** Current simulated time (lane-local while a sharded run is in
     *  flight; the global clock otherwise). */
    Tick
    now() const
    {
        const ExecContext *c = tlsCtx_;
        return c && c->kernel == this ? c->now : now_;
    }

    /** Node context of the currently executing event (kControlNode
     *  outside any event, e.g. during experiment setup). */
    NodeId
    currentNode() const
    {
        const ExecContext *c = tlsCtx_;
        return c && c->kernel == this ? c->node : kControlNode;
    }

    /** Number of events executed so far (for progress accounting). */
    std::uint64_t
    eventsRun() const
    {
        std::uint64_t n = eventsRun_;
        for (const Lane &l : lanes_)
            n += l.eventsRun;
        return n;
    }

    /** Number of events scheduled so far. */
    std::uint64_t eventsScheduled() const { return totalScheduled(); }

    /** Callbacks too large for the inline buffer (heap spills). A
     *  well-behaved hot path keeps this at (or near) zero. */
    std::uint64_t
    callbackHeapAllocs() const
    {
        std::uint64_t n = 0;
        for (const Lane &l : lanes_)
            n += l.heapSpills;
        return n;
    }

    /** High-water mark of pending events (summed over lanes). */
    std::size_t
    peakQueueDepth() const
    {
        std::size_t n = 0;
        for (const Lane &l : lanes_)
            n += l.peakDepth;
        return n;
    }

    // --- Sharded-execution observability ---------------------------------
    std::uint32_t shards() const { return shards_; }
    bool threaded() const { return threaded_; }
    Tick windowTicks() const { return windowTicks_; }
    /** Window barriers crossed (== windows entered beyond the first). */
    std::uint64_t windowBarriers() const { return barriers_; }
    /** Events that crossed a lane boundary (mailbox traffic). */
    std::uint64_t
    crossShardEvents() const
    {
        std::uint64_t n = 0;
        for (const Lane &l : lanes_)
            n += l.crossShardOut;
        return n;
    }

    /** True while the threaded executor is running worker phases. */
    bool
    threadedActive() const
    {
        return threadedActive_.load(std::memory_order_relaxed);
    }

    /** Ask the runner to redo this simulation on the deterministic
     *  executor (see SerialRerunNeeded). */
    void
    requestSerialRerun()
    {
        rerunRequested_.store(true, std::memory_order_relaxed);
    }

    bool
    serialRerunRequested() const
    {
        return rerunRequested_.load(std::memory_order_relaxed);
    }

    /** Pre-size the heap and callback arena of every lane for @p events
     *  pending events, so steady-state scheduling performs no
     *  allocation. */
    void
    reserve(std::size_t events)
    {
        std::size_t per = events / lanes_.size() + 1;
        for (Lane &l : lanes_) {
            l.heap.reserve(per);
            l.slots.reserve(per);
            l.freeSlots.reserve(per);
        }
    }

    /** Schedule @p fn to run @p delay ticks from now in the scheduling
     *  context's own node context. @pre delay >= 0. */
    void
    schedule(Tick delay, Callback fn)
    {
        always_assert(delay >= 0, "negative event delay");
        scheduleAtAs(now() + delay, currentNode(), std::move(fn));
    }

    /** Schedule @p fn at absolute time @p when. @pre when >= now(). */
    void
    scheduleAt(Tick when, Callback fn)
    {
        scheduleAtAs(when, currentNode(), std::move(fn));
    }

    /** Schedule @p fn to run in @p exec's node context @p delay ticks
     *  from now (cross-node deliveries name their destination). */
    void
    scheduleAs(NodeId exec, Tick delay, Callback fn)
    {
        always_assert(delay >= 0, "negative event delay");
        scheduleAtAs(now() + delay, exec, std::move(fn));
    }

    /**
     * Schedule @p fn at absolute time @p when, to execute in node
     * @p exec's context. The event's ordering key is stamped from the
     * *scheduling* context: (when, source node, per-source-node seq).
     */
    void
    scheduleAtAs(Tick when, NodeId exec, Callback fn)
    {
        ExecContext *c = current();
        always_assert(when >= (c ? c->now : now_),
                      "event scheduled in the past");
        const std::uint32_t rank = rankOf(c ? c->node : kControlNode);
        if (rank >= seqByRank_.size()) {
            always_assert(!threadedActive(),
                          "unplanned node rank in threaded mode");
            seqByRank_.resize(rank + 1, 0);
        }
        const std::uint64_t seq = seqByRank_[rank]++;
        always_assert(seq < (std::uint64_t{1} << kSeqBits),
                      "per-node sequence overflow");
        const std::uint64_t key =
            (std::uint64_t{rank} << kSeqBits) | seq;

        const std::uint32_t dstLane = laneOf(exec, shards_);
        const std::uint32_t srcLane = c ? c->lane : dstLane;
        if (shards_ > 1 && c && dstLane != srcLane) {
            Lane &src = lanes_[srcLane];
            ++src.crossShardOut;
            if (threaded_) {
                // Conservative lookahead: a cross-lane event may not
                // land inside the window the lanes are executing.
                always_assert(
                    when >= windowEnd_,
                    "lookahead violated: cross-shard event scheduled "
                    "inside the current window");
                mail_[srcLane][dstLane].push_back(
                    Mail{when, key, exec, std::move(fn)});
                return;
            }
            if (when >= windowEnd_) {
                // Deterministic mode exercises the same barrier
                // machinery for events beyond the window; same-window
                // cross-lane events (legal here) go straight into the
                // destination heap and execute in exact key order.
                mail_[srcLane][dstLane].push_back(
                    Mail{when, key, exec, std::move(fn)});
                return;
            }
        }
        pushLane(lanes_[dstLane], when, key, exec, std::move(fn));
    }

    /**
     * Run until the queue drains or @p maxTime is reached.
     * @return true if the queue drained, false if the horizon stopped us.
     */
    bool
    run(Tick maxTime = -1)
    {
        stopped_.store(false, std::memory_order_relaxed);
        if (shards_ <= 1)
            return runSerial(maxTime);
        if (threaded_)
            return runThreaded(maxTime);
        return runShardedDet(maxTime);
    }

    /** Request that run() return after the current event completes. */
    void stop() { stopped_.store(true, std::memory_order_relaxed); }

    bool
    empty() const
    {
        for (const Lane &l : lanes_)
            if (!l.heap.empty())
                return false;
        return !anyMail();
    }

  private:
    /** POD heap entry; closures stay put in the arena while entries
     *  sift, so reordering is three 8-byte stores per level. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t key; //!< (source-node rank << kSeqBits) | seq
        std::uint32_t slot;
        NodeId exec; //!< node context the event executes in
    };

    /** A cross-lane event in flight between window barriers. The
     *  producing lane appends during an execution phase; the barrier
     *  coordinator drains between phases, so the pair never accesses
     *  the vector concurrently (single producer, single consumer,
     *  phase-separated). */
    struct Mail
    {
        Tick when;
        std::uint64_t key;
        NodeId exec;
        Callback fn;
    };

    /** One shard: a heap + closure arena, owned by one worker thread
     *  during threaded execution phases. */
    struct Lane
    {
        std::vector<HeapEntry> heap;
        std::vector<Callback> slots;
        std::vector<std::uint32_t> freeSlots;
        Tick lastNow = 0;
        std::uint64_t eventsRun = 0;
        std::uint64_t heapSpills = 0;
        std::uint64_t crossShardOut = 0;
        std::size_t peakDepth = 0;
    };

    /** Per-thread execution context: which kernel/lane is running and
     *  the lane-local clock + node identity of the current event. */
    struct ExecContext
    {
        const Kernel *kernel;
        std::uint32_t lane;
        Tick now;
        NodeId node;
    };

    /** RAII guard installing an ExecContext for the calling thread. */
    struct CtxScope
    {
        explicit CtxScope(ExecContext *c) : prev(tlsCtx_)
        {
            tlsCtx_ = c;
        }
        ~CtxScope() { tlsCtx_ = prev; }
        ExecContext *prev;
    };

    ExecContext *
    current() const
    {
        ExecContext *c = tlsCtx_;
        return c && c->kernel == this ? c : nullptr;
    }

    static std::uint32_t
    rankOf(NodeId node)
    {
        if (node == kControlNode)
            return 0; // control context sorts first at equal time
        always_assert(node < 0xfffeu, "node id exceeds key rank space");
        return node + 1;
    }

    /** Earliest-first strict weak ordering:
     *  (when, source-node, source-seq) lexicographic. */
    static bool
    earlier(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.key < b.key;
    }

    void
    pushLane(Lane &l, Tick when, std::uint64_t key, NodeId exec,
             Callback fn)
    {
        if (fn.onHeap())
            ++l.heapSpills;
        std::uint32_t slot;
        if (!l.freeSlots.empty()) {
            slot = l.freeSlots.back();
            l.freeSlots.pop_back();
            l.slots[slot] = std::move(fn);
        } else {
            slot = static_cast<std::uint32_t>(l.slots.size());
            l.slots.push_back(std::move(fn));
        }
        l.heap.push_back(HeapEntry{when, key, slot, exec});
        siftUp(l.heap, l.heap.size() - 1);
        if (l.heap.size() > l.peakDepth)
            l.peakDepth = l.heap.size();
    }

    static void
    siftUp(std::vector<HeapEntry> &heap, std::size_t i)
    {
        const HeapEntry e = heap[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!earlier(e, heap[parent]))
                break;
            heap[i] = heap[parent];
            i = parent;
        }
        heap[i] = e;
    }

    static void
    siftDown(std::vector<HeapEntry> &heap, std::size_t i)
    {
        const std::size_t n = heap.size();
        const HeapEntry e = heap[i];
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && earlier(heap[child + 1], heap[child]))
                ++child;
            if (!earlier(heap[child], e))
                break;
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = e;
    }

    static void
    popTop(std::vector<HeapEntry> &heap)
    {
        heap.front() = heap.back();
        heap.pop_back();
        if (!heap.empty())
            siftDown(heap, 0);
    }

    /** Pop and execute the front of @p l under context @p ctx. */
    void
    execTop(Lane &l, ExecContext &ctx)
    {
        const HeapEntry top = l.heap.front();
        popTop(l.heap);
        // Move the closure out of the arena before invoking it: the
        // callback may schedule new events, which can grow the arena
        // and invalidate references into it.
        Callback fn = std::move(l.slots[top.slot]);
        l.freeSlots.push_back(top.slot);
        ctx.now = top.when;
        ctx.node = top.exec;
        ++l.eventsRun;
        fn();
    }

    bool
    stoppedNow() const
    {
        return stopped_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    totalScheduled() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t s : seqByRank_)
            n += s;
        return n;
    }

    bool
    anyMail() const
    {
        for (const auto &row : mail_)
            for (const auto &box : row)
                if (!box.empty())
                    return true;
        return false;
    }

    /** Move every mailbox item into its destination lane heap. Runs
     *  single-threaded (deterministic merge loop or the coordinator
     *  between threaded phases). */
    void
    drainMailboxes()
    {
        for (auto &row : mail_) {
            for (std::size_t dst = 0; dst < row.size(); ++dst) {
                for (Mail &m : row[dst])
                    pushLane(lanes_[dst], m.when, m.key, m.exec,
                             std::move(m.fn));
                row[dst].clear();
            }
        }
    }

    /** Cross one conservative window barrier. */
    void
    advanceWindow()
    {
        drainMailboxes();
        windowEnd_ += windowTicks_;
        ++barriers_;
    }

    // --- Serial oracle ----------------------------------------------------
    bool
    runSerial(Tick maxTime)
    {
        Lane &l = lanes_[0];
        ExecContext ctx{this, 0, now_, kControlNode};
        CtxScope scope(&ctx);
        while (!l.heap.empty() && !stoppedNow()) {
            if (maxTime >= 0 && l.heap.front().when > maxTime) {
                now_ = maxTime;
                return false;
            }
            execTop(l, ctx);
        }
        now_ = ctx.now;
        return l.heap.empty();
    }

    // --- Sharded deterministic merge --------------------------------------
    bool
    runShardedDet(Tick maxTime)
    {
        ExecContext ctx{this, 0, now_, kControlNode};
        CtxScope scope(&ctx);
        while (!stoppedNow()) {
            int best = -1;
            for (std::size_t i = 0; i < lanes_.size(); ++i) {
                if (lanes_[i].heap.empty())
                    continue;
                if (best < 0 || earlier(lanes_[i].heap.front(),
                                        lanes_[best].heap.front()))
                    best = int(i);
            }
            if (best < 0) {
                if (!anyMail())
                    break; // fully drained
                // Conservative advance: one barrier per window, no
                // skipping, so the barrier count matches the horizon.
                advanceWindow();
                continue;
            }
            const HeapEntry &top = lanes_[best].heap.front();
            if (top.when >= windowEnd_) {
                advanceWindow();
                continue;
            }
            if (maxTime >= 0 && top.when > maxTime) {
                now_ = maxTime;
                return false;
            }
            ctx.lane = std::uint32_t(best);
            execTop(lanes_[best], ctx);
        }
        now_ = ctx.now;
        return empty();
    }

    // --- Sharded threaded execution ---------------------------------------
    /** One lane's share of a window: execute own-heap events strictly
     *  inside the window, in key order. */
    void
    runLaneWindow(std::uint32_t lane, ExecContext &ctx)
    {
        Lane &l = lanes_[lane];
        while (!l.heap.empty() && l.heap.front().when < windowEnd_ &&
               !stoppedNow())
            execTop(l, ctx);
        l.lastNow = ctx.now;
    }

    bool
    runThreaded(Tick maxTime)
    {
        always_assert(maxTime < 0,
                      "threaded sharded runs execute to completion");
        threadedActive_.store(true, std::memory_order_release);
        // Phase protocol per window: everyone meets at A, workers
        // execute their lane inside [windowStart, windowEnd), everyone
        // meets at B, then the coordinator alone drains mailboxes and
        // either advances the window or declares the run finished.
        // Workers waiting at the next A give the coordinator exclusive
        // access between B and A; the barriers publish every write.
        std::barrier<> sync(shards_ + 1);
        std::atomic<bool> done{false};
        std::vector<std::thread> workers;
        workers.reserve(shards_);
        for (std::uint32_t lane = 0; lane < shards_; ++lane) {
            workers.emplace_back([this, lane, &sync, &done] {
                ExecContext ctx{this, lane, lanes_[lane].lastNow,
                                kControlNode};
                CtxScope scope(&ctx);
                for (;;) {
                    sync.arrive_and_wait(); // A: window start
                    if (done.load(std::memory_order_relaxed))
                        break;
                    runLaneWindow(lane, ctx);
                    sync.arrive_and_wait(); // B: window end
                }
            });
        }
        for (;;) {
            sync.arrive_and_wait(); // A
            if (done.load(std::memory_order_relaxed))
                break;
            sync.arrive_and_wait(); // B
            // Exclusive coordinator section.
            drainMailboxes();
            bool pending = false;
            for (const Lane &l : lanes_)
                pending |= !l.heap.empty();
            if (!pending || stoppedNow()) {
                done.store(true, std::memory_order_relaxed);
            } else {
                windowEnd_ += windowTicks_;
                ++barriers_;
            }
        }
        for (std::thread &w : workers)
            w.join();
        threadedActive_.store(false, std::memory_order_release);
        Tick end = now_;
        for (const Lane &l : lanes_)
            end = std::max(end, l.lastNow);
        now_ = end;
        return empty();
    }

    static thread_local ExecContext *tlsCtx_;

    std::vector<Lane> lanes_;
    /** mail_[src][dst]: cross-lane events awaiting the next barrier. */
    std::vector<std::vector<std::vector<Mail>>> mail_;
    /** Per-source-node sequence streams, indexed by key rank. */
    std::vector<std::uint64_t> seqByRank_;

    std::uint32_t shards_ = 1;
    bool threaded_ = false;
    Tick windowTicks_ = 0;
    Tick windowEnd_ = 0;
    std::uint64_t barriers_ = 0;

    Tick now_ = 0;
    std::uint64_t eventsRun_ = 0; //!< pre-sharding compatibility slot
    std::atomic<bool> stopped_{false};
    std::atomic<bool> threadedActive_{false};
    std::atomic<bool> rerunRequested_{false};
};

inline thread_local Kernel::ExecContext *Kernel::tlsCtx_ = nullptr;

} // namespace hades::sim

#endif // HADES_SIM_KERNEL_HH_
