/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue with deterministic ordering: events fire
 * in (time, insertion-sequence) order, so runs are bit-reproducible for a
 * fixed seed. All protocol engines, NIC models, and core contexts express
 * time by scheduling closures (usually coroutine resumptions) here.
 */

#ifndef HADES_SIM_KERNEL_HH_
#define HADES_SIM_KERNEL_HH_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace hades::sim
{

/** The DES scheduler. */
class Kernel
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events executed so far (for progress accounting). */
    std::uint64_t eventsRun() const { return eventsRun_; }

    /** Schedule @p fn to run @p delay ticks from now. @pre delay >= 0. */
    void
    schedule(Tick delay, Callback fn)
    {
        always_assert(delay >= 0, "negative event delay");
        scheduleAt(now_ + delay, std::move(fn));
    }

    /** Schedule @p fn at absolute time @p when. @pre when >= now(). */
    void
    scheduleAt(Tick when, Callback fn)
    {
        always_assert(when >= now_, "event scheduled in the past");
        queue_.push(Event{when, nextSeq_++, std::move(fn)});
    }

    /**
     * Run until the queue drains or @p maxTime is reached.
     * @return true if the queue drained, false if the horizon stopped us.
     */
    bool
    run(Tick maxTime = -1)
    {
        stopped_ = false;
        while (!queue_.empty() && !stopped_) {
            const Event &top = queue_.top();
            if (maxTime >= 0 && top.when > maxTime) {
                now_ = maxTime;
                return false;
            }
            // Move the callback out before popping: pop invalidates top.
            Event ev = std::move(const_cast<Event &>(top));
            queue_.pop();
            now_ = ev.when;
            ++eventsRun_;
            ev.fn();
        }
        return queue_.empty();
    }

    /** Request that run() return after the current event completes. */
    void stop() { stopped_ = true; }

    bool empty() const { return queue_.empty(); }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;

        /** priority_queue is a max-heap; invert for earliest-first. */
        bool
        operator<(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event> queue_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t eventsRun_ = 0;
    bool stopped_ = false;
};

} // namespace hades::sim

#endif // HADES_SIM_KERNEL_HH_
