/**
 * @file
 * Lightweight protocol event tracing.
 *
 * A bounded ring of timestamped events that the runtime appends to when
 * tracing is enabled (it is off by default and costs one branch when
 * off). Used to debug protocol interleavings: squashes, commits, and
 * message handling can be dumped in simulated-time order.
 */

#ifndef HADES_SIM_TRACE_HH_
#define HADES_SIM_TRACE_HH_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hades::sim
{

/** Categories of traced events. */
enum class TraceEvent : std::uint8_t
{
    TxnStart,
    TxnCommit,
    TxnSquash,
    IntendToCommit,
    Ack,
    Validation,
    LockAcquire,
    LockRelease,
};

/** Name for dumping. */
inline const char *
traceEventName(TraceEvent e)
{
    switch (e) {
      case TraceEvent::TxnStart:
        return "TxnStart";
      case TraceEvent::TxnCommit:
        return "TxnCommit";
      case TraceEvent::TxnSquash:
        return "TxnSquash";
      case TraceEvent::IntendToCommit:
        return "IntendToCommit";
      case TraceEvent::Ack:
        return "Ack";
      case TraceEvent::Validation:
        return "Validation";
      case TraceEvent::LockAcquire:
        return "LockAcquire";
      case TraceEvent::LockRelease:
        return "LockRelease";
      default:
        return "?";
    }
}

/** Bounded event recorder. */
class Tracer
{
  public:
    struct Record
    {
        Tick when = 0;
        TraceEvent event = TraceEvent::TxnStart;
        std::uint64_t tx = 0;
        NodeId node = 0;
        std::uint64_t detail = 0;
    };

    /** @param capacity ring size; older events are overwritten. */
    explicit Tracer(std::size_t capacity = 64 * 1024)
        : capacity_(capacity)
    {}

    void enable() { enabled_ = true; }
    void disable() { enabled_ = false; }
    bool enabled() const { return enabled_; }

    /** Append one event (no-op while disabled). */
    void
    log(Tick when, TraceEvent event, std::uint64_t tx, NodeId node,
        std::uint64_t detail = 0)
    {
        if (!enabled_)
            return;
        if (ring_.size() < capacity_) {
            ring_.push_back(Record{when, event, tx, node, detail});
        } else {
            ring_[head_ % capacity_] =
                Record{when, event, tx, node, detail};
        }
        ++head_;
        ++total_;
    }

    /** Events currently retained, oldest first. */
    std::vector<Record>
    records() const
    {
        std::vector<Record> out;
        if (ring_.size() < capacity_) {
            out = ring_;
        } else {
            out.reserve(capacity_);
            for (std::size_t i = 0; i < capacity_; ++i)
                out.push_back(ring_[(head_ + i) % capacity_]);
        }
        return out;
    }

    /** Total events observed (including overwritten ones). */
    std::uint64_t total() const { return total_; }

    /** Human-readable dump, one line per event. */
    void
    dump(std::FILE *out = stderr) const
    {
        for (const auto &r : records()) {
            std::fprintf(out,
                         "%12lld ps  node %-3u %-15s tx=%016llx "
                         "detail=%llu\n",
                         (long long)r.when, r.node,
                         traceEventName(r.event),
                         (unsigned long long)r.tx,
                         (unsigned long long)r.detail);
        }
    }

    void
    clear()
    {
        ring_.clear();
        head_ = 0;
        total_ = 0;
    }

  private:
    std::size_t capacity_;
    bool enabled_ = false;
    std::vector<Record> ring_;
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace hades::sim

#endif // HADES_SIM_TRACE_HH_
