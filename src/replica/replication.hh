/**
 * @file
 * Fault-tolerance and durability substrate (Section V-A, "Fault-
 * Tolerance and Durability").
 *
 * The paper outlines the design: every write additionally updates
 * replicas on other nodes; replica updates must complete by commit
 * time; durability requires the updated replicas to be persisted
 * (SSD/NVM) by commit. The mechanism piggybacks on HADES' two-phase
 * commit: the coordinator's Intend-to-commit fans out to replica
 * nodes, each persists the update to *temporary durable storage* and
 * answers with an Ack; once all Acks arrive the Validation message
 * promotes the temporary image to permanent storage. A missing Ack
 * (lost message / failed node) aborts the transaction on all replicas.
 *
 * This module provides:
 *  - a placement rule mapping each record to its K backup nodes,
 *  - per-node ReplicaStore with a two-stage (staged -> durable) image,
 *  - persistence timing (NVM-like by default, SSD configurable),
 *  - failure injection: a per-message loss probability and explicit
 *    node-failure switches, so the abort path is actually exercised.
 */

#ifndef HADES_REPLICA_REPLICATION_HH_
#define HADES_REPLICA_REPLICATION_HH_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/hash.hh"
#include "common/rng.hh"
#include "common/time.hh"
#include "common/types.hh"

namespace hades::replica
{

/** Durability medium for staged replica images. */
enum class Medium
{
    Nvm, //!< ~300ns persist
    Ssd, //!< ~10us persist
};

/** Replication configuration. */
struct ReplicationConfig
{
    /** Number of backup copies per record (0 disables replication). */
    std::uint32_t degree = 0;
    Medium medium = Medium::Nvm;
    /** Probability that a replica-update message is lost (failure
     *  injection; lost updates abort the transaction). */
    double messageLossProbability = 0.0;

    bool enabled() const { return degree > 0; }

    /** Persist latency of one staged image. */
    Tick
    persistLatency() const
    {
        return medium == Medium::Nvm ? ns(300) : us(10);
    }
};

/**
 * One node's replica storage: staged images (temporary durable
 * storage, keyed by the writing transaction) and the permanent
 * durable image.
 */
class ReplicaStore
{
  public:
    /** Stage a value for @p record written by transaction @p tx. */
    void
    stage(std::uint64_t tx, std::uint64_t record, std::int64_t value)
    {
        staged_[tx].emplace_back(record, value);
    }

    /** Promote a transaction's staged images to permanent storage. */
    void
    promote(std::uint64_t tx)
    {
        auto it = staged_.find(tx);
        if (it == staged_.end())
            return;
        for (auto &[record, value] : it->second)
            durable_[record] = value;
        staged_.erase(it);
    }

    /** Drop a transaction's staged images (abort path). */
    void discard(std::uint64_t tx) { staged_.erase(tx); }

    /** Durable value of @p record (recovery reads this). */
    std::int64_t
    durableValue(std::uint64_t record) const
    {
        auto it = durable_.find(record);
        return it == durable_.end() ? 0 : it->second;
    }

    bool hasDurable(std::uint64_t record) const
    {
        return durable_.count(record) != 0;
    }

    std::size_t stagedTxns() const { return staged_.size(); }
    std::size_t durableRecords() const { return durable_.size(); }

  private:
    std::unordered_map<
        std::uint64_t,
        std::vector<std::pair<std::uint64_t, std::int64_t>>>
        staged_;
    std::unordered_map<std::uint64_t, std::int64_t> durable_;
};

/**
 * Cluster-wide replica placement and state: record -> K backup nodes
 * (primary excluded), one ReplicaStore per node, plus failure
 * injection counters.
 */
class ReplicaManager
{
  public:
    ReplicaManager(const ReplicationConfig &cfg, std::uint32_t num_nodes,
                   std::uint64_t seed = 0xfee1)
        : cfg_(cfg), numNodes_(num_nodes), rng_(seed),
          stores_(num_nodes)
    {}

    const ReplicationConfig &config() const { return cfg_; }

    /**
     * Backup nodes of a record homed at @p primary: the next K nodes
     * in a hash-rotated ring, skipping the primary (chain placement).
     */
    std::vector<NodeId>
    backupsOf(std::uint64_t record, NodeId primary) const
    {
        std::vector<NodeId> out;
        if (!cfg_.enabled() || numNodes_ < 2)
            return out;
        std::uint32_t k =
            std::min(cfg_.degree, numNodes_ - 1);
        std::uint64_t start = mix64(record ^ 0xb4c4) % numNodes_;
        for (std::uint32_t i = 0; out.size() < k; ++i) {
            NodeId n = NodeId((start + i) % numNodes_);
            if (n != primary)
                out.push_back(n);
        }
        return out;
    }

    ReplicaStore &store(NodeId n) { return stores_[n]; }
    const ReplicaStore &store(NodeId n) const { return stores_[n]; }

    /** Failure injection: does this replica-update message get lost? */
    bool
    injectLoss()
    {
        if (cfg_.messageLossProbability <= 0.0)
            return false;
        bool lost = rng_.chance(cfg_.messageLossProbability);
        lostMessages_ += lost ? 1 : 0;
        return lost;
    }

    /**
     * Recovery check: every record in @p records must have identical
     * durable images on all of its backups.
     * @return number of records whose replicas diverge.
     */
    std::uint64_t
    divergentRecords(const std::vector<std::uint64_t> &records,
                     const std::vector<NodeId> &primaries) const
    {
        std::uint64_t bad = 0;
        for (std::size_t i = 0; i < records.size(); ++i) {
            auto backups = backupsOf(records[i], primaries[i]);
            if (backups.size() < 2)
                continue;
            std::int64_t first =
                stores_[backups[0]].durableValue(records[i]);
            for (std::size_t b = 1; b < backups.size(); ++b)
                if (stores_[backups[b]].durableValue(records[i]) !=
                    first)
                    ++bad;
        }
        return bad;
    }

    std::uint64_t lostMessages() const { return lostMessages_; }
    std::uint64_t replicatedCommits() const { return commits_; }
    std::uint64_t replicationAborts() const { return aborts_; }

    void noteCommit() { ++commits_; }
    void noteAbort() { ++aborts_; }

  private:
    ReplicationConfig cfg_;
    std::uint32_t numNodes_;
    Rng rng_;
    std::vector<ReplicaStore> stores_;
    std::uint64_t lostMessages_ = 0;
    std::uint64_t commits_ = 0;
    std::uint64_t aborts_ = 0;
};

} // namespace hades::replica

#endif // HADES_REPLICA_REPLICATION_HH_
