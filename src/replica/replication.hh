/**
 * @file
 * Fault-tolerance and durability substrate (Section V-A, "Fault-
 * Tolerance and Durability").
 *
 * The paper outlines the design: every write additionally updates
 * replicas on other nodes; replica updates must complete by commit
 * time; durability requires the updated replicas to be persisted
 * (SSD/NVM) by commit. The mechanism piggybacks on HADES' two-phase
 * commit: the coordinator's Intend-to-commit fans out to replica
 * nodes, each persists the update to *temporary durable storage* and
 * answers with an Ack; once all Acks arrive the Validation message
 * promotes the temporary image to permanent storage. A missing Ack
 * (lost message / failed node) aborts the transaction on all replicas.
 *
 * This module provides:
 *  - a placement rule mapping each record to its K backup nodes,
 *  - per-node ReplicaStore with a two-stage (staged -> durable) image,
 *  - persistence timing (NVM-like by default, SSD configurable),
 *  - failure injection: a per-message loss probability and explicit
 *    node-failure switches, so the abort path is actually exercised.
 */

#ifndef HADES_REPLICA_REPLICATION_HH_
#define HADES_REPLICA_REPLICATION_HH_

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hash.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/time.hh"
#include "common/types.hh"
#include "txn/ground_truth.hh"

namespace hades::replica
{

/** Durability medium for staged replica images. */
enum class Medium
{
    Nvm, //!< ~300ns persist
    Ssd, //!< ~10us persist
};

/** Replication configuration. */
struct ReplicationConfig
{
    /** Number of backup copies per record (0 disables replication). */
    std::uint32_t degree = 0;
    Medium medium = Medium::Nvm;
    /** Probability that a replica-update message is lost (failure
     *  injection; lost updates abort the transaction). */
    double messageLossProbability = 0.0;

    bool enabled() const { return degree > 0; }

    /** Persist latency of one staged image. */
    Tick
    persistLatency() const
    {
        return medium == Medium::Nvm ? ns(300) : us(10);
    }
};

/**
 * One node's replica storage: staged images (temporary durable
 * storage, keyed by the writing transaction) and the permanent
 * durable image.
 */
class ReplicaStore
{
  public:
    /** A permanently stored image: the value plus the commit sequence
     *  number of the transaction that wrote it. Promotions apply
     *  max-seq-wins, so reordered/replayed promote deliveries (message
     *  delay, duplication, recovery re-promotion) can never roll a
     *  record back to an older committed value. */
    struct DurableImage
    {
        std::int64_t value = 0;
        std::uint64_t seq = 0;
    };

    /** Stage a value for @p record written by transaction @p tx. */
    void
    stage(std::uint64_t tx, std::uint64_t record, std::int64_t value)
    {
        staged_[tx].emplace_back(record, value);
    }

    /**
     * Promote a transaction's staged images to permanent storage with
     * the commit sequence the coordinator assigned at its serialization
     * point. Idempotent: replayed copies find no staged entry, and
     * max-seq-wins makes re-promotion harmless.
     */
    void
    promote(std::uint64_t tx, std::uint64_t seq)
    {
        auto it = staged_.find(tx);
        if (it == staged_.end())
            return;
        for (auto &[record, value] : it->second)
            installDurable(record, value, seq);
        staged_.erase(it);
    }

    /** Install one durable image directly (recovery re-replication and
     *  in-doubt promotion), max-seq-wins. */
    void
    installDurable(std::uint64_t record, std::int64_t value,
                   std::uint64_t seq)
    {
        auto &img = durable_[record];
        if (img.seq <= seq) {
            always_assert(img.seq != seq || img.value == value ||
                              img.seq == 0,
                          "conflicting durable images with equal seq");
            img = DurableImage{value, seq};
        }
    }

    /** Drop a transaction's staged images (abort path). */
    void discard(std::uint64_t tx) { staged_.erase(tx); }

    /**
     * Durable value of @p record, or nullopt if this store never
     * promoted an image for it. "Missing" is distinct from value 0:
     * recovery must never fabricate a zero image for a record that was
     * never replicated here.
     */
    std::optional<std::int64_t>
    durableValue(std::uint64_t record) const
    {
        auto it = durable_.find(record);
        if (it == durable_.end())
            return std::nullopt;
        return it->second.value;
    }

    /** Full durable image (value + commit seq), or nullopt. */
    std::optional<DurableImage>
    durableImage(std::uint64_t record) const
    {
        auto it = durable_.find(record);
        if (it == durable_.end())
            return std::nullopt;
        return it->second;
    }

    bool hasDurable(std::uint64_t record) const
    {
        return durable_.count(record) != 0;
    }

    std::size_t stagedTxns() const { return staged_.size(); }
    std::size_t durableRecords() const { return durable_.size(); }

    /** Ids of transactions with staged (un-promoted, un-discarded)
     *  images, sorted -- the in-doubt scan of recovery iterates this. */
    std::vector<std::uint64_t>
    stagedTxIds() const
    {
        std::vector<std::uint64_t> out;
        out.reserve(staged_.size());
        for (const auto &kv : staged_) // det-lint: ordered-ok (sorted)
            out.push_back(kv.first);
        std::sort(out.begin(), out.end());
        return out;
    }

    /** Staged writes of @p tx (empty if none). */
    std::vector<std::pair<std::uint64_t, std::int64_t>>
    stagedWrites(std::uint64_t tx) const
    {
        auto it = staged_.find(tx);
        if (it == staged_.end())
            return {};
        return it->second;
    }

  private:
    std::unordered_map<
        std::uint64_t,
        std::vector<std::pair<std::uint64_t, std::int64_t>>>
        staged_;
    std::unordered_map<std::uint64_t, DurableImage> durable_;
};

/**
 * Cluster-wide replica placement and state: record -> K backup nodes
 * (primary excluded), one ReplicaStore per node, plus failure
 * injection counters.
 */
class ReplicaManager
{
  public:
    ReplicaManager(const ReplicationConfig &cfg, std::uint32_t num_nodes,
                   std::uint64_t seed = 0xfee1)
        : cfg_(cfg), numNodes_(num_nodes), rng_(seed),
          stores_(num_nodes), dead_(num_nodes, 0), present_(num_nodes, 1)
    {}

    const ReplicationConfig &config() const { return cfg_; }

    /**
     * Backup nodes of a record homed at @p primary: the next K nodes
     * in a hash-rotated ring, skipping the primary (chain placement).
     * Ring *positions* are fixed for the lifetime of the cluster: a
     * node marked dead (permanent crash) leaves its slot empty rather
     * than pulling the next live node in, so the backup set after a
     * failure is always a subset of the original set. (Growing the
     * ring would hand a slot to a node that never received the
     * in-flight promotes of earlier commits, leaving it with a stale
     * image no protocol message will ever correct; effective
     * redundancy instead degrades by one until an out-of-band
     * re-replication -- out of scope for the single-failure model --
     * restores it.)
     */
    std::vector<NodeId>
    backupsOf(std::uint64_t record, NodeId primary) const
    {
        std::vector<NodeId> out;
        if (!cfg_.enabled() || numNodes_ < 2)
            return out;
        std::uint32_t k = std::min(cfg_.degree, numNodes_ - 1);
        std::uint64_t start = mix64(record ^ 0xb4c4) % numNodes_;
        std::uint32_t slots = 0;
        for (std::uint32_t i = 0; slots < k && i < numNodes_; ++i) {
            NodeId n = NodeId((start + i) % numNodes_);
            if (n == primary)
                continue;
            // Membership: a node not (or no longer) in the cluster is
            // invisible to the ring -- skipped *without* consuming a
            // slot, so the window slides past it. When every node is
            // present (the default) this is a no-op and the rings are
            // bit-identical to the pre-membership layout. A node
            // entering or leaving the present set shifts ring windows,
            // which is exactly why the MembershipManager runs its
            // convergent image-resync sweep after every transition.
            if (present_[n] == 0)
                continue;
            slots += 1;
            if (dead_[n] == 0)
                out.push_back(n);
        }
        return out;
    }

    /** Permanently remove @p node from every backup ring (and from the
     *  divergence scan): its store's images are unreachable. */
    void
    markDead(NodeId node)
    {
        if (dead_[node] == 0) {
            dead_[node] = 1;
            liveNodes_ -= 1;
        }
    }

    bool nodeDead(NodeId node) const { return dead_[node] != 0; }
    std::uint32_t liveNodes() const { return liveNodes_; }

    /** Elastic membership: admit @p node into the backup rings (join)
     *  or remove it without the dead-slot tombstone (planned drain --
     *  unlike a crash, the ring may re-close around the gap because
     *  the MembershipManager resyncs images afterwards). */
    void markPresent(NodeId node) { present_[node] = 1; }
    void markAbsent(NodeId node) { present_[node] = 0; }
    bool nodePresent(NodeId node) const { return present_[node] != 0; }

    /**
     * Commit sequence numbers. A coordinator draws one at its
     * serialization point (atomically with applying its writes) and
     * stamps every promote of the transaction with it; max-seq-wins at
     * the stores then reconstructs commit order no matter how promote
     * deliveries reorder. Models the LSN of a durable commit record.
     */
    std::uint64_t nextCommitSeq() { return ++commitSeq_; }

    /**
     * Record, atomically with a coordinator's serialization point, that
     * @p record's ground-truth value is now the one stamped @p seq.
     * This is the durable part of the commit record that names the
     * written records (the promotes themselves may still be in flight
     * arbitrarily long after the decision). Recovery's re-replication
     * of a re-homed record reads the committed value from the new
     * primary and needs this seq to stamp the copies, so late promote
     * deliveries on either side of the view change resolve correctly
     * under max-seq-wins.
     */
    void
    noteCommittedWrite(std::uint64_t record, std::uint64_t seq)
    {
        auto &s = recordSeq_[record];
        s = std::max(s, seq);
    }

    /** Commit seq of the last serialized write of @p record, or
     *  nullopt if no committed transaction ever wrote it. */
    std::optional<std::uint64_t>
    lastCommittedSeq(std::uint64_t record) const
    {
        auto it = recordSeq_.find(record);
        if (it == recordSeq_.end())
            return std::nullopt;
        return it->second;
    }

    ReplicaStore &store(NodeId n) { return stores_[n]; }
    const ReplicaStore &store(NodeId n) const { return stores_[n]; }

    /** Failure injection: does this replica-update message get lost? */
    bool
    injectLoss()
    {
        if (cfg_.messageLossProbability <= 0.0)
            return false;
        bool lost = rng_.chance(cfg_.messageLossProbability);
        lostMessages_ += lost ? 1 : 0;
        return lost;
    }

    /**
     * Recovery check: for every record the workload ever committed,
     * every *live* backup must hold a durable image equal to the
     * ground-truth committed value -- not merely agree with the other
     * backups (replicas that agree on a stale value are still lost
     * data), and a single-backup ring is checked like any other.
     * @p home_of maps a record to its current primary.
     * @return number of records with a missing or wrong backup image.
     */
    template <typename HomeOf>
    std::uint64_t
    divergentRecords(const txn::GroundTruth &gt, HomeOf &&home_of) const
    {
        std::uint64_t bad = 0;
        for (std::uint64_t rec : gt.touchedRecords()) {
            const std::int64_t want = gt.read(rec);
            for (NodeId b : backupsOf(rec, home_of(rec))) {
                auto got = stores_[b].durableValue(rec);
                if (!got || *got != want) {
                    ++bad;
                    break;
                }
            }
        }
        return bad;
    }

    std::uint64_t lostMessages() const { return lostMessages_; }
    std::uint64_t replicatedCommits() const { return commits_; }
    std::uint64_t replicationAborts() const { return aborts_; }

    void noteCommit() { ++commits_; }
    void noteAbort() { ++aborts_; }

  private:
    ReplicationConfig cfg_;
    std::uint32_t numNodes_;
    Rng rng_;
    std::vector<ReplicaStore> stores_;
    std::vector<char> dead_;
    /** Membership mask: spares start absent, drained nodes end absent.
     *  All-ones (the default) reproduces the fixed-ring layout. */
    std::vector<char> present_;
    std::uint32_t liveNodes_ = numNodes_;
    std::uint64_t commitSeq_ = 0;
    /** record -> commit seq of its last serialized write. Lookup only,
     *  never iterated (iteration order would be nondeterministic). */
    std::unordered_map<std::uint64_t, std::uint64_t> recordSeq_;
    std::uint64_t lostMessages_ = 0;
    std::uint64_t commits_ = 0;
    std::uint64_t aborts_ = 0;
};

} // namespace hades::replica

#endif // HADES_REPLICA_REPLICATION_HH_
