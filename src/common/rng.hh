/**
 * @file
 * Deterministic random number generation for workloads and placement.
 *
 * A seeded xoshiro256** generator keeps every simulation bit-reproducible,
 * which the test suite relies on. The Zipf generator implements the
 * rejection-inversion method of Hormann & Derflinger so that the YCSB
 * zipfian key distribution (Section VII of the paper) is sampled in O(1)
 * without building a table over millions of keys.
 */

#ifndef HADES_COMMON_RNG_HH_
#define HADES_COMMON_RNG_HH_

#include <cmath>
#include <cstdint>

namespace hades
{

/** Small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : s_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

/**
 * Zipf-distributed sampler over {0, ..., n-1} with skew theta.
 *
 * YCSB's default zipfian constant is 0.99; the paper's key-value store
 * experiments use a zipfian distribution over 4M keys.
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t n, double theta = 0.99)
        : n_(n), theta_(theta)
    {
        zeta2_ = zetaStatic(2, theta_);
        zetaN_ = zetaStatic(n_, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
               (1.0 - zeta2_ / zetaN_);
    }

    /** Draw a sample; item 0 is the most popular. */
    std::uint64_t
    sample(Rng &rng) const
    {
        double u = rng.uniform();
        double uz = u * zetaN_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta_))
            return 1;
        auto v = static_cast<std::uint64_t>(
            double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return v >= n_ ? n_ - 1 : v;
    }

    std::uint64_t numItems() const { return n_; }
    double theta() const { return theta_; }

  private:
    /**
     * Truncated zeta sum. For the large key spaces in the evaluation the
     * sum is approximated past a fixed prefix with the integral tail,
     * keeping construction O(1)-ish while staying within a fraction of a
     * percent of the exact value.
     */
    static double
    zetaStatic(std::uint64_t n, double theta)
    {
        constexpr std::uint64_t kExactPrefix = 1 << 16;
        double sum = 0.0;
        std::uint64_t prefix = n < kExactPrefix ? n : kExactPrefix;
        for (std::uint64_t i = 1; i <= prefix; ++i)
            sum += std::pow(1.0 / double(i), theta);
        if (n > prefix) {
            // integral of x^-theta from prefix to n
            sum += (std::pow(double(n), 1.0 - theta) -
                    std::pow(double(prefix), 1.0 - theta)) /
                   (1.0 - theta);
        }
        return sum;
    }

    std::uint64_t n_;
    double theta_;
    double zeta2_, zetaN_, alpha_, eta_;
};

} // namespace hades

#endif // HADES_COMMON_RNG_HH_
