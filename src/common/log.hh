/**
 * @file
 * Minimal logging and error-exit helpers, following the gem5 convention:
 * panic() for internal invariant violations (simulator bugs), fatal() for
 * user/configuration errors, warn()/inform() for status.
 */

#ifndef HADES_COMMON_LOG_HH_
#define HADES_COMMON_LOG_HH_

#include <cstdio>
#include <cstdlib>

namespace hades
{

/** Abort: a condition that indicates a bug in the simulator itself. */
[[noreturn]] inline void
panic(const char *msg)
{
    std::fprintf(stderr, "panic: %s\n", msg);
    std::abort();
}

/** Exit(1): the simulation cannot continue due to a user error. */
[[noreturn]] inline void
fatal(const char *msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg);
    std::exit(1);
}

/** Non-fatal warning to stderr. */
inline void
warn(const char *msg)
{
    std::fprintf(stderr, "warn: %s\n", msg);
}

/** Assert-like check that survives NDEBUG builds. */
inline void
always_assert(bool cond, const char *msg)
{
    if (!cond)
        panic(msg);
}

} // namespace hades

#endif // HADES_COMMON_LOG_HH_
