/**
 * @file
 * Minimal logging and error-exit helpers, following the gem5 convention:
 * panic() for internal invariant violations (simulator bugs), fatal() for
 * user/configuration errors, warn()/inform() for status.
 */

#ifndef HADES_COMMON_LOG_HH_
#define HADES_COMMON_LOG_HH_

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace hades
{

/** What panic() threw when throw-mode is on (see setPanicThrows). */
struct PanicError : std::runtime_error
{
    explicit PanicError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{
/** Process-wide panic mode flag. Written once before worker threads
 *  start (the chaos fuzzer sets it up front), read on the cold panic
 *  path only. */
inline bool &
panicThrowsFlag()
{
    static bool flag = false;
    return flag;
}
} // namespace detail

/**
 * Select panic() behavior: abort (default; a violated invariant is a
 * simulator bug and the core dump is the artifact) or throw PanicError
 * (the chaos fuzzer's mode: a violation inside one runMany() slot is
 * caught by the sweep's per-slot exception barrier and reported as a
 * failed outcome, so the campaign can shrink it instead of dying).
 * Call it before any worker thread exists.
 */
inline void
setPanicThrows(bool throws)
{
    detail::panicThrowsFlag() = throws;
}

/** Abort (or throw PanicError in throw-mode): a condition that
 *  indicates a bug in the simulator itself. Never returns normally. */
[[noreturn]] inline void
panic(const char *msg)
{
    if (detail::panicThrowsFlag())
        throw PanicError(std::string("panic: ") + msg);
    std::fprintf(stderr, "panic: %s\n", msg);
    std::abort();
}

/** Exit(1): the simulation cannot continue due to a user error. */
[[noreturn]] inline void
fatal(const char *msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg);
    std::exit(1);
}

/** Non-fatal warning to stderr. */
inline void
warn(const char *msg)
{
    std::fprintf(stderr, "warn: %s\n", msg);
}

/** Assert-like check that survives NDEBUG builds. */
inline void
always_assert(bool cond, const char *msg)
{
    if (!cond)
        panic(msg);
}

} // namespace hades

#endif // HADES_COMMON_LOG_HH_
