/**
 * @file
 * Cluster configuration: the architectural parameters of Table III of the
 * paper plus the software cost model used by the Baseline (SW-Impl)
 * protocol engine.
 *
 * Every knob the evaluation sweeps (node/core counts, network latency,
 * locality fraction, Bloom filter geometry) lives here so that each bench
 * binary is a pure function of a ClusterConfig.
 */

#ifndef HADES_COMMON_CONFIG_HH_
#define HADES_COMMON_CONFIG_HH_

#include <array>
#include <cstdint>
#include <vector>

#include "common/time.hh"
#include "common/types.hh"

namespace hades
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t ways = 8;
    std::uint32_t accessCycles = 2; //!< round-trip latency in core cycles
};

/** Bloom filter geometry (bits and number of hash functions). */
struct BloomParams
{
    std::uint32_t bits = 1024;
    /** Two hash functions reproduce the Table IV false-positive rates
     *  of the paper's 1-Kbit filters. */
    std::uint32_t numHashes = 2;
};

/**
 * Geometry of the split write Bloom filter of Section V-C / Figure 8:
 * WrBF1 is CRC-hashed, WrBF2 is indexed with the LLC set-index bits
 * modulo its size so set bits identify groups of LLC sets.
 */
struct SplitWriteBloomParams
{
    std::uint32_t bf1Bits = 512;
    /** One CRC hash in WrBF1: the LLC-index section WrBF2 acts as the
     *  second hash function (matches Table IV row 2). */
    std::uint32_t bf1Hashes = 1;
    std::uint32_t bf2Bits = 4096;
};

/**
 * Cycle costs of the software operations that Table I identifies as the
 * overheads of SW-Impl. The constants are per-record or per-line charges
 * the Baseline engine adds on top of the raw memory/network accesses;
 * HADES eliminates them (and HADES-H eliminates the remote-path subset).
 */
struct SoftwareCostModel
{
    // The constants are calibrated so that the Table I categories add
    // up to the 59-71% execution-time share Figure 3 reports for
    // SW-Impl on a FaRM-class system. Each per-record entry is on the
    // order of 0.3-1 us of protocol code at 2 GHz (allocation, hashing,
    // marshalling, bounce-buffer copies, completion polling), which is
    // what published FaRM-family profiles show per operation.

    /** Insert one entry into the read or write set (allocation,
     *  bookkeeping, hashing into the per-transaction tables). */
    std::uint32_t setInsertCycles = 2400;
    /** Look up / iterate one set entry during validation or commit. */
    std::uint32_t setWalkCycles = 400;
    /** memcpy throughput for buffering data, bytes per cycle. */
    std::uint32_t copyBytesPerCycle = 2;
    /** Bump a record's version before a write. */
    std::uint32_t versionUpdateCycles = 800;
    /** Per-line version compare when checking read atomicity. */
    std::uint32_t atomicityCheckPerLineCycles = 700;
    /** Compare a re-read version against the read-set entry. */
    std::uint32_t versionCompareCycles = 1400;
    /** Local lock / unlock via CAS. */
    std::uint32_t localCasCycles = 700;
    /** Software issue cost of posting one RDMA verb to the NIC. */
    std::uint32_t rdmaPostCycles = 600;
    /** Poll for an RDMA completion (per poll iteration). */
    std::uint32_t rdmaPollCycles = 400;
    /** Exec-phase retries when a record is found locked, before the
     *  transaction aborts (FaRM re-reads briefly instead of aborting). */
    std::uint32_t lockedReadRetries = 4;
};

/**
 * Robustness tuning: every retry / resend / lease timing constant of
 * the fault-recovery machinery (PRs 1 and 4) in one documented place,
 * so chaos tests and fuzzer genomes can vary them coherently instead
 * of poking scattered magic numbers. Defaults are the values the
 * subsystems shipped with; changing none of them keeps every run
 * bit-identical.
 */
struct RobustnessTuning
{
    // --- optimistic-retry policy (all engines) -------------------------------
    /** FaRM-style livelock escape: after this many squashes of the same
     *  transaction, fall back to lock-all pessimistic execution. */
    std::uint32_t maxSquashesBeforeLockMode = 48;
    /** Exponential backoff base applied between retries (cycles). */
    std::uint32_t retryBackoffBaseCycles = 200;

    // --- message-loss recovery (only active when faults.enabled) -------------
    /** Initial per-verb retransmission/resend timeout. Doubles per
     *  attempt (capped at retryTimeoutCap) with jitter on the
     *  protocol-level resends. */
    Tick retryTimeoutBase = us(8);
    Tick retryTimeoutCap = us(128);
    /** Commit-phase Intend-to-commit resend budget: after this many
     *  timeout-triggered resend rounds without a full Ack set the
     *  committer squashes itself (CommitTimeout) and retries. */
    std::uint32_t maxCommitResends = 10;
    /** reliablePost resend budget; 0 means unbounded (the PR-1
     *  semantics: resend until confirmed or an endpoint dies). A bound
     *  keeps runs finite under never-healing partitions, where an Ack
     *  may be unreachable forever. */
    std::uint32_t maxReliableResends = 0;

    // --- lease-based failure detection (recovery.enabled) --------------------
    /** Lease renewal period (manager -> holder probe cadence). */
    Tick leaseInterval = us(20);
    /** Expiry horizon: a node whose last renewal is older than this is
     *  declared dead and a view change begins. Must comfortably exceed
     *  leaseInterval plus one network round-trip. */
    Tick leaseTimeout = us(50);
};

/**
 * Fault-injection plan knobs (src/fault/). All perturbations are drawn
 * from a dedicated seeded RNG, so a faulty run is exactly as
 * bit-reproducible as a fault-free one. With enabled == false the
 * network takes its original code paths and no RNG is consumed, so
 * fault-free runs are bit-identical to builds without the subsystem.
 */
struct FaultConfig
{
    /** Must mirror net::MsgType::NumTypes (static_assert'd in
     *  src/fault/fault_plan.cc). */
    static constexpr std::size_t kNumVerbs = 10;

    bool enabled = false;
    /** Mixed with ClusterConfig::seed to seed the fault RNG. */
    std::uint64_t seed = 0x0ddfa117;

    /** Per-verb message-loss probability, indexed by net::MsgType. */
    std::array<double, kNumVerbs> dropProb{};
    /** Per-verb duplicate-delivery probability. */
    std::array<double, kNumVerbs> dupProb{};
    /** Per-verb reorder-delay probability. */
    std::array<double, kNumVerbs> delayProb{};
    /** Per-verb payload-corruption probability: the copy is delivered
     *  but fails the destination NIC's CRC check and is discarded, so
     *  at the protocol layer a corrupted Intend-to-commit or Validation
     *  is indistinguishable from a drop and the RC-retransmission /
     *  reliablePost machinery recovers it. */
    std::array<double, kNumVerbs> corruptProb{};
    /** Deterministically drop the first N sends of a verb (phase-
     *  targeted chaos tests; probabilistic knobs are skipped for a
     *  message dropped this way). */
    std::array<std::uint32_t, kNumVerbs> dropFirst{};

    /** Upper bound of an injected reorder delay. */
    Tick maxDelay = us(6);

    /** Probability that a send additionally stalls the source NIC
     *  pipeline (backpressure burst) for nicStallTicks. */
    double nicStallProb = 0;
    Tick nicStallTicks = us(1);

    /**
     * Whole-node outage window scheduled on the DES kernel. A *pause*
     * stalls the node's cores and NIC TX port for the window and defers
     * message arrivals to the window end. A *crash* additionally drops
     * every message into or out of the node during the window
     * (fail-stop with message amnesia; the node restarts warm at
     * `until` -- see DESIGN.md). A *permanent crash* (`forever`) never
     * restarts: the window extends to the end of the run, the node's
     * cores and NIC are frozen, and -- when RecoveryConfig::enabled --
     * lease expiry at the configuration manager triggers an
     * epoch-numbered view change that fails the node over to its
     * replicas (see DESIGN.md section 9).
     */
    struct NodeEvent
    {
        NodeId node = 0;
        Tick at = 0;
        Tick until = 0;
        bool crash = false;
        /** Permanent fail-stop: `until` is ignored (treated as +inf)
         *  and `crash` semantics are implied. */
        bool forever = false;
    };
    std::vector<NodeEvent> nodeEvents;

    /**
     * Link-level network partition: every message copy sent on a listed
     * directed src->dst edge inside [at, until) is dropped on the wire
     * (asymmetric by default -- the reverse direction keeps working
     * unless `symmetric` adds it). Healing is scheduled, not magic: at
     * `until` the edges simply carry traffic again and the endpoints'
     * retransmission / resend timers recover whatever was lost. A
     * window that never heals (until == kTickMax) models a permanent
     * partition; use with care, since a round trip across it
     * retransmits forever and the run only drains if no coroutine is
     * stuck on such a link when the drivers finish.
     */
    struct PartitionWindow
    {
        /** Directed src->dst edges the window blocks. */
        std::vector<std::pair<NodeId, NodeId>> edges;
        Tick at = 0;
        Tick until = 0;
        /** Also block every reverse edge (full bidirectional cut). */
        bool symmetric = false;

        bool
        blocks(NodeId src, NodeId dst, Tick t) const
        {
            if (t < at || t >= until)
                return false;
            for (const auto &e : edges)
                if ((e.first == src && e.second == dst) ||
                    (symmetric && e.first == dst && e.second == src))
                    return true;
            return false;
        }

        /** Convenience: isolate @p node from every other node in both
         *  directions. */
        static PartitionWindow
        isolate(NodeId node, std::uint32_t num_nodes, Tick at, Tick until)
        {
            PartitionWindow w;
            w.at = at;
            w.until = until;
            w.symmetric = true;
            for (NodeId n = 0; n < num_nodes; ++n)
                if (n != node)
                    w.edges.emplace_back(node, n);
            return w;
        }
    };
    std::vector<PartitionWindow> partitions;

    /** True if any window blocks the directed edge src->dst at @p t. */
    bool
    linkBlocked(NodeId src, NodeId dst, Tick t) const
    {
        for (const auto &w : partitions)
            if (w.blocks(src, dst, t))
                return true;
        return false;
    }

    /** Number of partition windows whose scheduled healing instant has
     *  passed by @p t (computed lazily so healing needs no kernel
     *  event and never extends the simulated run). */
    std::uint64_t
    partitionsHealedBy(Tick t) const
    {
        std::uint64_t n = 0;
        for (const auto &w : partitions)
            n += w.until != kTickMax && w.until <= t;
        return n;
    }

    // Convenience setters: apply one probability to every verb.
    void dropAll(double p) { dropProb.fill(p); }
    void dupAll(double p) { dupProb.fill(p); }
    void delayAll(double p) { delayProb.fill(p); }
    void corruptAll(double p) { corruptProb.fill(p); }

    /**
     * Grey (fail-slow) fault: nothing is lost, everything is *late*.
     * A SlowNic event inflates the one-way wire latency of every copy
     * into or out of `node` by `factorPct` percent; a SlowLink event
     * inflates only the directed src->dst edge (plus the reverse when
     * `symmetric`); a StraggleCore event steals cycles from every core
     * of `node` (duty-cycle reservations), modeling thermal throttling
     * or a noisy neighbor. Grey delays are a pure integer function of
     * (src, dst, send instant) -- no RNG draw -- so enabling one never
     * shifts the probabilistic fault sequence of unrelated messages,
     * and runs stay bit-identical across shard counts.
     */
    struct GreyEvent
    {
        enum class Kind : std::uint8_t
        {
            SlowNic,      //!< all traffic touching `node`
            SlowLink,     //!< directed edge node->dst only
            StraggleCore, //!< cores of `node` run slow
        };
        Kind kind = Kind::SlowNic;
        NodeId node = 0; //!< victim (SlowNic/StraggleCore), link source
        NodeId dst = 0;  //!< link destination (SlowLink only)
        /** Latency multiplier in percent; 100 = no slowdown, 300 = 3x.
         *  Integer so the injected delay is exactly reproducible. */
        std::uint32_t factorPct = 300;
        Tick at = 0;
        Tick until = 0;
        bool symmetric = false; //!< SlowLink: both directions

        bool
        covers(Tick t) const
        {
            return t >= at && t < until && factorPct > 100;
        }
    };
    std::vector<GreyEvent> greyEvents;

    bool anyGrey() const { return !greyEvents.empty(); }

    /**
     * Extra one-way delay a message copy sent src->dst at @p t suffers
     * from the active grey events, given the healthy one-way latency
     * @p base. Overlapping events stack additively. Deterministic
     * integer arithmetic only.
     */
    Tick
    greyExtraDelay(NodeId src, NodeId dst, Tick t, Tick base) const
    {
        Tick extra = 0;
        for (const auto &g : greyEvents) {
            if (!g.covers(t))
                continue;
            bool hits = false;
            switch (g.kind) {
            case GreyEvent::Kind::SlowNic:
                hits = g.node == src || g.node == dst;
                break;
            case GreyEvent::Kind::SlowLink:
                hits = (g.node == src && g.dst == dst) ||
                       (g.symmetric && g.node == dst && g.dst == src);
                break;
            case GreyEvent::Kind::StraggleCore:
                break; // core events never touch the wire
            }
            if (hits)
                extra += base * Tick(g.factorPct - 100) / 100;
        }
        return extra;
    }

    bool
    anyNodeEventCovers(NodeId node, Tick t, bool crash_only) const
    {
        for (const auto &ev : nodeEvents)
            if (ev.node == node && t >= ev.at &&
                (ev.forever || t < ev.until) &&
                (!crash_only || ev.crash || ev.forever))
                return true;
        return false;
    }

    /** First permanent-crash instant for `node`, or kTickMax if the
     *  plan never kills it for good. */
    Tick
    crashForeverAt(NodeId node) const
    {
        Tick best = kTickMax;
        for (const auto &ev : nodeEvents)
            if (ev.forever && ev.node == node && ev.at < best)
                best = ev.at;
        return best;
    }

    bool
    anyForever() const
    {
        for (const auto &ev : nodeEvents)
            if (ev.forever)
                return true;
        return false;
    }
};

/**
 * Crash-recovery / reconfiguration knobs (src/recovery/). A replica
 * group of configuration-manager nodes grants per-node leases over the
 * simulated network; a lease that expires (because the holder is
 * permanently crashed and stops renewing) triggers an epoch-numbered
 * view change that promotes replica images, re-homes the placement
 * ring, drains the dead node's protocol footprint and resolves
 * in-doubt transactions. Lease/lease-timing constants live in
 * RobustnessTuning. Disabled by default: fault-free runs construct no
 * recovery state and stay bit-identical to builds without the
 * subsystem.
 */
struct RecoveryConfig
{
    bool enabled = false;
    /** First slot of the configuration-manager replica group: the group
     *  occupies cmGroupSize consecutive node slots starting here
     *  (mod numNodes), and the lowest-slot live member acts as primary
     *  lease grantor. */
    NodeId managerNode = 0;
    /** Fixed-slot CM replica group size (clamped to numNodes). A
     *  crashed primary is detected by its standbys through the same
     *  lease mechanism and deterministically succeeded by the next
     *  live slot; a CM that cannot reach a majority of the live group
     *  members refuses to advance the epoch (no split-brain). */
    std::uint32_t cmGroupSize = 3;
    /** TEST-ONLY seeded bug: skip view-change step 6b (re-replication
     *  of promoted images to ring newcomers), leaving stale backups
     *  behind a crash. Exists so the chaos fuzzer's shrinking can be
     *  demonstrated against a known injected defect; never set it in
     *  real experiments. */
    bool testSkipImageResync = false;
};

/**
 * Elastic-membership knobs (src/recovery/membership.hh): CM-driven
 * *voluntary* reconfiguration -- planned node joins and drains with
 * live record migration -- layered on the same epoch/fencing machinery
 * as crash recovery. Requires recovery.enabled and replication; the
 * runner asserts both. Disabled by default: no MembershipManager is
 * constructed and runs stay bit-identical to builds without the
 * subsystem.
 */
struct MembershipConfig
{
    /** One scheduled join or drain. */
    struct NodeEventAt
    {
        NodeId node = 0;
        Tick at = 0;
    };

    /** Nodes [initialMembers, numNodes) start as spares: they own no
     *  records, hold no replica-ring slots and issue no client load
     *  until a scheduled join admits them. 0 means "all numNodes are
     *  members at t = 0" (the only valid value without joins). */
    std::uint32_t initialMembers = 0;
    /** Scheduled joins: spare `node` is admitted at epoch-fenced
     *  instant `at` and records re-balance toward it in the
     *  background. */
    std::vector<NodeEventAt> joins;
    /** Scheduled planned drains: member `node` stops accepting new
     *  home-node work at `at`, migrates its records and replica slots
     *  to survivors, hands back its hardware footprint and leaves. */
    std::vector<NodeEventAt> drains;

    // --- migration throttle ---------------------------------------------
    /** Records moved per migration batch (one epoch-fenced kernel
     *  event per batch). */
    std::uint32_t migrateBatchRecords = 32;
    /** Pacing interval between consecutive migration batches, so
     *  background migration yields to foreground traffic. */
    Tick migrateBatchInterval = us(4);

    bool
    enabled() const
    {
        return initialMembers > 0 || !joins.empty() || !drains.empty();
    }

    /** Number of record-owning members at t = 0. */
    std::uint32_t
    initialOwners(std::uint32_t num_nodes) const
    {
        if (initialMembers == 0 || initialMembers > num_nodes)
            return num_nodes;
        return initialMembers;
    }
};

/**
 * Latency-SLO detection and hedged retries (src/net/slo_tracker.hh,
 * grey-failure mitigation). When enabled, every completed fault-path
 * round trip feeds a per-(observer, peer) EWMA of the observed RTT --
 * deterministic fixed-point integer arithmetic, no wall clock -- and
 * peers are classified healthy / suspect / degraded against integer
 * multiples of the configured network round trip. Coordinators hedge
 * remote read round trips to a live backup replica once the home is
 * suspect (first response wins; the late copy is suppressed by the
 * same idempotent-replay guard that absorbs duplicate deliveries).
 * Requires faults.enabled (the tracker samples the faulty messaging
 * path); disabled by default so fault-free runs construct no tracker
 * and stay bit-identical.
 */
struct SloConfig
{
    bool enabled = false;
    /** EWMA smoothing: alpha = 1 / 2^ewmaShift (fixed-point). */
    std::uint32_t ewmaShift = 3;
    /** Samples per peer before any classification fires. */
    std::uint32_t warmupSamples = 8;
    /** EWMA >= suspectPct% of the healthy RTT -> Suspect. */
    std::uint32_t suspectPct = 250;
    /** EWMA >= degradedPct% of the healthy RTT -> Degraded. */
    std::uint32_t degradedPct = 500;
    /** Consecutive over-degraded samples before a peer counts as
     *  *sustained* degraded (the quarantine trigger). */
    std::uint32_t sustainedSamples = 12;
    /** Hedge remote reads to a backup replica when the home is at
     *  least Suspect. */
    bool hedgeReads = true;
    /** Hedge copy fires this % of netRoundTrip after the primary. */
    std::uint32_t hedgeDelayPct = 150;
    /** CM-driven quarantine: a sustained-degraded node is drained via
     *  the elastic-membership path (records migrate live, no
     *  epoch-fenced kill). Requires recovery + replication. */
    bool quarantine = false;
};

/**
 * Admission control and retry budgets (src/protocol/admission.hh,
 * overload protection). A per-node token bucket paces new-transaction
 * admission; a queue-depth bound sheds work outright
 * (txn::SquashReason::Shed) with bounded client re-admission backoff;
 * and a per-node retry *budget* -- ratio-capped against admissions,
 * not per-txn -- paces squash retries so a grey failure cannot
 * amplify into a retry storm. All state is integer and refilled
 * lazily from simulated time. Disabled by default: no controller is
 * constructed and runs stay bit-identical.
 */
struct AdmissionConfig
{
    bool enabled = false;
    /** Token-bucket capacity (tokens = admittable txns). */
    std::uint32_t bucketCap = 16;
    /** Tokens added per refillInterval (lazy integer refill). */
    std::uint32_t refillTokens = 8;
    Tick refillInterval = us(2);
    /** In-flight transactions per node above which new admissions are
     *  shed regardless of tokens. 0 disables the depth bound. */
    std::uint32_t maxInFlight = 0;
    /** Retries granted per 100 admitted transactions (the budget
     *  ratio). Exhausted budget *paces* retries instead of failing
     *  them: the retry waits retryPaceBase and re-asks, bounded by
     *  maxRetryDeferrals so forward progress is never lost. */
    std::uint32_t retryBudgetPct = 100;
    std::uint32_t maxRetryDeferrals = 8;
    Tick retryPaceBase = us(2);
    /** Client re-admission backoff after a shed: base << min(tries,
     *  shedBackoffCapShift), deterministic (no jitter draw). */
    Tick shedBackoffBase = us(4);
    std::uint32_t shedBackoffCapShift = 4;
};

/**
 * Sharded parallel-kernel knobs (src/sim/kernel.hh). The shard *count*
 * lives on core::RunSpec (it selects an executor, not a model
 * parameter); this struct tunes how the sharded executors behave.
 * Defaults keep every run bit-identical to the serial oracle.
 */
struct ShardingConfig
{
    /** Conservative synchronization window width. 0 means "use the
     *  lookahead": netRoundTrip / 2, the NIC round-trip floor below
     *  which no cross-node event can land (DESIGN.md section 11).
     *  Must not exceed the lookahead when threaded execution is on. */
    Tick windowTicksOverride = 0;
    /** Force the single-threaded deterministic merge even for specs
     *  the runner would certify for threaded execution (debugging and
     *  the differential tests use this to pin down which executor
     *  diverged). */
    bool forceDeterministic = false;

    /** Effective window width for a given network round trip. */
    Tick
    windowFor(Tick net_round_trip) const
    {
        return windowTicksOverride > 0 ? windowTicksOverride
                                       : net_round_trip / 2;
    }
};

/** Top-level cluster configuration (defaults reproduce Table III). */
struct ClusterConfig
{
    // --- Cluster geometry -------------------------------------------------
    std::uint32_t numNodes = 5;      //!< N
    std::uint32_t coresPerNode = 5;  //!< C
    std::uint32_t slotsPerCore = 2;  //!< m multiplexed transactions/core

    // --- Core and memory hierarchy ---------------------------------------
    double coreFreqGhz = 2.0;
    CacheParams l1{64 * 1024, 8, 2};
    CacheParams l2{512 * 1024, 8, 12};
    std::uint64_t llcBytesPerCore = 4ull * 1024 * 1024;
    std::uint32_t llcWays = 16;
    std::uint32_t llcCycles = 40;
    Tick dramLatency = ns(100);

    // --- HADES hardware primitives ----------------------------------------
    BloomParams coreReadBf{1024, 2};
    SplitWriteBloomParams coreWriteBf{512, 1, 4096};
    BloomParams nicReadBf{1024, 2};
    BloomParams nicWriteBf{1024, 2};
    std::uint32_t crcHashCycles = 2;
    std::uint32_t findTagsMinCycles = 80;
    std::uint32_t findTagsMaxCycles = 120;
    /** 0 means auto-size to 2x the hardware contexts per node. */
    std::uint32_t lockingBuffersPerNode = 0;

    // --- Network -----------------------------------------------------------
    Tick netRoundTrip = us(2);
    double netBandwidthGbps = 200.0;
    std::uint32_t nicQueuePairs = 400;
    std::uint32_t messageHeaderBytes = 64;
    /** Fixed NIC pipeline processing per message (both endpoints). */
    Tick nicProcessing = ns(150);

    // --- Data layout --------------------------------------------------------
    /** Payload bytes per database record (excluding SW-Impl metadata). */
    std::uint32_t recordPayloadBytes = 256;

    // --- Protocol retry / recovery timing ------------------------------------
    /** Consolidated retry/resend/lease tuning (see RobustnessTuning). */
    RobustnessTuning tuning;

    /** Fault-injection plan (disabled by default: zero-cost when off). */
    FaultConfig faults;

    /** Crash recovery / reconfiguration (disabled by default). */
    RecoveryConfig recovery;

    /** Elastic membership: planned joins/drains with live record
     *  migration (disabled by default). */
    MembershipConfig membership;

    /** Latency-SLO tracking, hedged retries and degraded-node
     *  quarantine (disabled by default). */
    SloConfig slo;

    /** Admission control and retry budgets (disabled by default). */
    AdmissionConfig admission;

    /** Sharded parallel-kernel tuning (RunSpec::shards selects the
     *  executor; this only tunes it). */
    ShardingConfig sharding;

    // --- Workload placement --------------------------------------------------
    /** Fraction of requests whose home is the coordinator's node. The
     *  default 0 means "uniform placement" (1/N local, ~20% at N=5,
     *  matching the paper's default). Fig 12b sweeps 0.2/0.5/0.8. */
    double forcedLocalFraction = -1.0;

    std::uint64_t seed = 42;

    /** True if forcedLocalFraction overrides uniform placement. */
    bool hasForcedLocality() const { return forcedLocalFraction >= 0.0; }

    std::uint32_t totalCores() const { return numNodes * coresPerNode; }
    std::uint32_t contextsPerNode() const
    {
        return coresPerNode * slotsPerCore;
    }

    /** Clock helper for this configuration. */
    Clock clock() const { return Clock{coreFreqGhz}; }

    /** Number of LLC sets in one node's shared LLC. */
    std::uint64_t
    llcSets() const
    {
        std::uint64_t size = llcBytesPerCore * coresPerNode;
        return size / (std::uint64_t{kCacheLineBytes} * llcWays);
    }

    SoftwareCostModel costs;
};

} // namespace hades

#endif // HADES_COMMON_CONFIG_HH_
