/**
 * @file
 * Hash functions used by the Bloom-filter hardware model.
 *
 * The paper fills WrBF1 "by hashing addresses using a conventional hash
 * function (e.g., CRC)" (Section V-C) and quotes a 2-cycle CRC latency in
 * Table III. We implement a table-driven CRC-64 plus a cheap mixing
 * finalizer to derive the k independent hash functions a Bloom filter
 * needs from a single CRC pass, mirroring how signature hardware derives
 * multiple indices from one hashed value.
 */

#ifndef HADES_COMMON_HASH_HH_
#define HADES_COMMON_HASH_HH_

#include <array>
#include <cstdint>

namespace hades
{

/** Table-driven CRC-64 (ECMA-182 polynomial). */
class Crc64
{
  public:
    /** CRC of an 8-byte value, with an optional seed to vary the hash. */
    static std::uint64_t
    hash(std::uint64_t value, std::uint64_t seed = 0)
    {
        std::uint64_t crc = ~seed;
        for (int i = 0; i < 8; ++i) {
            auto byte = static_cast<std::uint8_t>(value >> (i * 8));
            crc = table()[(crc ^ byte) & 0xff] ^ (crc >> 8);
        }
        return ~crc;
    }

  private:
    static const std::array<std::uint64_t, 256> &
    table()
    {
        static const std::array<std::uint64_t, 256> t = makeTable();
        return t;
    }

    static std::array<std::uint64_t, 256>
    makeTable()
    {
        // Reflected ECMA-182 polynomial.
        constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;
        std::array<std::uint64_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint64_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
            t[i] = crc;
        }
        return t;
    }
};

/** Stafford's mix13 finalizer; a cheap high-quality 64-bit mixer. */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace hades

#endif // HADES_COMMON_HASH_HH_
