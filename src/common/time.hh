/**
 * @file
 * Conversions between wall-clock units, core cycles, and simulator Ticks.
 */

#ifndef HADES_COMMON_TIME_HH_
#define HADES_COMMON_TIME_HH_

#include "common/types.hh"

namespace hades
{

/** One picosecond, the base Tick unit. */
inline constexpr Tick kPicosecond = 1;
/** One nanosecond in Ticks. */
inline constexpr Tick kNanosecond = 1000;
/** One microsecond in Ticks. */
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
/** One millisecond in Ticks. */
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
/** One second in Ticks. */
inline constexpr Tick kSecond = 1000 * kMillisecond;

/**
 * Clock domain helper: converts cycle counts to Ticks for a given
 * frequency. The evaluated cores run at 2 GHz (Table III), i.e. 500 ps
 * per cycle.
 */
class Clock
{
  public:
    explicit Clock(double freq_ghz = 2.0)
        : periodPs_(static_cast<Tick>(1000.0 / freq_ghz))
    {}

    /** Tick duration of one cycle. */
    Tick period() const { return periodPs_; }

    /** Convert a cycle count to Ticks. */
    Tick cycles(std::int64_t n) const { return n * periodPs_; }

    /** Convert Ticks to whole cycles (rounded down). */
    std::int64_t toCycles(Tick t) const { return t / periodPs_; }

  private:
    Tick periodPs_;
};

/** Convert nanoseconds to Ticks. */
inline constexpr Tick
ns(std::int64_t n)
{
    return n * kNanosecond;
}

/** Convert microseconds to Ticks. */
inline constexpr Tick
us(std::int64_t n)
{
    return n * kMicrosecond;
}

} // namespace hades

#endif // HADES_COMMON_TIME_HH_
