/**
 * @file
 * Statistics primitives: counters, mean accumulators, and log-linear
 * histograms with quantile queries (used for the 95th-percentile tail
 * latency of Figure 11).
 */

#ifndef HADES_COMMON_STATS_HH_
#define HADES_COMMON_STATS_HH_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace hades::stats
{

/** Running mean/min/max accumulator. */
class Accumulator
{
  public:
    void
    add(double v)
    {
        sum_ += v;
        count_ += 1;
        min_ = count_ == 1 ? v : std::min(min_, v);
        max_ = count_ == 1 ? v : std::max(max_, v);
    }

    /** Fold another accumulator's samples into this one. */
    void
    merge(const Accumulator &o)
    {
        if (o.count_ == 0)
            return;
        if (count_ == 0) {
            *this = o;
            return;
        }
        sum_ += o.sum_;
        count_ += o.count_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double min() const { return min_; }
    double max() const { return max_; }

    void reset() { *this = Accumulator{}; }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * Log-linear histogram over non-negative 64-bit values.
 *
 * Each power-of-two decade is split into kSubBuckets linear buckets,
 * giving a bounded relative error on quantiles (< 1/kSubBuckets) with a
 * small fixed memory footprint -- the same scheme HdrHistogram uses.
 */
class Histogram
{
  public:
    static constexpr int kSubBuckets = 32;
    static constexpr int kDecades = 50;

    void
    add(std::uint64_t v)
    {
        acc_.add(double(v));
        buckets_[indexOf(v)] += 1;
    }

    std::uint64_t count() const { return acc_.count(); }
    double mean() const { return acc_.mean(); }
    double maxSeen() const { return acc_.max(); }

    /** Value at quantile q in [0,1]; returns a bucket-representative. */
    std::uint64_t
    quantile(double q) const
    {
        if (acc_.count() == 0)
            return 0;
        auto target = static_cast<std::uint64_t>(q * double(acc_.count()));
        if (target >= acc_.count())
            target = acc_.count() - 1;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            seen += buckets_[i];
            if (seen > target)
                return representative(i);
        }
        return representative(buckets_.size() - 1);
    }

    std::uint64_t p50() const { return quantile(0.50); }
    std::uint64_t p95() const { return quantile(0.95); }
    std::uint64_t p99() const { return quantile(0.99); }

    void
    reset()
    {
        acc_.reset();
        buckets_.fill(0);
    }

    /** Merge another histogram into this one. */
    void
    merge(const Histogram &other)
    {
        for (std::size_t i = 0; i < buckets_.size(); ++i)
            buckets_[i] += other.buckets_[i];
        acc_.merge(other.acc_);
    }

  private:
    static std::size_t
    indexOf(std::uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<std::size_t>(v);
        int msb = 63 - std::countl_zero(v);
        int decade = msb - 4; // log2(kSubBuckets) - 1
        auto sub =
            static_cast<std::size_t>((v >> decade) & (kSubBuckets - 1));
        auto idx = static_cast<std::size_t>(decade) * kSubBuckets + sub +
                   kSubBuckets;
        return std::min(idx, std::size_t{kDecades * kSubBuckets - 1});
    }

    static std::uint64_t
    representative(std::size_t idx)
    {
        if (idx < kSubBuckets)
            return idx;
        idx -= kSubBuckets;
        auto decade = static_cast<int>(idx / kSubBuckets);
        auto sub = idx % kSubBuckets;
        // sub = (v >> decade) & 31 still carries the leading bit of v
        // (it always falls in [16, 32)), so the representative is just
        // sub scaled back up.
        return std::uint64_t{sub} << decade;
    }

    Accumulator acc_;
    std::array<std::uint64_t, kDecades * kSubBuckets> buckets_{};
};

} // namespace hades::stats

#endif // HADES_COMMON_STATS_HH_
