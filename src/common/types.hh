/**
 * @file
 * Fundamental type aliases and constants shared by every HADES subsystem.
 *
 * The simulator measures time in integer picoseconds (Tick) so that the
 * 2 GHz core clock (500 ps/cycle), 100 ns DRAM accesses, and 2 us network
 * round trips from Table III of the paper are all exactly representable.
 */

#ifndef HADES_COMMON_TYPES_HH_
#define HADES_COMMON_TYPES_HH_

#include <cstdint>
#include <cstddef>

namespace hades
{

/** Simulated time in picoseconds. */
using Tick = std::int64_t;

/** "Never" sentinel for Tick deadlines (e.g. permanent crashes). */
inline constexpr Tick kTickMax = INT64_MAX;

/** Physical (simulated) byte address within a node's address space. */
using Addr = std::uint64_t;

/** Index of a node in the cluster, 0..N-1. */
using NodeId = std::uint32_t;

/** Index of a core within its node, 0..C-1. */
using CoreId = std::uint32_t;

/** Index of a multiplexed hardware transaction context on a core, 0..m-1. */
using SlotId = std::uint32_t;

/** Monotone identifier for one transaction *attempt* (changes on retry). */
using TxnAttemptId = std::uint64_t;

/** Logical key in a key-value store or database table. */
using Key = std::uint64_t;

/** Cache line size used throughout the cluster model. */
inline constexpr std::uint32_t kCacheLineBytes = 64;

/** Invalid/sentinel node id. */
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/**
 * Globally unique identifier of a hardware transaction context.
 *
 * This is the WrTX ID of the paper: every LLC directory line tagged by a
 * speculative write records one of these, and every Bloom filter bank in a
 * NIC is indexed by one. The id identifies the (node, core, slot) context,
 * not an individual attempt; attempts are distinguished by an epoch that
 * the protocol engines bump on squash.
 */
struct GlobalTxId
{
    NodeId node = kInvalidNode;
    CoreId core = 0;
    SlotId slot = 0;

    bool valid() const { return node != kInvalidNode; }

    friend bool operator==(const GlobalTxId &, const GlobalTxId &) = default;

    /**
     * Dense encoding used as a map key and as the LLC WrTX ID tag
     * value. Bit 62 is always set so that no context encodes to 0,
     * which the directory reserves for "untagged"; bits 48..61 carry
     * the protocol engines' retry epoch.
     */
    std::uint64_t
    pack() const
    {
        return (std::uint64_t{1} << 62) | (std::uint64_t{node} << 32) |
               (std::uint64_t{core} << 8) | std::uint64_t{slot};
    }
};

/** A contiguous range of byte addresses [base, base + bytes). */
struct AddrRange
{
    Addr base = 0;
    std::uint32_t bytes = 0;

    Addr end() const { return base + bytes; }

    /** First cache-line address covered by the range. */
    Addr firstLine() const { return base & ~Addr{kCacheLineBytes - 1}; }

    /** Last cache-line address covered by the range. */
    Addr
    lastLine() const
    {
        return (base + bytes - 1) & ~Addr{kCacheLineBytes - 1};
    }

    /** Number of cache lines the range touches. */
    std::uint32_t
    numLines() const
    {
        if (bytes == 0)
            return 0;
        return static_cast<std::uint32_t>(
            (lastLine() - firstLine()) / kCacheLineBytes + 1);
    }

    friend bool operator==(const AddrRange &, const AddrRange &) = default;
};

/** Round an address down to its cache-line base. */
inline Addr
lineAddr(Addr a)
{
    return a & ~Addr{kCacheLineBytes - 1};
}

} // namespace hades

#endif // HADES_COMMON_TYPES_HH_
