/**
 * @file
 * Transaction programs: the workload-facing description of what a
 * transaction does, independent of which protocol engine executes it.
 *
 * A program is a sequence of record requests plus the application
 * compute between them. Writes can be *blind* (store a constant) or
 * *derived* (store a value computed from an earlier read in the same
 * transaction plus a delta). Derived writes are what make serializability
 * observable: the invariant tests run transfer transactions whose
 * conservation property only holds if the protocol is correct.
 */

#ifndef HADES_TXN_PROGRAM_HH_
#define HADES_TXN_PROGRAM_HH_

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hades::txn
{

/** One record access inside a transaction. */
struct Request
{
    /** Logical record id (placement decides home node and address). */
    std::uint64_t record = 0;
    bool isWrite = false;
    /** Byte offset of the accessed field within the record payload. */
    std::uint32_t offsetBytes = 0;
    /** Bytes accessed; 0 means the whole record payload. */
    std::uint32_t sizeBytes = 0;
    /**
     * Full payload size of the target record; 0 means the run's default
     * record size. Index nodes of the key-value stores are records of
     * their own size (FaRM-style stores build indexes out of records),
     * so requests carry the target's size.
     */
    std::uint32_t recordPayloadBytes = 0;
    /**
     * Index-structure read: FaRM-family stores traverse their indexes
     * with atomic but *unvalidated* reads (the structures are read-only
     * between resize epochs), so the software engines fetch and
     * atomicity-check these but do not add them to the Read Set.
     */
    bool isIndex = false;
    /**
     * For writes: if >= 0, the written value is
     * readValue[derivedFromReadIdx] + delta, where the index counts the
     * reads of this transaction in order. If < 0 the write stores
     * `delta` directly (blind write).
     */
    int derivedFromReadIdx = -1;
    std::int64_t delta = 0;
};

/** A complete transaction description. */
struct TxnProgram
{
    std::vector<Request> requests;
    /** Application compute charged before each request (cycles). */
    std::uint32_t computeCyclesPerRequest = 200;
    /** Extra application compute at transaction begin (cycles). */
    std::uint32_t setupCycles = 100;

    std::uint32_t
    numReads() const
    {
        std::uint32_t n = 0;
        for (const auto &r : requests)
            n += r.isWrite ? 0 : 1;
        return n;
    }

    std::uint32_t
    numWrites() const
    {
        std::uint32_t n = 0;
        for (const auto &r : requests)
            n += r.isWrite ? 1 : 0;
        return n;
    }
};

} // namespace hades::txn

#endif // HADES_TXN_PROGRAM_HH_
