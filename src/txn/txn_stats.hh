/**
 * @file
 * Per-engine statistics: throughput, latency phases, squash reasons, the
 * Table I software-overhead categories (Figure 3), and Bloom filter
 * false-positive accounting (Section VIII-C).
 */

#ifndef HADES_TXN_TXN_STATS_HH_
#define HADES_TXN_TXN_STATS_HH_

#include <algorithm>
#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace hades::txn
{

/** The software overhead categories of Table I / Figure 3. */
enum class Overhead : std::uint8_t
{
    ManageSets,       //!< manage the Read and Write sets
    UpdateVersion,    //!< bump record version before a write
    ReadAtomicity,    //!< per-line version checks + non-zero-copy reads
    RdBeforeWr,       //!< read the whole record before writing it
    ConflictDetection,//!< re-read versions during validation
    NumCategories,
};

/** Name for printing Figure 3 rows. */
inline const char *
overheadName(Overhead o)
{
    switch (o) {
      case Overhead::ManageSets:
        return "ManageRdWrSets";
      case Overhead::UpdateVersion:
        return "UpdateVersion";
      case Overhead::ReadAtomicity:
        return "ReadAtomicity";
      case Overhead::RdBeforeWr:
        return "RdBeforeWr";
      case Overhead::ConflictDetection:
        return "ConflictDetection";
      default:
        return "?";
    }
}

/** Why a transaction attempt was squashed. */
enum class SquashReason : std::uint8_t
{
    EagerLocalConflict, //!< L-L conflict detected at access time (HADES)
    LazyConflict,       //!< squashed by a committing transaction
    LockFailure,        //!< failed to partially lock a directory
    ValidationFailure,  //!< version mismatch in software validation
    LockBusy,           //!< SW lock CAS lost (Baseline/HADES-H)
    LlcEviction,        //!< speculative line evicted from the LLC
    ReplicaTimeout,     //!< a replica update was lost / not acked
    CommitTimeout,      //!< commit-phase Acks never arrived (faults)
    NodeFailure,        //!< a participant crashed permanently (recovery)
    StalePlacement,     //!< record migrated mid-attempt (membership)
    Shed,               //!< refused by admission control (overload)
    NumReasons,
};

inline const char *
squashReasonName(SquashReason r)
{
    switch (r) {
      case SquashReason::EagerLocalConflict:
        return "EagerLocalConflict";
      case SquashReason::LazyConflict:
        return "LazyConflict";
      case SquashReason::LockFailure:
        return "LockFailure";
      case SquashReason::ValidationFailure:
        return "ValidationFailure";
      case SquashReason::LockBusy:
        return "LockBusy";
      case SquashReason::LlcEviction:
        return "LlcEviction";
      case SquashReason::ReplicaTimeout:
        return "ReplicaTimeout";
      case SquashReason::CommitTimeout:
        return "CommitTimeout";
      case SquashReason::NodeFailure:
        return "NodeFailure";
      case SquashReason::StalePlacement:
        return "StalePlacement";
      case SquashReason::Shed:
        return "Shed";
      default:
        return "?";
    }
}

/** Aggregate statistics for one engine over one simulation. */
struct EngineStats
{
    std::uint64_t committed = 0;
    std::uint64_t attempts = 0;
    std::uint64_t lockModeFallbacks = 0;

    std::array<std::uint64_t,
               static_cast<std::size_t>(SquashReason::NumReasons)>
        squashes{};

    /** End-to-end latency of committed transactions (Ticks), measured
     *  from first-attempt start to commit completion. */
    stats::Histogram latency;

    /** Phase time of committed transactions (Ticks). */
    stats::Accumulator execPhase;
    stats::Accumulator validationPhase;
    stats::Accumulator commitPhase;

    /** Table I overhead categories (Baseline / HADES-H local path). */
    std::array<Tick,
               static_cast<std::size_t>(Overhead::NumCategories)>
        overheadTicks{};

    /** Core busy time attributable to transactions (for Other Time). */
    Tick totalBusyTicks = 0;

    /** Bloom filter conflict checks and measured false positives. */
    std::uint64_t bfConflictChecks = 0;
    std::uint64_t bfFalsePositives = 0;

    /** Largest per-transaction cache-line footprints observed
     *  (Section VIII-C quotes at most 76 read / 40 written). */
    std::uint64_t maxLinesRead = 0;
    std::uint64_t maxLinesWritten = 0;

    /** Network message counts snapshot (filled by the runner). */
    std::uint64_t netMessages = 0;
    std::uint64_t netBytes = 0;

    /** Commit-phase message resends triggered by an Ack timeout
     *  (fault recovery; always 0 in fault-free runs). */
    std::uint64_t timeoutResends = 0;
    /** Reliable one-way resends (Validation/Squash/replica traffic)
     *  triggered by a missing delivery confirmation. */
    std::uint64_t reliableResends = 0;
    /** Squash retries paced because the node's admission-control
     *  retry budget was exhausted at the retry instant. */
    std::uint64_t retryBudgetDeferrals = 0;

    std::uint64_t
    totalSquashes() const
    {
        std::uint64_t n = 0;
        for (auto s : squashes)
            n += s;
        return n;
    }

    void
    addOverhead(Overhead o, Tick t)
    {
        overheadTicks[static_cast<std::size_t>(o)] += t;
    }

    Tick
    overhead(Overhead o) const
    {
        return overheadTicks[static_cast<std::size_t>(o)];
    }

    void
    addSquash(SquashReason r)
    {
        squashes[static_cast<std::size_t>(r)] += 1;
    }

    void
    merge(const EngineStats &o)
    {
        committed += o.committed;
        attempts += o.attempts;
        lockModeFallbacks += o.lockModeFallbacks;
        for (std::size_t i = 0; i < squashes.size(); ++i)
            squashes[i] += o.squashes[i];
        latency.merge(o.latency);
        execPhase.merge(o.execPhase);
        validationPhase.merge(o.validationPhase);
        commitPhase.merge(o.commitPhase);
        for (std::size_t i = 0; i < overheadTicks.size(); ++i)
            overheadTicks[i] += o.overheadTicks[i];
        totalBusyTicks += o.totalBusyTicks;
        bfConflictChecks += o.bfConflictChecks;
        bfFalsePositives += o.bfFalsePositives;
        maxLinesRead = std::max(maxLinesRead, o.maxLinesRead);
        maxLinesWritten = std::max(maxLinesWritten, o.maxLinesWritten);
        netMessages += o.netMessages;
        netBytes += o.netBytes;
        timeoutResends += o.timeoutResends;
        reliableResends += o.reliableResends;
        retryBudgetDeferrals += o.retryBudgetDeferrals;
    }
};

} // namespace hades::txn

#endif // HADES_TXN_TXN_STATS_HH_
