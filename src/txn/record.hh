/**
 * @file
 * Database record layout arithmetic.
 *
 * SW-Impl (Baseline and the local path of HADES-H) augments each record
 * as in Figure 1: a header with Version, Lock, and Incarnation words,
 * plus a per-cache-line version VC_i in front of every payload line.
 * HADES is "agnostic to the data layout and does not require any
 * extension to the data records", so its records are payload only.
 */

#ifndef HADES_TXN_RECORD_HH_
#define HADES_TXN_RECORD_HH_

#include <cstdint>

#include "common/types.hh"

namespace hades::txn
{

/** Bytes of the Version + Lock + Incarnation header (Figure 1). */
inline constexpr std::uint32_t kSwHeaderBytes = 24;
/** Bytes of one per-cache-line version word VC_i (Figure 1). */
inline constexpr std::uint32_t kPerLineVersionBytes = 8;

/** Layout calculator for a record with a given payload size. */
class RecordLayout
{
  public:
    explicit RecordLayout(std::uint32_t payload_bytes)
        : payloadBytes_(payload_bytes)
    {}

    std::uint32_t payloadBytes() const { return payloadBytes_; }

    /** Payload cache lines (the unit HADES operates on). */
    std::uint32_t
    payloadLines() const
    {
        return (payloadBytes_ + kCacheLineBytes - 1) / kCacheLineBytes;
    }

    /** Raw metadata bytes: header + one VC_i per payload line. */
    std::uint32_t
    metaBytes() const
    {
        return kSwHeaderBytes + payloadLines() * kPerLineVersionBytes;
    }

    /**
     * Whole cache lines occupied by the metadata. The model keeps the
     * metadata in leading lines and the payload contiguous behind it
     * (the interleaved order of Figure 1 has the same line counts but
     * would make address arithmetic gratuitously fiddly).
     */
    std::uint32_t
    metaLines() const
    {
        return (metaBytes() + kCacheLineBytes - 1) / kCacheLineBytes;
    }

    /** In-memory footprint with SW-Impl metadata (Figure 1). */
    std::uint32_t
    swBytes() const
    {
        return (metaLines() + payloadLines()) * kCacheLineBytes;
    }

    /** In-memory footprint for HADES (no metadata). */
    std::uint32_t
    hwBytes() const
    {
        return payloadLines() * kCacheLineBytes;
    }

    /** Lines occupied by the SW-Impl representation. */
    std::uint32_t
    swLines() const
    {
        return metaLines() + payloadLines();
    }

    /** Offset of the payload within the SW-Impl record image. */
    std::uint32_t
    swPayloadOffset() const
    {
        return metaLines() * kCacheLineBytes;
    }

  private:
    std::uint32_t payloadBytes_;
};

} // namespace hades::txn

#endif // HADES_TXN_RECORD_HH_
