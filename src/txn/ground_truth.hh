/**
 * @file
 * Functional ground truth: the committed value of every record.
 *
 * The timing model decides *when* things happen; this store decides
 * *what* the data is. All three protocol engines buffer writes during
 * execution and apply them here exactly at their serialization point, so
 * the test suite can check serializability properties (conservation,
 * exactly-once increments) against the same store regardless of engine.
 *
 * Every write also bumps a per-record version counter. The counter is
 * protocol-independent (unlike the VersionTable the software engines
 * manage) and exists for the correctness auditor: stamping each read
 * and each applied write with the ground-truth version at that instant
 * reconstructs the version order the serializability audit needs.
 */

#ifndef HADES_TXN_GROUND_TRUTH_HH_
#define HADES_TXN_GROUND_TRUTH_HH_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hades::txn
{

/** Committed record values (defaults to 0 for untouched records). */
class GroundTruth
{
  public:
    std::int64_t
    read(std::uint64_t record) const
    {
        auto it = values_.find(record);
        return it == values_.end() ? 0 : it->second;
    }

    /** Install a new value; returns the version it installed. */
    std::uint64_t
    write(std::uint64_t record, std::int64_t v)
    {
        values_[record] = v;
        return ++versions_[record];
    }

    /** Version of the last committed write (0 = never written). */
    std::uint64_t
    version(std::uint64_t record) const
    {
        auto it = versions_.find(record);
        return it == versions_.end() ? 0 : it->second;
    }

    /** Sum over a record id range [first, last] (invariant checks). */
    std::int64_t
    sumRange(std::uint64_t first, std::uint64_t last) const
    {
        std::int64_t s = 0;
        for (std::uint64_t r = first; r <= last; ++r)
            s += read(r);
        return s;
    }

    std::size_t touched() const { return values_.size(); }

    /** All records ever written, in sorted (deterministic) order.
     *  Recovery and the replica-divergence check iterate this. */
    std::vector<std::uint64_t>
    touchedRecords() const
    {
        std::vector<std::uint64_t> out;
        out.reserve(values_.size());
        for (const auto &kv : values_) // det-lint: ordered-ok (sorted)
            out.push_back(kv.first);
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    std::unordered_map<std::uint64_t, std::int64_t> values_;
    std::unordered_map<std::uint64_t, std::uint64_t> versions_;
};

} // namespace hades::txn

#endif // HADES_TXN_GROUND_TRUTH_HH_
