/**
 * @file
 * Functional ground truth: the committed value of every record.
 *
 * The timing model decides *when* things happen; this store decides
 * *what* the data is. All three protocol engines buffer writes during
 * execution and apply them here exactly at their serialization point, so
 * the test suite can check serializability properties (conservation,
 * exactly-once increments) against the same store regardless of engine.
 *
 * Every write also bumps a per-record version counter. The counter is
 * protocol-independent (unlike the VersionTable the software engines
 * manage) and exists for the correctness auditor: stamping each read
 * and each applied write with the ground-truth version at that instant
 * reconstructs the version order the serializability audit needs.
 *
 * Storage is internally bucketed by the record's home node (when the
 * runner wires the placement function in via shard()): a record's
 * committed state lives in its home node's bucket, so under threaded
 * sharded execution -- where every ground-truth access for a record
 * happens on the home node's lane -- buckets are lane-disjoint and the
 * maps never rehash across threads. The external interface is
 * unchanged and the contents are independent of the bucket count.
 */

#ifndef HADES_TXN_GROUND_TRUTH_HH_
#define HADES_TXN_GROUND_TRUTH_HH_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace hades::txn
{

/** Committed record values (defaults to 0 for untouched records). */
class GroundTruth
{
  public:
    /** Maps a record id to its home node (mem::Placement::homeOf). */
    using HomeFn = std::function<std::uint32_t(std::uint64_t)>;

    /**
     * Partition storage into one bucket per home node. Must be called
     * before any write (the runner wires it right after building the
     * System). Without it everything lives in one bucket, which is
     * correct for every single-threaded execution mode.
     */
    void
    shard(std::uint32_t num_homes, HomeFn home_of)
    {
        buckets_.resize(num_homes > 0 ? num_homes : 1);
        homeOf_ = std::move(home_of);
    }

    std::int64_t
    read(std::uint64_t record) const
    {
        const Bucket &b = bucketFor(record);
        auto it = b.values.find(record);
        return it == b.values.end() ? 0 : it->second;
    }

    /** Install a new value; returns the version it installed. */
    std::uint64_t
    write(std::uint64_t record, std::int64_t v)
    {
        Bucket &b = bucketFor(record);
        b.values[record] = v;
        return ++b.versions[record];
    }

    /** Version of the last committed write (0 = never written). */
    std::uint64_t
    version(std::uint64_t record) const
    {
        const Bucket &b = bucketFor(record);
        auto it = b.versions.find(record);
        return it == b.versions.end() ? 0 : it->second;
    }

    /** Sum over a record id range [first, last] (invariant checks). */
    std::int64_t
    sumRange(std::uint64_t first, std::uint64_t last) const
    {
        std::int64_t s = 0;
        for (std::uint64_t r = first; r <= last; ++r)
            s += read(r);
        return s;
    }

    std::size_t
    touched() const
    {
        std::size_t n = 0;
        for (const Bucket &b : buckets_)
            n += b.values.size();
        return n;
    }

    /** All records ever written, in sorted (deterministic) order.
     *  Recovery and the replica-divergence check iterate this. */
    std::vector<std::uint64_t>
    touchedRecords() const
    {
        std::vector<std::uint64_t> out;
        out.reserve(touched());
        for (const Bucket &b : buckets_)
            for (const auto &kv : b.values) // det-lint: ordered-ok (sorted)
                out.push_back(kv.first);
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    struct Bucket
    {
        std::unordered_map<std::uint64_t, std::int64_t> values;
        std::unordered_map<std::uint64_t, std::uint64_t> versions;
    };

    const Bucket &
    bucketFor(std::uint64_t record) const
    {
        if (buckets_.size() == 1 || !homeOf_)
            return buckets_[0];
        return buckets_[homeOf_(record) % buckets_.size()];
    }

    Bucket &
    bucketFor(std::uint64_t record)
    {
        return const_cast<Bucket &>(
            std::as_const(*this).bucketFor(record));
    }

    std::vector<Bucket> buckets_{1};
    HomeFn homeOf_;
};

} // namespace hades::txn

#endif // HADES_TXN_GROUND_TRUTH_HH_
