/**
 * @file
 * Record metadata for the software protocols: versions, locks, and
 * incarnations (Figure 1 header fields).
 *
 * One table exists per node, covering the records homed there. The
 * Baseline engine manipulates it with local CAS or RDMA CAS timing; the
 * table itself is the functional ground truth that makes conflicts
 * between concurrent transactions real rather than scripted.
 */

#ifndef HADES_TXN_VERSION_TABLE_HH_
#define HADES_TXN_VERSION_TABLE_HH_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace hades::txn
{

/** Version/lock state of one record. */
struct RecordMeta
{
    std::uint64_t version = 0;
    /** Packed GlobalTxId of the lock holder; 0 = unlocked. */
    std::uint64_t lockOwner = 0;
    std::uint64_t incarnation = 0;
};

/** Per-node record metadata table. */
class VersionTable
{
  public:
    /** Current metadata of @p record (created zeroed on first touch). */
    RecordMeta &of(std::uint64_t record) { return meta_[record]; }

    /** Read-only view; returns a default entry if never touched. */
    RecordMeta
    peek(std::uint64_t record) const
    {
        auto it = meta_.find(record);
        return it == meta_.end() ? RecordMeta{} : it->second;
    }

    /**
     * Functional CAS on the record lock (local CAS or RDMA CAS).
     * @return true if the lock was free and is now held by @p owner.
     */
    bool
    tryLock(std::uint64_t record, std::uint64_t owner)
    {
        RecordMeta &m = of(record);
        if (m.lockOwner != 0 && m.lockOwner != owner)
            return false;
        m.lockOwner = owner;
        return true;
    }

    /** Release the lock if @p owner holds it. */
    void
    unlock(std::uint64_t record, std::uint64_t owner)
    {
        RecordMeta &m = of(record);
        if (m.lockOwner == owner)
            m.lockOwner = 0;
    }

    /** Bump the record's version (commit applies the write). */
    void bumpVersion(std::uint64_t record) { of(record).version += 1; }

    /**
     * Crash recovery: release every lock held by @p owner (a dead
     * transaction that will never send its unlocks). Deterministic:
     * matching records are collected and released in sorted order.
     * @return number of locks released.
     */
    std::uint64_t
    releaseOwnedBy(std::uint64_t owner)
    {
        std::vector<std::uint64_t> held;
        // det-lint: ordered-ok (collected then sorted below)
        for (const auto &[record, m] : meta_)
            if (m.lockOwner == owner)
                held.push_back(record);
        std::sort(held.begin(), held.end());
        for (std::uint64_t r : held)
            meta_[r].lockOwner = 0;
        return held.size();
    }

    /** Crash recovery: install migrated metadata for @p record (lock
     *  cleared -- a dead owner's lock must not travel to the new
     *  home). */
    void
    installMigrated(std::uint64_t record, const RecordMeta &m)
    {
        meta_[record] = RecordMeta{m.version, 0, m.incarnation};
    }

    std::size_t touched() const { return meta_.size(); }

    /** Owners currently holding record locks, sorted and deduplicated
     *  (crash recovery scans these for a dead coordinator's locks). */
    std::vector<std::uint64_t>
    lockOwners() const
    {
        std::vector<std::uint64_t> owners;
        // det-lint: ordered-ok (collected then sorted below)
        for (const auto &[record, m] : meta_)
            if (m.lockOwner != 0)
                owners.push_back(m.lockOwner);
        std::sort(owners.begin(), owners.end());
        owners.erase(std::unique(owners.begin(), owners.end()),
                     owners.end());
        return owners;
    }

    /** Number of records currently lock-held (leak checks). */
    std::size_t
    lockedCount() const
    {
        std::size_t n = 0;
        // det-lint: ordered-ok (pure count, order-insensitive)
        for (const auto &[record, m] : meta_)
            n += m.lockOwner != 0;
        return n;
    }

  private:
    std::unordered_map<std::uint64_t, RecordMeta> meta_;
};

} // namespace hades::txn

#endif // HADES_TXN_VERSION_TABLE_HH_
