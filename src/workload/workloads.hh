/**
 * @file
 * Workload generators for the Section VII applications.
 *
 * Four key-value stores (HashTable, Map, B-Tree, B+Tree) run YCSB with
 * 5-request transactions over a zipfian key distribution, and three
 * OLTP applications (TPC-C, TATP, Smallbank) issue their canonical
 * transaction mixes directly against partitioned record tables. Every
 * generator emits txn::TxnProgram values; the protocol engines are the
 * only component that decides what a request costs.
 *
 * The paper-scale table sizes (4M keys, 10M items, 1M subscribers, 5M
 * accounts) are defaults; the bench harness scales them down so that a
 * full sweep of every figure finishes in minutes, which leaves the
 * access *patterns* (mix, requests per transaction, skew, granularity,
 * locality) intact.
 */

#ifndef HADES_WORKLOAD_WORKLOADS_HH_
#define HADES_WORKLOAD_WORKLOADS_HH_

#include <cstdint>
#include <memory>
#include <string>

#include "common/config.hh"
#include "common/rng.hh"
#include "kvs/kvs.hh"
#include "mem/address_space.hh"
#include "txn/program.hh"

namespace hades::workload
{

/** The applications of Section VII. */
enum class AppKind
{
    YcsbA,        //!< workload-A: 50% writes, 50% reads
    YcsbB,        //!< workload-B: 5% writes, 95% reads
    YcsbE,        //!< workload-E: 95% short scans, 5% writes
    YcsbWriteOnly,//!< 100%WR (Figure 3)
    YcsbHalf,     //!< 50%WR-50%RD (Figure 3)
    YcsbReadOnly, //!< 100%RD (Figure 3)
    Tpcc,
    Tatp,
    Smallbank,
};

/** Parameters shared by all generators. */
struct WorkloadConfig
{
    std::uint32_t numNodes = 5;
    /** Fraction of requests homed at the coordinator; <0 = uniform. */
    double forcedLocalFraction = -1.0;
    /** Scaled table size (keys / items / subscribers / accounts). */
    std::uint64_t scaleKeys = 200'000;
    std::uint32_t reqsPerTxn = 5;
    double zipfTheta = 0.99;
    /** Disambiguates record/index id spaces when workloads share a
     *  cluster (space-shared mixes, Figures 14/15). */
    std::uint32_t salt = 0;
};

/** A stream of transaction programs. */
class WorkloadGenerator
{
  public:
    virtual ~WorkloadGenerator() = default;

    /** Display label, e.g. "HT-wA" or "TPCC". */
    virtual std::string label() const = 0;

    /** Data records the workload needs pre-placed. */
    virtual std::uint64_t numRecords() const = 0;

    /**
     * Attach to a cluster placement: data records occupy ids
     * [record_base, record_base + numRecords()), and any index
     * structures register their nodes.
     */
    virtual void bind(mem::Placement &placement,
                      std::uint64_t record_base) = 0;

    /** Generate the next transaction for a coordinator on @p node. */
    virtual txn::TxnProgram next(Rng &rng, NodeId node) = 0;

  protected:
    explicit WorkloadGenerator(const WorkloadConfig &cfg) : cfg_(cfg) {}

    /**
     * Locality shaping (Figure 12b): remap @p record_index (an offset
     * into this workload's data records) so that its home is (or is
     * not) @p node with the configured probability. Linear probing
     * within the table preserves the popularity skew.
     */
    std::uint64_t
    shapeLocality(Rng &rng, std::uint64_t record_index,
                  std::uint64_t table_size, NodeId node) const
    {
        if (cfg_.forcedLocalFraction < 0.0)
            return record_index;
        bool want_local = rng.chance(cfg_.forcedLocalFraction);
        for (std::uint64_t i = 0; i < table_size; ++i) {
            std::uint64_t cand = (record_index + i) % table_size;
            NodeId home = static_cast<NodeId>(
                mix64(recordBase_ + cand) % cfg_.numNodes);
            if ((home == node) == want_local)
                return cand;
        }
        return record_index;
    }

    WorkloadConfig cfg_;
    std::uint64_t recordBase_ = 0;
};

/** Factory; @p store is only used by the YCSB variants. */
std::unique_ptr<WorkloadGenerator> makeWorkload(
    AppKind app, kvs::StoreKind store, const WorkloadConfig &cfg);

/** Short name, e.g. "TPCC", "TATP", "Smallbank", "wA", "wB". */
const char *appKindName(AppKind app);

} // namespace hades::workload

#endif // HADES_WORKLOAD_WORKLOADS_HH_
