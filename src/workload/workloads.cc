#include "workload/workloads.hh"

#include <algorithm>

#include "common/log.hh"

namespace hades::workload
{

using txn::Request;
using txn::TxnProgram;

const char *
appKindName(AppKind app)
{
    switch (app) {
      case AppKind::YcsbA:
        return "wA";
      case AppKind::YcsbB:
        return "wB";
      case AppKind::YcsbE:
        return "wE";
      case AppKind::YcsbWriteOnly:
        return "100%WR";
      case AppKind::YcsbHalf:
        return "50%WR-50%RD";
      case AppKind::YcsbReadOnly:
        return "100%RD";
      case AppKind::Tpcc:
        return "TPCC";
      case AppKind::Tatp:
        return "TATP";
      case AppKind::Smallbank:
        return "Smallbank";
      default:
        return "?";
    }
}

namespace
{

/**
 * YCSB over one of the four key-value stores: transactions of
 * cfg.reqsPerTxn client requests on zipfian keys, each preceded by the
 * store's index traversal. Writes update one field of the record
 * (partial write); reads fetch the whole value.
 */
class YcsbGenerator : public WorkloadGenerator
{
  public:
    YcsbGenerator(kvs::StoreKind store, double write_fraction,
                  const char *suffix, const WorkloadConfig &cfg,
                  double scan_fraction = 0.0)
        : WorkloadGenerator(cfg),
          store_(kvs::makeStore(store, cfg.numNodes, cfg.salt)),
          writeFraction_(write_fraction),
          scanFraction_(scan_fraction),
          suffix_(suffix),
          zipf_(cfg.scaleKeys, cfg.zipfTheta)
    {}

    std::string
    label() const override
    {
        return std::string(store_->name()) + "-" + suffix_;
    }

    std::uint64_t numRecords() const override { return cfg_.scaleKeys; }

    void
    bind(mem::Placement &placement, std::uint64_t record_base) override
    {
        recordBase_ = record_base;
        store_->populate(placement, cfg_.scaleKeys, record_base);
    }

    TxnProgram
    next(Rng &rng, NodeId node) override
    {
        TxnProgram prog;
        prog.computeCyclesPerRequest = 150;
        std::vector<kvs::IndexStep> steps;
        for (std::uint32_t i = 0; i < cfg_.reqsPerTxn; ++i) {
            Key k = zipf_.sample(rng);
            k = shapeLocality(rng, k, cfg_.scaleKeys, node);
            steps.clear();
            if (scanFraction_ > 0.0 && rng.chance(scanFraction_)) {
                // YCSB-E style short range scan: index chain plus the
                // covered data records.
                std::uint32_t len =
                    2 + std::uint32_t(rng.below(8)); // avg ~5 keys
                if (k + len > cfg_.scaleKeys)
                    k = cfg_.scaleKeys - len;
                store_->scan(k, len, steps);
                for (const auto &s : steps) {
                    Request idx;
                    idx.record = s.record;
                    idx.recordPayloadBytes = s.bytes;
                    idx.isIndex = true;
                    prog.requests.push_back(idx);
                }
                for (std::uint32_t j = 0; j < len; ++j) {
                    Request data;
                    data.record = recordBase_ + k + j;
                    prog.requests.push_back(data);
                }
                continue;
            }
            store_->lookup(k, steps);
            for (const auto &s : steps) {
                Request idx;
                idx.record = s.record;
                idx.isWrite = false;
                idx.recordPayloadBytes = s.bytes;
                idx.isIndex = true;
                prog.requests.push_back(idx);
            }
            Request data;
            data.record = recordBase_ + k;
            if (rng.chance(writeFraction_)) {
                // Update one field: a partial, unaligned write.
                data.isWrite = true;
                data.offsetBytes = 32;
                data.sizeBytes = 100;
                data.delta = std::int64_t(rng.below(1000));
            }
            prog.requests.push_back(data);
        }
        return prog;
    }

  private:
    std::unique_ptr<kvs::KeyValueStore> store_;
    double writeFraction_;
    double scanFraction_;
    const char *suffix_;
    ZipfGenerator zipf_;
};

/**
 * Simplified TPC-C: the canonical five-transaction mix against
 * warehouse/district/customer/item/stock/order tables, with the paper's
 * headline characteristics -- many (~13.5) small fine-grained requests
 * per transaction and a write-heavy profile. Inserts (orders, history)
 * are modeled as writes to pre-allocated rows.
 */
class TpccGenerator : public WorkloadGenerator
{
  public:
    explicit TpccGenerator(const WorkloadConfig &cfg)
        : WorkloadGenerator(cfg),
          numItems_(cfg.scaleKeys),
          warehouses_(cfg.numNodes * 4),
          districtsPerWh_(10),
          customersPerDistrict_(300)
    {
        // Table layout inside the data-record space.
        itemBase_ = 0;
        stockBase_ = itemBase_ + numItems_;
        whBase_ = stockBase_ + numItems_;
        districtBase_ = whBase_ + warehouses_;
        customerBase_ =
            districtBase_ + warehouses_ * districtsPerWh_;
        orderBase_ = customerBase_ + warehouses_ * districtsPerWh_ *
                                         customersPerDistrict_;
        orderSlots_ = warehouses_ * districtsPerWh_ * 64;
        total_ = orderBase_ + orderSlots_;
    }

    std::string label() const override { return "TPCC"; }
    std::uint64_t numRecords() const override { return total_; }

    void
    bind(mem::Placement &, std::uint64_t record_base) override
    {
        recordBase_ = record_base;
    }

    TxnProgram
    next(Rng &rng, NodeId node) override
    {
        TxnProgram prog;
        prog.computeCyclesPerRequest = 120; // few instructions/request
        std::uint64_t wh = rng.below(warehouses_);
        std::uint64_t district =
            wh * districtsPerWh_ + rng.below(districtsPerWh_);
        std::uint64_t customer = district * customersPerDistrict_ +
                                 rng.below(customersPerDistrict_);

        auto pct = rng.below(100);
        if (pct < 45) { // NewOrder
            read(prog, rng, node, whBase_ + wh, 16);
            read(prog, rng, node, districtBase_ + district, 32);
            write(prog, rng, node, districtBase_ + district, 8);
            read(prog, rng, node, customerBase_ + customer, 60);
            std::uint64_t lines = 4 + rng.below(5); // avg ~6 items
            for (std::uint64_t l = 0; l < lines; ++l) {
                std::uint64_t item = rng.below(numItems_);
                read(prog, rng, node, itemBase_ + item, 24);
                read(prog, rng, node, stockBase_ + item, 48);
                write(prog, rng, node, stockBase_ + item, 16);
            }
            std::uint64_t slot = rng.below(orderSlots_);
            write(prog, rng, node, orderBase_ + slot, 64);
        } else if (pct < 88) { // Payment
            read(prog, rng, node, whBase_ + wh, 16);
            write(prog, rng, node, whBase_ + wh, 8);
            read(prog, rng, node, districtBase_ + district, 16);
            write(prog, rng, node, districtBase_ + district, 8);
            read(prog, rng, node, customerBase_ + customer, 60);
            write(prog, rng, node, customerBase_ + customer, 24);
        } else if (pct < 92) { // OrderStatus (read only)
            read(prog, rng, node, customerBase_ + customer, 60);
            std::uint64_t slot = rng.below(orderSlots_);
            read(prog, rng, node, orderBase_ + slot, 64);
            read(prog, rng, node,
                 orderBase_ + (slot + 1) % orderSlots_, 64);
        } else if (pct < 96) { // Delivery
            for (int d = 0; d < 4; ++d) {
                std::uint64_t slot = rng.below(orderSlots_);
                read(prog, rng, node, orderBase_ + slot, 64);
                write(prog, rng, node, orderBase_ + slot, 8);
            }
        } else { // StockLevel (read only)
            read(prog, rng, node, districtBase_ + district, 16);
            for (int i = 0; i < 8; ++i) {
                std::uint64_t item = rng.below(numItems_);
                read(prog, rng, node, stockBase_ + item, 8);
            }
        }
        return prog;
    }

  private:
    void
    read(TxnProgram &p, Rng &rng, NodeId node, std::uint64_t rec,
         std::uint32_t bytes)
    {
        Request r;
        r.record =
            recordBase_ + shapeLocality(rng, rec, total_, node);
        r.isWrite = false;
        r.sizeBytes = bytes;
        p.requests.push_back(r);
    }

    void
    write(TxnProgram &p, Rng &rng, NodeId node, std::uint64_t rec,
          std::uint32_t bytes)
    {
        Request r;
        r.record =
            recordBase_ + shapeLocality(rng, rec, total_, node);
        r.isWrite = true;
        r.offsetBytes = 8;
        r.sizeBytes = bytes;
        r.delta = std::int64_t(rng.below(100));
        p.requests.push_back(r);
    }

    std::uint64_t numItems_, warehouses_, districtsPerWh_,
        customersPerDistrict_;
    std::uint64_t itemBase_, stockBase_, whBase_, districtBase_,
        customerBase_, orderBase_, orderSlots_, total_;
};

/**
 * TATP: telecom database with 80% read / 20% write requests and a
 * small number of requests per transaction. Subscribers own one
 * subscriber row plus access-info and special-facility rows.
 */
class TatpGenerator : public WorkloadGenerator
{
  public:
    explicit TatpGenerator(const WorkloadConfig &cfg)
        : WorkloadGenerator(cfg), subscribers_(cfg.scaleKeys)
    {
        subBase_ = 0;
        accessBase_ = subBase_ + subscribers_;
        facilityBase_ = accessBase_ + subscribers_;
        total_ = facilityBase_ + subscribers_;
    }

    std::string label() const override { return "TATP"; }
    std::uint64_t numRecords() const override { return total_; }

    void
    bind(mem::Placement &, std::uint64_t record_base) override
    {
        recordBase_ = record_base;
    }

    TxnProgram
    next(Rng &rng, NodeId node) override
    {
        TxnProgram prog;
        prog.computeCyclesPerRequest = 180;
        std::uint64_t sub = rng.below(subscribers_);

        auto pct = rng.below(100);
        if (pct < 35) { // GetSubscriberData
            read(prog, rng, node, subBase_ + sub, 0);
        } else if (pct < 55) { // GetNewDestination
            read(prog, rng, node, facilityBase_ + sub, 32);
            read(prog, rng, node, accessBase_ + sub, 32);
        } else if (pct < 80) { // GetAccessData
            read(prog, rng, node, accessBase_ + sub, 32);
        } else if (pct < 94) { // UpdateLocation / UpdateSubscriberData
            read(prog, rng, node, subBase_ + sub, 0);
            write(prog, rng, node, subBase_ + sub, 8);
        } else { // Update special facility
            read(prog, rng, node, facilityBase_ + sub, 32);
            write(prog, rng, node, facilityBase_ + sub, 16);
        }
        return prog;
    }

  private:
    void
    read(TxnProgram &p, Rng &rng, NodeId node, std::uint64_t rec,
         std::uint32_t bytes)
    {
        Request r;
        r.record =
            recordBase_ + shapeLocality(rng, rec, total_, node);
        r.isWrite = false;
        r.sizeBytes = bytes;
        p.requests.push_back(r);
    }

    void
    write(TxnProgram &p, Rng &rng, NodeId node, std::uint64_t rec,
          std::uint32_t bytes)
    {
        Request r;
        r.record =
            recordBase_ + shapeLocality(rng, rec, total_, node);
        r.isWrite = true;
        r.offsetBytes = 16;
        r.sizeBytes = bytes;
        r.delta = std::int64_t(rng.below(1 << 20));
        p.requests.push_back(r);
    }

    std::uint64_t subscribers_, subBase_, accessBase_, facilityBase_,
        total_;
};

/**
 * Smallbank: each customer owns a checking and a savings record; the
 * canonical six-transaction mix is ~46% writes. Money-moving
 * transactions use derived writes, so the total balance is a
 * conserved quantity the test suite checks for serializability.
 */
class SmallbankGenerator : public WorkloadGenerator
{
  public:
    explicit SmallbankGenerator(const WorkloadConfig &cfg)
        : WorkloadGenerator(cfg), accounts_(cfg.scaleKeys)
    {
        checkingBase_ = 0;
        savingsBase_ = accounts_;
        total_ = 2 * accounts_;
    }

    std::string label() const override { return "Smallbank"; }
    std::uint64_t numRecords() const override { return total_; }

    void
    bind(mem::Placement &, std::uint64_t record_base) override
    {
        recordBase_ = record_base;
    }

    TxnProgram
    next(Rng &rng, NodeId node) override
    {
        TxnProgram prog;
        prog.computeCyclesPerRequest = 160;
        std::uint64_t a =
            shapeLocality(rng, rng.below(accounts_), accounts_, node);
        std::uint64_t b =
            shapeLocality(rng, rng.below(accounts_), accounts_, node);
        if (b == a)
            b = (a + 1) % accounts_;

        auto pct = rng.below(100);
        if (pct < 15) { // Balance (read-only)
            read(prog, checkingBase_ + a);
            read(prog, savingsBase_ + a);
        } else if (pct < 40) { // DepositChecking
            read(prog, checkingBase_ + a);
            derivedWrite(prog, checkingBase_ + a, 0,
                         std::int64_t(rng.below(100)) + 1);
        } else if (pct < 55) { // TransactSavings
            read(prog, savingsBase_ + a);
            derivedWrite(prog, savingsBase_ + a, 0,
                         std::int64_t(rng.below(100)) + 1);
        } else if (pct < 70) { // Amalgamate: move savings into checking
            read(prog, savingsBase_ + a);
            read(prog, checkingBase_ + a);
            // checking += savings; savings = 0 would break the simple
            // derived-write model; move a fixed slice instead.
            std::int64_t amount = 25;
            derivedWrite(prog, savingsBase_ + a, 0, -amount);
            derivedWrite(prog, checkingBase_ + a, 1, amount);
        } else if (pct < 85) { // WriteCheck
            read(prog, savingsBase_ + a);
            read(prog, checkingBase_ + a);
            derivedWrite(prog, checkingBase_ + a, 1,
                         -(std::int64_t(rng.below(50)) + 1));
        } else { // SendPayment: transfer between two customers
            read(prog, checkingBase_ + a);
            read(prog, checkingBase_ + b);
            std::int64_t amount = std::int64_t(rng.below(100)) + 1;
            derivedWrite(prog, checkingBase_ + a, 0, -amount);
            derivedWrite(prog, checkingBase_ + b, 1, amount);
        }
        return prog;
    }

  private:
    void
    read(TxnProgram &p, std::uint64_t rec)
    {
        Request r;
        r.record = recordBase_ + rec;
        r.isWrite = false;
        r.sizeBytes = 64;
        p.requests.push_back(r);
    }

    void
    derivedWrite(TxnProgram &p, std::uint64_t rec, int read_idx,
                 std::int64_t delta)
    {
        Request r;
        r.record = recordBase_ + rec;
        r.isWrite = true;
        r.offsetBytes = 0;
        r.sizeBytes = 64;
        r.derivedFromReadIdx = read_idx;
        r.delta = delta;
        p.requests.push_back(r);
    }

    std::uint64_t accounts_, checkingBase_, savingsBase_, total_;
};

} // namespace

std::unique_ptr<WorkloadGenerator>
makeWorkload(AppKind app, kvs::StoreKind store, const WorkloadConfig &cfg)
{
    switch (app) {
      case AppKind::YcsbA:
        return std::make_unique<YcsbGenerator>(store, 0.50, "wA", cfg);
      case AppKind::YcsbB:
        return std::make_unique<YcsbGenerator>(store, 0.05, "wB", cfg);
      case AppKind::YcsbE:
        return std::make_unique<YcsbGenerator>(store, 0.05, "wE", cfg,
                                               /*scan_fraction=*/0.95);
      case AppKind::YcsbWriteOnly:
        return std::make_unique<YcsbGenerator>(store, 1.00, "100W",
                                               cfg);
      case AppKind::YcsbHalf:
        return std::make_unique<YcsbGenerator>(store, 0.50, "50W50R",
                                               cfg);
      case AppKind::YcsbReadOnly:
        return std::make_unique<YcsbGenerator>(store, 0.00, "100R",
                                               cfg);
      case AppKind::Tpcc:
        return std::make_unique<TpccGenerator>(cfg);
      case AppKind::Tatp:
        return std::make_unique<TatpGenerator>(cfg);
      case AppKind::Smallbank:
        return std::make_unique<SmallbankGenerator>(cfg);
    }
    panic("unknown workload");
}

} // namespace hades::workload
