/**
 * @file
 * Data model of the correctness auditor: per-transaction read/write
 * observations stamped with ground-truth versions, the violation
 * taxonomy, and the report the history audit produces.
 *
 * An observation is opened when a transaction attempt starts, collects
 * every data read (record + the ground-truth version it saw) and every
 * applied write (record + the version it installed), and is closed with
 * either a commit or an abort. The committed observations form the
 * history the serializability audit runs over; aborted observations
 * must have applied no writes (dirty-write check).
 */

#ifndef HADES_AUDIT_OBSERVATION_HH_
#define HADES_AUDIT_OBSERVATION_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace hades::audit
{

/** One data read: the ground-truth version the value was read at. */
struct ReadObs
{
    std::uint64_t record = 0;
    std::uint64_t version = 0;
};

/** One applied write: the ground-truth version it installed. */
struct WriteObs
{
    std::uint64_t record = 0;
    std::uint64_t version = 0;
};

/** Everything recorded about one transaction attempt. */
struct TxnObservation
{
    /** Auditor-allocated id (dense, unique across the run). Engine
     *  transaction ids are NOT unique across attempts in all engines
     *  (Baseline reuses the bare context id fault-free), so the
     *  auditor allocates its own. */
    std::uint64_t id = 0;
    /** Engine id (packed gid | epoch) for diagnostics only. */
    std::uint64_t engineId = 0;
    bool committed = false;
    bool aborted = false;
    std::vector<ReadObs> reads;
    std::vector<WriteObs> writes;
};

/** Classes of correctness violation the auditor can report. */
enum class ViolationKind
{
    /** The committed history's RW/WW/WR graph has a cycle. */
    DependencyCycle,
    /** A committed reader saw only part of a committed writer. */
    FracturedRead,
    /** Two committed writers installed the same version, or a version
     *  inside the audited range was never installed by anyone. */
    BrokenVersionChain,
    /** A read observed a version no audited transaction installed. */
    PhantomVersion,
    /** An aborted transaction's write reached the committed store. */
    DirtyWrite,
    /** An observation was neither committed nor aborted at finalize. */
    DanglingTxn,
    /** A Bloom filter missed an address it provably contains. */
    BloomFalseNegative,
    /** Find-LLC-Tags did not return exactly the written lines. */
    FindTagsMismatch,
    /** A lock-owner epoch moved backwards for one context. */
    LockEpochRegression,
    /** Hardware state (WrTX tags, Locking Buffers, NIC filters,
     *  record locks) did not drain to zero after the run. */
    StateLeak,
    NumKinds,
};

const char *violationKindName(ViolationKind k);

/** One concrete violation with a human-readable diagnostic. */
struct Violation
{
    ViolationKind kind = ViolationKind::DependencyCycle;
    std::string detail;
};

/** Outcome of an audited run. */
struct AuditReport
{
    std::vector<Violation> violations;

    std::uint64_t committedTxns = 0;
    std::uint64_t abortedTxns = 0;
    std::uint64_t readsAudited = 0;
    std::uint64_t writesAudited = 0;
    std::uint64_t graphEdges = 0;
    std::uint64_t filterProbesChecked = 0;
    std::uint64_t findTagsChecked = 0;
    std::uint64_t lockAcquiresChecked = 0;

    bool ok() const { return violations.empty(); }

    bool has(ViolationKind k) const;

    /** One-line outcome; on failure the first few diagnostics. */
    std::string summary() const;
};

} // namespace hades::audit

#endif // HADES_AUDIT_OBSERVATION_HH_
