/**
 * @file
 * The correctness auditor: a purely observational recorder the
 * protocol engines report into while a simulation runs.
 *
 * Layer 1 (history): every transaction attempt opens an observation,
 * stamps each data read/applied write with its ground-truth version,
 * and closes with commit or abort; finalize() runs the
 * serializability + read-atomicity audit of history_graph.hh over the
 * closed history.
 *
 * Layer 2 (structural invariants): hooks the engines call at the
 * hardware touch points --
 *  - Bloom filter probes must never false-negative against the exact
 *    footprint oracle (AttemptControl's shadow sets);
 *  - Find-LLC-Tags must return exactly the lines the transaction
 *    wrote, every one covered by the split WrBF1/WrBF2 signature;
 *  - lock-owner epochs must be monotone per hardware context;
 *  - WrTX tags, Locking Buffers, NIC state, and record locks must
 *    drain to zero after every transaction and at the end of a run.
 *
 * The auditor draws no random numbers and schedules no events, so
 * enabling it cannot perturb the simulated execution: an audited run
 * is bit-identical (in simulated time and protocol outcomes) to the
 * same run without the auditor.
 */

#ifndef HADES_AUDIT_AUDITOR_HH_
#define HADES_AUDIT_AUDITOR_HH_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/observation.hh"
#include "bloom/bloom_filter.hh"
#include "bloom/split_write_bloom.hh"
#include "common/types.hh"

namespace hades::audit
{

/** Default enablement: on in debug builds and in builds configured
 *  with -DHADES_AUDIT=ON (HADES_AUDIT_FORCE_ON); opt-in elsewhere. */
#if defined(HADES_AUDIT_FORCE_ON)
inline constexpr bool kDefaultEnabled = true;
#elif defined(NDEBUG)
inline constexpr bool kDefaultEnabled = false;
#else
inline constexpr bool kDefaultEnabled = true;
#endif

/** Records one run's history + invariant checks; see file comment. */
class Auditor
{
  public:
    // ---- Layer 1: transaction history ----------------------------------

    /** Open an observation for one attempt; returns its audit id.
     *  Engine ids repeat across attempts (Baseline reuses the bare
     *  context id fault-free), so the auditor allocates its own. */
    std::uint64_t begin(std::uint64_t engine_id);

    /** Record a data read of @p record at ground-truth @p version. */
    void noteRead(std::uint64_t obs, std::uint64_t record,
                  std::uint64_t version);

    /** Record an applied write that installed @p version. Writes may
     *  arrive after noteCommit (asynchronous remote Validation). */
    void noteWrite(std::uint64_t obs, std::uint64_t record,
                   std::uint64_t version);

    void noteCommit(std::uint64_t obs);
    void noteAbort(std::uint64_t obs);

    // ---- Layer 2: structural invariants --------------------------------

    /** One BF probe: @p may_contain is the filter's answer, @p truth
     *  the exact-set oracle's. truth && !may_contain is impossible in
     *  a correct Bloom filter. */
    void noteFilterProbe(bool may_contain, bool truth,
                         const char *site);

    /** Every line of @p exact must hit in @p bf (no false negative). */
    void checkFilterCovers(const bloom::AddressFilter &bf,
                           const std::unordered_set<Addr> &exact,
                           const char *site);
    /** Same check for the NIC's ordered shadow sets. */
    void checkFilterCovers(const bloom::AddressFilter &bf,
                           const std::set<Addr> &exact,
                           const char *site);

    /**
     * Find-LLC-Tags result check: @p found (the WrTX-tag enumeration)
     * must equal @p exact (the lines the attempt wrote locally), and
     * when @p split is given every found line must be covered by the
     * split signature with its LLC set among the WrBF2 candidates
     * (Figure 8's enable signal would otherwise skip the set).
     */
    void noteFindTags(std::uint64_t engine_id,
                      const std::vector<Addr> &found,
                      const std::unordered_set<Addr> &exact,
                      const bloom::SplitWriteBloomFilter *split);

    /** A lock/Locking Buffer acquisition by packed owner id; epochs
     *  (bits 48..61) must be monotone per hardware context. */
    void noteLockAcquire(std::uint64_t owner);

    /** End-of-txn / end-of-run drain check: @p leftover entries of
     *  @p structure at @p node must be zero. */
    void noteDrained(const char *structure, NodeId node,
                     std::uint64_t leftover);

    // ---- Reporting ------------------------------------------------------

    /** Run the history audit and return the combined report. Call
     *  once, after the kernel has drained. */
    AuditReport finalize();

    std::size_t observationCount() const { return observations_.size(); }

  private:
    void violation(ViolationKind kind, std::string detail);
    TxnObservation *find(std::uint64_t obs);

    std::vector<TxnObservation> observations_;
    /** Packed context id -> last lock-owner epoch seen. */
    std::unordered_map<std::uint64_t, std::uint64_t> lockEpochs_;
    AuditReport report_;
    bool finalized_ = false;
};

} // namespace hades::audit

#endif // HADES_AUDIT_AUDITOR_HH_
