/**
 * @file
 * Serializability audit over a set of closed transaction observations.
 *
 * The audit reconstructs, per record, the chain of installed versions,
 * derives the classical direct-dependency edges between committed
 * transactions -- WW (consecutive version writers), WR (writer of v to
 * every reader of v), and RW anti-dependencies (reader of v to the
 * writer of the next version) -- and rejects the history if the graph
 * has a cycle. A cyclic direct serialization graph is exactly a
 * non-serializable execution (Adya's DSG formulation, also the basis of
 * the RDMA concurrency-control comparison framework of Wang et al.).
 *
 * Fractured reads (RAMP-style read-atomicity violations) are also
 * reported explicitly: a reader that saw write w1 of a committed
 * transaction but a pre-state of the same transaction's write w2 shows
 * up as a cycle too, but the dedicated check produces a far more
 * actionable diagnostic.
 */

#ifndef HADES_AUDIT_HISTORY_GRAPH_HH_
#define HADES_AUDIT_HISTORY_GRAPH_HH_

#include <vector>

#include "audit/observation.hh"

namespace hades::audit
{

/**
 * Run the full history audit over @p observations and append any
 * violations (plus the graph statistics) to @p report.
 *
 * Version-0 reads observe the pre-run initial state and need no
 * writer; audited versions of one record must otherwise be distinct
 * and gap-free above the first audited version (the store's version
 * counter is sequential, so a hole means a write bypassed the audit).
 */
void auditHistory(const std::vector<TxnObservation> &observations,
                  AuditReport &report);

} // namespace hades::audit

#endif // HADES_AUDIT_HISTORY_GRAPH_HH_
