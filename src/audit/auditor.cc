#include "audit/auditor.hh"

#include <cstdio>

#include "audit/history_graph.hh"
#include "common/log.hh"

namespace hades::audit
{

namespace
{

/** Lock-owner id layout (mirrors the engines' epoch tagging). */
constexpr unsigned kEpochShift = 48;
constexpr std::uint64_t kEpochMask = 0x3fff;

std::string
fmt(const char *format, std::uint64_t a, std::uint64_t b,
    std::uint64_t c)
{
    char buf[192];
    std::snprintf(buf, sizeof buf, format, (unsigned long long)a,
                  (unsigned long long)b, (unsigned long long)c);
    return std::string(buf);
}

} // namespace

void
Auditor::violation(ViolationKind kind, std::string detail)
{
    report_.violations.push_back(Violation{kind, std::move(detail)});
}

TxnObservation *
Auditor::find(std::uint64_t obs)
{
    if (obs == 0 || obs > observations_.size())
        return nullptr;
    return &observations_[obs - 1];
}

std::uint64_t
Auditor::begin(std::uint64_t engine_id)
{
    TxnObservation o;
    o.id = observations_.size() + 1;
    o.engineId = engine_id;
    observations_.push_back(std::move(o));
    return observations_.back().id;
}

void
Auditor::noteRead(std::uint64_t obs, std::uint64_t record,
                  std::uint64_t version)
{
    if (TxnObservation *o = find(obs))
        o->reads.push_back(ReadObs{record, version});
}

void
Auditor::noteWrite(std::uint64_t obs, std::uint64_t record,
                   std::uint64_t version)
{
    if (TxnObservation *o = find(obs))
        o->writes.push_back(WriteObs{record, version});
}

void
Auditor::noteCommit(std::uint64_t obs)
{
    if (TxnObservation *o = find(obs)) {
        always_assert(!o->aborted, "audit: commit after abort");
        o->committed = true;
    }
}

void
Auditor::noteAbort(std::uint64_t obs)
{
    if (TxnObservation *o = find(obs)) {
        always_assert(!o->committed, "audit: abort after commit");
        o->aborted = true;
    }
}

void
Auditor::noteFilterProbe(bool may_contain, bool truth, const char *site)
{
    report_.filterProbesChecked += 1;
    if (truth && !may_contain) {
        violation(ViolationKind::BloomFalseNegative,
                  std::string("filter at ") + site +
                      " missed an address it provably contains");
    }
}

void
Auditor::checkFilterCovers(const bloom::AddressFilter &bf,
                           const std::unordered_set<Addr> &exact,
                           const char *site)
{
    // Order-insensitive membership sweep. det-lint: ordered-ok
    for (Addr line : exact) {
        report_.filterProbesChecked += 1;
        if (!bf.mayContain(line)) {
            violation(ViolationKind::BloomFalseNegative,
                      std::string("filter at ") + site + ": " +
                          fmt("line %llx inserted but mayContain is "
                              "false",
                              line, 0, 0));
        }
    }
}

void
Auditor::checkFilterCovers(const bloom::AddressFilter &bf,
                           const std::set<Addr> &exact,
                           const char *site)
{
    for (Addr line : exact) {
        report_.filterProbesChecked += 1;
        if (!bf.mayContain(line)) {
            violation(ViolationKind::BloomFalseNegative,
                      std::string("filter at ") + site + ": " +
                          fmt("line %llx inserted but mayContain is "
                              "false",
                              line, 0, 0));
        }
    }
}

void
Auditor::noteFindTags(std::uint64_t engine_id,
                      const std::vector<Addr> &found,
                      const std::unordered_set<Addr> &exact,
                      const bloom::SplitWriteBloomFilter *split)
{
    report_.findTagsChecked += 1;
    for (Addr line : found) {
        if (!exact.count(line)) {
            violation(ViolationKind::FindTagsMismatch,
                      fmt("txn %llx: Find-LLC-Tags returned line %llx "
                          "the txn never wrote",
                          engine_id, line, 0));
        }
        if (split) {
            if (!split->mayContain(line)) {
                violation(ViolationKind::BloomFalseNegative,
                          fmt("txn %llx: split write BF misses "
                              "written line %llx",
                              engine_id, line, 0));
            }
            std::uint64_t set = split->llcSetOf(line);
            if (!split->bf2BitSet(split->bf2BitOf(set))) {
                violation(ViolationKind::FindTagsMismatch,
                          fmt("txn %llx: WrBF2 enable bit clear for "
                              "LLC set %llu of written line %llx",
                              engine_id, set, line));
            }
        }
    }
    if (found.size() != exact.size()) {
        // Tagged lines were lost (e.g. stale tags invalidated, or an
        // eviction raced the commit without squashing the owner).
        violation(ViolationKind::FindTagsMismatch,
                  fmt("txn %llx: Find-LLC-Tags returned %llu line(s), "
                      "but the txn wrote %llu",
                      engine_id, found.size(), exact.size()));
    }
}

void
Auditor::noteLockAcquire(std::uint64_t owner)
{
    report_.lockAcquiresChecked += 1;
    const std::uint64_t ctx = owner & ~(kEpochMask << kEpochShift);
    const std::uint64_t epoch = (owner >> kEpochShift) & kEpochMask;
    auto [it, fresh] = lockEpochs_.emplace(ctx, epoch);
    if (fresh)
        return;
    // The 14-bit epoch field wraps; treat a huge backwards jump as a
    // wrap rather than a regression.
    if (epoch < it->second && it->second - epoch < kEpochMask / 2) {
        violation(ViolationKind::LockEpochRegression,
                  fmt("context %llx acquired a lock with epoch %llu "
                      "after epoch %llu",
                      ctx, epoch, it->second));
    }
    it->second = epoch;
}

void
Auditor::noteDrained(const char *structure, NodeId node,
                     std::uint64_t leftover)
{
    if (leftover != 0) {
        violation(ViolationKind::StateLeak,
                  std::string(structure) + ": " +
                      fmt("%llu stale entr(ies) at node %llu", leftover,
                          node, 0));
    }
}

AuditReport
Auditor::finalize()
{
    always_assert(!finalized_, "audit: finalize called twice");
    finalized_ = true;
    auditHistory(observations_, report_);
    return report_;
}

} // namespace hades::audit
