#include "audit/history_graph.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace hades::audit
{

namespace
{

std::string
fmt(const char *format, std::uint64_t a, std::uint64_t b,
    std::uint64_t c)
{
    char buf[192];
    std::snprintf(buf, sizeof buf, format, (unsigned long long)a,
                  (unsigned long long)b, (unsigned long long)c);
    return std::string(buf);
}

void
addViolation(AuditReport &report, ViolationKind kind,
             std::string detail)
{
    report.violations.push_back(Violation{kind, std::move(detail)});
}

/** Per-record view of the committed history. */
struct RecordHistory
{
    /** version -> dense index of the committed installer. */
    std::map<std::uint64_t, std::size_t> writers;
    /** version -> dense indices of the committed readers. */
    std::map<std::uint64_t, std::vector<std::size_t>> readers;
};

} // namespace

const char *
violationKindName(ViolationKind k)
{
    static const char *names[] = {
        "dependency-cycle",     "fractured-read",
        "broken-version-chain", "phantom-version",
        "dirty-write",          "dangling-txn",
        "bloom-false-negative", "find-tags-mismatch",
        "lock-epoch-regression", "state-leak",
    };
    auto i = std::size_t(k);
    return i < std::size_t(ViolationKind::NumKinds) ? names[i] : "?";
}

bool
AuditReport::has(ViolationKind k) const
{
    for (const auto &v : violations)
        if (v.kind == k)
            return true;
    return false;
}

std::string
AuditReport::summary() const
{
    char head[256];
    std::snprintf(head, sizeof head,
                  "audit: %llu committed, %llu aborted, %llu reads, "
                  "%llu writes, %llu edges, %zu violations",
                  (unsigned long long)committedTxns,
                  (unsigned long long)abortedTxns,
                  (unsigned long long)readsAudited,
                  (unsigned long long)writesAudited,
                  (unsigned long long)graphEdges, violations.size());
    std::string out = head;
    std::size_t shown = 0;
    for (const auto &v : violations) {
        if (shown++ == 5) {
            out += "\n  ... (further violations elided)";
            break;
        }
        out += "\n  [";
        out += violationKindName(v.kind);
        out += "] ";
        out += v.detail;
    }
    return out;
}

void
auditHistory(const std::vector<TxnObservation> &observations,
             AuditReport &report)
{
    // ---- Close-out checks on every observation -----------------------------
    std::vector<const TxnObservation *> committed;
    for (const auto &obs : observations) {
        report.readsAudited += obs.reads.size();
        report.writesAudited += obs.writes.size();
        if (obs.committed) {
            report.committedTxns += 1;
            committed.push_back(&obs);
            continue;
        }
        if (!obs.aborted) {
            addViolation(report, ViolationKind::DanglingTxn,
                         fmt("txn obs %llu (engine id %llx) never "
                             "committed nor aborted (%llu writes)",
                             obs.id, obs.engineId, obs.writes.size()));
            continue;
        }
        report.abortedTxns += 1;
        if (!obs.writes.empty()) {
            addViolation(report, ViolationKind::DirtyWrite,
                         fmt("aborted txn obs %llu (engine id %llx) "
                             "applied %llu write(s) to the store",
                             obs.id, obs.engineId, obs.writes.size()));
        }
    }

    // ---- Per-record version chains -----------------------------------------
    std::map<std::uint64_t, RecordHistory> records;
    for (std::size_t t = 0; t < committed.size(); ++t) {
        for (const auto &w : committed[t]->writes) {
            auto &rec = records[w.record];
            auto [it, fresh] = rec.writers.emplace(w.version, t);
            if (!fresh) {
                addViolation(
                    report, ViolationKind::BrokenVersionChain,
                    fmt("record %llu version %llu installed twice "
                        "(lost update); second installer engine id "
                        "%llx",
                        w.record, w.version,
                        committed[t]->engineId));
            }
        }
        for (const auto &r : committed[t]->reads)
            records[r.record].readers[r.version].push_back(t);
    }

    for (const auto &[record, rec] : records) {
        // Versions installed by audited transactions must be gap-free
        // above the first one: the store's counter is sequential, so a
        // hole means some write bypassed the audit. Versions below the
        // first audited one belong to pre-run initialization.
        std::uint64_t prev = 0;
        bool first = true;
        for (const auto &[version, writer] : rec.writers) {
            if (!first && version != prev + 1) {
                addViolation(
                    report, ViolationKind::BrokenVersionChain,
                    fmt("record %llu: audited versions jump from "
                        "%llu to %llu",
                        record, prev, version));
            }
            first = false;
            prev = version;
        }
        if (rec.writers.empty())
            continue; // all reads saw pre-run state: nothing to check
        const std::uint64_t first_audited = rec.writers.begin()->first;
        for (const auto &[version, who] : rec.readers) {
            if (version >= first_audited && !rec.writers.count(version))
                addViolation(
                    report, ViolationKind::PhantomVersion,
                    fmt("record %llu read at version %llu, which no "
                        "audited txn installed (first audited: %llu)",
                        record, version, first_audited));
        }
    }

    // ---- Dependency edges ---------------------------------------------------
    std::vector<std::set<std::size_t>> succ(committed.size());
    auto addEdge = [&](std::size_t from, std::size_t to) {
        if (from != to && succ[from].insert(to).second)
            report.graphEdges += 1;
    };
    for (const auto &[record, rec] : records) {
        (void)record;
        // WW: installer of v -> installer of the next version.
        for (auto it = rec.writers.begin(); it != rec.writers.end();) {
            auto cur = it++;
            if (it != rec.writers.end())
                addEdge(cur->second, it->second);
        }
        for (const auto &[version, rdrs] : rec.readers) {
            // WR: installer of v -> every reader of v.
            auto wit = rec.writers.find(version);
            if (wit != rec.writers.end())
                for (std::size_t rdr : rdrs)
                    addEdge(wit->second, rdr);
            // RW: reader of v -> installer of the next version > v
            // (the write that overwrote what the reader saw).
            auto nit = rec.writers.upper_bound(version);
            if (nit != rec.writers.end())
                for (std::size_t rdr : rdrs)
                    addEdge(rdr, nit->second);
        }
    }

    // ---- Cycle detection (Kahn peel; leftovers are cyclic) ------------------
    std::vector<std::size_t> indeg(committed.size(), 0);
    for (const auto &s : succ)
        for (std::size_t to : s)
            indeg[to] += 1;
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < committed.size(); ++i)
        if (indeg[i] == 0)
            queue.push_back(i);
    std::size_t peeled = 0;
    while (!queue.empty()) {
        std::size_t n = queue.back();
        queue.pop_back();
        peeled += 1;
        for (std::size_t to : succ[n])
            if (--indeg[to] == 0)
                queue.push_back(to);
    }
    if (peeled != committed.size()) {
        // Extract one concrete cycle for the diagnostic: walk inside
        // the un-peeled subgraph until a node repeats.
        std::size_t start = 0;
        while (indeg[start] == 0)
            ++start;
        std::vector<std::size_t> path;
        std::set<std::size_t> on_path;
        std::size_t cur = start;
        while (on_path.insert(cur).second) {
            path.push_back(cur);
            for (std::size_t to : succ[cur]) {
                if (indeg[to] != 0) {
                    cur = to;
                    break;
                }
            }
        }
        std::string cyc;
        bool in_cycle = false;
        for (std::size_t n : path) {
            in_cycle = in_cycle || n == cur;
            if (!in_cycle)
                continue;
            char buf[32];
            std::snprintf(buf, sizeof buf, "%llx -> ",
                          (unsigned long long)committed[n]->engineId);
            cyc += buf;
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, "%llx",
                      (unsigned long long)committed[cur]->engineId);
        cyc += buf;
        addViolation(report, ViolationKind::DependencyCycle,
                     "non-serializable history: " +
                         fmt("%llu txn(s) on dependency cycles; one "
                             "cycle (engine ids): ",
                             committed.size() - peeled, 0, 0) +
                         cyc);
    }

    // ---- Fractured reads (read atomicity, RAMP-style) -----------------------
    for (std::size_t t = 0; t < committed.size(); ++t) {
        // What did t read, per record? (first read wins; engines record
        // one entry per record thanks to read-your-own-write caching)
        std::map<std::uint64_t, std::uint64_t> read_at;
        for (const auto &r : committed[t]->reads)
            read_at.emplace(r.record, r.version);
        for (const auto &r : committed[t]->reads) {
            auto wit = records[r.record].writers.find(r.version);
            if (wit == records[r.record].writers.end())
                continue; // pre-run version: no audited writer
            std::size_t w = wit->second;
            if (w == t)
                continue;
            // t saw writer w's update of r.record; it must not have
            // seen a pre-w state of any other record w also wrote.
            for (const auto &ww : committed[w]->writes) {
                auto rit = read_at.find(ww.record);
                if (rit == read_at.end() || rit->second >= ww.version)
                    continue;
                addViolation(
                    report, ViolationKind::FracturedRead,
                    fmt("txn engine id %llx read record %llu at "
                        "version %llu",
                        committed[t]->engineId, ww.record,
                        rit->second) +
                        fmt(" but also saw the writer (engine id "
                            "%llx) of record %llu@%llu",
                            committed[w]->engineId, r.record,
                            r.version));
            }
        }
    }
}

} // namespace hades::audit
