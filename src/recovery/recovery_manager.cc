#include "recovery/recovery_manager.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "net/network.hh"
#include "recovery/membership.hh"
#include "sim/resource.hh"

namespace hades::recovery
{

using protocol::AttemptControl;

RecoveryManager::RecoveryManager(protocol::System &sys,
                                 protocol::TxnEngine &engine)
    : sys_(sys), engine_(engine), cfg_(sys.config.recovery),
      tun_(sys.config.tuning),
      lastRenewal_(sys.config.numNodes, 0),
      handled_(sys.config.numNodes, 0),
      quarantined_(sys.config.numNodes, 0)
{
    // Fixed-slot CM replica group: cmGroupSize consecutive node slots
    // starting at managerNode. Succession order is slot order.
    std::uint32_t size = cfg_.cmGroupSize;
    if (size == 0)
        size = 1;
    if (size > sys_.config.numNodes)
        size = sys_.config.numNodes;
    for (std::uint32_t i = 0; i < size; ++i)
        cmGroup_.push_back(
            NodeId((cfg_.managerNode + i) % sys_.config.numNodes));
    actingPrimary_ = cmGroup_.front();
}

void
RecoveryManager::start(std::uint64_t expected_drivers)
{
    driversLeft_ = expected_drivers;
    done_ = expected_drivers == 0;
    startPrimaryLoops();
    for (std::size_t i = 1; i < cmGroup_.size(); ++i)
        standbyLoop(cmGroup_[i]);
    monitorLoop();
    if (membership_ && sys_.slo && sys_.slo->config().quarantine)
        quarantineLoop();
}

bool
RecoveryManager::finished() const
{
    if (!done_)
        return false;
    // Unrecoverable plan: every CM group slot eventually fail-stops,
    // so the tail of the crash schedule has no grantor left to declare
    // it. Stop at driver drain instead of spinning forever.
    bool cm_survives = false;
    for (NodeId g : cmGroup_)
        if (sys_.config.faults.crashForeverAt(g) == kTickMax)
            cm_survives = true;
    if (!cm_survives)
        return true;
    for (NodeId n = 0; n < sys_.config.numNodes; ++n)
        if (!handled_[n] &&
            sys_.config.faults.crashForeverAt(n) != kTickMax)
            return false;
    return true;
}

void
RecoveryManager::startPrimaryLoops()
{
    for (NodeId n = 0; n < sys_.config.numNodes; ++n)
        if (n != actingPrimary_ && !handled_[n])
            probeLoop(n, actingPrimary_, primaryGen_);
}

sim::DetachedTask
RecoveryManager::probeLoop(NodeId node, NodeId primary,
                           std::uint32_t gen)
{
    // The acting primary's lease probe to one node: a small round trip
    // per leaseInterval. A permanently crashed holder stops answering
    // (faultyRoundTrip gives up on a dead destination), so its renewal
    // timestamp freezes and the lease expires. The renewal itself
    // consults the fail-stop oracle: the lease machinery models
    // *detection latency*, never false positives. Every grant carries
    // the CM epoch of its send instant; a grant that completes after a
    // CM failover (or from a since-dead primary) is stale and is
    // discarded instead of renewing -- the epoch fence that keeps a
    // deposed primary from extending leases it no longer owns.
    try {
        while (!done_ && !handled_[node] && gen == primaryGen_) {
            stats_.leaseProbes += 1;
            const std::uint64_t grant_epoch = cmEpoch_;
            co_await sys_.network.roundTrip(net::MsgType::Lease,
                                            primary, node, 16, 8);
            if (gen != primaryGen_ || grant_epoch != cmEpoch_ ||
                sys_.network.nodeDead(primary)) {
                stats_.staleLeaseGrants += 1;
                break;
            }
            if (!sys_.network.nodeDead(node))
                lastRenewal_[node] = sys_.kernel.now();
            co_await sim::Delay{sys_.kernel, tun_.leaseInterval};
        }
    } catch (const sim::NodeDead &) {
        // The granting primary died mid-probe: its standbys detect the
        // silence through their own probes and succeed it.
    }
}

sim::DetachedTask
RecoveryManager::standbyLoop(NodeId self)
{
    // A CM standby probes the acting primary with the same lease
    // mechanism the primary uses on everyone else. When the primary is
    // oracle-dead and silent past leaseTimeout, the lowest live slot
    // succeeds it: deterministic, no election traffic to model.
    try {
        Tick last_seen = 0;
        while (!finished()) {
            co_await sim::Delay{sys_.kernel, tun_.leaseInterval};
            if (finished() || actingPrimary_ == self ||
                sys_.network.nodeDead(self))
                break;
            const NodeId primary = actingPrimary_;
            stats_.leaseProbes += 1;
            co_await sys_.network.roundTrip(net::MsgType::Lease, self,
                                            primary, 16, 8);
            if (finished() || actingPrimary_ != primary)
                continue; // someone else already handled the failover
            const Tick now = sys_.kernel.now();
            if (!sys_.network.nodeDead(primary)) {
                last_seen = now;
                continue;
            }
            if (now - last_seen <= tun_.leaseTimeout)
                continue;
            // Primary confirmed dead and silent past the lease horizon:
            // the first live slot in group order succeeds it.
            NodeId successor = self;
            for (NodeId g : cmGroup_)
                if (!sys_.network.nodeDead(g)) {
                    successor = g;
                    break;
                }
            if (successor != self)
                continue;
            cmEpoch_ += 1;
            stats_.cmFailovers += 1;
            actingPrimary_ = self;
            primaryGen_ += 1;
            startPrimaryLoops();
            // The dead ex-primary's records are recovered by an
            // ordinary view change once the monitor sees its (frozen,
            // never-renewed) lease expire.
            break;
        }
    } catch (const sim::NodeDead &) {
        // This standby died mid-probe; later slots keep watching.
    }
}

sim::DetachedTask
RecoveryManager::monitorLoop()
{
    while (!finished()) {
        co_await sim::Delay{sys_.kernel, tun_.leaseInterval};
        if (finished())
            break;
        // While the acting primary is itself dead, nobody may declare
        // deaths: the standby succession (standbyLoop) must run first.
        if (sys_.network.nodeDead(actingPrimary_))
            continue;
        const Tick now = sys_.kernel.now();
        for (NodeId n = 0; n < sys_.config.numNodes; ++n) {
            if (n == actingPrimary_ || handled_[n])
                continue;
            if (sys_.network.nodeDead(n) &&
                now - lastRenewal_[n] > tun_.leaseTimeout) {
                // Split-brain rule: a CM that cannot reach a majority
                // of the live group members must not advance the
                // epoch. The refusal is re-evaluated every interval;
                // once the partition heals the view change proceeds.
                if (!cmQuorum(now)) {
                    stats_.quorumRefusals += 1;
                    continue;
                }
                viewChange(n);
            }
        }
    }
}

sim::DetachedTask
RecoveryManager::quarantineLoop()
{
    // Grey-failure quarantine (the mild half of the decision table;
    // the view change is the harsh half). A node the SLO tracker sees
    // as *sustained* degraded is alive-but-slow: its data is intact
    // and reachable, so the right response is a planned drain -- live
    // migration of its records to healthy members -- not the
    // epoch-fenced kill a fail-stop gets. If the node later dies
    // anyway, monitorLoop's ordinary view change finishes the job.
    // Same CM discipline as declaring a death: only the acting primary
    // acts, and only with a live-majority quorum.
    while (!finished()) {
        co_await sim::Delay{sys_.kernel, tun_.leaseInterval};
        if (finished())
            break;
        if (sys_.network.nodeDead(actingPrimary_))
            continue;
        NodeId victim = 0;
        if (!sys_.slo->sustainedDegraded(victim))
            continue;
        if (victim == actingPrimary_ || quarantined_[victim] ||
            handled_[victim] || sys_.network.nodeDead(victim))
            continue;
        if (!cmQuorum(sys_.kernel.now())) {
            stats_.quorumRefusals += 1;
            continue;
        }
        if (membership_->requestDrain(victim)) {
            quarantined_[victim] = 1;
            stats_.quarantines += 1;
        }
    }
}

bool
RecoveryManager::cmQuorum(Tick now) const
{
    const net::FaultInjector *fi = sys_.network.faultInjector();
    std::uint32_t live = 0;
    std::uint32_t reachable = 0;
    for (NodeId g : cmGroup_) {
        if (sys_.network.nodeDead(g))
            continue; // crashed members are non-voting (fail-stop oracle)
        live += 1;
        if (g == actingPrimary_) {
            reachable += 1;
            continue;
        }
        const bool blocked =
            fi && (fi->linkBlocked(actingPrimary_, g, now) ||
                   fi->linkBlocked(g, actingPrimary_, now));
        if (!blocked)
            reachable += 1;
    }
    return reachable >= live / 2 + 1;
}

void
RecoveryManager::applyPending(std::uint64_t record,
                              const protocol::PendingApply &pa)
{
    std::uint64_t v = sys_.data.write(record, pa.value);
    if (sys_.audit && pa.auditId)
        sys_.audit->noteWrite(pa.auditId, record, v);
    sys_.node(sys_.placement.homeOf(record))
        .versions.bumpVersion(record);
    stats_.replayedWrites += 1;
}

void
RecoveryManager::replayLedgerOf(std::uint64_t tx)
{
    auto it = sys_.pendingApplies.lower_bound({tx, 0});
    while (it != sys_.pendingApplies.end() && it->first.first == tx) {
        applyPending(it->first.second, it->second);
        it = sys_.pendingApplies.erase(it);
    }
}

void
RecoveryManager::viewChange(NodeId dead)
{
    if (handled_[dead])
        return;
    handled_[dead] = 1;

    auto &net = sys_.network;
    always_assert(net.nodeDead(dead),
                  "view change declared for a live node");
    always_assert(sys_.replicas != nullptr,
                  "crash recovery requires replication degree >= 1 "
                  "(no backup to promote a dead node's records from)");

    stats_.viewChanges += 1;

    // --- 1. New configuration epoch: fence the old view's traffic. ----------
    net.advanceEpoch();
    sys_.replicas->markDead(dead);

    // --- 2. Notify the survivors (timing/accounting only: the state
    // transition below is atomic within this kernel event, modeling a
    // coordinated reconfiguration barrier). -----------------------------------
    for (NodeId n = 0; n < sys_.config.numNodes; ++n)
        if (n != actingPrimary_ && !net.nodeDead(n))
            // hades-analyze: verb-reliability-ok (timing/accounting copy; the view transition is applied atomically within this kernel event)
            net.post(net::MsgType::ViewChange, actingPrimary_, n, 32,
                     [] {});

    // --- 3. Re-home every record the dead node was primary for to its
    // first *live* backup; record metadata migrates with it (the dead
    // owner's locks do not). A backup that is itself crashed -- even if
    // its own view change has not run yet (cascading failure) -- is
    // skipped, so promotions never land on a corpse; its slot is
    // cleaned up by its own view change in node order. ------------------------
    const std::uint32_t record_bytes = sys_.placement.recordBytes();
    std::vector<std::pair<std::uint64_t, NodeId>> rehomed;
    for (std::uint64_t r = 0; r < sys_.placement.numRecords(); ++r) {
        if (sys_.placement.homeOf(r) != dead)
            continue;
        NodeId new_primary = dead;
        for (NodeId b : sys_.replicas->backupsOf(r, dead))
            if (!net.nodeDead(b)) {
                new_primary = b;
                break;
            }
        always_assert(new_primary != dead,
                      "record lost: no live backup to promote");
        const txn::RecordMeta meta = sys_.node(dead).versions.peek(r);
        sys_.placement.rehome(r, new_primary, record_bytes);
        sys_.node(new_primary).versions.installMigrated(r, meta);
        rehomed.emplace_back(r, new_primary);
        stats_.promotedRecords += 1;
    }

    // --- 4. Resolve in-doubt transactions coordinated by the dead
    // node, by the paper's all-Acks rule: the durable decision record
    // says whether the coordinator passed its serialization point.
    // Decided -> commit (replay the journaled remote writes; staged
    // replica images are promoted in step 6). Undecided -> abort (the
    // client was never acked). ------------------------------------------------
    std::vector<std::pair<std::uint64_t, AttemptControl *>> victims;
    // Router state is sharded by coordinator node; scanning the shards
    // in node order (each one an ordered map) keeps the resolution
    // order deterministic.
    for (NodeId n = 0; n <= sys_.config.numNodes; ++n)
        for (const auto &[id, ctrl] : sys_.routerForNode(n).active())
            if (coordinatorOf(id) == dead && !ctrl->finished)
                victims.emplace_back(id, ctrl);
    for (auto &[id, ctrl] : victims) {
        if (ctrl->decisionRecorded) {
            replayLedgerOf(id);
            if (sys_.audit && ctrl->auditId)
                sys_.audit->noteCommit(ctrl->auditId);
            stats_.inDoubtCommitted += 1;
        } else {
            if (sys_.audit && ctrl->auditId)
                sys_.audit->noteAbort(ctrl->auditId);
            stats_.inDoubtAborted += 1;
        }
        ctrl->resolvedByRecovery = true;
        ctrl->squashRequested = true;
        ctrl->reason = txn::SquashReason::NodeFailure;
        ctrl->finished = true;
        ctrl->wake.notify(sys_.kernel);
        sys_.routerFor(id).remove(id);
    }

    // --- 5. Apply decided writes stranded by a dead *home*: a live
    // coordinator's commit-write to the dead node can never land, but
    // the transaction is committed. The journal entry is applied at the
    // record's new home (re-homed in step 3). ---------------------------------
    std::vector<std::pair<std::uint64_t, std::uint64_t>> stranded;
    for (const auto &[key, pa] : sys_.pendingApplies)
        if (pa.home == dead)
            stranded.push_back(key);
    for (const auto &key : stranded) {
        applyPending(key.second, sys_.pendingApplies.at(key));
        sys_.pendingApplies.erase(key);
    }

    // --- 6. Settle staged replica images of the dead coordinator's
    // transactions at every live store: decided transactions (durable
    // decision record exists) finish their promotion -- this also
    // repairs a decided-then-crashed coordinator whose promote message
    // was lost -- and undecided ones are rolled back. -------------------------
    for (NodeId n = 0; n < sys_.config.numNodes; ++n) {
        if (net.nodeDead(n))
            continue;
        auto &store = sys_.replicas->store(n);
        for (std::uint64_t tx : store.stagedTxIds()) {
            if (coordinatorOf(tx) != dead)
                continue;
            auto it = sys_.decisionLog.find(tx);
            if (it != sys_.decisionLog.end())
                store.promote(tx, it->second);
            else
                store.discard(tx);
        }
    }

    // --- 6b. Restore the replication factor of the re-homed records:
    // the backup ring under the new primary skips a different node, so
    // a node that never held a record's image can enter its window --
    // and the *old* ring's promotes, in flight or yet to be resent,
    // will never target it. The new primary's own durable image is not
    // authoritative either: the promote carrying the latest committed
    // value may itself still be riding a resend loop when the view
    // change runs. The new primary instead serves the record's
    // committed value directly (steps 4/5 above already replayed any
    // stranded journaled writes into it), stamped with the commit seq
    // the writer recorded at its serialization point, and pushes a
    // copy to every live backup of the new ring; max-seq-wins keeps
    // the copies consistent with promote deliveries landing on either
    // side of the view change. A crashed-but-undeclared backup is
    // skipped (its own view change empties the slot). RecoveryConfig::
    // testSkipImageResync elides this step -- the fuzzer's known
    // seeded bug, visible as divergentRecords. --------------------------------
    if (!cfg_.testSkipImageResync) {
        for (const auto &[r, np] : rehomed) {
            const auto seq = sys_.replicas->lastCommittedSeq(r);
            if (!seq)
                continue; // never committed to: nothing to restore
            const std::int64_t value = sys_.data.read(r);
            for (NodeId b : sys_.replicas->backupsOf(r, np)) {
                if (net.nodeDead(b))
                    continue;
                const auto cur = sys_.replicas->store(b).durableImage(r);
                if (cur && cur->seq >= *seq)
                    continue;
                sys_.replicas->store(b).installDurable(r, value, *seq);
                stats_.resyncedImages += 1;
            }
        }
    }

    // --- 7. Drain the dead node's footprint from every survivor:
    // Locking-Buffer entries, NIC remote Bloom filters, and record
    // locks its attempts held remotely. The scan walks the survivors'
    // actual hardware state, not just the router's in-doubt victims: an
    // attempt that *finished* before the crash (aborted, retried,
    // committed) can still have state here if its reliable Squash
    // cleanup was in flight when the coordinator died -- the resend
    // loop died with the source node and nobody else will ever send it. -------
    for (NodeId n = 0; n < sys_.config.numNodes; ++n) {
        if (net.nodeDead(n))
            continue;
        auto &node = sys_.node(n);
        std::vector<std::uint64_t> stale;
        for (const auto &[tx, filters] : node.nic.remote())
            if (coordinatorOf(tx) == dead)
                stale.push_back(tx);
        for (std::uint64_t tx : node.lockBank.activeOwners())
            if (coordinatorOf(tx) == dead)
                stale.push_back(tx);
        for (std::uint64_t tx : node.versions.lockOwners())
            if (coordinatorOf(tx) == dead)
                stale.push_back(tx);
        std::sort(stale.begin(), stale.end());
        stale.erase(std::unique(stale.begin(), stale.end()),
                    stale.end());
        for (std::uint64_t tx : stale) {
            node.lockBank.release(tx);
            node.nic.clearRemoteFilters(tx);
            stats_.locksReleased += node.versions.releaseOwnedBy(tx);
        }
    }

    // --- 8. Cluster-wide resources the dead node may hold (e.g. the
    // pessimistic-fallback token). --------------------------------------------
    engine_.onNodeDead(dead);
}

} // namespace hades::recovery
