#include "recovery/recovery_manager.hh"

#include <utility>
#include <vector>

#include "common/log.hh"
#include "net/network.hh"
#include "sim/resource.hh"

namespace hades::recovery
{

using protocol::AttemptControl;

void
RecoveryManager::start(std::uint64_t expected_drivers)
{
    driversLeft_ = expected_drivers;
    done_ = expected_drivers == 0;
    for (NodeId n = 0; n < sys_.config.numNodes; ++n)
        if (n != cfg_.managerNode)
            probeLoop(n);
    monitorLoop();
}

sim::DetachedTask
RecoveryManager::probeLoop(NodeId node)
{
    // The manager's lease probe to one node: a small round trip per
    // leaseInterval. A permanently crashed holder stops answering
    // (faultyRoundTrip gives up on a dead destination), so its renewal
    // timestamp freezes and the lease expires. The renewal itself
    // consults the fail-stop oracle: the lease machinery models
    // *detection latency*, never false positives.
    try {
        while (!done_ && !handled_[node]) {
            stats_.leaseProbes += 1;
            co_await sys_.network.roundTrip(net::MsgType::Lease,
                                            cfg_.managerNode, node, 16,
                                            8);
            if (!sys_.network.nodeDead(node))
                lastRenewal_[node] = sys_.kernel.now();
            co_await sim::Delay{sys_.kernel, cfg_.leaseInterval};
        }
    } catch (const sim::NodeDead &) {
        // The manager itself was killed: probing stops and no view
        // change will ever be declared (the CM is assumed reliable;
        // fault plans are expected not to kill it).
    }
}

sim::DetachedTask
RecoveryManager::monitorLoop()
{
    while (!done_) {
        co_await sim::Delay{sys_.kernel, cfg_.leaseInterval};
        if (done_)
            break;
        const Tick now = sys_.kernel.now();
        for (NodeId n = 0; n < sys_.config.numNodes; ++n) {
            if (n == cfg_.managerNode || handled_[n])
                continue;
            if (sys_.network.nodeDead(n) &&
                now - lastRenewal_[n] > cfg_.leaseTimeout)
                viewChange(n);
        }
    }
}

void
RecoveryManager::applyPending(std::uint64_t record,
                              const protocol::PendingApply &pa)
{
    std::uint64_t v = sys_.data.write(record, pa.value);
    if (sys_.audit && pa.auditId)
        sys_.audit->noteWrite(pa.auditId, record, v);
    sys_.node(sys_.placement.homeOf(record))
        .versions.bumpVersion(record);
    stats_.replayedWrites += 1;
}

void
RecoveryManager::replayLedgerOf(std::uint64_t tx)
{
    auto it = sys_.pendingApplies.lower_bound({tx, 0});
    while (it != sys_.pendingApplies.end() && it->first.first == tx) {
        applyPending(it->first.second, it->second);
        it = sys_.pendingApplies.erase(it);
    }
}

void
RecoveryManager::viewChange(NodeId dead)
{
    if (handled_[dead])
        return;
    handled_[dead] = 1;

    auto &net = sys_.network;
    always_assert(net.nodeDead(dead),
                  "view change declared for a live node");
    always_assert(sys_.replicas != nullptr,
                  "crash recovery requires replication degree >= 1 "
                  "(no backup to promote a dead node's records from)");

    stats_.viewChanges += 1;

    // --- 1. New configuration epoch: fence the old view's traffic. ----------
    net.advanceEpoch();
    sys_.replicas->markDead(dead);

    // --- 2. Notify the survivors (timing/accounting only: the state
    // transition below is atomic within this kernel event, modeling a
    // coordinated reconfiguration barrier). -----------------------------------
    for (NodeId n = 0; n < sys_.config.numNodes; ++n)
        if (n != cfg_.managerNode && !net.nodeDead(n))
            net.post(net::MsgType::ViewChange, cfg_.managerNode, n, 32,
                     [] {});

    // --- 3. Re-home every record the dead node was primary for to its
    // first live backup; record metadata migrates with it (the dead
    // owner's locks do not). --------------------------------------------------
    const std::uint32_t record_bytes = sys_.placement.recordBytes();
    std::vector<std::pair<std::uint64_t, NodeId>> rehomed;
    for (std::uint64_t r = 0; r < sys_.placement.numRecords(); ++r) {
        if (sys_.placement.homeOf(r) != dead)
            continue;
        auto backups = sys_.replicas->backupsOf(r, dead);
        always_assert(!backups.empty(),
                      "record lost: no live backup to promote");
        const NodeId new_primary = backups.front();
        const txn::RecordMeta meta = sys_.node(dead).versions.peek(r);
        sys_.placement.rehome(r, new_primary, record_bytes);
        sys_.node(new_primary).versions.installMigrated(r, meta);
        rehomed.emplace_back(r, new_primary);
        stats_.promotedRecords += 1;
    }

    // --- 4. Resolve in-doubt transactions coordinated by the dead
    // node, by the paper's all-Acks rule: the durable decision record
    // says whether the coordinator passed its serialization point.
    // Decided -> commit (replay the journaled remote writes; staged
    // replica images are promoted in step 6). Undecided -> abort (the
    // client was never acked). ------------------------------------------------
    std::vector<std::pair<std::uint64_t, AttemptControl *>> victims;
    for (const auto &[id, ctrl] : sys_.router.active())
        if (coordinatorOf(id) == dead && !ctrl->finished)
            victims.emplace_back(id, ctrl);
    for (auto &[id, ctrl] : victims) {
        if (ctrl->decisionRecorded) {
            replayLedgerOf(id);
            if (sys_.audit && ctrl->auditId)
                sys_.audit->noteCommit(ctrl->auditId);
            stats_.inDoubtCommitted += 1;
        } else {
            if (sys_.audit && ctrl->auditId)
                sys_.audit->noteAbort(ctrl->auditId);
            stats_.inDoubtAborted += 1;
        }
        ctrl->resolvedByRecovery = true;
        ctrl->squashRequested = true;
        ctrl->reason = txn::SquashReason::NodeFailure;
        ctrl->finished = true;
        ctrl->wake.notify(sys_.kernel);
        sys_.router.remove(id);
    }

    // --- 5. Apply decided writes stranded by a dead *home*: a live
    // coordinator's commit-write to the dead node can never land, but
    // the transaction is committed. The journal entry is applied at the
    // record's new home (re-homed in step 3). ---------------------------------
    std::vector<std::pair<std::uint64_t, std::uint64_t>> stranded;
    for (const auto &[key, pa] : sys_.pendingApplies)
        if (pa.home == dead)
            stranded.push_back(key);
    for (const auto &key : stranded) {
        applyPending(key.second, sys_.pendingApplies.at(key));
        sys_.pendingApplies.erase(key);
    }

    // --- 6. Settle staged replica images of the dead coordinator's
    // transactions at every live store: decided transactions (durable
    // decision record exists) finish their promotion -- this also
    // repairs a decided-then-crashed coordinator whose promote message
    // was lost -- and undecided ones are rolled back. -------------------------
    for (NodeId n = 0; n < sys_.config.numNodes; ++n) {
        if (net.nodeDead(n))
            continue;
        auto &store = sys_.replicas->store(n);
        for (std::uint64_t tx : store.stagedTxIds()) {
            if (coordinatorOf(tx) != dead)
                continue;
            auto it = sys_.decisionLog.find(tx);
            if (it != sys_.decisionLog.end())
                store.promote(tx, it->second);
            else
                store.discard(tx);
        }
    }

    // --- 6b. Restore the replication factor of the re-homed records:
    // the backup ring under the new primary skips a different node, so
    // a node that never held a record's image can enter its window.
    // Copy the promoted primary's durable image (now settled by step 6)
    // to any live backup missing it or holding an older one;
    // max-seq-wins makes redundant copies harmless. ---------------------------
    for (const auto &[r, np] : rehomed) {
        const auto img = sys_.replicas->store(np).durableImage(r);
        if (!img)
            continue;
        for (NodeId b : sys_.replicas->backupsOf(r, np)) {
            const auto cur = sys_.replicas->store(b).durableImage(r);
            if (cur && cur->seq >= img->seq)
                continue;
            sys_.replicas->store(b).installDurable(r, img->value,
                                                   img->seq);
            stats_.resyncedImages += 1;
        }
    }

    // --- 7. Drain the dead node's footprint from every survivor:
    // Locking-Buffer entries, NIC remote Bloom filters, and record
    // locks its attempts held remotely. ---------------------------------------
    for (auto &[id, ctrl] : victims) {
        for (NodeId n = 0; n < sys_.config.numNodes; ++n) {
            if (net.nodeDead(n))
                continue;
            auto &node = sys_.node(n);
            node.lockBank.release(id);
            node.nic.clearRemoteFilters(id);
            stats_.locksReleased += node.versions.releaseOwnedBy(id);
        }
    }

    // --- 8. Cluster-wide resources the dead node may hold (e.g. the
    // pessimistic-fallback token). --------------------------------------------
    engine_.onNodeDead(dead);
}

} // namespace hades::recovery
