/**
 * @file
 * Elastic membership: CM-driven epoch-numbered *voluntary*
 * reconfiguration -- node join and planned drain with live record
 * migration under load.
 *
 * Where the RecoveryManager reacts to fail-stop crashes, the
 * MembershipManager executes *scheduled* cluster-shape changes on
 * behalf of the configuration manager:
 *
 *  - **Join**: a node that started as a spare (outside the record hash
 *    and the backup rings; MembershipConfig::initialMembers) is
 *    admitted at an epoch boundary. The CM assigns it a deterministic
 *    hash-selected share of the record space and its backup-ring
 *    slots, then streams committed record images to it in throttled
 *    background batches.
 *  - **Planned drain**: a live member stops accepting new home-node
 *    work (its drivers stop issuing, and no migration ever targets
 *    it), migrates every record it homes -- hash-placed and registered
 *    index records alike -- to surviving members, waits for its
 *    coordinated attempts to retire, hands back its hardware-state
 *    footprint (audited at end of run) and leaves the backup rings.
 *
 * Migration runs *under load* in throttled batches
 * (MembershipConfig::migrateBatchRecords / migrateBatchInterval), each
 * batch an epoch-fenced ownership handoff executed atomically in one
 * kernel event. A record some in-flight attempt has touched is never
 * moved under the attempt's feet: the move is deferred to a later
 * batch and the undecided attempt is squash-retried with
 * SquashReason::StalePlacement, so it unwinds and re-resolves record
 * homes on retry (the existing CommitTimeout/squash machinery).
 * Attempts that already reached their all-Acks point or recorded their
 * decision are left to complete at the old home. The lock-all
 * pessimistic fallback pins its whole footprint up front for the same
 * reason -- it cannot be squash-retried, so migration defers around it.
 *
 * Ring transitions (markPresent / markAbsent) shift the hash-rotated
 * backup windows of unrelated records, so after the workload drains
 * the manager runs a *convergent image-resync sweep*: every committed
 * record's current ring is topped up from ground truth, stamped with
 * the record's last committed seq (max-seq-wins keeps late promote
 * deliveries harmless). Records with journaled remote writes still in
 * flight are skipped -- their value is not yet current at the home --
 * and caught by the promote chain itself or a later pass.
 *
 * Crash composition: a participant that fail-stops mid-join or
 * mid-drain aborts the voluntary operation; whatever it still homes is
 * recovered by the RecoveryManager's ordinary view change through the
 * same re-homing overlay. Both managers reuse one epoch/fencing
 * substrate (net::Network::advanceEpoch; Migrate control traffic is
 * fence-exempt like Lease/ViewChange).
 */

#ifndef HADES_RECOVERY_MEMBERSHIP_HH_
#define HADES_RECOVERY_MEMBERSHIP_HH_

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "protocol/system.hh"
#include "sim/task.hh"

namespace hades::recovery
{

class RecoveryManager;

/** Outcome counters of the membership subsystem (RunResult surfaces
 *  them; all zero when no join/drain is scheduled). */
struct MembershipStats
{
    std::uint64_t recordsMigrated = 0;     //!< ownership handoffs executed
    std::uint64_t migrationBatches = 0;    //!< batches that moved >= 1 record
    std::uint64_t drainDurationEvents = 0; //!< drain-step events, start..leave
    std::uint64_t joinsCompleted = 0;      //!< joins fully rebalanced
    std::uint64_t drainsCompleted = 0;     //!< drains that left cleanly
    std::uint64_t deferredMoves = 0;       //!< moves deferred to a later batch
    std::uint64_t resyncImages = 0;        //!< images installed by the sweep
};

/** Scheduled join/drain executor with live record migration. */
class MembershipManager
{
  public:
    MembershipManager(protocol::System &sys,
                      const RecoveryManager &recovery);

    MembershipManager(const MembershipManager &) = delete;
    MembershipManager &operator=(const MembershipManager &) = delete;

    /** Launch the scheduled join/drain loops and the final resync
     *  sweep. Mirrors RecoveryManager::start: @p expected_drivers
     *  driver coroutines report in via driverDone(), and migration
     *  outlives the workload (deferred hot records quiesce once the
     *  attempts touching them retire). */
    void start(std::uint64_t expected_drivers);

    /** One driver coroutine finished (committed its quota or died). */
    void
    driverDone()
    {
        if (driversLeft_ > 0 && --driversLeft_ == 0)
            done_ = true;
    }

    /**
     * Should node @p n be issuing client load right now? False for
     * spares (a joiner serves as a home/replica target but brings no
     * clients of its own) and for members whose planned drain has
     * started ("stops accepting new home-node work"). Drivers check
     * this between transactions.
     */
    bool
    issuesLoad(NodeId n) const
    {
        return member_[n] != 0 && draining_[n] == 0;
    }

    /** Node is currently a cluster member (spares before their join
     *  and drained nodes after their leave are not). */
    bool isMember(NodeId n) const { return member_[n] != 0; }

    /**
     * Dynamic (CM-requested) drain of @p node -- the grey-failure
     * quarantine entry point. Exactly the scheduled-drain machinery,
     * starting now: the node stops taking new home-node work and its
     * records migrate live to healthy members; if it later fail-stops,
     * the ordinary view change finishes whatever is left. False when
     * the node cannot be drained (not a member, already draining, or
     * dead -- then recovery owns it outright).
     */
    bool
    requestDrain(NodeId node)
    {
        if (node >= sys_.config.numNodes || member_[node] == 0 ||
            draining_[node] != 0 || sys_.network.nodeDead(node))
            return false;
        opsPending_ += 1;
        drainLoop(node, 0);
        return true;
    }

    /** True once every scheduled join and drain ran to completion
     *  (false if a participant crash aborted one -- recovery then owns
     *  the cleanup and the run is judged by the divergence audit). */
    bool
    complete() const
    {
        return opsPending_ == 0 && !aborted_;
    }

    /** True once the background loops may stop (all scheduled
     *  operations finished or aborted, final resync done). */
    bool finished() const { return opsPending_ == 0 && resyncDone_; }

    const MembershipStats &stats() const { return stats_; }

  private:
    sim::DetachedTask joinLoop(NodeId node, Tick at);
    sim::DetachedTask drainLoop(NodeId node, Tick at);
    sim::DetachedTask resyncLoop();

    /** Is some in-flight attempt touching @p record? If so, squash the
     *  squashable touchers (StalePlacement) and report blocked. */
    bool recordBlocked(std::uint64_t record);

    /** Epoch-fenced ownership handoff of one record to @p dst. */
    void migrateRecord(std::uint64_t record, NodeId dst);

    /** Deterministic surviving member to receive @p record on drain of
     *  @p from; numNodes (an invalid id) if none qualify. */
    NodeId pickDestination(std::uint64_t record, NodeId from) const;

    /** Stream the committed image of @p record to its current ring
     *  (skipped while a journaled remote write is in flight). */
    void streamImage(std::uint64_t record);

    /** Does any journaled (decided, unapplied) remote write target
     *  @p record? Its ground-truth value is then not yet current. */
    bool applyInFlight(std::uint64_t record) const;

    /** One convergent-resync pass; @return images installed. */
    std::uint64_t resyncPass();

    /** Hash-placed + registered records currently homed at @p node,
     *  sorted (drain work list, recomputed per batch). */
    std::vector<std::uint64_t> recordsHomedAt(NodeId node) const;

    protocol::System &sys_;
    const RecoveryManager &recovery_;
    MembershipConfig cfg_;
    MembershipStats stats_;
    std::vector<char> member_;   //!< in the cluster now
    std::vector<char> draining_; //!< drain started, not yet left
    std::uint32_t opsPending_ = 0;
    bool aborted_ = false;
    bool resyncDone_ = false;
    std::uint64_t driversLeft_ = 0;
    bool done_ = false;
};

} // namespace hades::recovery

#endif // HADES_RECOVERY_MEMBERSHIP_HH_
