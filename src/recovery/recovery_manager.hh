/**
 * @file
 * Crash recovery and reconfiguration (Section V-A's failure model made
 * operational).
 *
 * A configuration-manager node (RecoveryConfig::managerNode) grants
 * per-node leases over the simulated network: a probe round trip per
 * leaseInterval renews the holder's lease. A node that permanently
 * fail-stops (FaultsConfig::NodeEvent::forever) stops answering, its
 * lease expires, and the manager runs an epoch-numbered *view change*:
 *
 *  1. the configuration epoch advances; every in-flight message copy
 *     stamped with an older epoch is fenced (dropped and counted) at
 *     delivery, so delayed pre-crash traffic cannot corrupt the new
 *     view (Lease/ViewChange control traffic is exempt);
 *  2. the dead node leaves every backup ring (its replica images are
 *     unreachable) and survivors are notified;
 *  3. every record homed at the dead node is re-homed to its first
 *     live backup, whose durable ReplicaStore image is the recovery
 *     source; record metadata migrates with the record (locks cleared),
 *     and the replication factor is restored by copying the promoted
 *     image to any node the new primary's backup ring pulls in that
 *     never held one;
 *  4. in-doubt transactions whose coordinator died are resolved by the
 *     paper's all-Acks rule, checkable at one instant via the durable
 *     decision record (AttemptControl::decisionRecorded): decided
 *     attempts commit -- their journaled remote writes are replayed and
 *     their staged replica images promoted -- and undecided attempts
 *     abort;
 *  5. decided remote writes stranded by a dead *home* (journaled in
 *     System::pendingApplies by live coordinators) are applied at the
 *     record's new home;
 *  6. the dead node's footprint is drained from every survivor:
 *     Locking-Buffer entries, NIC remote Bloom filters, record locks,
 *     and staged replica images of its aborted attempts;
 *  7. the engine releases cluster-wide resources the dead node held
 *     (TxnEngine::onNodeDead, e.g. the pessimistic-fallback token).
 *
 * The whole view change executes in a single kernel event, modeling a
 * coordinated reconfiguration barrier; the lease machinery models
 * *detection latency* only (the declare-dead decision itself consults
 * the simulator's fail-stop oracle, so a slow-but-alive node is never
 * falsely killed).
 *
 * The manager node is assumed reliable, like FaRM's external
 * configuration store: if the fault plan kills it anyway, probing stops
 * and no view change ever happens.
 */

#ifndef HADES_RECOVERY_RECOVERY_MANAGER_HH_
#define HADES_RECOVERY_RECOVERY_MANAGER_HH_

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "protocol/engine.hh"
#include "protocol/system.hh"
#include "sim/task.hh"

namespace hades::recovery
{

/** Outcome counters of the recovery subsystem (RunResult surfaces
 *  them; all zero when no node dies). */
struct RecoveryStats
{
    std::uint64_t leaseProbes = 0;      //!< lease renewal round trips
    std::uint64_t viewChanges = 0;      //!< view changes executed
    std::uint64_t promotedRecords = 0;  //!< records re-homed to a backup
    std::uint64_t inDoubtCommitted = 0; //!< in-doubt txns committed
    std::uint64_t inDoubtAborted = 0;   //!< in-doubt txns aborted
    std::uint64_t replayedWrites = 0;   //!< journaled writes replayed
    std::uint64_t resyncedImages = 0;   //!< backup images re-replicated
    std::uint64_t locksReleased = 0;    //!< dead owners' record locks freed
};

/** Lease-based failure detector plus view-change executor. */
class RecoveryManager
{
  public:
    RecoveryManager(protocol::System &sys, protocol::TxnEngine &engine)
        : sys_(sys), engine_(engine), cfg_(sys.config.recovery),
          lastRenewal_(sys.config.numNodes, 0),
          handled_(sys.config.numNodes, 0)
    {}

    RecoveryManager(const RecoveryManager &) = delete;
    RecoveryManager &operator=(const RecoveryManager &) = delete;

    /**
     * Launch the lease probe loops and the expiry monitor.
     * @p expected_drivers is the number of driver coroutines the run
     * starts; each one reports in via driverDone() when it finishes
     * (normally or by fail-stop unwind), and the loops stop once all
     * have -- otherwise the background probes would keep the event
     * queue alive forever.
     */
    void start(std::uint64_t expected_drivers);

    /** One driver coroutine finished (committed its quota or died). */
    void
    driverDone()
    {
        if (driversLeft_ > 0 && --driversLeft_ == 0)
            done_ = true;
    }

    /**
     * Execute the view change for @p dead immediately (also the entry
     * point the monitor uses once a lease expires). Idempotent per
     * node. Runs atomically within the current kernel event.
     */
    void viewChange(NodeId dead);

    const RecoveryStats &stats() const { return stats_; }

  private:
    sim::DetachedTask probeLoop(NodeId node);
    sim::DetachedTask monitorLoop();

    /** Apply one journaled remote write at the record's current home. */
    void applyPending(std::uint64_t record,
                      const protocol::PendingApply &pa);

    /** Replay and retire every journal entry of transaction @p tx. */
    void replayLedgerOf(std::uint64_t tx);

    /** Coordinator node encoded in a packed (epoch-tagged) txn id. */
    static NodeId
    coordinatorOf(std::uint64_t tx)
    {
        return NodeId((tx >> 32) & 0xfff);
    }

    protocol::System &sys_;
    protocol::TxnEngine &engine_;
    RecoveryConfig cfg_;
    RecoveryStats stats_;
    std::vector<Tick> lastRenewal_;
    std::vector<char> handled_; //!< view change already ran for node
    std::uint64_t driversLeft_ = 0;
    bool done_ = false;
};

} // namespace hades::recovery

#endif // HADES_RECOVERY_RECOVERY_MANAGER_HH_
