/**
 * @file
 * Crash recovery and reconfiguration (Section V-A's failure model made
 * operational).
 *
 * A fixed-slot *replica group* of configuration-manager nodes
 * (RecoveryConfig::managerNode .. managerNode+cmGroupSize-1, mod N)
 * grants per-node leases over the simulated network; the lowest-slot
 * live member acts as primary grantor. A probe round trip per
 * RobustnessTuning::leaseInterval renews the holder's lease, and every
 * grant carries the *CM epoch* -- the failover counter of the group --
 * so a grant issued by a deposed primary can never renew anything. A
 * node that permanently fail-stops (FaultConfig::NodeEvent::forever)
 * stops answering, its lease expires, and the acting primary runs an
 * epoch-numbered *view change*:
 *
 *  1. the configuration epoch advances; every in-flight message copy
 *     stamped with an older epoch is fenced (dropped and counted) at
 *     delivery, so delayed pre-crash traffic cannot corrupt the new
 *     view (Lease/ViewChange control traffic is exempt);
 *  2. the dead node leaves every backup ring (its replica images are
 *     unreachable) and survivors are notified;
 *  3. every record homed at the dead node is re-homed to its first
 *     *live* backup (a backup that has itself crashed -- possibly not
 *     yet declared -- is skipped, so a second crash landing mid-window
 *     cannot receive promotions), whose durable ReplicaStore image is
 *     the recovery source; record metadata migrates with the record
 *     (locks cleared), and the replication factor is restored by
 *     copying the promoted image to any live node the new primary's
 *     backup ring pulls in that never held one;
 *  4. in-doubt transactions whose coordinator died are resolved by the
 *     paper's all-Acks rule, checkable at one instant via the durable
 *     decision record (AttemptControl::decisionRecorded): decided
 *     attempts commit -- their journaled remote writes are replayed and
 *     their staged replica images promoted -- and undecided attempts
 *     abort;
 *  5. decided remote writes stranded by a dead *home* (journaled in
 *     System::pendingApplies by live coordinators) are applied at the
 *     record's new home;
 *  6. the dead node's footprint is drained from every survivor:
 *     Locking-Buffer entries, NIC remote Bloom filters, record locks,
 *     and staged replica images of its aborted attempts;
 *  7. the engine releases cluster-wide resources the dead node held
 *     (TxnEngine::onNodeDead, e.g. the pessimistic-fallback token).
 *
 * The whole view change executes in a single kernel event, modeling a
 * coordinated reconfiguration barrier; the lease machinery models
 * *detection latency* only (the declare-dead decision itself consults
 * the simulator's fail-stop oracle, so a slow-but-alive node is never
 * falsely killed).
 *
 * CM failover: each standby slot probes the acting primary with the
 * same lease mechanism. When the primary is oracle-dead and silent
 * past leaseTimeout, the lowest live slot succeeds it
 * deterministically: the CM epoch advances, stale in-flight grants are
 * discarded, and the new primary restarts the per-node probe loops.
 * The dead ex-primary's own records are then recovered by an ordinary
 * view change. Cascading crashes are handled the same way: a second
 * crash_forever is just another expired lease, declared in node order
 * once its own timeout passes.
 *
 * Split-brain rule: before declaring any death, the acting primary
 * must reach a *majority of the live CM group members* through the
 * partition oracle (FaultInjector::linkBlocked, both directions). A
 * minority-partitioned CM therefore refuses to advance the epoch
 * (counted in RecoveryStats::quorumRefusals) until the partition
 * heals; crashed group members are non-voting, consistent with the
 * fail-stop oracle the declare-dead decision already consults.
 */

#ifndef HADES_RECOVERY_RECOVERY_MANAGER_HH_
#define HADES_RECOVERY_RECOVERY_MANAGER_HH_

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "protocol/engine.hh"
#include "protocol/system.hh"
#include "sim/task.hh"

namespace hades::recovery
{

class MembershipManager;

/** Outcome counters of the recovery subsystem (RunResult surfaces
 *  them; all zero when no node dies). */
struct RecoveryStats
{
    std::uint64_t leaseProbes = 0;      //!< lease renewal round trips
    std::uint64_t viewChanges = 0;      //!< view changes executed
    std::uint64_t promotedRecords = 0;  //!< records re-homed to a backup
    std::uint64_t inDoubtCommitted = 0; //!< in-doubt txns committed
    std::uint64_t inDoubtAborted = 0;   //!< in-doubt txns aborted
    std::uint64_t replayedWrites = 0;   //!< journaled writes replayed
    std::uint64_t resyncedImages = 0;   //!< backup images re-replicated
    std::uint64_t locksReleased = 0;    //!< dead owners' record locks freed
    std::uint64_t cmFailovers = 0;      //!< CM primary successions
    std::uint64_t quorumRefusals = 0;   //!< epoch advances refused (minority)
    std::uint64_t staleLeaseGrants = 0; //!< grants discarded by CM-epoch fence
    std::uint64_t quarantines = 0;      //!< grey nodes drained by the CM
};

/** Lease-based failure detector plus view-change executor. */
class RecoveryManager
{
  public:
    RecoveryManager(protocol::System &sys, protocol::TxnEngine &engine);

    RecoveryManager(const RecoveryManager &) = delete;
    RecoveryManager &operator=(const RecoveryManager &) = delete;

    /**
     * Launch the lease probe loops (acting primary), the standby
     * probes of the CM group, and the expiry monitor.
     * @p expected_drivers is the number of driver coroutines the run
     * starts; each one reports in via driverDone() when it finishes
     * (normally or by fail-stop unwind), and the loops stop once all
     * have -- otherwise the background probes would keep the event
     * queue alive forever.
     */
    void start(std::uint64_t expected_drivers);

    /** One driver coroutine finished (committed its quota or died). */
    void
    driverDone()
    {
        if (driversLeft_ > 0 && --driversLeft_ == 0)
            done_ = true;
    }

    /**
     * Execute the view change for @p dead immediately (also the entry
     * point the monitor uses once a lease expires and the CM quorum
     * holds). Idempotent per node. Runs atomically within the current
     * kernel event.
     */
    void viewChange(NodeId dead);

    /** The node currently acting as CM primary / lease grantor. */
    NodeId cmPrimary() const { return actingPrimary_; }

    /**
     * True once the background loops may stop: every driver finished
     * AND every permanent crash the fault plan schedules has been
     * declared and failed over. Recovery outlives the workload -- a
     * crash landing near the end of the run (after the last commit,
     * before lease expiry) is still detected and repaired before the
     * simulation drains, so end-of-run durability checks see the
     * post-recovery state, never the detection-latency window. The one
     * exception: if the plan eventually kills the whole CM group,
     * recovery is impossible by design and the loops stop at driver
     * drain (whatever the last crash broke stays broken and visible).
     */
    bool finished() const;

    /** CM failover counter; every lease grant is stamped with it. */
    std::uint64_t cmEpoch() const { return cmEpoch_; }

    /**
     * True when the acting primary can reach a majority of the live CM
     * group members at instant @p now (partition oracle, both
     * directions; crashed members are non-voting). Exposed for tests.
     */
    bool cmQuorum(Tick now) const;

    const RecoveryStats &stats() const { return stats_; }

    /**
     * Attach the membership manager, enabling SLO-triggered
     * quarantine: a node the tracker reports as sustained degraded is
     * *drained* (planned live migration of its records, reusing the
     * elastic-membership machinery) instead of epoch-fenced killed --
     * a fail-slow node is still alive, so its data is recoverable
     * without a view change. Must be called before start().
     */
    void setMembership(MembershipManager *m) { membership_ = m; }

  private:
    sim::DetachedTask probeLoop(NodeId node, NodeId primary,
                                std::uint32_t gen);
    sim::DetachedTask standbyLoop(NodeId self);
    sim::DetachedTask monitorLoop();
    sim::DetachedTask quarantineLoop();

    /** Relaunch the per-node probe loops from the acting primary. */
    void startPrimaryLoops();

    /** Apply one journaled remote write at the record's current home. */
    void applyPending(std::uint64_t record,
                      const protocol::PendingApply &pa);

    /** Replay and retire every journal entry of transaction @p tx. */
    void replayLedgerOf(std::uint64_t tx);

    /** Coordinator node encoded in a packed (epoch-tagged) txn id. */
    static NodeId
    coordinatorOf(std::uint64_t tx)
    {
        return NodeId((tx >> 32) & 0xfff);
    }

    protocol::System &sys_;
    protocol::TxnEngine &engine_;
    RecoveryConfig cfg_;
    RobustnessTuning tun_;
    RecoveryStats stats_;
    std::vector<NodeId> cmGroup_; //!< fixed slots, succession order
    NodeId actingPrimary_ = 0;
    std::uint64_t cmEpoch_ = 0;
    std::uint32_t primaryGen_ = 0; //!< bumped per failover; stale loops exit
    std::vector<Tick> lastRenewal_;
    std::vector<char> handled_; //!< view change already ran for node
    std::vector<char> quarantined_; //!< drain already requested for node
    MembershipManager *membership_ = nullptr;
    std::uint64_t driversLeft_ = 0;
    bool done_ = false;
};

} // namespace hades::recovery

#endif // HADES_RECOVERY_RECOVERY_MANAGER_HH_
