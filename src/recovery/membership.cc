/**
 * @file
 * MembershipManager implementation: scheduled joins and planned drains
 * with throttled live record migration (see membership.hh for the
 * protocol description).
 */

#include "recovery/membership.hh"

#include <algorithm>

#include "common/hash.hh"
#include "recovery/recovery_manager.hh"
#include "sim/kernel.hh"

namespace hades::recovery
{

MembershipManager::MembershipManager(protocol::System &sys,
                                     const RecoveryManager &recovery)
    : sys_(sys), recovery_(recovery), cfg_(sys.config.membership),
      member_(sys.config.numNodes, 0), draining_(sys.config.numNodes, 0)
{
    for (NodeId n = 0; n < cfg_.initialOwners(sys.config.numNodes); ++n)
        member_[n] = 1;
}

void
MembershipManager::start(std::uint64_t expected_drivers)
{
    driversLeft_ = expected_drivers;
    done_ = driversLeft_ == 0;
    opsPending_ =
        static_cast<std::uint32_t>(cfg_.joins.size() + cfg_.drains.size());
    for (const auto &j : cfg_.joins)
        joinLoop(j.node, j.at);
    for (const auto &d : cfg_.drains)
        drainLoop(d.node, d.at);
    resyncLoop();
}

bool
MembershipManager::recordBlocked(std::uint64_t record)
{
    bool blocked = false;
    // Scan every coordinator's router shard (plus the control bucket,
    // for totality) for unfinished attempts that touched the record.
    for (NodeId n = 0; n <= sys_.config.numNodes; ++n) {
        for (const auto &[tx, ctrl] : sys_.routerForNode(n).active()) {
            if (ctrl->finished || ctrl->recordsTouched.count(record) == 0)
                continue;
            if (ctrl->pinned || ctrl->uncommittable ||
                ctrl->decisionRecorded) {
                // Cannot be squash-retried: it completes at the old
                // home; the move waits for it.
                blocked = true;
                continue;
            }
            // Squash-retry: the attempt unwinds without writing and
            // re-resolves record homes on retry. Delivered means the
            // victim had not reached its all-Acks point, so the move
            // may proceed in this very batch (the paper's "cannot be
            // squashed anymore" boundary, reused as the handoff fence).
            auto out = sys_.routerFor(tx).squash(
                sys_.kernel, tx, txn::SquashReason::StalePlacement);
            if (out != protocol::SquashOutcome::Delivered)
                blocked = true;
        }
    }
    if (blocked)
        stats_.deferredMoves += 1;
    return blocked;
}

NodeId
MembershipManager::pickDestination(std::uint64_t record, NodeId from) const
{
    std::vector<NodeId> cands;
    for (NodeId n = 0; n < sys_.config.numNodes; ++n)
        if (n != from && member_[n] != 0 && draining_[n] == 0 &&
            !sys_.network.nodeDead(n))
            cands.push_back(n);
    if (cands.empty())
        return sys_.config.numNodes;
    return cands[mix64(record ^ 0xd1a7eedULL) % cands.size()];
}

bool
MembershipManager::applyInFlight(std::uint64_t record) const
{
    // Ordered journal, small (decided-but-unapplied remote writes).
    for (const auto &kv : sys_.pendingApplies)
        if (kv.first.second == record)
            return true;
    return false;
}

void
MembershipManager::streamImage(std::uint64_t record)
{
    if (!sys_.replicas || sys_.config.recovery.testSkipImageResync)
        return;
    if (record & mem::Placement::kRegisteredBit)
        return; // index structures are never committed/replicated
    if (applyInFlight(record))
        return; // ground truth not current yet; the sweep catches up
    auto seq = sys_.replicas->lastCommittedSeq(record);
    if (!seq)
        return;
    const std::int64_t value = sys_.data.read(record);
    const NodeId primary = sys_.placement.homeOf(record);
    for (NodeId b : sys_.replicas->backupsOf(record, primary)) {
        auto img = sys_.replicas->store(b).durableImage(record);
        if (img && img->seq >= *seq)
            continue;
        sys_.replicas->store(b).installDurable(record, value, *seq);
        stats_.resyncImages += 1;
    }
}

void
MembershipManager::migrateRecord(std::uint64_t record, NodeId dst)
{
    const NodeId src = sys_.placement.homeOf(record);
    const std::uint32_t bytes =
        (record & mem::Placement::kRegisteredBit)
            ? sys_.placement.registeredBytesOf(record)
            : sys_.placement.recordBytes();
    // Epoch-fenced ownership handoff, atomic within this kernel event
    // (models the CM's durable placement update): metadata migrates
    // with the record, locks cleared -- no attempt holds the record
    // (recordBlocked ruled that out), so a cleared lock is correct.
    txn::RecordMeta meta = sys_.node(src).versions.peek(record);
    sys_.placement.rehome(record, dst, bytes);
    sys_.node(dst).versions.installMigrated(record, meta);
    // The wire transfer of the image rides a one-way Migrate copy.
    // hades-analyze: verb-reliability-ok (timing/accounting copy; the ownership transfer is applied atomically within this kernel event and redundancy is restored by streamImage/the resync sweep)
    sys_.network.post(net::MsgType::Migrate, src, dst, bytes, [] {});
    streamImage(record);
    stats_.recordsMigrated += 1;
}

std::vector<std::uint64_t>
MembershipManager::recordsHomedAt(NodeId node) const
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t r = 0; r < sys_.placement.numRecords(); ++r)
        if (sys_.placement.homeOf(r) == node)
            out.push_back(r);
    // Registered ids carry bit 63, so appending keeps `out` sorted.
    for (std::uint64_t rid : sys_.placement.registeredHomedAt(node))
        out.push_back(rid);
    return out;
}

sim::DetachedTask
MembershipManager::joinLoop(NodeId node, Tick at)
{
    co_await sim::Delay{sys_.kernel, at};
    if (sys_.network.nodeDead(node) || member_[node] != 0) {
        aborted_ = true;
        opsPending_ -= 1;
        co_return;
    }

    // Admission: an epoch boundary, atomic within this kernel event.
    // The joiner becomes a member (eligible migration target) and
    // enters the backup rings; in-flight data-plane copies of the old
    // epoch are fenced at delivery.
    member_[node] = 1;
    if (sys_.replicas)
        sys_.replicas->markPresent(node);
    sys_.network.advanceEpoch();
    const NodeId cm = recovery_.cmPrimary();
    if (cm != node && !sys_.network.nodeDead(cm) &&
        !sys_.network.nodeDead(node)) {
        // hades-analyze: verb-reliability-ok (timing/accounting copy; admission is applied atomically within this kernel event)
        sys_.network.post(net::MsgType::Migrate, cm, node, 64, [] {});
    }

    // The CM assigns the joiner a deterministic 1/m hash share of the
    // record space (m = member count after admission).
    std::uint32_t m = 0;
    for (NodeId n = 0; n < sys_.config.numNodes; ++n)
        m += member_[n] != 0;
    const std::uint64_t slot = m - 1;

    for (;;) {
        if (sys_.network.nodeDead(node)) {
            aborted_ = true;
            opsPending_ -= 1;
            co_return; // recovery re-homes whatever already moved here
        }
        std::vector<std::uint64_t> want;
        for (std::uint64_t r = 0; r < sys_.placement.numRecords(); ++r)
            if (mix64(r ^ 0x6a10b5ULL) % m == slot &&
                sys_.placement.homeOf(r) != node)
                want.push_back(r);
        if (want.empty())
            break;
        std::uint64_t moved = 0;
        for (std::size_t i = 0;
             i < want.size() && i < cfg_.migrateBatchRecords; ++i) {
            if (recordBlocked(want[i]))
                continue; // deferred to a later batch
            migrateRecord(want[i], node);
            ++moved;
        }
        if (moved) {
            stats_.migrationBatches += 1;
            sys_.network.advanceEpoch();
        }
        co_await sim::Delay{sys_.kernel, cfg_.migrateBatchInterval};
    }
    stats_.joinsCompleted += 1;
    opsPending_ -= 1;
}

sim::DetachedTask
MembershipManager::drainLoop(NodeId node, Tick at)
{
    co_await sim::Delay{sys_.kernel, at};
    if (sys_.network.nodeDead(node) || member_[node] == 0) {
        aborted_ = true;
        opsPending_ -= 1;
        co_return;
    }

    // Drain start: the node stops accepting new home-node work -- its
    // drivers stop issuing (issuesLoad) and no migration targets it
    // (pickDestination) -- at an epoch boundary.
    draining_[node] = 1;
    sys_.network.advanceEpoch();
    const NodeId cm = recovery_.cmPrimary();
    if (cm != node && !sys_.network.nodeDead(cm) &&
        !sys_.network.nodeDead(node)) {
        // hades-analyze: verb-reliability-ok (timing/accounting copy; the drain transition is applied atomically within this kernel event)
        sys_.network.post(net::MsgType::Migrate, cm, node, 64, [] {});
    }

    for (;;) {
        stats_.drainDurationEvents += 1;
        if (sys_.network.nodeDead(node)) {
            aborted_ = true;
            opsPending_ -= 1;
            co_return; // recovery's view change finishes the cleanup
        }
        std::vector<std::uint64_t> remaining = recordsHomedAt(node);
        if (remaining.empty() &&
            sys_.routerForNode(node).active().empty())
            break; // nothing homed, no coordinated attempt in flight
        std::uint64_t moved = 0;
        for (std::size_t i = 0;
             i < remaining.size() && i < cfg_.migrateBatchRecords; ++i) {
            if (recordBlocked(remaining[i]))
                continue; // deferred to a later batch
            NodeId dst = pickDestination(remaining[i], node);
            if (dst >= sys_.config.numNodes)
                continue; // no eligible survivor right now
            migrateRecord(remaining[i], dst);
            ++moved;
        }
        if (moved) {
            stats_.migrationBatches += 1;
            sys_.network.advanceEpoch();
        }
        co_await sim::Delay{sys_.kernel, cfg_.migrateBatchInterval};
    }

    // Leave: hand back the ring slots at an epoch boundary. The node's
    // residual hardware footprint is audited at end of run (it homes
    // nothing and coordinates nothing, so only in-flight cleanup
    // traffic may still graze it).
    member_[node] = 0;
    draining_[node] = 0;
    if (sys_.replicas)
        sys_.replicas->markAbsent(node);
    sys_.network.advanceEpoch();
    stats_.drainsCompleted += 1;
    opsPending_ -= 1;
}

std::uint64_t
MembershipManager::resyncPass()
{
    if (!sys_.replicas || sys_.config.recovery.testSkipImageResync)
        return 0;
    std::uint64_t installed = 0;
    for (std::uint64_t rec : sys_.data.touchedRecords()) {
        if (applyInFlight(rec))
            continue;
        auto seq = sys_.replicas->lastCommittedSeq(rec);
        if (!seq)
            continue;
        const std::int64_t value = sys_.data.read(rec);
        const NodeId primary = sys_.placement.homeOf(rec);
        for (NodeId b : sys_.replicas->backupsOf(rec, primary)) {
            auto img = sys_.replicas->store(b).durableImage(rec);
            if (img && img->seq >= *seq)
                continue;
            sys_.replicas->store(b).installDurable(rec, value, *seq);
            ++installed;
        }
    }
    stats_.resyncImages += installed;
    return installed;
}

sim::DetachedTask
MembershipManager::resyncLoop()
{
    // Ring transitions shift hash-rotated backup windows of unrelated
    // records, so the final redundancy state is only knowable once the
    // workload and every migration loop have quiesced.
    while (!done_ || opsPending_ > 0)
        co_await sim::Delay{sys_.kernel, cfg_.migrateBatchInterval};
    // Let journaled remote writes land so ground truth is current at
    // every home. Bounded wait: a reliable-resend budget exhausted
    // under an unhealed partition is already lost data that the
    // divergence audit reports -- don't hang the drain on it (such
    // records are skipped via applyInFlight).
    for (std::uint32_t i = 0; i < 64 && !sys_.pendingApplies.empty(); ++i)
        co_await sim::Delay{sys_.kernel, cfg_.migrateBatchInterval};
    resyncPass();
    resyncDone_ = true;
}

} // namespace hades::recovery
