/**
 * @file
 * Locking Buffers: the partial directory-locking primitive of Section V-B
 * (Figure 7).
 *
 * When a transaction commits, copies of its read and write Bloom filters
 * are loaded into a Locking Buffer next to the directory/LLC. While the
 * buffer is active, every write access to the directory is checked
 * against the buffered read AND write BFs, and every read against the
 * write BF; a hit denies the access (it must retry), which conservatively
 * prevents conflicting accesses during the commit. Multiple buffers allow
 * multiple non-conflicting transactions to commit concurrently: a second
 * committer's write-address list is first checked against the BFs already
 * loaded, and the committer is squashed on a match.
 *
 * The same bank provides the transient read-guard HADES uses to make
 * multi-line reads atomic without per-record version checks (Table I,
 * row 3).
 */

#ifndef HADES_BLOOM_LOCKING_BUFFER_HH_
#define HADES_BLOOM_LOCKING_BUFFER_HH_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bloom/bloom_filter.hh"
#include "common/types.hh"

namespace hades::bloom
{

/** Outcome of a Locking Buffer acquisition. */
enum class AcquireResult
{
    Acquired, //!< the directory is now partially locked
    Conflict, //!< a committing transaction's BFs overlap the writes
    NoBuffer, //!< every buffer is busy; retry later
};

/** A bank of Locking Buffers attached to one node's directory/LLC. */
class LockingBufferBank
{
  public:
    /** @param num_buffers number of concurrently committing transactions
     *                     the node supports. */
    explicit LockingBufferBank(std::uint32_t num_buffers = 8);

    /**
     * Try to partially lock the directory for a committing transaction.
     *
     * @param owner       packed GlobalTxId of the committer
     * @param read_bf     the committer's read BF (copied in)
     * @param write_bf    the committer's write BF (copied in)
     * @param write_lines the committer's write-line addresses, checked
     *                    against BFs already holding the directory
     * @return Acquired on success; Conflict means a conflicting commit
     *         is in progress (the caller squashes itself); NoBuffer
     *         means the bank is exhausted (the caller retries).
     */
    AcquireResult tryAcquire(std::uint64_t owner,
                             const AddressFilter &read_bf,
                             const AddressFilter &write_bf,
                             std::span<const Addr> write_lines);

    /**
     * Install a transient read guard over @p lines: a read-only BF that
     * stalls concurrent writes to those lines while a multi-line read is
     * in flight. Always succeeds if a buffer is free.
     *
     * @return true on success, false if the bank is full.
     */
    bool acquireReadGuard(std::uint64_t owner,
                          std::span<const Addr> lines);

    /** Drop the buffer held by @p owner (commit finished / guard done). */
    void release(std::uint64_t owner);

    /**
     * Would a directory access to @p line be denied right now?
     * Writes are checked against read+write BFs, reads against write BFs.
     * Buffers owned by @p requester are skipped (a committer can touch
     * its own lines).
     */
    bool accessBlocked(Addr line, bool is_write,
                       std::uint64_t requester) const;

    /** Is @p owner currently holding a buffer? */
    bool held(std::uint64_t owner) const;

    /** Number of active buffers. */
    std::uint32_t activeCount() const;

    /** Owners of the active buffers, sorted and deduplicated (crash
     *  recovery scans these for a dead coordinator's stranded state). */
    std::vector<std::uint64_t> activeOwners() const;

    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(buffers_.size());
    }

    // --- instrumentation --------------------------------------------------
    std::uint64_t acquireFailures() const { return acquireFailures_; }
    std::uint64_t deniedAccesses() const { return deniedAccesses_; }

  private:
    struct Buffer
    {
        bool active = false;
        std::uint64_t owner = 0;
        std::unique_ptr<AddressFilter> readBf;  // may be null (guard-free)
        std::unique_ptr<AddressFilter> writeBf; // may be null (read guard)
    };

    Buffer *freeBuffer();

    std::vector<Buffer> buffers_;
    std::uint64_t acquireFailures_ = 0;
    mutable std::uint64_t deniedAccesses_ = 0;
};

} // namespace hades::bloom

#endif // HADES_BLOOM_LOCKING_BUFFER_HH_
