#include "bloom/split_write_bloom.hh"

#include <bit>

#include "common/log.hh"

namespace hades::bloom
{

SplitWriteBloomFilter::SplitWriteBloomFilter(
    const SplitWriteBloomParams &params, std::uint64_t llc_sets)
    : bf1_(params.bf1Bits, params.bf1Hashes),
      bf2Bits_(params.bf2Bits),
      llcSets_(llc_sets),
      bf2_((params.bf2Bits + 63) / 64, 0)
{
    always_assert(llc_sets > 0, "LLC must have at least one set");
    always_assert(params.bf2Bits >= 64, "WrBF2 too small");
}

void
SplitWriteBloomFilter::insert(Addr line)
{
    bf1_.insert(line);
    std::uint32_t bit = bf2BitOf(llcSetOf(line));
    bf2_[bit / 64] |= std::uint64_t{1} << (bit % 64);
}

bool
SplitWriteBloomFilter::mayContain(Addr line) const
{
    if (!bf2BitSet(bf2BitOf(llcSetOf(line))))
        return false;
    return bf1_.mayContain(line);
}

std::unique_ptr<AddressFilter>
SplitWriteBloomFilter::clone() const
{
    return std::make_unique<SplitWriteBloomFilter>(*this);
}

void
SplitWriteBloomFilter::clear()
{
    bf1_.clear();
    std::fill(bf2_.begin(), bf2_.end(), 0);
}

std::vector<std::uint64_t>
SplitWriteBloomFilter::candidateLlcSets() const
{
    std::vector<std::uint64_t> sets;
    for (std::uint64_t set = 0; set < llcSets_; ++set)
        if (bf2BitSet(bf2BitOf(set)))
            sets.push_back(set);
    return sets;
}

std::uint32_t
SplitWriteBloomFilter::bf2Popcount() const
{
    std::uint32_t n = 0;
    for (auto w : bf2_)
        n += static_cast<std::uint32_t>(std::popcount(w));
    return n;
}

} // namespace hades::bloom
