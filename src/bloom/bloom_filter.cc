#include "bloom/bloom_filter.hh"

#include <bit>
#include <cmath>

#include "common/hash.hh"
#include "common/log.hh"

namespace hades::bloom
{

BloomFilter::BloomFilter(std::uint32_t bits, std::uint32_t num_hashes)
    : bits_(bits), numHashes_(num_hashes), words_((bits + 63) / 64, 0)
{
    always_assert(bits >= 64, "Bloom filter too small");
    always_assert(num_hashes >= 1, "need at least one hash function");
}

std::uint32_t
BloomFilter::bitIndex(Addr line, std::uint32_t i) const
{
    // Double hashing: h_i = h1 + i*h2 (Kirsch-Mitzenmacher), with the two
    // base hashes drawn from one CRC pass plus a mix, matching the cheap
    // hardware derivation of multiple indices from a single hashed value.
    std::uint64_t h1 = Crc64::hash(line);
    std::uint64_t h2 = mix64(h1) | 1; // odd => full period
    return static_cast<std::uint32_t>((h1 + std::uint64_t{i} * h2) % bits_);
}

void
BloomFilter::insert(Addr line)
{
    for (std::uint32_t i = 0; i < numHashes_; ++i) {
        std::uint32_t b = bitIndex(line, i);
        words_[b / 64] |= std::uint64_t{1} << (b % 64);
    }
    ++inserted_;
}

bool
BloomFilter::mayContain(Addr line) const
{
    if (inserted_ == 0)
        return false;
    for (std::uint32_t i = 0; i < numHashes_; ++i) {
        std::uint32_t b = bitIndex(line, i);
        if (!(words_[b / 64] & (std::uint64_t{1} << (b % 64))))
            return false;
    }
    return true;
}

std::unique_ptr<AddressFilter>
BloomFilter::clone() const
{
    return std::make_unique<BloomFilter>(*this);
}

void
BloomFilter::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
    inserted_ = 0;
}

std::uint32_t
BloomFilter::popcount() const
{
    std::uint32_t n = 0;
    for (auto w : words_)
        n += static_cast<std::uint32_t>(std::popcount(w));
    return n;
}

double
BloomFilter::theoreticalFpr(std::uint32_t bits, std::uint32_t num_hashes,
                            std::uint64_t n)
{
    double m = bits;
    double k = num_hashes;
    return std::pow(1.0 - std::exp(-k * double(n) / m), k);
}

} // namespace hades::bloom
