#include "bloom/locking_buffer.hh"

#include <algorithm>

#include "common/log.hh"

namespace hades::bloom
{

LockingBufferBank::LockingBufferBank(std::uint32_t num_buffers)
    : buffers_(num_buffers)
{
    always_assert(num_buffers >= 1, "need at least one Locking Buffer");
}

LockingBufferBank::Buffer *
LockingBufferBank::freeBuffer()
{
    for (auto &b : buffers_)
        if (!b.active)
            return &b;
    return nullptr;
}

AcquireResult
LockingBufferBank::tryAcquire(std::uint64_t owner,
                              const AddressFilter &read_bf,
                              const AddressFilter &write_bf,
                              std::span<const Addr> write_lines)
{
    // A committer re-acquiring is a protocol bug.
    always_assert(!held(owner), "owner already holds a Locking Buffer");

    // Check the incoming write addresses against every BF already
    // partially locking the directory (Section V-B): a hit means the two
    // transactions cannot commit concurrently.
    for (const auto &b : buffers_) {
        if (!b.active || b.owner == owner)
            continue;
        for (Addr line : write_lines) {
            if ((b.readBf && b.readBf->mayContain(line)) ||
                (b.writeBf && b.writeBf->mayContain(line))) {
                ++acquireFailures_;
                return AcquireResult::Conflict;
            }
        }
    }

    Buffer *buf = freeBuffer();
    if (!buf) {
        ++acquireFailures_;
        return AcquireResult::NoBuffer;
    }
    buf->active = true;
    buf->owner = owner;
    buf->readBf = read_bf.clone();
    buf->writeBf = write_bf.clone();
    return AcquireResult::Acquired;
}

bool
LockingBufferBank::acquireReadGuard(std::uint64_t owner,
                                    std::span<const Addr> lines)
{
    Buffer *buf = freeBuffer();
    if (!buf) {
        ++acquireFailures_;
        return false;
    }
    auto bf = std::make_unique<BloomFilter>(1024, 4);
    for (Addr line : lines)
        bf->insert(line);
    buf->active = true;
    buf->owner = owner;
    buf->readBf = std::move(bf);
    buf->writeBf = nullptr;
    return true;
}

void
LockingBufferBank::release(std::uint64_t owner)
{
    for (auto &b : buffers_) {
        if (b.active && b.owner == owner) {
            b.active = false;
            b.readBf.reset();
            b.writeBf.reset();
            return;
        }
    }
}

bool
LockingBufferBank::accessBlocked(Addr line, bool is_write,
                                 std::uint64_t requester) const
{
    for (const auto &b : buffers_) {
        if (!b.active || b.owner == requester)
            continue;
        if (is_write) {
            if ((b.readBf && b.readBf->mayContain(line)) ||
                (b.writeBf && b.writeBf->mayContain(line))) {
                ++deniedAccesses_;
                return true;
            }
        } else {
            if (b.writeBf && b.writeBf->mayContain(line)) {
                ++deniedAccesses_;
                return true;
            }
        }
    }
    return false;
}

bool
LockingBufferBank::held(std::uint64_t owner) const
{
    for (const auto &b : buffers_)
        if (b.active && b.owner == owner)
            return true;
    return false;
}

std::uint32_t
LockingBufferBank::activeCount() const
{
    std::uint32_t n = 0;
    for (const auto &b : buffers_)
        n += b.active ? 1 : 0;
    return n;
}

std::vector<std::uint64_t>
LockingBufferBank::activeOwners() const
{
    std::vector<std::uint64_t> owners;
    for (const auto &b : buffers_)
        if (b.active)
            owners.push_back(b.owner);
    std::sort(owners.begin(), owners.end());
    owners.erase(std::unique(owners.begin(), owners.end()),
                 owners.end());
    return owners;
}

} // namespace hades::bloom
