/**
 * @file
 * The split write Bloom filter of Section V-C / Figure 8.
 *
 * The write BF is logically divided into two sections. WrBF1 is a normal
 * CRC-hashed Bloom filter. WrBF2 is filled by taking the LLC set-index
 * bits of an address modulo the WrBF2 size, so each WrBF2 bit corresponds
 * to a small group of LLC sets. Membership requires a hit in both
 * sections; the WrBF2 section additionally lets the hardware enumerate
 * exactly which LLC set groups can hold lines written by the owning
 * transaction, enabling the fast Find-LLC-Tags operation (80-120 cycles in
 * Table III) used at commit and squash.
 */

#ifndef HADES_BLOOM_SPLIT_WRITE_BLOOM_HH_
#define HADES_BLOOM_SPLIT_WRITE_BLOOM_HH_

#include <cstdint>
#include <vector>

#include "bloom/bloom_filter.hh"
#include "common/config.hh"
#include "common/types.hh"

namespace hades::bloom
{

/** WrBF1 (CRC) + WrBF2 (LLC-index mod size) write signature. */
class SplitWriteBloomFilter : public AddressFilter
{
  public:
    /**
     * @param params   geometry of the two sections
     * @param llc_sets number of sets in the node's LLC (defines the
     *                 set-index hash of WrBF2)
     */
    SplitWriteBloomFilter(const SplitWriteBloomParams &params,
                          std::uint64_t llc_sets);

    void insert(Addr line);

    bool mayContain(Addr line) const override;
    std::unique_ptr<AddressFilter> clone() const override;
    bool empty() const override { return bf1_.empty(); }

    void clear();

    std::uint64_t insertedCount() const { return bf1_.insertedCount(); }

    /** LLC set index of a line address. */
    std::uint64_t
    llcSetOf(Addr line) const
    {
        return (line / kCacheLineBytes) % llcSets_;
    }

    /** WrBF2 bit covering a given LLC set. */
    std::uint32_t
    bf2BitOf(std::uint64_t llc_set) const
    {
        return static_cast<std::uint32_t>(llc_set % bf2Bits_);
    }

    /** Is the WrBF2 bit for this set group enabled? */
    bool
    bf2BitSet(std::uint32_t bit) const
    {
        return bf2_[bit / 64] & (std::uint64_t{1} << (bit % 64));
    }

    /**
     * Enumerate the LLC sets that can contain lines inserted into this
     * filter: all sets whose WrBF2 bit is set. This is the parallel
     * "enable" signal of Figure 8.
     */
    std::vector<std::uint64_t> candidateLlcSets() const;

    /** Number of WrBF2 bits currently set. */
    std::uint32_t bf2Popcount() const;

    std::uint32_t bf1Bits() const { return bf1_.sizeBits(); }
    std::uint32_t bf2Bits() const { return bf2Bits_; }

  private:
    BloomFilter bf1_;
    std::uint32_t bf2Bits_;
    std::uint64_t llcSets_;
    std::vector<std::uint64_t> bf2_;
};

} // namespace hades::bloom

#endif // HADES_BLOOM_SPLIT_WRITE_BLOOM_HH_
