/**
 * @file
 * Bloom filter signatures used for transaction conflict detection.
 *
 * These model the read/write hardware Bloom filters of HADES (Module 3 in
 * the cores, Module 4a in the NICs). Hashing follows the paper: a CRC
 * base hash (Table III charges 2 cycles for it), from which k indices are
 * derived with the standard double-hashing construction used by signature
 * hardware (Sanchez et al., "Implementing Signatures for Transactional
 * Memory").
 */

#ifndef HADES_BLOOM_BLOOM_FILTER_HH_
#define HADES_BLOOM_BLOOM_FILTER_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace hades::bloom
{

/** Abstract membership filter, so Locking Buffers can hold either the
 *  plain NIC filters or the split core write filters uniformly. */
class AddressFilter
{
  public:
    virtual ~AddressFilter() = default;

    /** May the filter contain @p line? (false positives possible,
     *  false negatives impossible). */
    virtual bool mayContain(Addr line) const = 0;

    /** Deep copy (used when BFs are copied into a Locking Buffer). */
    virtual std::unique_ptr<AddressFilter> clone() const = 0;

    /** True if nothing has been inserted. */
    virtual bool empty() const = 0;
};

/** Classic k-hash Bloom filter over cache-line addresses. */
class BloomFilter : public AddressFilter
{
  public:
    /**
     * @param bits      filter size in bits (power of two recommended)
     * @param num_hashes number of hash functions (k)
     */
    explicit BloomFilter(std::uint32_t bits = 1024,
                         std::uint32_t num_hashes = 4);

    /** Insert a cache-line address. */
    void insert(Addr line);

    bool mayContain(Addr line) const override;
    std::unique_ptr<AddressFilter> clone() const override;
    bool empty() const override { return inserted_ == 0; }

    /** Remove all contents. */
    void clear();

    /** Number of insert() calls since the last clear(). */
    std::uint64_t insertedCount() const { return inserted_; }

    /** Number of bits set (filter occupancy). */
    std::uint32_t popcount() const;

    std::uint32_t sizeBits() const { return bits_; }
    std::uint32_t numHashes() const { return numHashes_; }

    /**
     * Theoretical false-positive probability after @p n distinct
     * insertions: (1 - e^{-kn/m})^k.
     */
    static double theoreticalFpr(std::uint32_t bits,
                                 std::uint32_t num_hashes, std::uint64_t n);

  private:
    std::uint32_t bitIndex(Addr line, std::uint32_t i) const;

    std::uint32_t bits_;
    std::uint32_t numHashes_;
    std::uint64_t inserted_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace hades::bloom

#endif // HADES_BLOOM_BLOOM_FILTER_HH_
