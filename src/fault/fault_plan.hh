/**
 * @file
 * Seedable fault-injection plan.
 *
 * A FaultPlan is the net::FaultInjector the runner attaches to the
 * Network when ClusterConfig::faults.enabled is set. It perturbs
 * individual message copies (drop / duplicate / reorder-delay / NIC
 * stall) from a dedicated RNG -- seeded by mixing the cluster seed with
 * FaultConfig::seed -- and schedules whole-node pause/crash windows on
 * the DES kernel. Because every random draw comes from this one
 * generator in a fixed per-message order, a faulty run is exactly as
 * bit-reproducible as a fault-free one.
 *
 * Semantics of a node-outage window:
 *  - pause [at, until): the node's cores and NIC TX port stall for the
 *    window; message copies that would arrive inside the window are
 *    deferred to its end (the NIC buffers them).
 *  - crash [at, until): additionally, every message copy into or out of
 *    the node during the window is dropped (fail-stop with message
 *    amnesia). The node restarts warm at `until`; peers recover via
 *    their protocol timeouts. Warm restart only models *transient*
 *    outages: the node returns with its memory intact, which no real
 *    crash does.
 *  - crash_forever [at, inf) (`forever` flag; `until` ignored): the
 *    node never restarts. Its cores and NIC freeze at `at` (in-flight
 *    coroutines on the node unwind with sim::NodeDead instead of
 *    continuing to execute), every message to or from it is dropped for
 *    the rest of the run, and -- when RecoveryConfig::enabled -- lease
 *    expiry at the configuration manager triggers an epoch-numbered
 *    view change that promotes replica images, re-homes the placement
 *    ring, drains the dead node's protocol footprint and resolves its
 *    in-doubt transactions. This is the default chaos mode for
 *    durability claims: unlike warm restart it actually tests that
 *    committed data survives the permanent loss of a machine. See
 *    DESIGN.md section 9.
 */

#ifndef HADES_FAULT_FAULT_PLAN_HH_
#define HADES_FAULT_FAULT_PLAN_HH_

#include <array>
#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "net/network.hh"
#include "sim/kernel.hh"
#include "sim/resource.hh"

namespace hades::fault
{

/** Counters of what the plan actually injected. */
struct FaultStats
{
    static constexpr std::size_t kNumVerbs = FaultConfig::kNumVerbs;

    std::array<std::uint64_t, kNumVerbs> drops{};
    std::array<std::uint64_t, kNumVerbs> duplicates{};
    std::array<std::uint64_t, kNumVerbs> delays{};
    std::array<std::uint64_t, kNumVerbs> nicStalls{};
    /** Copies whose payload was corrupted in flight (the destination
     *  NIC CRC check discards them; Network counts the discards). */
    std::array<std::uint64_t, kNumVerbs> corrupted{};
    /** Copies deferred to the end of a pause window. */
    std::uint64_t pausedDeferrals = 0;
    /** Copies dropped because an endpoint was inside a crash window. */
    std::uint64_t crashDrops = 0;
    /** Copies dropped because their directed link was inside a
     *  partition window at the send instant. */
    std::uint64_t partitionDrops = 0;
    /** Copies inflated by a grey (fail-slow) NIC or link window. */
    std::uint64_t greyDelays = 0;
    /** Core duty-cycle reservations fired by StraggleCore windows. */
    std::uint64_t stragglerReserves = 0;

    std::uint64_t totalDrops() const;
    std::uint64_t totalDuplicates() const;
    std::uint64_t totalDelays() const;
    std::uint64_t totalNicStalls() const;
    std::uint64_t totalCorrupted() const;
};

/** The fault injector (see file comment). */
class FaultPlan : public net::FaultInjector
{
  public:
    FaultPlan(sim::Kernel &kernel, const ClusterConfig &cfg);

    /** Decide the fate of one transmitted message copy. */
    net::FaultDecision judge(net::MsgType t, NodeId src,
                             NodeId dst) override;

    /** Partition oracle for control planes (CM quorum checks):
     *  delegates to the configured partition windows. */
    bool
    linkBlocked(NodeId src, NodeId dst, Tick t) const override
    {
        return f_.linkBlocked(src, dst, t);
    }

    /** Partition windows whose healing instant has passed by @p now. */
    std::uint64_t
    partitionsHealedBy(Tick now) const
    {
        return f_.partitionsHealedBy(now);
    }

    /**
     * Schedule the configured node pause/crash windows: at each window
     * start the node's compute resources in @p cores_by_node (indexed
     * by node) and its Network TX port are reserved until the window
     * end, so in-flight work at the node freezes.
     */
    void scheduleNodeEvents(
        net::Network &network,
        const std::vector<std::vector<sim::ComputeResource *>>
            &cores_by_node);

    const FaultStats &stats() const { return stats_; }

  private:
    sim::Kernel &kernel_;
    const ClusterConfig &cfg_;
    const FaultConfig &f_;
    Rng rng_;
    FaultStats stats_;
    /** Sends seen per verb, for FaultConfig::dropFirst. */
    std::array<std::uint64_t, FaultConfig::kNumVerbs> seen_{};
};

} // namespace hades::fault

#endif // HADES_FAULT_FAULT_PLAN_HH_
