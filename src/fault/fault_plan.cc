#include "fault/fault_plan.hh"

#include "common/log.hh"

namespace hades::fault
{

static_assert(FaultConfig::kNumVerbs ==
                  static_cast<std::size_t>(net::MsgType::NumTypes),
              "FaultConfig verb array size must mirror net::MsgType");

namespace
{

std::uint64_t
sumArray(const std::array<std::uint64_t, FaultStats::kNumVerbs> &a)
{
    std::uint64_t n = 0;
    for (auto c : a)
        n += c;
    return n;
}

} // namespace

std::uint64_t
FaultStats::totalDrops() const
{
    return sumArray(drops);
}

std::uint64_t
FaultStats::totalDuplicates() const
{
    return sumArray(duplicates);
}

std::uint64_t
FaultStats::totalDelays() const
{
    return sumArray(delays);
}

std::uint64_t
FaultStats::totalNicStalls() const
{
    return sumArray(nicStalls);
}

std::uint64_t
FaultStats::totalCorrupted() const
{
    return sumArray(corrupted);
}

FaultPlan::FaultPlan(sim::Kernel &kernel, const ClusterConfig &cfg)
    : kernel_(kernel), cfg_(cfg), f_(cfg.faults),
      rng_(cfg.seed ^ cfg.faults.seed)
{
}

net::FaultDecision
FaultPlan::judge(net::MsgType t, NodeId src, NodeId dst)
{
    const auto v = static_cast<std::size_t>(t);
    net::FaultDecision d;
    const std::uint64_t nth = seen_[v]++;

    // Node-outage and partition windows come first and are purely
    // deterministic (no RNG draw), so adding windows does not shift
    // the probabilistic draw sequence of unrelated messages.
    const Tick now = kernel_.now();
    const Tick arrive = now + cfg_.netRoundTrip / 2 + cfg_.nicProcessing;
    if (f_.anyNodeEventCovers(src, now, /*crash_only=*/true) ||
        f_.anyNodeEventCovers(dst, arrive, /*crash_only=*/true)) {
        stats_.crashDrops += 1;
        d.drop = true;
        return d;
    }
    // A copy on a partitioned directed link is lost on the wire. The
    // check is at the send instant: a copy that departs just before
    // the window opens still lands (it was already in flight).
    if (!f_.partitions.empty() && f_.linkBlocked(src, dst, now)) {
        stats_.partitionDrops += 1;
        d.drop = true;
        return d;
    }
    for (const auto &ev : f_.nodeEvents) {
        if (!ev.crash && !ev.forever && ev.node == dst &&
            arrive >= ev.at && arrive < ev.until) {
            // The destination NIC buffers the copy until the pause ends.
            d.delay = ev.until - arrive;
            stats_.pausedDeferrals += 1;
            break;
        }
    }
    // Grey (fail-slow) windows inflate the wire latency of matching
    // copies by a pure integer function of (src, dst, send instant) --
    // still no RNG draw, so the probabilistic sequence below is
    // untouched whether or not grey events are configured.
    if (!f_.greyEvents.empty()) {
        const Tick slow = f_.greyExtraDelay(
            src, dst, now, cfg_.netRoundTrip / 2 + cfg_.nicProcessing);
        if (slow > 0) {
            d.delay += slow;
            stats_.greyDelays += 1;
        }
    }

    if (nth < f_.dropFirst[v]) {
        stats_.drops[v] += 1;
        d.drop = true;
        return d;
    }

    // Probabilistic knobs. Each draw is guarded by prob > 0 so a knob
    // left at zero consumes no randomness: enabling one fault class
    // never shifts the draw sequence of another.
    if (f_.dropProb[v] > 0 && rng_.chance(f_.dropProb[v])) {
        stats_.drops[v] += 1;
        d.drop = true;
    }
    if (f_.delayProb[v] > 0 && rng_.chance(f_.delayProb[v])) {
        d.delay +=
            static_cast<Tick>(rng_.below(
                static_cast<std::uint64_t>(f_.maxDelay))) +
            1;
        stats_.delays[v] += 1;
    }
    if (f_.dupProb[v] > 0 && rng_.chance(f_.dupProb[v])) {
        // The duplicate trails the primary copy by a fresh delay, so a
        // dup is also a reorder; if the primary was dropped the
        // duplicate still goes out (the wire lost one of two copies).
        d.duplicate = true;
        d.duplicateDelay =
            d.delay +
            static_cast<Tick>(rng_.below(
                static_cast<std::uint64_t>(f_.maxDelay))) +
            1;
        stats_.duplicates[v] += 1;
    }
    if (f_.corruptProb[v] > 0 && rng_.chance(f_.corruptProb[v])) {
        // In-flight payload corruption of the primary copy: it is
        // delivered, fails the destination NIC's CRC check, and is
        // discarded there -- indistinguishable from a drop at the
        // protocol layer, but visible in Network::corruptDrops().
        d.corrupt = true;
        stats_.corrupted[v] += 1;
    }
    if (f_.nicStallProb > 0 && rng_.chance(f_.nicStallProb)) {
        d.stall = f_.nicStallTicks;
        stats_.nicStalls[v] += 1;
    }
    return d;
}

void
FaultPlan::scheduleNodeEvents(
    net::Network &network,
    const std::vector<std::vector<sim::ComputeResource *>> &cores_by_node)
{
    for (const auto &ev : f_.nodeEvents) {
        std::vector<sim::ComputeResource *> cores;
        if (ev.node < cores_by_node.size())
            cores = cores_by_node[ev.node];
        if (ev.forever) {
            // Permanent fail-stop: freeze the node's cores and NIC at
            // the crash instant. The message-drop side is handled by
            // judge() (anyNodeEventCovers treats the window as
            // extending to the end of the run).
            kernel_.scheduleAt(
                ev.at, [&network, cores, node = ev.node] {
                    network.markNodeDead(node);
                    for (auto *core : cores)
                        core->freeze();
                });
            continue;
        }
        always_assert(ev.until > ev.at, "empty node-outage window");
        const Tick duration = ev.until - ev.at;
        kernel_.scheduleAt(
            ev.at, [&network, cores, node = ev.node, duration] {
                network.stallNode(node, duration);
                for (auto *core : cores)
                    core->reserve(duration);
            });
    }

    // Core-straggler windows: steal a duty-cycle slice of every core
    // of the victim node each period, so compute throughput drops by
    // the configured factor without ever parking the node outright (a
    // fail-slow node keeps answering -- late). All slice instants are
    // fixed at schedule time: deterministic across shard counts.
    for (const auto &g : f_.greyEvents) {
        if (g.kind != FaultConfig::GreyEvent::Kind::StraggleCore ||
            g.factorPct <= 100 || g.until <= g.at)
            continue;
        std::vector<sim::ComputeResource *> cores;
        if (g.node < cores_by_node.size())
            cores = cores_by_node[g.node];
        const Tick period = us(1);
        const Tick stolen =
            period * Tick(g.factorPct - 100) / Tick(g.factorPct);
        if (stolen == 0)
            continue;
        for (Tick t = g.at; t < g.until; t += period) {
            kernel_.scheduleAt(t, [this, cores, stolen] {
                for (auto *core : cores)
                    core->reserve(stolen);
                stats_.stragglerReserves += 1;
            });
        }
    }
}

} // namespace hades::fault
