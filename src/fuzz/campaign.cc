#include "fuzz/campaign.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/log.hh"
#include "core/result_hash.hh"
#include "core/result_json.hh"
#include "core/sweep.hh"

namespace hades::fuzz
{

using protocol::EngineKind;

namespace
{

constexpr EngineKind kEngines[] = {EngineKind::Baseline,
                                   EngineKind::Hades,
                                   EngineKind::HadesHybrid};

/**
 * The threadedMessaging gene's scenario: per engine, the fault-free
 * uniform-messaging spec on worker threads against the same spec on
 * the serial oracle. The family is unaudited (audit decertifies the
 * threads), so the failure signal is differential: a digest mismatch
 * means the threaded executor computed a different run.
 */
FuzzVerdict
runThreadedDifferential(const Genome &g, const FuzzRunOptions &opt)
{
    std::vector<core::RunSpec> specs;
    for (EngineKind k : kEngines) {
        core::RunSpec threaded = threadedSpecFor(g, k, opt.smoke);
        core::RunSpec serial = threaded;
        serial.shards = 1;
        specs.push_back(serial);
        specs.push_back(threaded);
    }

    core::SweepOptions sweep;
    sweep.jobs = std::max(1u, opt.jobs);
    auto outcomes = core::runMany(specs, sweep);

    std::vector<const core::RunOutcome *> byIndex(specs.size(), nullptr);
    for (const auto &o : outcomes)
        byIndex[o.index] = &o;

    FuzzVerdict v;
    for (std::size_t e = 0; e < std::size(kEngines); ++e) {
        const char *engine = protocol::engineKindName(kEngines[e]);
        const auto *serial = byIndex[2 * e];
        const auto *threaded = byIndex[2 * e + 1];
        if (!serial->ok || !threaded->ok) {
            v.failed = true;
            v.engine = engine;
            v.error = !serial->ok ? serial->error : threaded->error;
            return v;
        }
        const auto want = core::hashResult(serial->result);
        const auto got = core::hashResult(threaded->result);
        if (got != want) {
            v.failed = true;
            v.engine = engine;
            v.error = "threaded_divergence serial=" +
                      std::to_string(want) + " threaded=" +
                      std::to_string(got) + " shards=" +
                      std::to_string(specs[2 * e + 1].shards);
            return v;
        }
    }
    return v;
}

} // namespace

FuzzVerdict
runGenome(const Genome &g, const FuzzRunOptions &opt)
{
    // Audit violations and invariant failures must become failed
    // RunOutcomes the shrinker can chew on, not process aborts. Set
    // before runMany spawns workers; runMany joins them all before
    // returning, so the write never races a reader.
    setPanicThrows(true);

    std::vector<core::RunSpec> specs;
    for (EngineKind k : kEngines)
        specs.push_back(specFor(g, k, opt.smoke));

    core::SweepOptions sweep;
    sweep.jobs = std::max(1u, opt.jobs);
    auto outcomes = core::runMany(specs, sweep);

    FuzzVerdict v;
    for (const auto &o : outcomes) {
        const char *engine =
            protocol::engineKindName(specs[o.index].engine);
        if (!o.ok) {
            v.failed = true;
            v.engine = engine;
            v.error = o.error;
            break;
        }
        if (o.result.divergentRecords > 0) {
            v.failed = true;
            v.engine = engine;
            v.divergentRecords = o.result.divergentRecords;
            v.error = "divergent_records=" +
                      std::to_string(o.result.divergentRecords);
            break;
        }
    }
    if (!v.failed && g.threadedMessaging)
        v = runThreadedDifferential(g, opt);
    return v;
}

Genome
shrinkGenome(const Genome &g, const FuzzRunOptions &opt,
             std::uint32_t max_runs, std::uint32_t &runs_used)
{
    Genome best = g;
    runs_used = 0;
    auto stillFails = [&](const Genome &candidate) {
        if (runs_used >= max_runs)
            return false;
        ++runs_used;
        return runGenome(candidate, opt).failed;
    };

    // The threaded-messaging gene first: dropping it removes the whole
    // worker-thread differential from the scenario, so a failure that
    // survives lives in the audited fault family and replays without
    // threads at all. When the collapse fails, the bug needs the
    // threaded executor -- exactly what the artifact must record.
    if (best.threadedMessaging) {
        Genome candidate = best;
        candidate.threadedMessaging = false;
        if (stillFails(candidate))
            best = candidate;
    }

    // Executor dimension next: a failure that survives at shards = 1
    // replays on the plain serial kernel, the simplest possible repro.
    // (Sharding is bit-identical by contract, so this only "fails" to
    // shrink when the bug itself lives in the sharded executor --
    // exactly the case where keeping the shard count in the artifact
    // matters.)
    if (best.shards > 1) {
        Genome candidate = best;
        candidate.shards = 1;
        if (stillFails(candidate))
            best = candidate;
    }

    // ddmin over the event list: drop [start, start+chunk), keep the
    // removal when the failure survives, restart with big chunks after
    // any progress so freshly adjacent events can go in one bite.
    bool progress = true;
    while (progress && !best.events.empty() && runs_used < max_runs) {
        progress = false;
        for (std::size_t chunk =
                 std::max<std::size_t>(best.events.size() / 2, 1);
             chunk >= 1 && !progress; chunk /= 2) {
            for (std::size_t start = 0;
                 start < best.events.size() && !progress;
                 start += chunk) {
                Genome candidate = best;
                const auto first =
                    candidate.events.begin() + std::ptrdiff_t(start);
                const auto last =
                    candidate.events.begin() +
                    std::ptrdiff_t(
                        std::min(start + chunk, candidate.events.size()));
                candidate.events.erase(first, last);
                if (stillFails(candidate)) {
                    best = candidate;
                    progress = true;
                }
            }
            if (chunk == 1)
                break;
        }
    }

    // Smaller workloads replay faster; try a couple of reductions.
    for (std::uint32_t txns : {2u, 3u}) {
        if (txns >= best.txnsPerContext)
            continue;
        Genome candidate = best;
        candidate.txnsPerContext = txns;
        if (stillFails(candidate)) {
            best = candidate;
            break;
        }
    }
    return best;
}

namespace
{

/** The bug-hook demo needs a permanent crash to trigger the injected
 *  skip-resync defect; give genomes that drew none a deterministic one. */
void
ensureCrash(Genome &g)
{
    for (const FuzzEvent &e : g.events)
        if (e.kind == EventKind::CrashForever)
            return;
    FuzzEvent e;
    e.kind = EventKind::CrashForever;
    e.a = std::uint32_t(g.seed % g.nodes);
    e.at = us(20);
    g.events.push_back(e);
}

} // namespace

CampaignReport
runCampaign(const CampaignOptions &opt)
{
    CampaignReport report;
    FuzzRunOptions run{opt.smoke, opt.jobs};
    GenomeLimits lim;
    lim.maxEvents = opt.maxEvents;

    for (std::uint32_t i = 0; i < opt.genomes; ++i) {
        const std::uint64_t seed = opt.seedBase + i;
        Genome g = randomGenome(seed, lim);
        if (opt.bugHook) {
            g.bugHook = true;
            ensureCrash(g);
        }
        FuzzVerdict v = runGenome(g, run);
        report.genomesRun += 1;
        if (!v.failed) {
            if (!opt.quiet)
                std::printf("fuzz seed=%" PRIu64 " events=%zu ok\n",
                            seed, g.events.size());
            continue;
        }
        report.failures += 1;
        if (!opt.quiet)
            std::printf("fuzz seed=%" PRIu64 " events=%zu FAILED "
                        "(%s: %s); shrinking...\n",
                        seed, g.events.size(), v.engine.c_str(),
                        v.error.c_str());
        std::uint32_t runs_used = 0;
        Genome shrunk = shrinkGenome(g, run, opt.shrinkRuns, runs_used);
        FuzzVerdict sv = runGenome(shrunk, run);
        report.haveRepro = true;
        report.repro = shrunk;
        report.verdict = sv.failed ? sv : v;
        if (!opt.quiet)
            std::printf("fuzz seed=%" PRIu64 " shrunk %zu -> %zu events "
                        "in %u runs (%s)\n",
                        seed, g.events.size(), shrunk.events.size(),
                        runs_used, report.verdict.error.c_str());
        if (!opt.outPath.empty()) {
            const std::string note = "seed " + std::to_string(seed) +
                                     " " + report.verdict.engine + ": " +
                                     report.verdict.error;
            core::writeJsonFile(opt.outPath,
                                genomeJson(shrunk, note));
            if (!opt.quiet)
                std::printf("fuzz repro written to %s\n",
                            opt.outPath.c_str());
        }
        break; // first failure is the artifact; rest of matrix moot
    }
    return report;
}

} // namespace hades::fuzz
