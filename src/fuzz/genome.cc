#include "fuzz/genome.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/rng.hh"

namespace hades::fuzz
{

namespace
{

// Decode-time safety clamps. Probabilities stay well below 1 so every
// retry loop makes progress; windows stay inside the scenario horizon
// so partitions always heal and paused nodes always resume.
constexpr double kMaxLossyProb = 0.35; // drop / delay / corrupt
constexpr double kMaxDupProb = 0.5;
constexpr double kMaxStallProb = 0.2;
constexpr Tick kMinEventAt = us(2);
constexpr Tick kHorizon = us(150);
constexpr Tick kMaxWindow = us(40);
constexpr std::uint32_t kMaxCrashVictims = 2;
constexpr std::uint32_t kMaxDropFirst = 4;
// Grey-gene slowdown factor steps: count 1..4 -> x2..x5. Overlapping
// events stack additively in greyExtraDelay, so the worst case stays
// bounded by maxEvents * 4 * the healthy one-way latency.
constexpr std::uint32_t kMaxGreyFactorSteps = 4;

double
clampProb(double p, double cap)
{
    return std::clamp(p, 0.0, cap);
}

Tick
clampAt(Tick at)
{
    return std::clamp<Tick>(at, kMinEventAt, kHorizon);
}

Tick
clampUntil(Tick at, Tick until)
{
    return std::clamp<Tick>(until, at + us(1),
                            std::min<Tick>(at + kMaxWindow, kHorizon + kMaxWindow));
}

} // namespace

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::DropVerb:
        return "drop_verb";
      case EventKind::DupVerb:
        return "dup_verb";
      case EventKind::DelayVerb:
        return "delay_verb";
      case EventKind::CorruptVerb:
        return "corrupt_verb";
      case EventKind::NicStall:
        return "nic_stall";
      case EventKind::DropFirst:
        return "drop_first";
      case EventKind::Partition:
        return "partition";
      case EventKind::PauseNode:
        return "pause_node";
      case EventKind::CrashForever:
        return "crash_forever";
      case EventKind::JoinNode:
        return "join_node";
      case EventKind::DrainNode:
        return "drain_node";
      case EventKind::SlowNic:
        return "slow_nic";
      case EventKind::SlowLink:
        return "slow_link";
      case EventKind::ShedStorm:
        return "shed_storm";
      case EventKind::NumKinds:
        break;
    }
    return "unknown";
}

bool
eventKindFromName(const std::string &name, EventKind &out)
{
    for (std::uint8_t k = 0; k < std::uint8_t(EventKind::NumKinds); ++k) {
        if (name == eventKindName(EventKind(k))) {
            out = EventKind(k);
            return true;
        }
    }
    return false;
}

Genome
randomGenome(std::uint64_t seed, const GenomeLimits &lim)
{
    // Genomes are a pure function of the seed; the decode clamps make
    // any draw a safe scenario, so generation needs no rejection loop.
    Rng rng(seed ^ 0xfa22ed5eedULL);
    Genome g;
    g.seed = seed;
    g.nodes = 5 + std::uint32_t(rng.below(2));
    g.txnsPerContext = 4 + std::uint32_t(rng.below(5));
    g.shards = 1u << rng.below(4); // 1, 2, 4, or 8 kernel lanes
    const std::uint32_t n =
        1 + std::uint32_t(rng.below(std::max<std::uint32_t>(lim.maxEvents, 1)));
    for (std::uint32_t i = 0; i < n; ++i) {
        FuzzEvent e;
        e.kind = EventKind(rng.below(std::uint64_t(EventKind::NumKinds)));
        e.verb = std::uint32_t(rng.below(FaultConfig::kNumVerbs));
        e.prob = rng.uniform() * kMaxLossyProb;
        e.a = std::uint32_t(rng.below(g.nodes));
        e.b = std::uint32_t(rng.below(g.nodes));
        e.at = us(2 + std::int64_t(rng.below(80)));
        e.until = e.at + us(1 + std::int64_t(rng.below(40)));
        e.symmetric = rng.below(2) == 0;
        e.count = 1 + std::uint32_t(rng.below(kMaxDropFirst));
        g.events.push_back(e);
    }
    // Drawn last so the gene never perturbs the fields above for a
    // given seed (legacy repro artifacts stay meaningful).
    g.threadedMessaging = rng.below(4) == 0;
    return g;
}

void
applyEvents(const Genome &g, ClusterConfig &cc)
{
    FaultConfig &f = cc.faults;
    const std::uint32_t nodes = cc.numNodes;
    std::vector<NodeId> victims;
    // Membership genes decode canonically so the result is independent
    // of event order and survives any ddmin subset: all JoinNode genes
    // collapse to one join of node `nodes - 1` (held out as the spare)
    // at the earliest clamped instant; all DrainNode genes collapse to
    // one drain of node 1. Fixed victims keep every decode safe: with
    // >= 4 nodes, at most two distinct crash victims and at most one
    // drain, a live non-draining migration destination always exists
    // (or arrives when the join admits), and node 0 -- the initial CM
    // primary -- is never the drain victim.
    bool join = false, drain = false;
    Tick joinAt = kHorizon, drainAt = kHorizon;
    for (const FuzzEvent &e : g.events) {
        const std::size_t verb = e.verb % FaultConfig::kNumVerbs;
        switch (e.kind) {
          case EventKind::DropVerb:
            // max() keeps the decode order-independent when several
            // events target the same verb, so removing any subset of
            // events (shrinking) still decodes the survivors the same.
            f.dropProb[verb] = std::max(f.dropProb[verb],
                                        clampProb(e.prob, kMaxLossyProb));
            break;
          case EventKind::DupVerb:
            f.dupProb[verb] = std::max(f.dupProb[verb],
                                       clampProb(e.prob, kMaxDupProb));
            break;
          case EventKind::DelayVerb:
            f.delayProb[verb] = std::max(f.delayProb[verb],
                                         clampProb(e.prob, kMaxLossyProb));
            break;
          case EventKind::CorruptVerb:
            f.corruptProb[verb] = std::max(f.corruptProb[verb],
                                           clampProb(e.prob, kMaxLossyProb));
            break;
          case EventKind::NicStall:
            f.nicStallProb = std::max(f.nicStallProb,
                                      clampProb(e.prob, kMaxStallProb));
            break;
          case EventKind::DropFirst:
            f.dropFirst[verb] = std::max(f.dropFirst[verb],
                                         std::min(e.count, kMaxDropFirst));
            break;
          case EventKind::Partition: {
            const NodeId a = NodeId(e.a % nodes);
            const NodeId b = NodeId(e.b % nodes);
            const Tick at = clampAt(e.at);
            const Tick until = clampUntil(at, e.until);
            if (a == b) {
                f.partitions.push_back(
                    FaultConfig::PartitionWindow::isolate(a, nodes, at,
                                                          until));
            } else {
                FaultConfig::PartitionWindow w;
                w.edges.emplace_back(a, b);
                w.at = at;
                w.until = until;
                w.symmetric = e.symmetric;
                f.partitions.push_back(w);
            }
            break;
          }
          case EventKind::PauseNode: {
            FaultConfig::NodeEvent ev;
            ev.node = NodeId(e.a % nodes);
            ev.at = clampAt(e.at);
            ev.until = clampUntil(ev.at, e.until);
            f.nodeEvents.push_back(ev);
            break;
          }
          case EventKind::CrashForever: {
            const NodeId victim = NodeId(e.a % nodes);
            const bool known =
                std::find(victims.begin(), victims.end(), victim) !=
                victims.end();
            if (!known && victims.size() >= kMaxCrashVictims)
                break; // too many distinct victims: gene is inert
            if (!known)
                victims.push_back(victim);
            FaultConfig::NodeEvent ev;
            ev.node = victim;
            ev.at = clampAt(e.at);
            ev.crash = true;
            ev.forever = true;
            f.nodeEvents.push_back(ev);
            break;
          }
          case EventKind::JoinNode:
            join = true;
            joinAt = std::min(joinAt, clampAt(e.at));
            break;
          case EventKind::DrainNode:
            drain = true;
            drainAt = std::min(drainAt, clampAt(e.at));
            break;
          case EventKind::SlowNic:
          case EventKind::SlowLink: {
            FaultConfig::GreyEvent ge;
            const NodeId a = NodeId(e.a % nodes);
            const NodeId b = NodeId(e.b % nodes);
            if (e.kind == EventKind::SlowLink && a != b) {
                ge.kind = FaultConfig::GreyEvent::Kind::SlowLink;
                ge.node = a;
                ge.dst = b;
                ge.symmetric = e.symmetric;
            } else {
                // A degenerate self-link decodes as a NIC slowdown so
                // the gene is never inert.
                ge.kind = FaultConfig::GreyEvent::Kind::SlowNic;
                ge.node = a;
            }
            ge.factorPct =
                100 + 100 * std::clamp<std::uint32_t>(
                                e.count, 1, kMaxGreyFactorSteps);
            ge.at = clampAt(e.at);
            ge.until = clampUntil(ge.at, e.until);
            f.greyEvents.push_back(ge);
            // Grey genes also arm the mitigation under test: the SLO
            // tracker + hedged remote reads (the campaign spec always
            // has replicas to hedge to).
            cc.slo.enabled = true;
            break;
          }
          case EventKind::ShedStorm:
            // Idempotent flag decode: any number of ShedStorm genes
            // arm the same tight overload-protection config, so every
            // ddmin subset decodes the survivors identically.
            cc.admission.enabled = true;
            cc.admission.bucketCap = 4;
            cc.admission.refillTokens = 2;
            cc.admission.refillInterval = us(2);
            cc.admission.maxInFlight = 3;
            cc.admission.retryBudgetPct = 50;
            break;
          case EventKind::NumKinds:
            break;
        }
    }
    if (nodes >= 4) { // below the fuzzer's node floor the genes are inert
        if (join) {
            cc.membership.initialMembers = nodes - 1;
            cc.membership.joins.push_back({NodeId(nodes - 1), joinAt});
        }
        if (drain)
            cc.membership.drains.push_back({NodeId(1), drainAt});
    }
    f.enabled = true;
    cc.recovery.enabled = true;
    cc.recovery.testSkipImageResync = g.bugHook;
}

namespace
{

/** The cluster shape and workload shared by both scenario families. */
core::RunSpec
baseSpecFor(const Genome &g, protocol::EngineKind engine, bool smoke)
{
    core::RunSpec spec;
    ClusterConfig &cc = spec.cluster;
    cc.numNodes = std::max<std::uint32_t>(g.nodes, 4);
    cc.coresPerNode = 2;
    cc.slotsPerCore = 2;
    cc.seed = 42 ^ (g.seed * 0x9e3779b97f4a7c15ULL);
    spec.engine = engine;
    spec.mix = {{workload::AppKind::Smallbank, kvs::StoreKind::HashTable}};
    spec.txnsPerContext =
        smoke ? std::min<std::uint64_t>(g.txnsPerContext, 3)
              : g.txnsPerContext;
    spec.scaleKeys = 2000;
    return spec;
}

} // namespace

core::RunSpec
specFor(const Genome &g, protocol::EngineKind engine, bool smoke)
{
    core::RunSpec spec = baseSpecFor(g, engine, smoke);
    ClusterConfig &cc = spec.cluster;
    cc.faults.seed = 0x0ddfa117 ^ g.seed;
    // Fast-recovery tuning so smoke genomes finish quickly; the
    // reliablePost budget keeps runs finite even if a genome manages
    // to make an Ack unreachable for a long stretch.
    cc.tuning.retryTimeoutBase = us(4);
    cc.tuning.retryTimeoutCap = us(32);
    cc.tuning.maxCommitResends = 6;
    cc.tuning.maxReliableResends = 64;
    cc.tuning.leaseInterval = us(10);
    cc.tuning.leaseTimeout = us(25);
    applyEvents(g, cc);
    spec.replication.degree = 2;
    spec.audit = true;
    spec.shards = std::max<std::uint32_t>(g.shards, 1);
    return spec;
}

core::RunSpec
threadedSpecFor(const Genome &g, protocol::EngineKind engine, bool smoke)
{
    core::RunSpec spec = baseSpecFor(g, engine, smoke);
    // The fault events are deliberately not decoded: worker threads
    // only run fault-free, and keeping the spec thread-certifiable is
    // the point of the gene. Lock-mode stays out of reach so the
    // optimistic threaded path is what actually gets fuzzed (the
    // runtime lock-mode rerun has its own coverage in the test suite).
    spec.cluster.tuning.maxSquashesBeforeLockMode = 10000;
    spec.audit = false;
    spec.shards = std::max<std::uint32_t>(g.shards, 2);
    return spec;
}

// ---- JSON serialization -----------------------------------------------------

namespace
{

void
jsonU64(std::string &out, const char *name, std::uint64_t v, bool first = false)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",",
                  name, v);
    out += buf;
}

void
jsonI64(std::string &out, const char *name, std::int64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRId64, name, v);
    out += buf;
}

void
jsonD(std::string &out, const char *name, double v)
{
    // %.17g round-trips IEEE doubles, so replay decodes the exact
    // probabilities the campaign ran.
    char buf[128];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%.17g", name, v);
    out += buf;
}

void
jsonB(std::string &out, const char *name, bool v)
{
    out += ",\"";
    out += name;
    out += "\":";
    out += v ? "true" : "false";
}

void
jsonS(std::string &out, const char *name, const std::string &v,
      bool first = false)
{
    if (!first)
        out += ',';
    out += '"';
    out += name;
    out += "\":\"";
    for (char c : v) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20)
            out += c;
    }
    out += '"';
}

} // namespace

std::string
genomeJson(const Genome &g, const std::string &note)
{
    std::string out = "{";
    jsonS(out, "schema", "hades-fuzz-repro-v1", true);
    if (!note.empty())
        jsonS(out, "note", note);
    jsonU64(out, "seed", g.seed);
    jsonU64(out, "nodes", g.nodes);
    jsonU64(out, "txns_per_context", g.txnsPerContext);
    jsonU64(out, "shards", g.shards);
    jsonB(out, "bug_hook", g.bugHook);
    jsonB(out, "threaded_messaging", g.threadedMessaging);
    out += ",\"events\":[";
    for (std::size_t i = 0; i < g.events.size(); ++i) {
        const FuzzEvent &e = g.events[i];
        if (i)
            out += ',';
        std::string ev = "{";
        jsonS(ev, "kind", eventKindName(e.kind), true);
        jsonU64(ev, "verb", e.verb);
        jsonD(ev, "prob", e.prob);
        jsonU64(ev, "a", e.a);
        jsonU64(ev, "b", e.b);
        jsonI64(ev, "at_ps", e.at);
        jsonI64(ev, "until_ps", e.until);
        jsonB(ev, "symmetric", e.symmetric);
        jsonU64(ev, "count", e.count);
        ev += '}';
        out += ev;
    }
    out += "]}\n";
    return out;
}

// ---- JSON parsing -----------------------------------------------------------

namespace
{

/** Minimal recursive-descent scanner for the repro subset of JSON
 *  (objects, arrays, strings without escapes beyond \" and \\, numbers,
 *  booleans). Unknown values are skipped so annotated artifacts parse. */
class Scanner
{
  public:
    explicit Scanner(const std::string &text)
        : p_(text.data()), end_(text.data() + text.size())
    {
    }

    void
    skipWs()
    {
        while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                             *p_ == '\r'))
            ++p_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p_ < end_ && *p_ == c) {
            ++p_;
            return true;
        }
        return false;
    }

    bool
    peek(char c)
    {
        skipWs();
        return p_ < end_ && *p_ == c;
    }

    bool
    atEnd()
    {
        skipWs();
        return p_ >= end_;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (p_ < end_ && *p_ != '"') {
            if (*p_ == '\\' && p_ + 1 < end_)
                ++p_;
            out += *p_++;
        }
        return p_ < end_ && *p_++ == '"';
    }

    /** Raw number token; caller converts with strtoull/strtoll/strtod. */
    bool
    parseNumber(std::string &out)
    {
        skipWs();
        out.clear();
        while (p_ < end_ &&
               (std::strchr("+-.eE0123456789", *p_) != nullptr))
            out += *p_++;
        return !out.empty();
    }

    bool
    parseBool(bool &out)
    {
        skipWs();
        if (end_ - p_ >= 4 && std::strncmp(p_, "true", 4) == 0) {
            p_ += 4;
            out = true;
            return true;
        }
        if (end_ - p_ >= 5 && std::strncmp(p_, "false", 5) == 0) {
            p_ += 5;
            out = false;
            return true;
        }
        return false;
    }

    /** Skip any value (for unknown keys). */
    bool
    skipValue()
    {
        skipWs();
        if (p_ >= end_)
            return false;
        if (*p_ == '"') {
            std::string s;
            return parseString(s);
        }
        if (*p_ == '{' || *p_ == '[') {
            const char open = *p_;
            const char close = open == '{' ? '}' : ']';
            ++p_;
            skipWs();
            if (consume(close))
                return true;
            do {
                if (open == '{') {
                    std::string key;
                    if (!parseString(key) || !consume(':'))
                        return false;
                }
                if (!skipValue())
                    return false;
            } while (consume(','));
            return consume(close);
        }
        bool b;
        if (*p_ == 't' || *p_ == 'f')
            return parseBool(b);
        std::string num;
        return parseNumber(num);
    }

  private:
    const char *p_;
    const char *end_;
};

bool
numU64(Scanner &sc, std::uint64_t &out)
{
    std::string tok;
    if (!sc.parseNumber(tok))
        return false;
    out = std::strtoull(tok.c_str(), nullptr, 10);
    return true;
}

bool
numI64(Scanner &sc, std::int64_t &out)
{
    std::string tok;
    if (!sc.parseNumber(tok))
        return false;
    out = std::strtoll(tok.c_str(), nullptr, 10);
    return true;
}

bool
numD(Scanner &sc, double &out)
{
    std::string tok;
    if (!sc.parseNumber(tok))
        return false;
    out = std::strtod(tok.c_str(), nullptr);
    return true;
}

bool
parseEvent(Scanner &sc, FuzzEvent &e, std::string &err)
{
    if (!sc.consume('{')) {
        err = "event: expected object";
        return false;
    }
    if (sc.consume('}'))
        return true;
    do {
        std::string key;
        if (!sc.parseString(key) || !sc.consume(':')) {
            err = "event: malformed key";
            return false;
        }
        bool ok = true;
        std::uint64_t u = 0;
        std::int64_t i = 0;
        if (key == "kind") {
            std::string name;
            ok = sc.parseString(name) && eventKindFromName(name, e.kind);
            if (!ok)
                err = "event: unknown kind \"" + name + "\"";
        } else if (key == "verb") {
            ok = numU64(sc, u);
            e.verb = std::uint32_t(u);
        } else if (key == "prob") {
            ok = numD(sc, e.prob);
        } else if (key == "a") {
            ok = numU64(sc, u);
            e.a = std::uint32_t(u);
        } else if (key == "b") {
            ok = numU64(sc, u);
            e.b = std::uint32_t(u);
        } else if (key == "at_ps") {
            ok = numI64(sc, i);
            e.at = Tick(i);
        } else if (key == "until_ps") {
            ok = numI64(sc, i);
            e.until = Tick(i);
        } else if (key == "symmetric") {
            ok = sc.parseBool(e.symmetric);
        } else if (key == "count") {
            ok = numU64(sc, u);
            e.count = std::uint32_t(u);
        } else {
            ok = sc.skipValue();
        }
        if (!ok) {
            if (err.empty())
                err = "event: bad value for \"" + key + "\"";
            return false;
        }
    } while (sc.consume(','));
    if (!sc.consume('}')) {
        err = "event: expected }";
        return false;
    }
    return true;
}

} // namespace

bool
parseGenomeJson(const std::string &text, Genome &out, std::string &err)
{
    Scanner sc(text);
    out = Genome{};
    out.events.clear();
    err.clear();
    if (!sc.consume('{')) {
        err = "expected top-level object";
        return false;
    }
    if (sc.consume('}'))
        return true;
    do {
        std::string key;
        if (!sc.parseString(key) || !sc.consume(':')) {
            err = "malformed key";
            return false;
        }
        bool ok = true;
        std::uint64_t u = 0;
        if (key == "schema") {
            std::string schema;
            ok = sc.parseString(schema);
            if (ok && schema != "hades-fuzz-repro-v1") {
                err = "unsupported schema \"" + schema + "\"";
                return false;
            }
        } else if (key == "seed") {
            ok = numU64(sc, out.seed);
        } else if (key == "nodes") {
            ok = numU64(sc, u);
            out.nodes = std::uint32_t(u);
        } else if (key == "txns_per_context") {
            ok = numU64(sc, u);
            out.txnsPerContext = std::uint32_t(u);
        } else if (key == "shards") {
            ok = numU64(sc, u);
            out.shards = std::uint32_t(u);
        } else if (key == "bug_hook") {
            ok = sc.parseBool(out.bugHook);
        } else if (key == "threaded_messaging") {
            ok = sc.parseBool(out.threadedMessaging);
        } else if (key == "events") {
            ok = sc.consume('[');
            if (ok && !sc.consume(']')) {
                do {
                    FuzzEvent e;
                    if (!parseEvent(sc, e, err))
                        return false;
                    out.events.push_back(e);
                } while (sc.consume(','));
                ok = sc.consume(']');
            }
        } else {
            ok = sc.skipValue();
        }
        if (!ok) {
            if (err.empty())
                err = "bad value for \"" + key + "\"";
            return false;
        }
    } while (sc.consume(','));
    if (!sc.consume('}')) {
        err = "expected closing }";
        return false;
    }
    return true;
}

} // namespace hades::fuzz
