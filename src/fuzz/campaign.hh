/**
 * @file
 * Chaos-fuzzing campaign: run seeded genomes audited across all three
 * protocol engines, detect failures (audit violation, invariant panic,
 * or divergent replica images), and shrink a failing genome to a
 * minimal repro by delta-debugging over its fault events.
 *
 * Everything here is a pure function of its inputs -- genomes come from
 * seeds, runs go through core::runMany (bit-identical at any job
 * count), and shrinking re-runs candidate genomes deterministically --
 * so a campaign, its failures, and its shrunken repros are exactly
 * reproducible from the command line that produced them.
 */

#ifndef HADES_FUZZ_CAMPAIGN_HH_
#define HADES_FUZZ_CAMPAIGN_HH_

#include <cstdint>
#include <string>

#include "fuzz/genome.hh"

namespace hades::fuzz
{

/** How to execute one genome (shared by campaign, shrink, replay). */
struct FuzzRunOptions
{
    bool smoke = false; //!< cap txns/context for CI-speed scenarios
    unsigned jobs = 1;  //!< runMany workers (never affects results)
};

/** Outcome of running one genome across the three engines. */
struct FuzzVerdict
{
    bool failed = false;
    std::string engine; //!< first failing engine ("" when clean)
    std::string error;  //!< captured panic/exception or divergence note
    std::uint64_t divergentRecords = 0;
};

/** Run @p g once per engine (Baseline, HADES, HADES-H), audited, with
 *  panics converted to failed outcomes. First failure wins. */
FuzzVerdict runGenome(const Genome &g, const FuzzRunOptions &opt);

/**
 * Delta-debug @p g down to a locally minimal failing genome: greedily
 * remove event chunks (halving chunk size down to single events) while
 * the failure persists, then try reducing txnsPerContext. Uses at most
 * @p max_runs re-executions; @p runs_used reports how many were spent.
 * @pre runGenome(g, opt).failed
 */
Genome shrinkGenome(const Genome &g, const FuzzRunOptions &opt,
                    std::uint32_t max_runs, std::uint32_t &runs_used);

/** Campaign knobs (the hades_fuzz CLI is a thin wrapper over this). */
struct CampaignOptions
{
    std::uint64_t seedBase = 1;
    std::uint32_t genomes = 16;
    std::uint32_t maxEvents = 12; //!< generation bound per genome
    bool smoke = false;
    unsigned jobs = 1;
    /** Arm the TEST-ONLY skip-resync defect in every genome (and make
     *  sure each has a permanent crash to trigger it): the shrinking
     *  demo. Never used for real robustness campaigns. */
    bool bugHook = false;
    std::uint32_t shrinkRuns = 64; //!< shrink budget (genome re-runs)
    std::string outPath;  //!< repro artifact path ("" = don't write)
    bool quiet = false;   //!< suppress per-seed progress lines
};

/** Campaign outcome. */
struct CampaignReport
{
    std::uint32_t genomesRun = 0;
    std::uint32_t failures = 0;
    bool haveRepro = false;
    Genome repro;        //!< shrunken first failure (when haveRepro)
    FuzzVerdict verdict; //!< its verdict (when haveRepro)
};

/** Run the seed matrix; stop at (and shrink) the first failure. */
CampaignReport runCampaign(const CampaignOptions &opt);

} // namespace hades::fuzz

#endif // HADES_FUZZ_CAMPAIGN_HH_
