/**
 * @file
 * Chaos-fuzzer genome: a compact, seeded description of one fault
 * scenario (drop/dup/delay/corrupt probabilities, NIC stalls, partition
 * windows, node pauses, permanent crashes, and elastic-membership
 * joins/drains) that decodes into a FaultConfig / MembershipConfig and
 * an audited, recovery-enabled RunSpec.
 *
 * Decoding applies every safety clamp (bounded windows, partitions
 * that always heal, at most two distinct permanent-crash victims) so
 * that *any* subset of a genome's events is a valid scenario -- the
 * property delta-debugging shrinking relies on. A genome serializes to
 * a replayable JSON repro artifact (`hades-fuzz-repro-v1`) and parses
 * back bit-identically.
 */

#ifndef HADES_FUZZ_GENOME_HH_
#define HADES_FUZZ_GENOME_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/runner.hh"

namespace hades::fuzz
{

/** One gene: a single fault-plan perturbation. */
enum class EventKind : std::uint8_t
{
    DropVerb,     //!< per-verb message-loss probability
    DupVerb,      //!< per-verb duplicate-delivery probability
    DelayVerb,    //!< per-verb reorder-delay probability
    CorruptVerb,  //!< per-verb CRC-corruption probability
    NicStall,     //!< source-NIC backpressure bursts
    DropFirst,    //!< deterministically drop the first N sends of a verb
    Partition,    //!< link partition window (always heals)
    PauseNode,    //!< transient whole-node pause window
    CrashForever, //!< permanent fail-stop (recovery takes over)
    JoinNode,     //!< elastic membership: hold the last node out as a
                  //!< spare and admit it mid-run (live rebalance)
    DrainNode,    //!< elastic membership: planned-drain a fixed member
                  //!< mid-run (live record migration to survivors)
    SlowNic,      //!< grey fault: slow every copy touching a node; arms
                  //!< the SLO tracker + hedged reads (the mitigation)
    SlowLink,     //!< grey fault: inflate one directed link's latency
    ShedStorm,    //!< overload: tight admission control + retry budget
                  //!< (idempotent flag decode)
    NumKinds,
};

const char *eventKindName(EventKind k);
/** @return false if @p name names no EventKind. */
bool eventKindFromName(const std::string &name, EventKind &out);

/** One fault event. Fields are interpreted per kind; out-of-range
 *  values are clamped at decode time, never rejected. */
struct FuzzEvent
{
    EventKind kind = EventKind::DropVerb;
    std::uint32_t verb = 0; //!< net::MsgType index (mod kNumVerbs)
    double prob = 0;        //!< probability knobs (clamped per kind)
    std::uint32_t a = 0;    //!< node: victim / partition source
    std::uint32_t b = 0;    //!< node: partition destination
    Tick at = 0;            //!< window start
    Tick until = 0;         //!< window end (clamped; never kTickMax)
    bool symmetric = false; //!< partition both directions
    std::uint32_t count = 0; //!< DropFirst budget

    bool operator==(const FuzzEvent &) const = default;
};

/** A full scenario: cluster shape + fault events + optional seeded
 *  bug hook (the shrinking demo's known-injected defect). */
struct Genome
{
    std::uint64_t seed = 1;          //!< mixes cluster and fault RNG seeds
    std::uint32_t nodes = 5;
    std::uint32_t txnsPerContext = 6;
    /** Kernel shard count the scenario replays under (1 = serial
     *  oracle). Sharding is bit-identical by contract, so a failure
     *  that reproduces at shards > 1 must also reproduce serially --
     *  the campaign fuzzes the executor dimension for free and the
     *  shrinker tries collapsing it to 1 first. */
    std::uint32_t shards = 1;
    /** TEST-ONLY: decode sets RecoveryConfig::testSkipImageResync so a
     *  crash leaves divergent backups behind (see config.hh). */
    bool bugHook = false;
    /** Threaded-messaging gene: in addition to the audited fault
     *  scenario, the campaign replays the genome's cluster shape as a
     *  fault-free, unaudited uniform-messaging run on worker threads
     *  (>= 2 lanes) and diffs it against the serial oracle -- fuzzing
     *  the PR 8 thread-certified executor family. The shrinker tries
     *  collapsing this gene before touching the event list, so repro
     *  artifacts keep it only when the failure lives in the threaded
     *  executor itself. */
    bool threadedMessaging = false;
    std::vector<FuzzEvent> events;

    bool operator==(const Genome &) const = default;
};

/** Generation bounds for randomGenome(). */
struct GenomeLimits
{
    std::uint32_t maxEvents = 12;
};

/** Deterministically generate a genome from @p seed alone. */
Genome randomGenome(std::uint64_t seed, const GenomeLimits &lim = {});

/**
 * Decode the genome's events into @p cc's FaultConfig / RecoveryConfig,
 * applying the safety clamps:
 *  - probabilities capped (drop/delay/corrupt <= 0.35, dup <= 0.5,
 *    NIC stall <= 0.2) so retry machinery always makes progress;
 *  - every window bounded (partitions always heal, pauses end);
 *  - at most two distinct CrashForever victims (extra victims are
 *    ignored), so with 5+ nodes and replication degree 2 every record
 *    keeps a live copy and the CM group keeps a live member;
 *  - membership genes decode canonically (any number of JoinNode
 *    events schedule ONE join of the last node at the earliest
 *    clamped instant; DrainNode likewise drains node 1), so the
 *    decode stays order-independent and every event subset keeps a
 *    live migration destination even with two crash victims;
 *  - grey genes (SlowNic/SlowLink) decode to bounded-window
 *    FaultConfig::GreyEvents with a clamped factor and arm the SLO
 *    tracker + hedged reads; overlapping windows stack additively,
 *    so the decode is order-independent without canonicalization;
 *  - ShedStorm decodes as an idempotent flag: any number of genes
 *    arm the same tight admission-control config.
 */
void applyEvents(const Genome &g, ClusterConfig &cc);

/** Build the audited, recovery-enabled smallbank RunSpec the campaign
 *  runs for one engine. Pure function of (genome, engine, smoke). */
core::RunSpec specFor(const Genome &g, protocol::EngineKind engine,
                      bool smoke);

/** Build the fault-free, unaudited uniform-messaging RunSpec the
 *  threadedMessaging gene adds: the genome's cluster shape on
 *  max(shards, 2) worker-threaded lanes, thread-certifiable by
 *  construction (no faults, no recovery, no replication, no audit).
 *  The serial oracle for the differential is the same spec at
 *  shards = 1. Pure function of (genome, engine, smoke). */
core::RunSpec threadedSpecFor(const Genome &g,
                              protocol::EngineKind engine, bool smoke);

/** Serialize as a `hades-fuzz-repro-v1` JSON object (one line).
 *  @p note is an optional human-readable annotation (e.g. the failure
 *  the repro reproduces); empty means omitted. */
std::string genomeJson(const Genome &g, const std::string &note = {});

/** Parse genomeJson() output (unknown keys are skipped, so annotated
 *  repro artifacts replay fine). @return false and set @p err on
 *  malformed input. */
bool parseGenomeJson(const std::string &text, Genome &out,
                     std::string &err);

} // namespace hades::fuzz

#endif // HADES_FUZZ_GENOME_HH_
