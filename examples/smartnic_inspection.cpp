/**
 * @file
 * SmartNIC hardware walk-through: drives the HADES hardware primitives
 * directly (outside of any workload) so a user can see the protocol
 * mechanics of Section V step by step:
 *
 *   1. a remote read inserts line addresses into the RemoteReadBF at
 *      the home node's NIC (Module 4a);
 *   2. a local write tags the LLC directory line with the WrTX ID
 *      (Module 2) and fills the split Local write BF (Module 3);
 *   3. committing partially locks the directory with a Locking Buffer
 *      copy of those filters (Figure 7), and conflicting accesses are
 *      denied until the Validation step releases it;
 *   4. Find-LLC-Tags enumerates the committing transaction's lines via
 *      the WrBF2 set groups (Figure 8).
 */

#include <cstdio>

#include "bloom/locking_buffer.hh"
#include "bloom/split_write_bloom.hh"
#include "common/config.hh"
#include "mem/llc_directory.hh"
#include "net/hades_nic.hh"

int
main()
{
    using namespace hades;

    ClusterConfig cfg; // Table III defaults
    std::printf("HADES hardware walk-through (Table III geometry)\n\n");

    // ---- Module 4a: remote read/write Bloom filters in the NIC ---------
    net::HadesNicState nic{cfg};
    const std::uint64_t tx_i = 0x1001, tx_j = 0x2002;
    auto &fi = nic.remoteFilters(tx_i);
    for (Addr line = 0; line < 8 * kCacheLineBytes;
         line += kCacheLineBytes)
        fi.readBf.insert(line);
    std::printf("[4a] remote tx i read 8 lines at node y; "
                "RemoteReadBF_i occupancy: %u bits set of %u\n",
                fi.readBf.popcount(), fi.readBf.sizeBits());

    // A committing writer checks its write addresses against them.
    Addr conflicting = 3 * kCacheLineBytes;
    auto hits = nic.conflictingRemoteTxns(conflicting, tx_j,
                                          /*check_reads=*/true);
    std::printf("[4a] tx j commits a write to line 0x%llx -> conflicts "
                "with %zu remote transaction(s)\n",
                (unsigned long long)conflicting, hits.size());

    // ---- Module 2 + 3: WrTX ID tags and the split local write BF --------
    mem::LlcDirectory llc{cfg.llcBytesPerCore * cfg.coresPerNode,
                          cfg.llcWays};
    bloom::SplitWriteBloomFilter wr_bf{cfg.coreWriteBf, llc.numSets()};
    bloom::BloomFilter rd_bf{cfg.coreReadBf.bits,
                             cfg.coreReadBf.numHashes};
    for (Addr line = 0x10000; line < 0x10000 + 5 * kCacheLineBytes;
         line += kCacheLineBytes) {
        llc.setWrTxId(line, tx_j);
        wr_bf.insert(line);
    }
    std::printf("\n[2]  5 speculative writes tagged in the directory; "
                "WrTX ID of 0x10040 = 0x%llx\n",
                (unsigned long long)llc.wrTxIdOf(0x10040));
    std::printf("[3]  split write BF: WrBF2 covers %u set group(s), "
                "%zu candidate LLC sets (of %llu total)\n",
                wr_bf.bf2Popcount(), wr_bf.candidateLlcSets().size(),
                (unsigned long long)llc.numSets());

    // ---- Figure 8: Find-LLC-Tags -----------------------------------------
    auto lines = llc.linesWrittenBy(tx_j);
    std::printf("[V-C] Find-LLC-Tags(tx j) -> %zu lines "
                "(80-120 cycles in hardware)\n",
                lines.size());

    // ---- Figure 7: partial directory locking ------------------------------
    bloom::LockingBufferBank bank{4};
    auto acq = bank.tryAcquire(tx_j, rd_bf, wr_bf, lines);
    std::printf("\n[V-B] tx j partially locks the directory: %s\n",
                acq == bloom::AcquireResult::Acquired ? "acquired"
                                                      : "failed");
    std::printf("[V-B] concurrent read of a locked line denied: %s\n",
                bank.accessBlocked(0x10040, false, tx_i) ? "yes"
                                                         : "no");
    std::printf("[V-B] unrelated write allowed: %s\n",
                bank.accessBlocked(0x900000, true, tx_i) ? "no"
                                                         : "yes");

    // Commit completes: clear tags, release the lock, drop the filters.
    llc.clearTxTags(tx_j, /*invalidate=*/false);
    bank.release(tx_j);
    nic.clearRemoteFilters(tx_i);
    std::printf("\n[V-A] commit done: %llu tagged lines remain, "
                "lock released, NIC filters cleared\n",
                (unsigned long long)llc.numLinesWrittenBy(tx_j));
    return 0;
}
