/**
 * @file
 * Key-value store scenario: the same YCSB mix over the four index
 * structures of Section VII (HashTable, skip-list Map, B-Tree,
 * B+Tree), showing how index depth changes both absolute throughput
 * and the benefit of hardware-assisted transactions.
 *
 * Usage: kvstore_comparison [a|b]   (YCSB workload, default a)
 */

#include <cstdio>
#include <cstring>

#include "core/runner.hh"

int
main(int argc, char **argv)
{
    using namespace hades;

    workload::AppKind app = workload::AppKind::YcsbA;
    if (argc > 1 && std::strcmp(argv[1], "b") == 0)
        app = workload::AppKind::YcsbB;

    std::printf("YCSB-%s over the four store types (N=5, C=5, m=2)\n\n",
                app == workload::AppKind::YcsbA ? "A (50%% writes)"
                                                : "B (5%% writes)");

    // First show what each index traversal costs.
    std::printf("index traversal depth (avg index records/lookup):\n");
    for (auto kind :
         {kvs::StoreKind::HashTable, kvs::StoreKind::Map,
          kvs::StoreKind::BTree, kvs::StoreKind::BPlusTree}) {
        auto store = kvs::makeStore(kind, 5);
        mem::Placement placement{5, 100'000, 256};
        store->populate(placement, 100'000);
        std::printf("  %-8s %.1f\n", store->name(),
                    store->averageDepth());
    }
    std::printf("\n%-8s %14s %14s %14s | %8s %8s\n", "store",
                "Baseline", "HADES-H", "HADES", "H-H/B", "HADES/B");

    for (auto kind :
         {kvs::StoreKind::HashTable, kvs::StoreKind::Map,
          kvs::StoreKind::BTree, kvs::StoreKind::BPlusTree}) {
        double tps[3] = {};
        int i = 0;
        for (auto engine : {protocol::EngineKind::Baseline,
                            protocol::EngineKind::HadesHybrid,
                            protocol::EngineKind::Hades}) {
            core::RunSpec spec;
            spec.engine = engine;
            spec.mix = {core::MixEntry{app, kind}};
            spec.txnsPerContext = 80;
            spec.scaleKeys = 100'000;
            tps[i++] = core::runOne(spec).throughputTps;
        }
        std::printf("%-8s %14.0f %14.0f %14.0f | %8.2f %8.2f\n",
                    kvs::storeKindName(kind), tps[0], tps[1], tps[2],
                    tps[1] / tps[0], tps[2] / tps[0]);
    }
    return 0;
}
