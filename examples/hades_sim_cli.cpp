/**
 * @file
 * Full command-line driver: run any single configuration of the
 * simulator and print a complete report. This is the "swiss-army"
 * entry point for exploring the design space beyond the canned benches.
 *
 * Examples:
 *   hades_sim_cli --engine hades --app tpcc --nodes 8 --cores 10
 *   hades_sim_cli --engine baseline --app ycsb-a --store btree \
 *                 --net-rt-us 1 --txns 200
 *   hades_sim_cli --engine hades --app smallbank --replication 2
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/runner.hh"
#include "sweep.hh"

namespace
{

using namespace hades;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --engine baseline|hades-h|hades   (default hades)\n"
        "  --app ycsb-a|ycsb-b|ycsb-e|tpcc|tatp|smallbank\n"
        "  --store ht|map|btree|b+tree       (default ht; YCSB only)\n"
        "  --nodes N      --cores C          --slots m\n"
        "  --txns per-context commits        (default 100)\n"
        "  --keys table scale                (default 150000)\n"
        "  --net-rt-us RT                    (default 2)\n"
        "  --local-frac F                    (0..1; default uniform)\n"
        "  --replication K                   (default 0 = off)\n"
        "  --seed S\n"
        "  --fault-drop P                    per-message loss prob\n"
        "  --fault-dup P                     duplicate-delivery prob\n"
        "  --fault-delay P                   reorder-delay prob\n"
        "  --fault-corrupt P                 payload-corruption prob\n"
        "                                    (NIC CRC drops the copy)\n"
        "  --fault-seed S                    fault RNG seed\n"
        "  --crash-forever N@T               node N permanently fail-\n"
        "                                    stops at T microseconds\n"
        "  --partition A-B@T1:T2             drop A->B traffic in\n"
        "                                    [T1,T2) us (directed)\n"
        "  --partition-sym A-B@T1:T2         same, both directions\n"
        "  --isolate N@T1:T2                 cut node N from everyone\n"
        "                                    for [T1,T2) us\n"
        "  --slow-nic N:xK@T1:T2             grey fault: traffic\n"
        "                                    touching node N runs xK\n"
        "                                    slower in [T1,T2) us\n"
        "  --slow-link A-B:xK@T1:T2          inflate A->B latency xK\n"
        "  --slow-link-sym A-B:xK@T1:T2      same, both directions\n"
        "  --straggle-core N:xK@T1:T2        node N's cores lose a\n"
        "                                    1-1/K duty cycle\n"
        "  --slo                             latency-SLO tracker +\n"
        "                                    hedged remote reads\n"
        "                                    (implies faults)\n"
        "  --no-hedge                        SLO tracker only, no\n"
        "                                    hedged round trips\n"
        "  --hedge-delay-pct P               hedge fires at P%% of the\n"
        "                                    net RT (default 150)\n"
        "  --quarantine                      CM drains sustained-\n"
        "                                    degraded nodes (implies\n"
        "                                    --slo --recovery and\n"
        "                                    replication)\n"
        "  --admission                       token-bucket admission\n"
        "                                    control + retry budgets\n"
        "  --admission-cap N                 bucket capacity\n"
        "  --admission-refill N              tokens per refill tick\n"
        "  --admission-depth N               in-flight shed bound\n"
        "                                    (0 = tokens only)\n"
        "  --retry-budget-pct P              retries granted per 100\n"
        "                                    admitted txns\n"
        "  --recovery                        leases + view changes +\n"
        "                                    backup promotion\n"
        "  --join N@T                        spare node N joins at T\n"
        "                                    microseconds (implies\n"
        "                                    --recovery; needs\n"
        "                                    --replication and\n"
        "                                    --initial-members)\n"
        "  --drain N@T                       planned-drain node N at T\n"
        "                                    microseconds (implies\n"
        "                                    --recovery + replication)\n"
        "  --initial-members M               nodes M..N-1 start as\n"
        "                                    spares (join targets)\n"
        "  --migrate-batch N                 records per migration\n"
        "                                    batch (default 32)\n"
        "  --migrate-interval-us T           batch throttle interval\n"
        "  --retry-base-us T --retry-cap-us T  retransmit/resend RTO\n"
        "  --max-commit-resends N            commit Ack-timeout budget\n"
        "  --max-reliable-resends N          reliable-channel budget\n"
        "                                    (0 = unbounded)\n"
        "  --lease-interval-us T --lease-timeout-us T\n"
        "  --backoff-cycles N                squash-retry backoff base\n"
        "  --max-squashes N                  lock-mode fallback bound\n"
        "  --audit | --no-audit              correctness auditor\n"
        "                                    (default: on in debug "
        "builds)\n"
        "  --shards N                        kernel shard count\n"
        "                                    (default 1 = serial;\n"
        "                                    any N is bit-identical)\n"
        "  --shard-window-us T               override the sync window\n"
        "  --shards-det                      force the deterministic\n"
        "                                    (non-threaded) executor\n"
        "  --all-engines                     run the config under all\n"
        "                                    three engines, in parallel\n"
        "  --jobs N                          sweep worker threads\n"
        "  --smoke                           shrink to a smoke run\n"
        "  --json PATH                       hades-sweep-v1 report\n",
        argv0);
    std::exit(1);
}

protocol::EngineKind
parseEngine(const std::string &s, const char *argv0)
{
    if (s == "baseline")
        return protocol::EngineKind::Baseline;
    if (s == "hades-h" || s == "hybrid")
        return protocol::EngineKind::HadesHybrid;
    if (s == "hades")
        return protocol::EngineKind::Hades;
    usage(argv0);
}

workload::AppKind
parseApp(const std::string &s, const char *argv0)
{
    if (s == "ycsb-a")
        return workload::AppKind::YcsbA;
    if (s == "ycsb-b")
        return workload::AppKind::YcsbB;
    if (s == "ycsb-e")
        return workload::AppKind::YcsbE;
    if (s == "tpcc")
        return workload::AppKind::Tpcc;
    if (s == "tatp")
        return workload::AppKind::Tatp;
    if (s == "smallbank")
        return workload::AppKind::Smallbank;
    usage(argv0);
}

kvs::StoreKind
parseStore(const std::string &s, const char *argv0)
{
    if (s == "ht")
        return kvs::StoreKind::HashTable;
    if (s == "map")
        return kvs::StoreKind::Map;
    if (s == "btree")
        return kvs::StoreKind::BTree;
    if (s == "b+tree" || s == "bptree")
        return kvs::StoreKind::BPlusTree;
    usage(argv0);
}

/** Parse "T1:T2" (microseconds) into a [at, until) window. */
bool
parseWindow(const std::string &s, Tick &at, Tick &until)
{
    auto colon = s.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= s.size())
        return false;
    at = us(std::atoll(s.substr(0, colon).c_str()));
    until = us(std::atoll(s.substr(colon + 1).c_str()));
    return until > at;
}

/** Parse "A-B@T1:T2" into a one-edge partition window. */
bool
parsePartition(const std::string &v, bool symmetric,
               FaultConfig::PartitionWindow &w)
{
    auto dash = v.find('-');
    auto sep = v.find('@');
    if (dash == std::string::npos || sep == std::string::npos ||
        dash == 0 || dash + 1 >= sep || sep + 1 >= v.size())
        return false;
    w = FaultConfig::PartitionWindow{};
    w.edges.emplace_back(
        NodeId(std::atoi(v.substr(0, dash).c_str())),
        NodeId(std::atoi(v.substr(dash + 1, sep - dash - 1).c_str())));
    w.symmetric = symmetric;
    return parseWindow(v.substr(sep + 1), w.at, w.until);
}

/** Parse the ":xK@T1:T2" tail shared by every grey-fault flag:
 *  factor (xK, K possibly fractional -> integer percent) + window. */
bool
parseGreyTail(const std::string &v, std::size_t colon,
              FaultConfig::GreyEvent &g)
{
    auto sep = v.find('@', colon);
    if (sep == std::string::npos || colon + 2 >= sep ||
        v[colon + 1] != 'x' || sep + 1 >= v.size())
        return false;
    double factor =
        std::atof(v.substr(colon + 2, sep - colon - 2).c_str());
    g.factorPct = std::uint32_t(factor * 100.0 + 0.5);
    return g.factorPct > 100 &&
           parseWindow(v.substr(sep + 1), g.at, g.until);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hades;

    auto &sweep = bench::Sweep::instance();
    sweep.parseArgs(&argc, argv);

    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.txnsPerContext = 100;
    spec.scaleKeys = 150'000;
    core::MixEntry entry{workload::AppKind::YcsbA,
                         kvs::StoreKind::HashTable};
    bool all_engines = false;
    // --isolate requests, materialized once numNodes is final.
    struct Isolate
    {
        NodeId node;
        Tick at, until;
    };
    std::vector<Isolate> isolates;

    for (int i = 1; i < argc; ++i) {
        std::string opt = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (opt == "--engine")
            spec.engine = parseEngine(next(), argv[0]);
        else if (opt == "--app")
            entry.app = parseApp(next(), argv[0]);
        else if (opt == "--store")
            entry.store = parseStore(next(), argv[0]);
        else if (opt == "--nodes")
            spec.cluster.numNodes =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--cores")
            spec.cluster.coresPerNode =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--slots")
            spec.cluster.slotsPerCore =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--txns")
            spec.txnsPerContext =
                std::uint64_t(std::atoll(next().c_str()));
        else if (opt == "--keys")
            spec.scaleKeys = std::uint64_t(std::atoll(next().c_str()));
        else if (opt == "--net-rt-us")
            spec.cluster.netRoundTrip =
                us(std::atoll(next().c_str()));
        else if (opt == "--local-frac")
            spec.cluster.forcedLocalFraction =
                std::atof(next().c_str());
        else if (opt == "--replication")
            spec.replication.degree =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--seed")
            spec.cluster.seed = std::uint64_t(std::atoll(next().c_str()));
        else if (opt == "--fault-drop") {
            spec.cluster.faults.enabled = true;
            spec.cluster.faults.dropAll(std::atof(next().c_str()));
        } else if (opt == "--fault-dup") {
            spec.cluster.faults.enabled = true;
            spec.cluster.faults.dupAll(std::atof(next().c_str()));
        } else if (opt == "--fault-delay") {
            spec.cluster.faults.enabled = true;
            spec.cluster.faults.delayAll(std::atof(next().c_str()));
        } else if (opt == "--fault-corrupt") {
            spec.cluster.faults.enabled = true;
            spec.cluster.faults.corruptAll(std::atof(next().c_str()));
        } else if (opt == "--partition" || opt == "--partition-sym") {
            FaultConfig::PartitionWindow w;
            if (!parsePartition(next(), opt == "--partition-sym", w))
                usage(argv[0]);
            spec.cluster.faults.enabled = true;
            spec.cluster.faults.partitions.push_back(w);
        } else if (opt == "--isolate") {
            std::string v = next();
            auto sep = v.find('@');
            Tick at = 0, until = 0;
            if (sep == std::string::npos || sep == 0 ||
                sep + 1 >= v.size() ||
                !parseWindow(v.substr(sep + 1), at, until))
                usage(argv[0]);
            spec.cluster.faults.enabled = true;
            isolates.push_back(
                {NodeId(std::atoi(v.substr(0, sep).c_str())), at,
                 until});
        } else if (opt == "--slow-nic" || opt == "--straggle-core") {
            std::string v = next();
            auto colon = v.find(':');
            FaultConfig::GreyEvent g;
            g.kind = opt == "--slow-nic"
                         ? FaultConfig::GreyEvent::Kind::SlowNic
                         : FaultConfig::GreyEvent::Kind::StraggleCore;
            if (colon == std::string::npos || colon == 0 ||
                !parseGreyTail(v, colon, g))
                usage(argv[0]);
            g.node = NodeId(std::atoi(v.substr(0, colon).c_str()));
            spec.cluster.faults.enabled = true;
            spec.cluster.faults.greyEvents.push_back(g);
        } else if (opt == "--slow-link" || opt == "--slow-link-sym") {
            std::string v = next();
            auto dash = v.find('-');
            FaultConfig::GreyEvent g;
            g.kind = FaultConfig::GreyEvent::Kind::SlowLink;
            g.symmetric = opt == "--slow-link-sym";
            auto colon =
                dash == std::string::npos ? dash : v.find(':', dash);
            if (dash == std::string::npos || dash == 0 ||
                colon == std::string::npos || dash + 1 >= colon ||
                !parseGreyTail(v, colon, g))
                usage(argv[0]);
            g.node = NodeId(std::atoi(v.substr(0, dash).c_str()));
            g.dst = NodeId(
                std::atoi(v.substr(dash + 1, colon - dash - 1).c_str()));
            spec.cluster.faults.enabled = true;
            spec.cluster.faults.greyEvents.push_back(g);
        } else if (opt == "--slo")
            spec.cluster.slo.enabled = true;
        else if (opt == "--no-hedge")
            spec.cluster.slo.hedgeReads = false;
        else if (opt == "--hedge-delay-pct")
            spec.cluster.slo.hedgeDelayPct =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--quarantine") {
            spec.cluster.slo.enabled = true;
            spec.cluster.slo.quarantine = true;
        } else if (opt == "--admission")
            spec.cluster.admission.enabled = true;
        else if (opt == "--admission-cap")
            spec.cluster.admission.bucketCap =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--admission-refill")
            spec.cluster.admission.refillTokens =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--admission-depth")
            spec.cluster.admission.maxInFlight =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--retry-budget-pct")
            spec.cluster.admission.retryBudgetPct =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--fault-seed")
            spec.cluster.faults.seed =
                std::uint64_t(std::atoll(next().c_str()));
        else if (opt == "--crash-forever") {
            std::string v = next();
            auto at = v.find('@');
            if (at == std::string::npos || at == 0 ||
                at + 1 >= v.size())
                usage(argv[0]);
            FaultConfig::NodeEvent ev;
            ev.node = NodeId(std::atoi(v.substr(0, at).c_str()));
            ev.at = us(std::atoll(v.substr(at + 1).c_str()));
            ev.crash = true;
            ev.forever = true;
            spec.cluster.faults.enabled = true;
            spec.cluster.faults.nodeEvents.push_back(ev);
        } else if (opt == "--join" || opt == "--drain") {
            std::string v = next();
            auto at = v.find('@');
            if (at == std::string::npos || at == 0 ||
                at + 1 >= v.size())
                usage(argv[0]);
            MembershipConfig::NodeEventAt ev;
            ev.node = NodeId(std::atoi(v.substr(0, at).c_str()));
            ev.at = us(std::atoll(v.substr(at + 1).c_str()));
            if (opt == "--join")
                spec.cluster.membership.joins.push_back(ev);
            else
                spec.cluster.membership.drains.push_back(ev);
        } else if (opt == "--initial-members")
            spec.cluster.membership.initialMembers =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--migrate-batch")
            spec.cluster.membership.migrateBatchRecords =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--migrate-interval-us")
            spec.cluster.membership.migrateBatchInterval =
                us(std::atoll(next().c_str()));
        else if (opt == "--recovery")
            spec.cluster.recovery.enabled = true;
        else if (opt == "--retry-base-us")
            spec.cluster.tuning.retryTimeoutBase =
                us(std::atoll(next().c_str()));
        else if (opt == "--retry-cap-us")
            spec.cluster.tuning.retryTimeoutCap =
                us(std::atoll(next().c_str()));
        else if (opt == "--max-commit-resends")
            spec.cluster.tuning.maxCommitResends =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--max-reliable-resends")
            spec.cluster.tuning.maxReliableResends =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--lease-interval-us")
            spec.cluster.tuning.leaseInterval =
                us(std::atoll(next().c_str()));
        else if (opt == "--lease-timeout-us")
            spec.cluster.tuning.leaseTimeout =
                us(std::atoll(next().c_str()));
        else if (opt == "--backoff-cycles")
            spec.cluster.tuning.retryBackoffBaseCycles =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--max-squashes")
            spec.cluster.tuning.maxSquashesBeforeLockMode =
                std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--shards")
            spec.shards = std::uint32_t(std::atoi(next().c_str()));
        else if (opt == "--shard-window-us")
            spec.cluster.sharding.windowTicksOverride =
                us(std::atoll(next().c_str()));
        else if (opt == "--shards-det")
            spec.cluster.sharding.forceDeterministic = true;
        else if (opt == "--audit")
            spec.audit = true;
        else if (opt == "--no-audit")
            spec.audit = false;
        else if (opt == "--all-engines")
            all_engines = true;
        else
            usage(argv[0]);
    }
    if (spec.cluster.numNodes < 2 || spec.cluster.coresPerNode < 1 ||
        spec.cluster.slotsPerCore < 1)
        usage(argv[0]);
    if (spec.cluster.membership.enabled()) {
        // Membership rides the recovery substrate (epochs, fencing,
        // squash resolution) and needs replication for image resync.
        spec.cluster.recovery.enabled = true;
        if (!spec.replication.enabled())
            spec.replication.degree = 1;
        for (const auto &j : spec.cluster.membership.joins)
            if (j.node >= spec.cluster.numNodes)
                usage(argv[0]);
        for (const auto &d : spec.cluster.membership.drains)
            if (d.node >= spec.cluster.numNodes)
                usage(argv[0]);
    }
    if (spec.cluster.slo.enabled) {
        // The SLO tracker samples RTTs off the faulty-NIC path, so it
        // (and hedging) require the fault layer even with no faults
        // configured.
        spec.cluster.faults.enabled = true;
        if (spec.cluster.slo.quarantine) {
            // Quarantine drains a live node through the elastic-
            // membership path: recovery substrate + replicas needed.
            spec.cluster.recovery.enabled = true;
            if (!spec.replication.enabled())
                spec.replication.degree = 1;
        }
    }
    for (const auto &g : spec.cluster.faults.greyEvents) {
        if (g.node >= spec.cluster.numNodes)
            usage(argv[0]);
        if (g.kind == FaultConfig::GreyEvent::Kind::SlowLink &&
            (g.dst >= spec.cluster.numNodes || g.dst == g.node))
            usage(argv[0]);
    }
    for (const auto &iso : isolates) {
        if (iso.node >= spec.cluster.numNodes)
            usage(argv[0]);
        spec.cluster.faults.partitions.push_back(
            FaultConfig::PartitionWindow::isolate(
                iso.node, spec.cluster.numNodes, iso.at, iso.until));
    }
    spec.mix = {entry};
    if (sweep.smoke())
        spec = bench::Sweep::applySmoke(spec);

    auto keyFor = [](protocol::EngineKind e) {
        return std::string("cli/") + protocol::engineKindName(e);
    };

    if (all_engines) {
        const protocol::EngineKind engines[] = {
            protocol::EngineKind::Baseline,
            protocol::EngineKind::HadesHybrid,
            protocol::EngineKind::Hades,
        };
        for (auto e : engines) {
            core::RunSpec s = spec;
            s.engine = e;
            sweep.add(keyFor(e), s);
        }
        sweep.runAll();
        std::printf("%-10s %14s %12s %12s %12s\n", "engine", "txn/s",
                    "mean lat", "p95 lat", "vs Baseline");
        double base = 0;
        for (auto e : engines) {
            core::RunSpec s = spec;
            s.engine = e;
            const auto &r = sweep.get(keyFor(e), s);
            if (e == protocol::EngineKind::Baseline)
                base = r.throughputTps;
            std::printf("%-10s %14.0f %10.2fus %10.2fus %11.2fx\n",
                        protocol::engineKindName(e), r.throughputTps,
                        r.meanLatencyUs, r.p95LatencyUs,
                        r.throughputTps / base);
        }
        sweep.finish("hades_sim_cli");
        return 0;
    }

    sweep.add(keyFor(spec.engine), spec);
    sweep.runAll();
    const auto &res = sweep.get(keyFor(spec.engine), spec);

    std::printf("workload      %s\n", res.label.c_str());
    std::printf("engine        %s\n",
                protocol::engineKindName(spec.engine));
    std::printf("cluster       N=%u C=%u m=%u, net RT %lldus\n",
                spec.cluster.numNodes, spec.cluster.coresPerNode,
                spec.cluster.slotsPerCore,
                (long long)(spec.cluster.netRoundTrip / kMicrosecond));
    std::printf("committed     %lu txns in %.3f ms simulated "
                "(%lu attempts)\n",
                (unsigned long)res.stats.committed,
                double(res.simTime) / double(kMillisecond),
                (unsigned long)res.stats.attempts);
    std::printf("throughput    %.0f txn/s\n", res.throughputTps);
    std::printf("latency       mean %.2fus  p50 %.2fus  p95 %.2fus\n",
                res.meanLatencyUs, res.p50LatencyUs, res.p95LatencyUs);
    std::printf("phases        exec %.2fus  validation %.2fus  "
                "commit %.2fus\n",
                res.execUs, res.validationUs, res.commitUs);
    std::printf("squashes      %.2f per committed txn\n",
                res.stats.committed
                    ? double(res.stats.totalSquashes()) /
                          double(res.stats.committed)
                    : 0.0);
    for (std::size_t i = 0;
         i < std::size_t(txn::SquashReason::NumReasons); ++i) {
        if (res.stats.squashes[i])
            std::printf("  %-22s %lu\n",
                        txn::squashReasonName(txn::SquashReason(i)),
                        (unsigned long)res.stats.squashes[i]);
    }
    std::printf("lock-mode     %lu fallbacks\n",
                (unsigned long)res.stats.lockModeFallbacks);
    std::printf("network       %lu messages, %.1f MB\n",
                (unsigned long)res.stats.netMessages,
                double(res.stats.netBytes) / 1e6);
    std::printf("cpu           %.3f ms core-busy across the cluster\n",
                double(res.stats.totalBusyTicks) /
                    double(kMillisecond));
    std::printf("footprint     max %lu lines read / %lu written per "
                "txn\n",
                (unsigned long)res.stats.maxLinesRead,
                (unsigned long)res.stats.maxLinesWritten);
    if (res.shardsUsed > 1)
        std::printf("kernel        %u shards (%s), %lu window "
                    "barriers, %lu cross-shard events%s\n",
                    res.shardsUsed,
                    res.shardsThreaded ? "threaded" : "deterministic",
                    (unsigned long)res.shardWindows,
                    (unsigned long)res.crossShardEvents,
                    res.serialRerun ? ", lock-mode serial re-run" : "");
    if (res.stats.bfConflictChecks)
        std::printf("bloom         %lu checks, %lu false positives "
                    "(%.4f%%)\n",
                    (unsigned long)res.stats.bfConflictChecks,
                    (unsigned long)res.stats.bfFalsePositives,
                    100.0 * res.bfFalsePositiveRate);
    if (spec.replication.degree)
        std::printf("replication   %lu replicated commits, %lu aborts, "
                    "%lu lost updates\n",
                    (unsigned long)res.replicatedCommits,
                    (unsigned long)res.replicationAborts,
                    (unsigned long)res.lostReplicaMessages);
    if (spec.cluster.faults.enabled) {
        std::printf("faults        %lu drops (%lu crash, %lu "
                    "partition), %lu dups, %lu delays, %lu nic "
                    "stalls\n",
                    (unsigned long)res.faultDrops,
                    (unsigned long)res.faultCrashDrops,
                    (unsigned long)res.partitionDrops,
                    (unsigned long)res.faultDuplicates,
                    (unsigned long)res.faultDelays,
                    (unsigned long)res.faultNicStalls);
        if (!spec.cluster.faults.partitions.empty())
            std::printf("partitions    %lu windows, %lu healed "
                        "in-run\n",
                        (unsigned long)spec.cluster.faults.partitions
                            .size(),
                        (unsigned long)res.partitionHeals);
        if (res.corruptDrops)
            std::printf("corruption    %lu copies CRC-rejected at the "
                        "NIC\n",
                        (unsigned long)res.corruptDrops);
        std::printf("recovery      %lu nic retransmits, %lu commit "
                    "resends, %lu reliable resends, %lu timeout "
                    "squashes\n",
                    (unsigned long)res.netRetransmits,
                    (unsigned long)res.timeoutResends,
                    (unsigned long)res.reliableResends,
                    (unsigned long)res.timeoutSquashes);
        if (spec.cluster.faults.anyGrey())
            std::printf("grey          %lu copies slowed, %lu "
                        "straggler core reservations\n",
                        (unsigned long)res.greyDelays,
                        (unsigned long)res.stragglerReserves);
    }
    if (spec.cluster.slo.enabled) {
        std::printf("slo           %lu samples, %lu suspect + %lu "
                    "degraded transitions\n",
                    (unsigned long)res.sloSamples,
                    (unsigned long)res.sloSuspectTransitions,
                    (unsigned long)res.sloDegradedTransitions);
        std::printf("hedging       %lu hedged sends, %lu hedge wins, "
                    "%lu quarantines\n",
                    (unsigned long)res.hedgedSends,
                    (unsigned long)res.hedgeWins,
                    (unsigned long)res.quarantines);
    }
    if (spec.cluster.admission.enabled)
        std::printf("admission     %lu admitted, %lu shed, %lu retry-"
                    "budget deferrals\n",
                    (unsigned long)res.admittedTxns,
                    (unsigned long)res.shedTxns,
                    (unsigned long)res.retryBudgetDeferrals);
    if (res.recoveryEnabled) {
        std::printf("crash-recov   %lu view changes, %lu records "
                    "re-homed, %lu in-doubt committed + %lu aborted, "
                    "%lu writes replayed, %lu images resynced, "
                    "%lu stale msgs fenced\n",
                    (unsigned long)res.viewChanges,
                    (unsigned long)res.promotedRecords,
                    (unsigned long)res.inDoubtCommitted,
                    (unsigned long)res.inDoubtAborted,
                    (unsigned long)res.replayedWrites,
                    (unsigned long)res.resyncedImages,
                    (unsigned long)res.fencedStaleMessages);
        std::printf("cm group      %lu failovers, %lu quorum "
                    "refusals, %lu stale lease grants, %lu divergent "
                    "records, %lu lease probes\n",
                    (unsigned long)res.cmFailovers,
                    (unsigned long)res.quorumRefusals,
                    (unsigned long)res.staleLeaseGrants,
                    (unsigned long)res.divergentRecords,
                    (unsigned long)res.leaseProbes);
    }
    if (res.membershipEnabled) {
        std::printf("membership    %s: %lu records migrated in %lu "
                    "batches, %lu joins completed, %lu drain-step "
                    "events, %lu stale-placement retries\n",
                    res.membershipComplete ? "complete" : "ABORTED",
                    (unsigned long)res.recordsMigrated,
                    (unsigned long)res.migrationBatches,
                    (unsigned long)res.joinsCompleted,
                    (unsigned long)res.drainDurationEvents,
                    (unsigned long)res.stalePlacementRetries);
    }
    if (res.audited)
        std::printf("audit         PASS: %lu commits + %lu aborts, "
                    "%lu graph edges, %lu hardware checks\n",
                    (unsigned long)res.auditedCommits,
                    (unsigned long)res.auditedAborts,
                    (unsigned long)res.auditGraphEdges,
                    (unsigned long)res.auditChecks);
    sweep.finish("hades_sim_cli");
    return 0;
}
