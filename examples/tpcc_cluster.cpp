/**
 * @file
 * OLTP scenario: TPC-C style order processing on a configurable
 * cluster, sweeping the network round-trip latency to show where
 * hardware-assisted transactions pay off the most (Figure 12a's
 * insight: faster networks make software overheads the bottleneck).
 *
 * Usage: tpcc_cluster [nodes] [cores_per_node]
 */

#include <cstdio>
#include <cstdlib>

#include "core/runner.hh"

int
main(int argc, char **argv)
{
    using namespace hades;

    std::uint32_t nodes = argc > 1 ? std::uint32_t(std::atoi(argv[1]))
                                   : 5;
    std::uint32_t cores = argc > 2 ? std::uint32_t(std::atoi(argv[2]))
                                   : 5;
    if (nodes < 2 || cores < 1) {
        std::fprintf(stderr,
                     "usage: %s [nodes>=2] [cores_per_node>=1]\n",
                     argv[0]);
        return 1;
    }

    std::printf("TPC-C order processing on %u nodes x %u cores\n\n",
                nodes, cores);
    std::printf("%-8s %-10s %14s %12s %10s\n", "net RT", "engine",
                "txn/s", "mean lat", "squash");

    for (Tick rt : {us(1), us(2), us(3)}) {
        double baseline_tps = 0;
        for (auto engine : {protocol::EngineKind::Baseline,
                            protocol::EngineKind::HadesHybrid,
                            protocol::EngineKind::Hades}) {
            core::RunSpec spec;
            spec.cluster.numNodes = nodes;
            spec.cluster.coresPerNode = cores;
            spec.cluster.netRoundTrip = rt;
            spec.engine = engine;
            spec.mix = {core::MixEntry{workload::AppKind::Tpcc,
                                       kvs::StoreKind::HashTable}};
            spec.txnsPerContext = 80;
            spec.scaleKeys = 100'000;

            auto res = core::runOne(spec);
            if (engine == protocol::EngineKind::Baseline)
                baseline_tps = res.throughputTps;
            std::printf("%4lldus  %-10s %14.0f %10.1fus %9.1f%%  "
                        "(%.2fx)\n",
                        (long long)(rt / kMicrosecond),
                        protocol::engineKindName(engine),
                        res.throughputTps, res.meanLatencyUs,
                        100.0 * res.squashRate,
                        res.throughputTps / baseline_tps);
        }
        std::printf("\n");
    }
    std::printf("Note how the HADES advantage grows as the network "
                "gets faster: the software\nbookkeeping HADES removes "
                "is a larger share of what remains.\n");
    return 0;
}
