/**
 * @file
 * Quickstart: simulate a 5-node HADES cluster running YCSB-A over a
 * distributed hash table, compare all three protocol configurations,
 * and print the headline metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/runner.hh"

int
main()
{
    using namespace hades;

    std::printf("HADES quickstart: YCSB-A over a distributed hash "
                "table, N=5 nodes x C=5 cores x m=2 contexts\n\n");
    std::printf("%-10s %14s %12s %12s %10s\n", "engine", "txn/s",
                "mean lat", "p95 lat", "squash/att");

    double baseline_tps = 0;
    for (auto engine : {protocol::EngineKind::Baseline,
                        protocol::EngineKind::HadesHybrid,
                        protocol::EngineKind::Hades}) {
        core::RunSpec spec;          // Table III defaults
        spec.engine = engine;
        spec.mix = {core::MixEntry{workload::AppKind::YcsbA,
                                   kvs::StoreKind::HashTable}};
        spec.txnsPerContext = 100;   // committed txns per hw context
        spec.scaleKeys = 100'000;    // scaled-down key space

        core::RunResult res = core::runOne(spec);
        if (engine == protocol::EngineKind::Baseline)
            baseline_tps = res.throughputTps;

        std::printf("%-10s %14.0f %10.1fus %10.1fus %9.1f%%   "
                    "(%.2fx Baseline)\n",
                    protocol::engineKindName(engine), res.throughputTps,
                    res.meanLatencyUs, res.p95LatencyUs,
                    100.0 * res.squashRate,
                    res.throughputTps / baseline_tps);
    }

    std::printf("\nThe paper's Figure 9 reports 2.7x (HADES) and 2.3x "
                "(HADES-H) on average across eleven workloads;\nrun "
                "./build/bench/fig09_throughput for the full sweep.\n");
    return 0;
}
