/**
 * @file
 * Tests for the protocol correctness auditor.
 *
 * Three groups:
 *  - history-audit unit tests: hand-crafted observation sets, both
 *    known-good (must be accepted) and known-bad (write skew, lost
 *    update, fractured read, phantom version, dirty write, dangling
 *    txn -- every one must be rejected with the right violation kind);
 *  - structural-hook unit tests: the Bloom/Find-LLC-Tags/epoch/drain
 *    checks fire on fabricated hardware misbehaviour and stay silent
 *    on correct behaviour;
 *  - integration: every engine passes a fully audited run, fault-free
 *    and under message-level chaos, and enabling the auditor does not
 *    perturb the simulation (audited == unaudited, bit for bit).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "audit/auditor.hh"
#include "audit/history_graph.hh"
#include "bloom/bloom_filter.hh"
#include "bloom/split_write_bloom.hh"
#include "core/runner.hh"

namespace hades
{
namespace
{

using audit::AuditReport;
using audit::Auditor;
using audit::TxnObservation;
using audit::ViolationKind;
using protocol::EngineKind;

// --- history-audit unit tests ------------------------------------------------

TxnObservation
obs(std::uint64_t id, bool committed,
    std::vector<audit::ReadObs> reads,
    std::vector<audit::WriteObs> writes)
{
    TxnObservation o;
    o.id = id;
    o.engineId = id;
    o.committed = committed;
    o.aborted = !committed;
    o.reads = std::move(reads);
    o.writes = std::move(writes);
    return o;
}

AuditReport
audited(const std::vector<TxnObservation> &history)
{
    AuditReport report;
    audit::auditHistory(history, report);
    return report;
}

TEST(HistoryAudit, EmptyHistoryIsClean)
{
    auto report = audited({});
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(HistoryAudit, SerialHistoryAccepted)
{
    // T1 installs r1@1 and r2@1; T2 reads both and overwrites r1.
    auto report = audited({
        obs(1, true, {}, {{1, 1}, {2, 1}}),
        obs(2, true, {{1, 1}, {2, 1}}, {{1, 2}}),
        obs(3, true, {{1, 2}}, {{2, 2}}),
    });
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.committedTxns, 3u);
    // WW r1: T1->T2. WR: T1->T2 (x2), T2->T3. WW r2: T1->T3.
    // RW: T2(read r2@1) -> T3.
    EXPECT_GT(report.graphEdges, 0u);
}

TEST(HistoryAudit, AbortsAndPreRunReadsAccepted)
{
    // Reads of version 0 (pre-run state) need no audited writer, and
    // a clean abort contributes nothing to the history.
    auto report = audited({
        obs(1, true, {{7, 0}}, {{7, 1}}),
        obs(2, false, {{7, 1}}, {}),
    });
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.committedTxns, 1u);
    EXPECT_EQ(report.abortedTxns, 1u);
}

TEST(HistoryAudit, WriteSkewCycleRejected)
{
    // Classic write skew: both read {A, B} at the initial state, then
    // T1 overwrites A and T2 overwrites B. RW edges form T1 -> T2 ->
    // T1: not serializable, must be rejected.
    auto report = audited({
        obs(1, true, {{1, 0}, {2, 0}}, {{1, 1}}),
        obs(2, true, {{1, 0}, {2, 0}}, {{2, 1}}),
    });
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(ViolationKind::DependencyCycle))
        << report.summary();
}

TEST(HistoryAudit, LostUpdateRejected)
{
    // Two committed writers installed the same version of record 4:
    // one of them clobbered the other (lost update).
    auto report = audited({
        obs(1, true, {{4, 0}}, {{4, 1}}),
        obs(2, true, {{4, 0}}, {{4, 1}}),
    });
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(ViolationKind::BrokenVersionChain))
        << report.summary();
}

TEST(HistoryAudit, VersionGapRejected)
{
    // Versions 1 and 3 audited but nobody installed 2: some write
    // bypassed the audit (or the store).
    auto report = audited({
        obs(1, true, {}, {{9, 1}}),
        obs(2, true, {{9, 1}}, {{9, 3}}),
    });
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(ViolationKind::BrokenVersionChain))
        << report.summary();
}

TEST(HistoryAudit, FracturedReadRejected)
{
    // T1 writes A@1 and B@1 atomically. T2 reads A@1 (post-T1) but
    // B@0 (pre-T1): it saw half of T1.
    auto report = audited({
        obs(1, true, {}, {{1, 1}, {2, 1}}),
        obs(2, true, {{1, 1}, {2, 0}}, {}),
    });
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(ViolationKind::FracturedRead))
        << report.summary();
}

TEST(HistoryAudit, PhantomVersionRejected)
{
    // A read observed version 5 of record 3, which no audited
    // transaction installed (first audited version is 1).
    auto report = audited({
        obs(1, true, {}, {{3, 1}}),
        obs(2, true, {{3, 5}}, {}),
    });
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(ViolationKind::PhantomVersion))
        << report.summary();
}

TEST(HistoryAudit, DirtyWriteRejected)
{
    // An aborted transaction's write reached the committed store.
    auto report = audited({
        obs(1, false, {}, {{5, 1}}),
    });
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(ViolationKind::DirtyWrite))
        << report.summary();
}

TEST(HistoryAudit, DanglingTxnRejected)
{
    TxnObservation o = obs(1, false, {{1, 0}}, {});
    o.aborted = false; // never closed
    auto report = audited({o});
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(ViolationKind::DanglingTxn))
        << report.summary();
}

// --- structural-hook unit tests ----------------------------------------------

TEST(AuditorHooks, CleanRunThroughAllHooksPasses)
{
    Auditor a;
    std::uint64_t t = a.begin(0x42);
    a.noteRead(t, 1, 0);
    a.noteWrite(t, 1, 1);
    a.noteCommit(t);

    a.noteFilterProbe(true, true, "test-probe");   // true positive
    a.noteFilterProbe(true, false, "test-probe");  // false positive: ok
    a.noteFilterProbe(false, false, "test-probe"); // true negative

    bloom::BloomFilter bf;
    bf.insert(0x40);
    bf.insert(0x80);
    a.checkFilterCovers(bf, std::unordered_set<Addr>{0x40, 0x80},
                        "test-covers");

    a.noteLockAcquire(0x123 | (std::uint64_t(3) << 48));
    a.noteLockAcquire(0x123 | (std::uint64_t(4) << 48));
    a.noteDrained("test-structure", 0, 0);

    auto report = a.finalize();
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.filterProbesChecked, 5u);
    EXPECT_EQ(report.lockAcquiresChecked, 2u);
}

TEST(AuditorHooks, FilterFalseNegativeCaught)
{
    Auditor a;
    a.noteFilterProbe(false, true, "test-probe");
    auto report = a.finalize();
    EXPECT_TRUE(report.has(ViolationKind::BloomFalseNegative))
        << report.summary();
}

TEST(AuditorHooks, FilterCoverageGapCaught)
{
    Auditor a;
    bloom::BloomFilter bf; // empty: contains nothing
    a.checkFilterCovers(bf, std::unordered_set<Addr>{0x40},
                        "test-covers");
    auto report = a.finalize();
    EXPECT_TRUE(report.has(ViolationKind::BloomFalseNegative))
        << report.summary();
}

TEST(AuditorHooks, FindTagsExactMatchPasses)
{
    bloom::SplitWriteBloomFilter split(SplitWriteBloomParams{}, 4096);
    split.insert(0x1000);
    split.insert(0x2040);
    Auditor a;
    a.noteFindTags(7, {0x1000, 0x2040}, {0x1000, 0x2040}, &split);
    auto report = a.finalize();
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.findTagsChecked, 1u);
}

TEST(AuditorHooks, FindTagsLostLineCaught)
{
    // The enumeration came back short: a WrTX tag was lost.
    Auditor a;
    a.noteFindTags(7, {}, {0x1000}, nullptr);
    auto report = a.finalize();
    EXPECT_TRUE(report.has(ViolationKind::FindTagsMismatch))
        << report.summary();
}

TEST(AuditorHooks, FindTagsForeignLineCaught)
{
    // The enumeration returned a line the transaction never wrote.
    Auditor a;
    a.noteFindTags(7, {0x1000, 0x9000}, {0x1000}, nullptr);
    auto report = a.finalize();
    EXPECT_TRUE(report.has(ViolationKind::FindTagsMismatch))
        << report.summary();
}

TEST(AuditorHooks, FindTagsUncoveredBySplitFilterCaught)
{
    // The written line was never inserted into the split signature:
    // WrBF2's enable bit cannot cover its LLC set.
    bloom::SplitWriteBloomFilter split(SplitWriteBloomParams{}, 4096);
    Auditor a;
    a.noteFindTags(7, {0x1000}, {0x1000}, &split);
    auto report = a.finalize();
    EXPECT_FALSE(report.ok()) << report.summary();
}

TEST(AuditorHooks, LockEpochRegressionCaught)
{
    Auditor a;
    a.noteLockAcquire(0x123 | (std::uint64_t(5) << 48));
    a.noteLockAcquire(0x123 | (std::uint64_t(3) << 48));
    auto report = a.finalize();
    EXPECT_TRUE(report.has(ViolationKind::LockEpochRegression))
        << report.summary();
}

TEST(AuditorHooks, LockEpochWrapTolerated)
{
    // The 14-bit epoch field wraps; a jump from near the top back to
    // a small value is a wrap, not a regression.
    Auditor a;
    a.noteLockAcquire(0x123 | (std::uint64_t(0x3ffe) << 48));
    a.noteLockAcquire(0x123 | (std::uint64_t(1) << 48));
    // Distinct contexts track epochs independently.
    a.noteLockAcquire(0x456 | (std::uint64_t(9) << 48));
    auto report = a.finalize();
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(AuditorHooks, StateLeakCaught)
{
    Auditor a;
    a.noteDrained("llc-wrtx-tags", 1, 3);
    auto report = a.finalize();
    EXPECT_TRUE(report.has(ViolationKind::StateLeak))
        << report.summary();
}

// --- integration: audited runs through every engine --------------------------

struct AuditedRunCase
{
    EngineKind engine;
    bool faulty;
};

class AuditedRun : public ::testing::TestWithParam<AuditedRunCase>
{};

core::RunSpec
smallSpec(EngineKind kind, bool faulty)
{
    core::RunSpec spec;
    spec.engine = kind;
    spec.cluster.numNodes = 2;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 1;
    spec.cluster.seed = 11;
    spec.txnsPerContext = 25;
    spec.scaleKeys = 2'000;
    spec.audit = true;
    if (faulty) {
        spec.cluster.faults.enabled = true;
        spec.cluster.faults.dropAll(0.02);
        spec.cluster.faults.dupAll(0.05);
        spec.cluster.faults.delayAll(0.10);
        spec.cluster.tuning.retryTimeoutBase = us(4);
        spec.cluster.tuning.retryTimeoutCap = us(32);
        spec.cluster.tuning.maxCommitResends = 6;
    }
    return spec;
}

/**
 * A full audited run must pass for every engine, fault-free and under
 * message chaos: serializable history, no fractured reads, no hardware
 * false negatives, everything drained. runOne() panics on violation,
 * so reaching the assertions is the pass.
 */
TEST_P(AuditedRun, PassesFullAudit)
{
    const auto p = GetParam();
    auto res = core::runOne(smallSpec(p.engine, p.faulty));
    EXPECT_TRUE(res.audited);
    EXPECT_EQ(res.auditedCommits, res.stats.committed);
    EXPECT_GT(res.auditedCommits, 0u);
    // Contended small key space: the graph must have real edges.
    EXPECT_GT(res.auditGraphEdges, 0u);
    if (p.engine != EngineKind::Baseline || p.faulty) {
        // These engines take lock/filter paths the auditor checks;
        // fault-free Baseline may commit without ever locking a
        // remote record, but it still must audit its history.
        EXPECT_GT(res.auditChecks, 0u);
    }
}

std::string
auditedRunName(const ::testing::TestParamInfo<AuditedRunCase> &info)
{
    std::string n =
        info.param.engine == EngineKind::Baseline ? "Baseline"
        : info.param.engine == EngineKind::HadesHybrid ? "HadesH"
                                                       : "Hades";
    return n + (info.param.faulty ? "Faulty" : "Clean");
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, AuditedRun,
    ::testing::Values(
        AuditedRunCase{EngineKind::Baseline, false},
        AuditedRunCase{EngineKind::Hades, false},
        AuditedRunCase{EngineKind::HadesHybrid, false},
        AuditedRunCase{EngineKind::Baseline, true},
        AuditedRunCase{EngineKind::Hades, true},
        AuditedRunCase{EngineKind::HadesHybrid, true}),
    auditedRunName);

/**
 * The auditor is purely observational: the same spec with and without
 * it must produce identical simulated outcomes (time, commits,
 * messages, latency percentiles).
 */
TEST(AuditedRun, AuditDoesNotPerturbTheRun)
{
    for (auto kind : {EngineKind::Baseline, EngineKind::Hades,
                      EngineKind::HadesHybrid}) {
        auto spec = smallSpec(kind, false);
        spec.audit = false;
        auto plain = core::runOne(spec);
        spec.audit = true;
        auto checked = core::runOne(spec);

        EXPECT_FALSE(plain.audited);
        EXPECT_TRUE(checked.audited);
        EXPECT_EQ(plain.simTime, checked.simTime);
        EXPECT_EQ(plain.stats.committed, checked.stats.committed);
        EXPECT_EQ(plain.stats.attempts, checked.stats.attempts);
        EXPECT_EQ(plain.stats.netMessages, checked.stats.netMessages);
        EXPECT_EQ(plain.stats.netBytes, checked.stats.netBytes);
        EXPECT_EQ(plain.p95LatencyUs, checked.p95LatencyUs);
        EXPECT_EQ(plain.p50LatencyUs, checked.p50LatencyUs);
    }
}

/** Replicated HADES commits must also audit clean (Section V-A). */
TEST(AuditedRun, ReplicatedRunPassesAudit)
{
    auto spec = smallSpec(EngineKind::Hades, false);
    spec.replication.degree = 2;
    auto res = core::runOne(spec);
    EXPECT_TRUE(res.audited);
    EXPECT_GT(res.replicatedCommits, 0u);
}

} // namespace
} // namespace hades
