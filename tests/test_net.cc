/**
 * @file
 * Unit tests for the interconnect model and the HADES SmartNIC state
 * (Modules 4a/4b).
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "net/hades_nic.hh"
#include "net/network.hh"
#include "sim/task.hh"

namespace hades::net
{
namespace
{

ClusterConfig
cfg()
{
    return ClusterConfig{};
}

sim::DetachedTask
doRoundTrip(Network &net, MsgType t, NodeId src, NodeId dst,
            std::uint32_t req, std::uint32_t resp, Tick &done,
            Network::RemoteWork work = nullptr)
{
    co_await net.roundTrip(t, src, dst, req, resp, std::move(work));
    done = net.kernel().now();
}

TEST(Network, RoundTripTakesAtLeastTheWireLatency)
{
    sim::Kernel kernel;
    auto c = cfg();
    Network net{kernel, c};
    Tick done = -1;
    doRoundTrip(net, MsgType::RdmaRead, 0, 1, 24, 256, done);
    kernel.run();
    // At least the 2us NIC-to-NIC round trip.
    EXPECT_GE(done, c.netRoundTrip);
    // And not absurdly more for a small message.
    EXPECT_LT(done, c.netRoundTrip + us(1));
    EXPECT_EQ(net.messageCount(MsgType::RdmaRead), 2u); // req + resp
}

TEST(Network, RemoteWorkAddsToLatency)
{
    sim::Kernel kernel;
    auto c = cfg();
    Network net{kernel, c};
    Tick plain = 0, with_work = 0;
    doRoundTrip(net, MsgType::RdmaRead, 0, 1, 24, 64, plain);
    kernel.run();
    sim::Kernel k2;
    Network net2{k2, c};
    doRoundTrip(net2, MsgType::RdmaRead, 0, 1, 24, 64, with_work,
                [] { return ns(500); });
    k2.run();
    EXPECT_EQ(with_work, plain + ns(500));
}

TEST(Network, BandwidthSerializationScalesWithBytes)
{
    sim::Kernel kernel;
    auto c = cfg();
    Network net{kernel, c};
    Tick small = 0, big = 0;
    doRoundTrip(net, MsgType::RdmaRead, 0, 1, 24, 64, small);
    kernel.run();
    sim::Kernel k2;
    Network net2{k2, c};
    doRoundTrip(net2, MsgType::RdmaRead, 0, 1, 24, 64 * 1024, big);
    k2.run();
    // 64KB at 200Gb/s adds ~2.6us of serialization.
    EXPECT_GT(big, small + us(2));
}

TEST(Network, PostDeliversOnceAtOneWayLatency)
{
    sim::Kernel kernel;
    auto c = cfg();
    Network net{kernel, c};
    int delivered = 0;
    Tick at = 0;
    net.post(MsgType::Squash, 2, 3, 16, [&] {
        ++delivered;
        at = kernel.now();
    });
    kernel.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_GE(at, c.netRoundTrip / 2);
    EXPECT_LT(at, c.netRoundTrip);
}

TEST(Network, TxPortContention)
{
    // Two large posts from the same source serialize on its TX port;
    // posts from another node do not queue behind them.
    sim::Kernel kernel;
    auto c = cfg();
    Network net{kernel, c};
    Tick t1 = 0, t2 = 0, t3 = 0;
    net.post(MsgType::RdmaWrite, 0, 1, 512 * 1024,
             [&] { t1 = kernel.now(); });
    net.post(MsgType::RdmaWrite, 0, 1, 512 * 1024,
             [&] { t2 = kernel.now(); });
    net.post(MsgType::RdmaWrite, 2, 1, 64, [&] { t3 = kernel.now(); });
    kernel.run();
    EXPECT_GT(t2, t1); // second waits for the first's serialization
    EXPECT_LT(t3, t2); // other node's port is free
}

TEST(Network, MessageAccounting)
{
    sim::Kernel kernel;
    auto c = cfg();
    Network net{kernel, c};
    net.post(MsgType::Validation, 0, 1, 128, [] {});
    net.post(MsgType::Ack, 1, 0, 16, [] {});
    kernel.run();
    EXPECT_EQ(net.messageCount(MsgType::Validation), 1u);
    EXPECT_EQ(net.messageCount(MsgType::Ack), 1u);
    EXPECT_EQ(net.totalMessages(), 2u);
    EXPECT_EQ(net.totalBytes(),
              128u + 16u + 2u * c.messageHeaderBytes);
}

TEST(MsgType, Names)
{
    EXPECT_STREQ(msgTypeName(MsgType::IntendToCommit),
                 "IntendToCommit");
    EXPECT_STREQ(msgTypeName(MsgType::Validation), "Validation");
    EXPECT_STREQ(msgTypeName(MsgType::Squash), "Squash");
}

// --- HADES NIC state -----------------------------------------------------------

TEST(HadesNic, RemoteFiltersLifecycle)
{
    auto c = cfg();
    HadesNicState nic{c};
    EXPECT_FALSE(nic.hasRemoteFilters(7));
    auto &f = nic.remoteFilters(7);
    EXPECT_TRUE(nic.hasRemoteFilters(7));
    f.readBf.insert(0x40);
    // Same transaction gets the same filters back.
    EXPECT_TRUE(nic.remoteFilters(7).readBf.mayContain(0x40));
    nic.clearRemoteFilters(7);
    EXPECT_FALSE(nic.hasRemoteFilters(7));
}

TEST(HadesNic, ConflictScanFindsReadersAndWriters)
{
    auto c = cfg();
    HadesNicState nic{c};
    nic.remoteFilters(1).readBf.insert(0x1000);
    nic.remoteFilters(2).writeBf.insert(0x1000);
    nic.remoteFilters(3).readBf.insert(0x9000);

    auto hits = nic.conflictingRemoteTxns(0x1000, /*self=*/99,
                                          /*check_reads=*/true);
    EXPECT_EQ(hits.size(), 2u);

    // Without read checking only the writer conflicts.
    auto w_only = nic.conflictingRemoteTxns(0x1000, 99, false);
    ASSERT_EQ(w_only.size(), 1u);
    EXPECT_EQ(w_only[0], 2u);

    // A transaction never conflicts with itself.
    auto self_scan = nic.conflictingRemoteTxns(0x1000, 1, true);
    EXPECT_EQ(self_scan.size(), 1u);
}

TEST(HadesNic, Module4bBookkeeping)
{
    auto c = cfg();
    HadesNicState nic{c};
    auto &st = nic.localState(5);
    EXPECT_TRUE(st.empty());
    st.writesByNode[2].push_back(AddrRange{0x100, 128});
    st.nodesInvolved.insert(2);
    st.nodesInvolved.insert(3);
    st.bufferedBytes += 128;
    EXPECT_FALSE(nic.localState(5).empty());
    EXPECT_EQ(nic.localState(5).nodesInvolved.size(), 2u);
    nic.clearLocalState(5);
    EXPECT_TRUE(nic.localState(5).empty());
}

TEST(HadesNic, FilterGeometryFromConfig)
{
    auto c = cfg();
    HadesNicState nic{c};
    auto &f = nic.remoteFilters(1);
    EXPECT_EQ(f.readBf.sizeBits(), c.nicReadBf.bits);
    EXPECT_EQ(f.writeBf.sizeBits(), c.nicWriteBf.bits);
}

} // namespace
} // namespace hades::net
