/**
 * @file
 * Test-suite alias for the shared determinism hash. The implementation
 * lives in src/core/result_hash.hh so the chaos fuzzer's
 * threaded-messaging differential can use the exact same digest as the
 * golden and parallel-kernel harnesses.
 */

#ifndef HADES_TESTS_RESULT_HASH_HH_
#define HADES_TESTS_RESULT_HASH_HH_

#include "core/result_hash.hh"

namespace hades::testing
{

using core::ResultHasher;
using core::hashResult;

} // namespace hades::testing

#endif // HADES_TESTS_RESULT_HASH_HH_
