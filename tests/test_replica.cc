/**
 * @file
 * Tests for the Section V-A fault-tolerance/durability substrate and
 * its integration with the HADES two-phase commit: replica placement,
 * staged-vs-durable images, the promote/discard protocol, failure
 * injection, and end-to-end durability of committed values.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/runner.hh"
#include "protocol/system.hh"
#include "replica/replication.hh"
#include "sim/task.hh"

namespace hades::replica
{
namespace
{

TEST(ReplicaPlacement, DegreeRespected)
{
    ReplicationConfig cfg;
    cfg.degree = 2;
    ReplicaManager mgr{cfg, 5};
    for (std::uint64_t r = 0; r < 200; ++r) {
        NodeId primary = NodeId(r % 5);
        auto backups = mgr.backupsOf(r, primary);
        EXPECT_EQ(backups.size(), 2u);
        for (NodeId b : backups)
            EXPECT_NE(b, primary);
        EXPECT_NE(backups[0], backups[1]);
    }
}

TEST(ReplicaPlacement, DegreeCappedByClusterSize)
{
    ReplicationConfig cfg;
    cfg.degree = 10;
    ReplicaManager mgr{cfg, 3};
    auto backups = mgr.backupsOf(7, 1);
    EXPECT_EQ(backups.size(), 2u); // only two other nodes exist
}

TEST(ReplicaPlacement, DisabledMeansNoBackups)
{
    ReplicationConfig cfg; // degree 0
    ReplicaManager mgr{cfg, 5};
    EXPECT_TRUE(mgr.backupsOf(1, 0).empty());
    EXPECT_FALSE(cfg.enabled());
}

TEST(ReplicaStore, StagePromoteDiscard)
{
    ReplicaStore store;
    store.stage(1, 100, 42);
    store.stage(1, 101, 43);
    store.stage(2, 100, 99);
    EXPECT_EQ(store.stagedTxns(), 2u);
    EXPECT_FALSE(store.hasDurable(100));

    store.promote(1, /*seq=*/1);
    EXPECT_EQ(store.durableValue(100), 42);
    EXPECT_EQ(store.durableValue(101), 43);
    EXPECT_EQ(store.stagedTxns(), 1u);

    // Discarding txn 2 must not disturb durable state.
    store.discard(2);
    EXPECT_EQ(store.durableValue(100), 42);
    EXPECT_EQ(store.stagedTxns(), 0u);

    // Promoting an unknown transaction is a no-op.
    store.promote(77, /*seq=*/2);
    EXPECT_EQ(store.durableRecords(), 2u);
}

TEST(ReplicaStore, MissingImageIsDistinctFromZero)
{
    ReplicaStore store;
    EXPECT_EQ(store.durableValue(5), std::nullopt);
    store.installDurable(5, 0, /*seq=*/1);
    EXPECT_EQ(store.durableValue(5), std::int64_t{0});
    EXPECT_TRUE(store.hasDurable(5));
}

TEST(ReplicaStore, MaxSeqWinsAbsorbsReordering)
{
    ReplicaStore store;
    store.installDurable(9, 30, /*seq=*/3);
    // A delayed older promote must not roll the record back.
    store.installDurable(9, 10, /*seq=*/1);
    EXPECT_EQ(store.durableValue(9), 30);
    ASSERT_TRUE(store.durableImage(9).has_value());
    EXPECT_EQ(store.durableImage(9)->seq, 3u);
    // A newer commit wins as usual.
    store.installDurable(9, 50, /*seq=*/5);
    EXPECT_EQ(store.durableValue(9), 50);
    // Re-delivery of the same (seq, value) is idempotent.
    store.installDurable(9, 50, /*seq=*/5);
    EXPECT_EQ(store.durableValue(9), 50);
}

TEST(ReplicaPlacement, DeadNodeLeavesItsRingSlotEmpty)
{
    ReplicationConfig cfg;
    cfg.degree = 2;
    ReplicaManager mgr{cfg, 5};
    std::vector<std::vector<NodeId>> before;
    for (std::uint64_t r = 0; r < 64; ++r) {
        before.push_back(mgr.backupsOf(r, /*primary=*/0));
        ASSERT_EQ(before.back().size(), 2u);
    }
    mgr.markDead(3);
    EXPECT_TRUE(mgr.nodeDead(3));
    EXPECT_EQ(mgr.liveNodes(), 4u);
    for (std::uint64_t r = 0; r < 64; ++r) {
        // The dead node's slot stays empty: the set only shrinks, it
        // never gains a member that missed earlier in-flight promotes.
        std::vector<NodeId> expect;
        for (NodeId b : before[r])
            if (b != 3)
                expect.push_back(b);
        EXPECT_EQ(mgr.backupsOf(r, 0), expect);
    }
}

TEST(ReplicationConfig, MediumLatencies)
{
    ReplicationConfig nvm;
    nvm.medium = Medium::Nvm;
    ReplicationConfig ssd;
    ssd.medium = Medium::Ssd;
    EXPECT_LT(nvm.persistLatency(), ssd.persistLatency());
    EXPECT_EQ(nvm.persistLatency(), ns(300));
    EXPECT_EQ(ssd.persistLatency(), us(10));
}

// --- end-to-end integration with the HADES engine ---------------------------

core::RunSpec
replicatedSpec(std::uint32_t degree, double loss = 0.0)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.cluster.numNodes = 4;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 1;
    spec.mix = {core::MixEntry{workload::AppKind::Smallbank,
                               kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 40;
    spec.scaleKeys = 4'000;
    spec.replication.degree = degree;
    spec.replication.messageLossProbability = loss;
    return spec;
}

TEST(ReplicatedCommit, AllCommitsReplicated)
{
    auto res = core::runOne(replicatedSpec(2));
    EXPECT_GT(res.replicatedCommits, 0u);
    EXPECT_EQ(res.lostReplicaMessages, 0u);
    EXPECT_EQ(res.stats.committed, 8u * 40u);
}

TEST(ReplicatedCommit, ReplicationCostsThroughput)
{
    auto plain = core::runOne(replicatedSpec(0));
    auto repl = core::runOne(replicatedSpec(2));
    // Extra replica round trips + persists must cost something, but the
    // protocol should still make normal progress.
    EXPECT_LT(repl.throughputTps, plain.throughputTps);
    EXPECT_GT(repl.throughputTps, plain.throughputTps * 0.3);
}

TEST(ReplicatedCommit, LossInjectionAbortsButStaysCorrect)
{
    auto res = core::runOne(replicatedSpec(2, /*loss=*/0.05));
    EXPECT_GT(res.lostReplicaMessages, 0u);
    EXPECT_GT(res.stats
                  .squashes[std::size_t(
                      txn::SquashReason::ReplicaTimeout)],
              0u)
        << "lost replica updates must abort transactions";
    // Every context still finishes its quota.
    EXPECT_EQ(res.stats.committed, 8u * 40u);
}

/** Direct System-level check: committed values are durable on backups. */
TEST(ReplicatedCommit, DurableImagesMatchCommittedValues)
{
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.coresPerNode = 1;
    cfg.slotsPerCore = 1;
    ReplicationConfig repl;
    repl.degree = 2;
    protocol::System sys(
        cfg, 32,
        core::engineRecordBytes(protocol::EngineKind::Hades,
                                cfg.recordPayloadBytes),
        repl);
    auto engine = core::makeEngine(protocol::EngineKind::Hades, sys,
                                   cfg.recordPayloadBytes);

    auto drive = [](protocol::TxnEngine &eng,
                    protocol::ExecCtx ctx) -> sim::DetachedTask {
        for (std::uint64_t rec = 0; rec < 8; ++rec) {
            txn::TxnProgram prog;
            txn::Request w;
            w.record = rec;
            w.isWrite = true;
            w.delta = std::int64_t(1000 + rec);
            prog.requests.push_back(w);
            co_await eng.run(ctx, prog);
        }
    };
    drive(*engine, protocol::ExecCtx{0, 0, 0});
    ASSERT_TRUE(sys.kernel.run());

    for (std::uint64_t rec = 0; rec < 8; ++rec) {
        NodeId primary = sys.placement.homeOf(rec);
        for (NodeId b : sys.replicas->backupsOf(rec, primary)) {
            EXPECT_EQ(sys.replicas->store(b).durableValue(rec),
                      std::int64_t(1000 + rec))
                << "record " << rec << " backup " << b;
        }
        // No staged leftovers anywhere.
    }
    for (NodeId n = 0; n < cfg.numNodes; ++n)
        EXPECT_EQ(sys.replicas->store(n).stagedTxns(), 0u);

    // Every live backup of every committed record must hold the
    // ground-truth value (not merely agree with its peers).
    EXPECT_EQ(sys.replicas->divergentRecords(
                  sys.data,
                  [&](std::uint64_t r) {
                      return sys.placement.homeOf(r);
                  }),
              0u);
}

} // namespace
} // namespace hades::replica
