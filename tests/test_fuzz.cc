/**
 * @file
 * Tests for the chaos fuzzer (src/fuzz/): genome generation and decode
 * clamps, the `hades-fuzz-repro-v1` JSON round trip, the clean-matrix
 * property on small seeds, and the shrinking demo against the seeded
 * skip-resync defect (a failing genome must shrink to a handful of
 * events whose replay reproduces the same failure).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fuzz/campaign.hh"
#include "fuzz/genome.hh"

namespace hades::fuzz
{
namespace
{

TEST(Genome_, GenerationIsAPureFunctionOfTheSeed)
{
    auto a = randomGenome(7);
    auto b = randomGenome(7);
    EXPECT_TRUE(a == b) << "same seed must yield the same genome";
    EXPECT_FALSE(a.events.empty());
    auto c = randomGenome(8);
    EXPECT_FALSE(a == c) << "different seeds should differ";
}

TEST(Genome_, GenerationHonorsTheEventBound)
{
    GenomeLimits lim;
    lim.maxEvents = 3;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto g = randomGenome(seed, lim);
        EXPECT_GE(g.events.size(), 1u);
        EXPECT_LE(g.events.size(), 3u);
    }
}

TEST(Genome_, EventKindNamesRoundTrip)
{
    for (std::uint32_t k = 0;
         k < std::uint32_t(EventKind::NumKinds); ++k) {
        auto kind = EventKind(k);
        EventKind back = EventKind::NumKinds;
        ASSERT_TRUE(eventKindFromName(eventKindName(kind), back))
            << eventKindName(kind);
        EXPECT_EQ(back, kind);
    }
    EventKind out;
    EXPECT_FALSE(eventKindFromName("not_a_kind", out));
}

TEST(Genome_, JsonRoundTripsBitIdentically)
{
    for (std::uint64_t seed : {1ull, 5ull, 23ull, 0xdeadull}) {
        auto g = randomGenome(seed);
        g.bugHook = (seed & 1) != 0;
        Genome back;
        std::string err;
        ASSERT_TRUE(parseGenomeJson(genomeJson(g), back, err)) << err;
        EXPECT_TRUE(g == back) << "round trip lost data for seed "
                               << seed;
    }
}

TEST(Genome_, ReproArtifactsRecordTheShardCount)
{
    auto g = randomGenome(7);
    g.shards = 4;
    const auto json = genomeJson(g);
    EXPECT_NE(json.find("\"shards\":4"), std::string::npos)
        << "repro artifact dropped the executor dimension: " << json;
    Genome back;
    std::string err;
    ASSERT_TRUE(parseGenomeJson(json, back, err)) << err;
    EXPECT_EQ(back.shards, 4u);

    // Legacy artifacts (written before the shard gene existed) carry
    // no "shards" key and must replay on the serial oracle.
    Genome legacy;
    ASSERT_TRUE(parseGenomeJson(
        R"({"schema":"hades-fuzz-repro-v1","seed":3,"nodes":5,)"
        R"("txns_per_context":4,"bug_hook":false,"events":[]})",
        legacy, err))
        << err;
    EXPECT_EQ(legacy.shards, 1u);
}

TEST(Genome_, ReproArtifactsRecordTheThreadedMessagingGene)
{
    auto g = randomGenome(7);
    g.threadedMessaging = true;
    const auto json = genomeJson(g);
    EXPECT_NE(json.find("\"threaded_messaging\":true"),
              std::string::npos)
        << "repro artifact dropped the threaded-messaging gene: "
        << json;
    Genome back;
    std::string err;
    ASSERT_TRUE(parseGenomeJson(json, back, err)) << err;
    EXPECT_TRUE(back.threadedMessaging);

    // Legacy artifacts (written before the gene existed) carry no
    // "threaded_messaging" key and must replay without the threaded
    // differential.
    Genome legacy;
    ASSERT_TRUE(parseGenomeJson(
        R"({"schema":"hades-fuzz-repro-v1","seed":3,"nodes":5,)"
        R"("txns_per_context":4,"bug_hook":false,"events":[]})",
        legacy, err))
        << err;
    EXPECT_FALSE(legacy.threadedMessaging);
}

TEST(Genome_, JsonNoteAnnotationIsIgnoredByTheParser)
{
    auto g = randomGenome(3);
    Genome back;
    std::string err;
    ASSERT_TRUE(parseGenomeJson(
        genomeJson(g, "divergent_records=1 on HADES"), back, err))
        << err;
    EXPECT_TRUE(g == back);
}

TEST(Genome_, ParserRejectsGarbageAndWrongSchema)
{
    Genome out;
    std::string err;
    EXPECT_FALSE(parseGenomeJson("not json at all", out, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseGenomeJson(
        R"({"schema":"something-else-v9","seed":1})", out, err));
    EXPECT_FALSE(parseGenomeJson(R"({"seed":)", out, err));
}

TEST(Genome_, DecodeClampsKeepEverySubsetSafe)
{
    // Hostile genome: saturated probabilities, a never-healing
    // partition, four distinct permanent-crash victims. Decode must
    // clamp all of it -- the property that makes ddmin subsets valid.
    Genome g;
    g.nodes = 6;
    FuzzEvent drop;
    drop.kind = EventKind::DropVerb;
    drop.verb = 1;
    drop.prob = 0.999;
    g.events.push_back(drop);
    FuzzEvent part;
    part.kind = EventKind::Partition;
    part.a = 0;
    part.b = 0; // a == b decodes as full isolation
    part.at = us(10);
    part.until = kTickMax; // must be clamped to a healing window
    g.events.push_back(part);
    for (std::uint32_t victim = 0; victim < 4; ++victim) {
        FuzzEvent crash;
        crash.kind = EventKind::CrashForever;
        crash.a = victim;
        crash.at = us(20) + us(victim);
        g.events.push_back(crash);
    }

    ClusterConfig cc;
    cc.numNodes = g.nodes;
    applyEvents(g, cc);
    EXPECT_TRUE(cc.faults.enabled);
    EXPECT_TRUE(cc.recovery.enabled);
    EXPECT_LE(cc.faults.dropProb[1], 0.35);
    ASSERT_EQ(cc.faults.partitions.size(), 1u);
    EXPECT_LT(cc.faults.partitions[0].until, kTickMax)
        << "fuzzer partitions must always heal";
    std::uint32_t forever = 0;
    for (const auto &ev : cc.faults.nodeEvents)
        forever += ev.forever ? 1 : 0;
    EXPECT_LE(forever, 2u)
        << "at most two distinct permanent-crash victims may decode";
}

TEST(Genome_, MembershipGenesDecodeCanonically)
{
    // Any number of JoinNode / DrainNode genes, in any order, collapse
    // to at most one join (of the held-out last node, at the earliest
    // clamped instant) and one drain (of node 1) -- the property that
    // keeps the decode order-independent and every ddmin subset valid.
    Genome g;
    g.nodes = 6;
    FuzzEvent late;
    late.kind = EventKind::JoinNode;
    late.at = us(90);
    g.events.push_back(late);
    FuzzEvent early;
    early.kind = EventKind::JoinNode;
    early.at = us(30);
    g.events.push_back(early);
    FuzzEvent drain;
    drain.kind = EventKind::DrainNode;
    drain.a = 4; // victim field is ignored: the drain target is fixed
    drain.at = us(50);
    g.events.push_back(drain);

    ClusterConfig cc;
    cc.numNodes = g.nodes;
    applyEvents(g, cc);
    EXPECT_TRUE(cc.membership.enabled());
    EXPECT_EQ(cc.membership.initialMembers, g.nodes - 1);
    ASSERT_EQ(cc.membership.joins.size(), 1u);
    EXPECT_EQ(cc.membership.joins[0].node, NodeId(g.nodes - 1));
    EXPECT_EQ(cc.membership.joins[0].at, us(30));
    ASSERT_EQ(cc.membership.drains.size(), 1u);
    EXPECT_EQ(cc.membership.drains[0].node, NodeId(1));
    EXPECT_EQ(cc.membership.drains[0].at, us(50));

    // Below the fuzzer's node floor the genes are inert: no decode can
    // schedule an out-of-range node or drain the cluster empty.
    ClusterConfig tiny;
    tiny.numNodes = 3;
    Genome small = g;
    small.nodes = 3;
    applyEvents(small, tiny);
    EXPECT_FALSE(tiny.membership.enabled());
}

TEST(Genome_, GreyGenesDecodeBoundedAndArmTheSlo)
{
    // Hostile grey genome: a saturated factor, a never-ending window,
    // and a degenerate self-link. Decode must clamp the factor and the
    // window, fold the self-link into a NIC slowdown, and arm the SLO
    // tracker (the mitigation under test).
    Genome g;
    g.nodes = 6;
    FuzzEvent nic;
    nic.kind = EventKind::SlowNic;
    nic.a = 2;
    nic.count = 1000; // factor steps, must clamp to x5
    nic.at = us(10);
    nic.until = kTickMax; // must clamp to a bounded window
    g.events.push_back(nic);
    FuzzEvent self;
    self.kind = EventKind::SlowLink;
    self.a = 3;
    self.b = 3; // a == b decodes as a NIC slowdown, never inert
    self.at = us(5);
    self.until = us(20);
    g.events.push_back(self);
    FuzzEvent link;
    link.kind = EventKind::SlowLink;
    link.a = 0;
    link.b = 4;
    link.symmetric = true;
    link.count = 2;
    link.at = us(8);
    link.until = us(30);
    g.events.push_back(link);

    ClusterConfig cc;
    cc.numNodes = g.nodes;
    applyEvents(g, cc);
    EXPECT_TRUE(cc.slo.enabled)
        << "grey genes must arm the SLO tracker";
    ASSERT_EQ(cc.faults.greyEvents.size(), 3u);
    for (const auto &ge : cc.faults.greyEvents) {
        EXPECT_LE(ge.factorPct, 500u);
        EXPECT_GT(ge.factorPct, 100u);
        EXPECT_LT(ge.until, kTickMax)
            << "fuzzer grey windows must always end";
    }
    EXPECT_EQ(cc.faults.greyEvents[0].kind,
              FaultConfig::GreyEvent::Kind::SlowNic);
    EXPECT_EQ(cc.faults.greyEvents[1].kind,
              FaultConfig::GreyEvent::Kind::SlowNic)
        << "a self-link must decode as a NIC slowdown";
    EXPECT_EQ(cc.faults.greyEvents[2].kind,
              FaultConfig::GreyEvent::Kind::SlowLink);
    EXPECT_TRUE(cc.faults.greyEvents[2].symmetric);
}

TEST(Genome_, ShedStormDecodesIdempotently)
{
    // Any number of ShedStorm genes decode to the same admission
    // config, so every ddmin subset that keeps at least one gene is
    // the same scenario.
    Genome one;
    one.nodes = 5;
    FuzzEvent shed;
    shed.kind = EventKind::ShedStorm;
    one.events.push_back(shed);
    Genome three = one;
    three.events.push_back(shed);
    three.events.push_back(shed);

    ClusterConfig a, b;
    a.numNodes = b.numNodes = 5;
    applyEvents(one, a);
    applyEvents(three, b);
    EXPECT_TRUE(a.admission.enabled);
    EXPECT_EQ(a.admission.bucketCap, b.admission.bucketCap);
    EXPECT_EQ(a.admission.refillTokens, b.admission.refillTokens);
    EXPECT_EQ(a.admission.maxInFlight, b.admission.maxInFlight);
    EXPECT_EQ(a.admission.retryBudgetPct, b.admission.retryBudgetPct);
    EXPECT_FALSE(a.slo.enabled)
        << "overload genes alone must not arm the SLO tracker";
}

TEST(Campaign, GreyAndShedGenesRunTheAuditedMatrixClean)
{
    // Arm a grey fault and a shed storm on top of random fault
    // genomes: hedged reads, admission shedding and retry budgets
    // under drops/dups/partitions must still audit clean with zero
    // divergent records.
    FuzzRunOptions opt;
    opt.smoke = true;
    opt.jobs = 4;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        auto g = randomGenome(seed);
        FuzzEvent nic;
        nic.kind = EventKind::SlowNic;
        nic.a = std::uint32_t(seed % g.nodes);
        nic.count = 3;
        nic.at = us(10);
        nic.until = us(60);
        g.events.push_back(nic);
        FuzzEvent shed;
        shed.kind = EventKind::ShedStorm;
        g.events.push_back(shed);
        auto v = runGenome(g, opt);
        EXPECT_FALSE(v.failed)
            << "seed " << seed << " failed on " << v.engine << ": "
            << v.error;
    }
}

TEST(Campaign, SmallSeedMatrixRunsClean)
{
    FuzzRunOptions opt;
    opt.smoke = true;
    opt.jobs = 4;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto v = runGenome(randomGenome(seed), opt);
        EXPECT_FALSE(v.failed)
            << "seed " << seed << " failed on " << v.engine << ": "
            << v.error;
    }
}

TEST(Campaign, MembershipGenesRunTheAuditedMatrixClean)
{
    // Arm a join and a drain on top of random fault genomes: live
    // migration under drops, duplicates, partitions and crashes must
    // still leave zero divergent records on a healthy tree (aborted
    // joins/drains are legitimate outcomes, divergence never is).
    FuzzRunOptions opt;
    opt.smoke = true;
    opt.jobs = 4;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        auto g = randomGenome(seed);
        FuzzEvent join;
        join.kind = EventKind::JoinNode;
        join.at = us(25);
        g.events.push_back(join);
        FuzzEvent drain;
        drain.kind = EventKind::DrainNode;
        drain.at = us(40);
        g.events.push_back(drain);
        auto v = runGenome(g, opt);
        EXPECT_FALSE(v.failed)
            << "seed " << seed << " failed on " << v.engine << ": "
            << v.error;
    }
}

TEST(Campaign, ThreadedMessagingGeneRunsTheDifferentialClean)
{
    // Arm the gene on a few seeds: the fault-free uniform-messaging
    // replay on worker threads must match the serial oracle, so a
    // healthy tree runs these genomes clean. (A threaded-executor
    // regression turns exactly this verdict into the repro artifact.)
    FuzzRunOptions opt;
    opt.smoke = true;
    opt.jobs = 4;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto g = randomGenome(seed);
        g.threadedMessaging = true;
        const auto spec = threadedSpecFor(
            g, protocol::EngineKind::Hades, true);
        EXPECT_GE(spec.shards, 2u);
        EXPECT_FALSE(spec.audit);
        EXPECT_FALSE(spec.cluster.faults.enabled)
            << "the gene's family must stay thread-certifiable";
        auto v = runGenome(g, opt);
        EXPECT_FALSE(v.failed)
            << "seed " << seed << " threaded differential failed on "
            << v.engine << ": " << v.error;
    }
}

TEST(Campaign, ShrinkerCollapsesTheThreadedMessagingGeneFirst)
{
    // A genome whose failure lives in the audited fault family (the
    // seeded skip-resync defect) but that also carries the threaded-
    // messaging gene: the shrinker must collapse the gene before
    // ddmin, leaving a repro that replays with no threads involved.
    FuzzRunOptions opt;
    opt.smoke = true;
    opt.jobs = 4;
    Genome failing;
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 4 && !found; ++seed) {
        Genome g = randomGenome(seed);
        g.bugHook = true;
        g.threadedMessaging = true;
        FuzzEvent crash;
        crash.kind = EventKind::CrashForever;
        crash.a = std::uint32_t(g.seed % g.nodes);
        crash.at = us(20);
        g.events.push_back(crash);
        if (runGenome(g, opt).failed) {
            failing = g;
            found = true;
        }
    }
    ASSERT_TRUE(found) << "the armed defect was never detected";
    std::uint32_t runs_used = 0;
    Genome shrunk = shrinkGenome(failing, opt, 64, runs_used);
    EXPECT_FALSE(shrunk.threadedMessaging)
        << "the gene was irrelevant to the failure and must collapse";
    EXPECT_TRUE(runGenome(shrunk, opt).failed)
        << "shrunken repro no longer reproduces";
}

TEST(Campaign, VerdictIsReproducible)
{
    FuzzRunOptions opt;
    opt.smoke = true;
    opt.jobs = 2;
    auto g = randomGenome(2);
    auto a = runGenome(g, opt);
    auto b = runGenome(g, opt);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.error, b.error);
}

TEST(Campaign, SeededDefectIsFoundShrunkAndReplayable)
{
    // The acceptance demo end-to-end: arm the TEST-ONLY skip-resync
    // defect, find the failure, ddmin it to <= 8 events, and replay
    // the shrunken repro to the same verdict -- all in-process (the
    // hades_fuzz CLI is a thin wrapper over these calls).
    CampaignOptions opt;
    opt.seedBase = 1;
    opt.genomes = 4;
    opt.smoke = true;
    opt.jobs = 4;
    opt.bugHook = true;
    opt.quiet = true;
    auto report = runCampaign(opt);
    ASSERT_EQ(report.failures, 1u)
        << "the armed defect was never detected";
    ASSERT_TRUE(report.haveRepro);
    EXPECT_LE(report.repro.events.size(), 8u)
        << "shrinking left too many events in the repro";
    EXPECT_TRUE(report.repro.bugHook);

    // Replay through the JSON artifact, exactly as `--replay` does.
    Genome replay;
    std::string err;
    ASSERT_TRUE(parseGenomeJson(genomeJson(report.repro), replay, err))
        << err;
    FuzzRunOptions run;
    run.smoke = true;
    run.jobs = 4;
    auto v = runGenome(replay, run);
    EXPECT_TRUE(v.failed) << "shrunken repro no longer reproduces";
    EXPECT_EQ(v.engine, report.verdict.engine);
    EXPECT_EQ(v.error, report.verdict.error);
}

} // namespace
} // namespace hades::fuzz
