/**
 * @file
 * Deterministic chaos tests for the fault-injection layer.
 *
 * Each test wires a FaultPlan into a small cluster exactly like the
 * runner does, drives conflicting increment/transfer workloads through
 * an engine while messages are dropped / duplicated / delayed / stalled
 * (or whole nodes pause and crash), and then asserts the full
 * correctness contract:
 *
 *  - the simulation terminates (every transaction eventually commits),
 *  - the committed history is serializable (increments are applied
 *    exactly once; transfers conserve the total balance),
 *  - no hardware or software state leaks (locking buffers, WrTX tags,
 *    NIC filters, record locks),
 *  - the run is bit-reproducible under a fixed seed.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "fault/fault_plan.hh"
#include "net/network.hh"
#include "protocol/system.hh"
#include "sim/task.hh"

namespace hades
{
namespace
{

using net::MsgType;
using protocol::EngineKind;
using protocol::ExecCtx;
using protocol::System;
using protocol::TxnEngine;
using txn::SquashReason;

constexpr std::size_t kNumVerbs = FaultConfig::kNumVerbs;

const char *
engineTag(EngineKind k)
{
    switch (k) {
      case EngineKind::Baseline:
        return "Baseline";
      case EngineKind::Hades:
        return "Hades";
      default:
        return "HadesH";
    }
}

ClusterConfig
chaosCluster(std::uint32_t nodes = 2, std::uint32_t cores = 2)
{
    ClusterConfig cfg;
    cfg.numNodes = nodes;
    cfg.coresPerNode = cores;
    cfg.slotsPerCore = 1;
    cfg.seed = 7;
    // Tight recovery knobs keep faulty simulated time short.
    cfg.tuning.retryTimeoutBase = us(4);
    cfg.tuning.retryTimeoutCap = us(32);
    cfg.tuning.maxCommitResends = 6;
    return cfg;
}

/** A System + engine + FaultPlan wired together like core::runOne. */
struct ChaosRig
{
    ClusterConfig cfg; // must outlive sys (System keeps a copy; the
                       // FaultPlan references sys.config)
    System sys;
    std::unique_ptr<TxnEngine> engine;
    std::unique_ptr<fault::FaultPlan> plan;

    ChaosRig(EngineKind kind, const ClusterConfig &config,
             std::uint64_t records)
        : cfg(config),
          sys(cfg, records,
              core::engineRecordBytes(kind, cfg.recordPayloadBytes)),
          engine(core::makeEngine(kind, sys, cfg.recordPayloadBytes))
    {
        if (sys.config.faults.enabled) {
            plan = std::make_unique<fault::FaultPlan>(sys.kernel,
                                                      sys.config);
            sys.network.setFaultInjector(plan.get());
            std::vector<std::vector<sim::ComputeResource *>> cores;
            for (auto &node : sys.nodes) {
                std::vector<sim::ComputeResource *> cs;
                for (auto &core : node->cores)
                    cs.push_back(core.get());
                cores.push_back(std::move(cs));
            }
            plan->scheduleNodeEvents(sys.network, cores);
        }
    }
};

sim::DetachedTask
runProg(TxnEngine &engine, ExecCtx ctx, txn::TxnProgram prog, int repeat)
{
    for (int i = 0; i < repeat; ++i)
        co_await engine.run(ctx, prog);
}

/** Every context increments every record once per round: the strongest
 *  cheap serializability check (a lost or doubly-applied update is
 *  visible in the final counter values). */
void
driveIncrements(ChaosRig &rig, const std::vector<std::uint64_t> &recs,
                int rounds)
{
    txn::TxnProgram prog;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        txn::Request r;
        r.record = recs[i];
        prog.requests.push_back(r);
        txn::Request w;
        w.record = recs[i];
        w.isWrite = true;
        w.derivedFromReadIdx = int(i);
        w.delta = 1;
        prog.requests.push_back(w);
    }
    for (NodeId n = 0; n < rig.cfg.numNodes; ++n)
        for (CoreId c = 0; c < rig.cfg.coresPerNode; ++c)
            runProg(*rig.engine, ExecCtx{n, c, 0}, prog, rounds);
}

void
expectNoLeakedState(System &sys)
{
    for (auto &node : sys.nodes) {
        EXPECT_EQ(node->lockBank.activeCount(), 0u)
            << "leaked Locking Buffer on node " << node->id;
        EXPECT_EQ(node->nic.remoteTxCount(), 0u)
            << "leaked NIC remote filters on node " << node->id;
        EXPECT_EQ(node->versions.lockedCount(), 0u)
            << "leaked record lock on node " << node->id;
        EXPECT_EQ(node->memory.llc().taggedTxCount(), 0u)
            << "leaked WrTX tag on node " << node->id;
    }
}

// --- per-verb chaos matrix ---------------------------------------------------

enum class ChaosMode
{
    DropFirst,  //!< deterministically drop the first sends of the verb
    Duplicate,  //!< duplicate every copy of the verb
    Delay,      //!< reorder-delay every copy of the verb
    RandomDrop, //!< drop 25% of the verb's copies
};

const char *
chaosModeTag(ChaosMode m)
{
    switch (m) {
      case ChaosMode::DropFirst:
        return "DropFirst";
      case ChaosMode::Duplicate:
        return "Dup";
      case ChaosMode::Delay:
        return "Delay";
      default:
        return "RandomDrop";
    }
}

struct ChaosCase
{
    EngineKind engine;
    MsgType verb;
    ChaosMode mode;
};

class ChaosMatrix : public ::testing::TestWithParam<ChaosCase>
{};

TEST_P(ChaosMatrix, TerminatesSerializablyWithoutLeaks)
{
    const auto p = GetParam();
    auto cfg = chaosCluster(2, 2);
    cfg.faults.enabled = true;
    const auto v = std::size_t(p.verb);
    switch (p.mode) {
      case ChaosMode::DropFirst:
        cfg.faults.dropFirst[v] = 3;
        break;
      case ChaosMode::Duplicate:
        cfg.faults.dupProb[v] = 1.0;
        break;
      case ChaosMode::Delay:
        cfg.faults.delayProb[v] = 1.0;
        break;
      case ChaosMode::RandomDrop:
        cfg.faults.dropProb[v] = 0.25;
        break;
    }

    constexpr std::uint64_t kRecords = 6;
    constexpr int kRounds = 8;
    ChaosRig rig(p.engine, cfg, kRecords);
    std::vector<std::uint64_t> recs;
    for (std::uint64_t r = 0; r < kRecords; ++r)
        recs.push_back(r);
    driveIncrements(rig, recs, kRounds);

    ASSERT_TRUE(rig.sys.kernel.run())
        << "event queue did not drain under faults";
    const std::uint64_t contexts =
        rig.cfg.numNodes * rig.cfg.coresPerNode;
    EXPECT_EQ(rig.engine->stats().committed, contexts * kRounds);
    for (auto r : recs)
        EXPECT_EQ(rig.sys.data.read(r),
                  std::int64_t(contexts) * kRounds)
            << "lost or replayed update on record " << r;
    expectNoLeakedState(rig.sys);
}

std::vector<ChaosCase>
chaosCases()
{
    std::vector<ChaosCase> cases;
    for (auto e : {EngineKind::Baseline, EngineKind::Hades,
                   EngineKind::HadesHybrid})
        for (std::size_t v = 0; v < kNumVerbs; ++v)
            for (auto m :
                 {ChaosMode::DropFirst, ChaosMode::Duplicate,
                  ChaosMode::Delay, ChaosMode::RandomDrop})
                cases.push_back({e, MsgType(v), m});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllVerbs, ChaosMatrix, ::testing::ValuesIn(chaosCases()),
    [](const auto &info) {
        const auto &c = info.param;
        return std::string(engineTag(c.engine)) + "_" +
               net::msgTypeName(c.verb) + "_" + chaosModeTag(c.mode);
    });

// --- acceptance: 1% drop on every verb through the public runner -------------

class OnePercentDrop : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(OnePercentDrop, RunnerCompletesAndSurfacesCounters)
{
    core::RunSpec spec;
    spec.engine = GetParam();
    spec.cluster.numNodes = 3;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 1;
    spec.txnsPerContext = 30;
    spec.scaleKeys = 20'000;
    spec.mix = {core::MixEntry{workload::AppKind::Smallbank,
                               kvs::StoreKind::HashTable}};
    spec.cluster.faults.enabled = true;
    spec.cluster.faults.dropAll(0.01);

    auto res = core::runOne(spec);
    const std::uint64_t contexts = spec.cluster.numNodes *
                                   spec.cluster.coresPerNode *
                                   spec.cluster.slotsPerCore;
    EXPECT_EQ(res.stats.committed, contexts * spec.txnsPerContext);
    EXPECT_GT(res.faultDrops, 0u) << "no faults injected at 1% drop";
    EXPECT_GT(res.netRetransmits + res.timeoutResends +
                  res.reliableResends,
              0u)
        << "drops were injected but no recovery path fired";
}

INSTANTIATE_TEST_SUITE_P(AllEngines, OnePercentDrop,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- determinism: same seeded faulty workload twice --------------------------

struct RunFingerprint
{
    std::uint64_t committed = 0;
    std::uint64_t attempts = 0;
    Tick simTime = 0;
    std::uint64_t netMessages = 0;
    std::uint64_t netBytes = 0;
    std::uint64_t drops = 0;
    std::uint64_t dups = 0;
    std::vector<std::int64_t> db;

    bool
    operator==(const RunFingerprint &o) const
    {
        return committed == o.committed && attempts == o.attempts &&
               simTime == o.simTime && netMessages == o.netMessages &&
               netBytes == o.netBytes && drops == o.drops &&
               dups == o.dups && db == o.db;
    }
};

RunFingerprint
faultyFingerprint(EngineKind kind)
{
    auto cfg = chaosCluster(3, 2);
    cfg.faults.enabled = true;
    cfg.faults.dropAll(0.05);
    cfg.faults.dupAll(0.05);
    cfg.faults.delayAll(0.10);
    cfg.faults.nicStallProb = 0.02;

    constexpr std::uint64_t kRecords = 8;
    ChaosRig rig(kind, cfg, kRecords);
    std::vector<std::uint64_t> recs{0, 2, 5, 7};
    driveIncrements(rig, recs, 6);
    EXPECT_TRUE(rig.sys.kernel.run());

    RunFingerprint fp;
    fp.committed = rig.engine->stats().committed;
    fp.attempts = rig.engine->stats().attempts;
    fp.simTime = rig.sys.kernel.now();
    fp.netMessages = rig.sys.network.totalMessages();
    fp.netBytes = rig.sys.network.totalBytes();
    fp.drops = rig.plan->stats().totalDrops();
    fp.dups = rig.plan->stats().totalDuplicates();
    for (std::uint64_t r = 0; r < kRecords; ++r)
        fp.db.push_back(rig.sys.data.read(r));
    return fp;
}

class FaultDeterminism : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(FaultDeterminism, SameSeedSameRun)
{
    auto a = faultyFingerprint(GetParam());
    auto b = faultyFingerprint(GetParam());
    EXPECT_GT(a.drops + a.dups, 0u) << "chaos config injected nothing";
    EXPECT_TRUE(a == b)
        << "faulty run is not bit-reproducible under a fixed seed";
}

INSTANTIATE_TEST_SUITE_P(AllEngines, FaultDeterminism,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- whole-node pause and crash windows --------------------------------------

class NodeOutage : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(NodeOutage, PauseAndCrashWindowsRecover)
{
    auto cfg = chaosCluster(3, 2);
    cfg.faults.enabled = true;
    cfg.tuning.retryTimeoutBase = us(4);
    cfg.tuning.retryTimeoutCap = us(16);
    cfg.tuning.maxCommitResends = 3;
    // Node 1 pauses, then node 2 fail-stops (message amnesia) and
    // restarts warm; peers must ride their timeouts through both.
    cfg.faults.nodeEvents.push_back({1, us(30), us(70), false});
    cfg.faults.nodeEvents.push_back({2, us(120), us(170), true});

    constexpr std::uint64_t kRecords = 6;
    constexpr int kRounds = 12;
    ChaosRig rig(GetParam(), cfg, kRecords);
    std::vector<std::uint64_t> recs{0, 1, 3, 5};
    driveIncrements(rig, recs, kRounds);

    ASSERT_TRUE(rig.sys.kernel.run());
    const std::uint64_t contexts =
        rig.cfg.numNodes * rig.cfg.coresPerNode;
    EXPECT_EQ(rig.engine->stats().committed, contexts * kRounds);
    for (auto r : recs)
        EXPECT_EQ(rig.sys.data.read(r),
                  std::int64_t(contexts) * kRounds);
    EXPECT_GT(rig.plan->stats().pausedDeferrals +
                  rig.plan->stats().crashDrops,
              0u)
        << "outage windows never intersected any traffic";
    expectNoLeakedState(rig.sys);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, NodeOutage,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- replayed one-way handlers are idempotent --------------------------------

TEST(FaultReplay, DuplicatedCommitTrafficIsIdempotent)
{
    // Duplicate every protocol one-way verb: every Intend-to-commit,
    // Ack, Validation and Squash handler runs twice. A double-freed
    // locking buffer, double-counted Ack, or re-applied Validation
    // write would break the counters or leak state below.
    for (auto kind : {EngineKind::Hades, EngineKind::HadesHybrid,
                      EngineKind::Baseline}) {
        auto cfg = chaosCluster(3, 2);
        cfg.faults.enabled = true;
        cfg.faults.dupProb[std::size_t(MsgType::IntendToCommit)] = 1.0;
        cfg.faults.dupProb[std::size_t(MsgType::Ack)] = 1.0;
        cfg.faults.dupProb[std::size_t(MsgType::Validation)] = 1.0;
        cfg.faults.dupProb[std::size_t(MsgType::Squash)] = 1.0;
        cfg.faults.dupProb[std::size_t(MsgType::RdmaWrite)] = 1.0;

        constexpr std::uint64_t kRecords = 6;
        constexpr int kRounds = 8;
        ChaosRig rig(kind, cfg, kRecords);
        std::vector<std::uint64_t> recs{0, 1, 4};
        driveIncrements(rig, recs, kRounds);

        ASSERT_TRUE(rig.sys.kernel.run()) << engineTag(kind);
        const std::uint64_t contexts =
            rig.cfg.numNodes * rig.cfg.coresPerNode;
        EXPECT_EQ(rig.engine->stats().committed, contexts * kRounds)
            << engineTag(kind);
        for (auto r : recs)
            EXPECT_EQ(rig.sys.data.read(r),
                      std::int64_t(contexts) * kRounds)
                << engineTag(kind) << " replayed a write on record "
                << r;
        expectNoLeakedState(rig.sys);
    }
}

// --- network-level fault accounting ------------------------------------------

struct StubInjector : net::FaultInjector
{
    net::FaultDecision decision;
    int dropNext = 0; //!< drop this many copies, then deliver clean

    net::FaultDecision
    judge(MsgType, NodeId, NodeId) override
    {
        if (dropNext > 0) {
            --dropNext;
            net::FaultDecision d;
            d.drop = true;
            return d;
        }
        return decision;
    }
};

sim::DetachedTask
oneRoundTrip(net::Network &net, bool &done)
{
    co_await net.roundTrip(MsgType::RdmaRead, 0, 1, 24, 64);
    done = true;
}

TEST(FaultNetwork, DuplicatedPostAccountsOnceRunsTwice)
{
    ClusterConfig cfg = chaosCluster(2, 1);
    sim::Kernel kernel;
    net::Network net(kernel, cfg);
    StubInjector inj;
    inj.decision.duplicate = true;
    inj.decision.duplicateDelay = ns(700);
    net.setFaultInjector(&inj);

    int runs = 0;
    net.post(MsgType::Validation, 0, 1, 64, [&] { runs += 1; });
    ASSERT_TRUE(kernel.run());
    EXPECT_EQ(runs, 2) << "duplicate copy was not delivered";
    EXPECT_EQ(net.messageCount(MsgType::Validation), 1u)
        << "a duplicated copy must not double-count message stats";
}

TEST(FaultNetwork, DroppedPostStillAccountsTheSend)
{
    ClusterConfig cfg = chaosCluster(2, 1);
    sim::Kernel kernel;
    net::Network net(kernel, cfg);
    StubInjector inj;
    inj.dropNext = 1;
    net.setFaultInjector(&inj);

    int runs = 0;
    net.post(MsgType::Squash, 0, 1, 32, [&] { runs += 1; });
    ASSERT_TRUE(kernel.run());
    EXPECT_EQ(runs, 0) << "one-way posts carry no NIC reliability";
    EXPECT_EQ(net.messageCount(MsgType::Squash), 1u);
}

TEST(FaultNetwork, RoundTripRetransmitsThroughDrops)
{
    ClusterConfig cfg = chaosCluster(2, 1);
    cfg.tuning.retryTimeoutBase = us(4);
    cfg.tuning.retryTimeoutCap = us(16);
    sim::Kernel kernel;
    net::Network net(kernel, cfg);
    StubInjector inj;
    inj.dropNext = 2; // lose the first two request copies
    net.setFaultInjector(&inj);

    bool done = false;
    oneRoundTrip(net, done);
    ASSERT_TRUE(kernel.run());
    EXPECT_TRUE(done) << "RC retransmission never completed";
    EXPECT_EQ(net.retransmits(MsgType::RdmaRead), 2u);
    EXPECT_EQ(net.totalRetransmits(), 2u);
}

} // namespace
} // namespace hades
