/**
 * @file
 * Tests for the crash-recovery / reconfiguration subsystem
 * (src/recovery/): lease-based failure detection, epoch-numbered view
 * changes, backup promotion, in-doubt transaction resolution, epoch
 * fencing of stale traffic, and determinism of crash_forever runs.
 *
 * Two layers:
 *  - direct System-level tests drive RecoveryManager::viewChange by
 *    hand and inspect the re-homed placement and durable images;
 *  - end-to-end tests go through core::runOne with a permanent-crash
 *    fault plan and assert on the recovery counters the runner
 *    surfaces (the auditor, on by default in debug builds, enforces
 *    serializability underneath).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "protocol/system.hh"
#include "recovery/recovery_manager.hh"
#include "replica/replication.hh"
#include "sim/task.hh"

namespace hades
{
namespace
{

using protocol::EngineKind;
using protocol::ExecCtx;
using protocol::System;
using protocol::TxnEngine;

const char *
engineTag(EngineKind k)
{
    switch (k) {
      case EngineKind::Baseline:
        return "Baseline";
      case EngineKind::Hades:
        return "Hades";
      default:
        return "HadesH";
    }
}

/** A small replicated cluster with recovery enabled and one node
 *  permanently fail-stopped mid-run. */
core::RunSpec
crashSpec(EngineKind engine, NodeId victim, Tick crash_at)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.cluster.numNodes = 5;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 2;
    spec.cluster.seed = 42;
    spec.cluster.tuning.retryTimeoutBase = us(4);
    spec.cluster.tuning.retryTimeoutCap = us(32);
    spec.cluster.tuning.maxCommitResends = 6;
    spec.mix = {core::MixEntry{workload::AppKind::Smallbank,
                               kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 8;
    spec.scaleKeys = 4'000;
    spec.replication.degree = 2;
    spec.cluster.faults.enabled = true;
    FaultConfig::NodeEvent ev;
    ev.node = victim;
    ev.at = crash_at;
    ev.crash = true;
    ev.forever = true;
    spec.cluster.faults.nodeEvents.push_back(ev);
    spec.cluster.recovery.enabled = true;
    return spec;
}

// --- lease expiry drives the view change -------------------------------------

class CrashRecovery : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(CrashRecovery, LeaseExpiryTriggersExactlyOneViewChange)
{
    auto res = core::runOne(crashSpec(GetParam(), 2, us(30)));
    EXPECT_TRUE(res.recoveryEnabled);
    EXPECT_GT(res.leaseProbes, 0u) << "lease machinery never probed";
    EXPECT_EQ(res.viewChanges, 1u)
        << "one permanent crash must yield exactly one view change";
    EXPECT_GT(res.promotedRecords, 0u)
        << "the dead node homed records that were never re-homed";
    // The survivors finish their quotas; the dead node's drivers stop
    // early, so total commits land strictly between the survivor floor
    // and the fault-free total.
    const std::uint64_t contexts = 5 * 2 * 2;
    const std::uint64_t per_node = 2 * 2 * 8;
    EXPECT_GE(res.stats.committed, (contexts - 4) * 8u - per_node);
    EXPECT_LE(res.stats.committed, contexts * 8u);
}

TEST_P(CrashRecovery, FaultFreeRunWithLeasesStaysClean)
{
    // Leases renew forever but nothing dies: no view change, full
    // commit quota, and the probe loops wind down once every driver
    // reports in (otherwise the kernel would never drain and runOne
    // would assert).
    auto spec = crashSpec(GetParam(), 2, us(30));
    spec.cluster.faults.nodeEvents.clear();
    auto res = core::runOne(spec);
    EXPECT_GT(res.leaseProbes, 0u);
    EXPECT_EQ(res.viewChanges, 0u);
    EXPECT_EQ(res.stats.committed, 5u * 2u * 2u * 8u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, CrashRecovery,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- in-doubt resolution across the commit window ----------------------------

TEST(CrashRecovery, InDoubtResolutionAcrossCrashInstants)
{
    // Sweep the crash instant across the run so the fail-stop lands at
    // different points of in-flight two-phase commits: before the
    // serialization point (all-Acks rule says abort) and after it
    // (decision recorded, so recovery must finish the commit). Every
    // run is audited; a wrong resolution shows up as a serializability
    // violation or a divergent replica and panics.
    for (auto engine : {EngineKind::Baseline, EngineKind::Hades,
                        EngineKind::HadesHybrid}) {
        std::uint64_t resolved = 0;
        for (Tick at : {us(10), us(20), us(30), us(45)}) {
            auto res = core::runOne(crashSpec(engine, 2, at));
            EXPECT_EQ(res.viewChanges, 1u)
                << engineTag(engine) << " crash at " << at;
            resolved += res.inDoubtCommitted + res.inDoubtAborted;
        }
        EXPECT_GT(resolved, 0u)
            << engineTag(engine)
            << ": no crash instant ever caught a transaction in "
               "flight; the sweep is not exercising in-doubt "
               "resolution";
    }
}

// --- epoch fencing ------------------------------------------------------------

TEST(CrashRecovery, StaleEpochMessagesAreFenced)
{
    // Messages stamped before the view change (e.g. resend-loop copies
    // queued by the dead node's peers) must be rejected on delivery
    // once the epoch advances.
    auto res = core::runOne(crashSpec(EngineKind::Hades, 2, us(30)));
    EXPECT_EQ(res.viewChanges, 1u);
    EXPECT_GT(res.fencedStaleMessages, 0u)
        << "no pre-crash message was fenced after the epoch advanced";
}

// --- determinism of crash_forever runs ----------------------------------------

struct RecoveryFingerprint
{
    Tick simTime = 0;
    std::uint64_t committed = 0;
    std::uint64_t attempts = 0;
    std::uint64_t netMessages = 0;
    std::uint64_t netBytes = 0;
    std::uint64_t leaseProbes = 0;
    std::uint64_t viewChanges = 0;
    std::uint64_t promotedRecords = 0;
    std::uint64_t inDoubtCommitted = 0;
    std::uint64_t inDoubtAborted = 0;
    std::uint64_t replayedWrites = 0;
    std::uint64_t fencedStale = 0;

    bool
    operator==(const RecoveryFingerprint &o) const
    {
        return simTime == o.simTime && committed == o.committed &&
               attempts == o.attempts &&
               netMessages == o.netMessages &&
               netBytes == o.netBytes &&
               leaseProbes == o.leaseProbes &&
               viewChanges == o.viewChanges &&
               promotedRecords == o.promotedRecords &&
               inDoubtCommitted == o.inDoubtCommitted &&
               inDoubtAborted == o.inDoubtAborted &&
               replayedWrites == o.replayedWrites &&
               fencedStale == o.fencedStale;
    }
};

RecoveryFingerprint
fingerprint(const core::RunResult &res)
{
    RecoveryFingerprint fp;
    fp.simTime = res.simTime;
    fp.committed = res.stats.committed;
    fp.attempts = res.stats.attempts;
    fp.netMessages = res.stats.netMessages;
    fp.netBytes = res.stats.netBytes;
    fp.leaseProbes = res.leaseProbes;
    fp.viewChanges = res.viewChanges;
    fp.promotedRecords = res.promotedRecords;
    fp.inDoubtCommitted = res.inDoubtCommitted;
    fp.inDoubtAborted = res.inDoubtAborted;
    fp.replayedWrites = res.replayedWrites;
    fp.fencedStale = res.fencedStaleMessages;
    return fp;
}

class RecoveryDeterminism : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(RecoveryDeterminism, CrashForeverRunIsBitReproducible)
{
    auto spec = crashSpec(GetParam(), 2, us(25));
    auto a = fingerprint(core::runOne(spec));
    auto b = fingerprint(core::runOne(spec));
    EXPECT_EQ(a.viewChanges, 1u);
    EXPECT_TRUE(a == b)
        << "crash_forever run is not bit-reproducible under a fixed "
           "seed";
}

INSTANTIATE_TEST_SUITE_P(AllEngines, RecoveryDeterminism,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return std::string(engineTag(info.param));
                         });

// --- direct System-level promotion check --------------------------------------

sim::DetachedTask
writeRecords(TxnEngine &eng, ExecCtx ctx, std::uint64_t count)
{
    for (std::uint64_t rec = 0; rec < count; ++rec) {
        txn::TxnProgram prog;
        txn::Request w;
        w.record = rec;
        w.isWrite = true;
        w.delta = std::int64_t(5000 + rec);
        prog.requests.push_back(w);
        co_await eng.run(ctx, prog);
    }
}

TEST(CrashRecovery, ViewChangePromotesEveryRecordOfTheDeadNode)
{
    ClusterConfig cfg;
    cfg.numNodes = 4;
    cfg.coresPerNode = 1;
    cfg.slotsPerCore = 1;
    replica::ReplicationConfig repl;
    repl.degree = 2;
    constexpr std::uint64_t kRecords = 32;
    System sys(cfg, kRecords,
               core::engineRecordBytes(EngineKind::Hades,
                                       cfg.recordPayloadBytes),
               repl);
    auto engine = core::makeEngine(EngineKind::Hades, sys,
                                   cfg.recordPayloadBytes);

    // Commit a write to every record, then fail node 2 after the run
    // has quiesced: the cleanest possible failover (no in-flight
    // transactions, only placement + durable images to move).
    writeRecords(*engine, ExecCtx{0, 0, 0}, kRecords);
    ASSERT_TRUE(sys.kernel.run());

    const NodeId dead = 2;
    std::uint64_t owned = 0;
    for (std::uint64_t r = 0; r < kRecords; ++r)
        owned += sys.placement.homeOf(r) == dead;
    ASSERT_GT(owned, 0u) << "placement never homed anything at node 2";

    sys.network.markNodeDead(dead);
    recovery::RecoveryManager recov(sys, *engine);
    recov.viewChange(dead);

    EXPECT_EQ(recov.stats().viewChanges, 1u);
    EXPECT_EQ(recov.stats().promotedRecords, owned);
    for (std::uint64_t r = 0; r < kRecords; ++r) {
        EXPECT_NE(sys.placement.homeOf(r), dead)
            << "record " << r << " still homed at the dead node";
        // The new primary serves the committed value.
        EXPECT_EQ(sys.data.read(r), std::int64_t(5000 + r));
    }
    // Every live backup still matches ground truth after the re-homing
    // (the dead node's ring slot just goes empty).
    EXPECT_EQ(sys.replicas->divergentRecords(
                  sys.data,
                  [&](std::uint64_t r) {
                      return sys.placement.homeOf(r);
                  }),
              0u);
    // A second declaration of the same death is a no-op.
    recov.viewChange(dead);
    EXPECT_EQ(recov.stats().viewChanges, 1u);
}

} // namespace
} // namespace hades
