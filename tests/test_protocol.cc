/**
 * @file
 * Protocol scenario tests: drive specific Table II behaviours through
 * the engines and check the mechanism (not just the outcome) --
 * eager L-L squashes, lazy commit-time conflicts, the
 * Intend-to-commit/Ack/Validation message flow, read-your-own-write,
 * the pessimistic fallback, and state-leak freedom.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "protocol/baseline.hh"
#include "protocol/hades.hh"
#include "protocol/hades_hybrid.hh"
#include "protocol/system.hh"
#include "sim/task.hh"

namespace hades
{
namespace
{

using protocol::EngineKind;
using protocol::ExecCtx;
using protocol::System;
using protocol::TxnEngine;
using txn::SquashReason;

ClusterConfig
smallCluster(std::uint32_t nodes = 2)
{
    ClusterConfig cfg;
    cfg.numNodes = nodes;
    cfg.coresPerNode = 2;
    cfg.slotsPerCore = 1;
    cfg.seed = 11;
    return cfg;
}

txn::TxnProgram
writeProgram(std::uint64_t record, std::int64_t value)
{
    txn::TxnProgram prog;
    txn::Request w;
    w.record = record;
    w.isWrite = true;
    w.delta = value;
    prog.requests.push_back(w);
    return prog;
}

txn::TxnProgram
readProgram(std::uint64_t record)
{
    txn::TxnProgram prog;
    txn::Request r;
    r.record = record;
    prog.requests.push_back(r);
    return prog;
}

/** Find a record homed on @p node. */
std::uint64_t
recordHomedAt(System &sys, NodeId node, std::uint64_t start = 0)
{
    for (std::uint64_t r = start;; ++r)
        if (sys.placement.homeOf(r) == node)
            return r;
}

sim::DetachedTask
runProg(TxnEngine &engine, ExecCtx ctx, txn::TxnProgram prog,
        int repeat = 1)
{
    for (int i = 0; i < repeat; ++i)
        co_await engine.run(ctx, prog);
}

/** After any run, no hardware or software state may leak. */
void
expectNoLeaks(System &sys)
{
    for (auto &node : sys.nodes) {
        EXPECT_EQ(node->lockBank.activeCount(), 0u)
            << "leaked Locking Buffer on node " << node->id;
        EXPECT_EQ(node->nic.remoteTxCount(), 0u)
            << "leaked NIC filters on node " << node->id;
        EXPECT_EQ(node->versions.lockedCount(), 0u)
            << "leaked record lock on node " << node->id;
        EXPECT_EQ(node->memory.llc().taggedTxCount(), 0u)
            << "leaked WrTX tag on node " << node->id;
    }
}

TEST(HadesProtocol, EagerLocalConflictSquashesSecondAccessor)
{
    auto cfg = smallCluster(2);
    System sys(cfg, 64, core::engineRecordBytes(EngineKind::Hades,
                                                cfg.recordPayloadBytes));
    auto engine = core::makeEngine(EngineKind::Hades, sys,
                                   cfg.recordPayloadBytes);
    std::uint64_t rec = recordHomedAt(sys, 0);

    // Two contexts on node 0 hammer the same local record.
    runProg(*engine, ExecCtx{0, 0, 0}, writeProgram(rec, 1), 30);
    runProg(*engine, ExecCtx{0, 1, 0}, writeProgram(rec, 2), 30);
    ASSERT_TRUE(sys.kernel.run());

    EXPECT_EQ(engine->stats().committed, 60u);
    EXPECT_GT(engine->stats()
                  .squashes[std::size_t(
                      SquashReason::EagerLocalConflict)],
              0u)
        << "same-node write-write conflicts must be detected eagerly";
    expectNoLeaks(sys);
}

txn::TxnProgram
incrementProg(std::uint64_t record)
{
    txn::TxnProgram prog;
    txn::Request r;
    r.record = record;
    prog.requests.push_back(r);
    txn::Request w;
    w.record = record;
    w.isWrite = true;
    w.derivedFromReadIdx = 0;
    w.delta = 1;
    prog.requests.push_back(w);
    return prog;
}

TEST(HadesProtocol, LazyConflictOnRemoteData)
{
    auto cfg = smallCluster(2);
    System sys(cfg, 64, core::engineRecordBytes(EngineKind::Hades,
                                                cfg.recordPayloadBytes));
    auto engine = core::makeEngine(EngineKind::Hades, sys,
                                   cfg.recordPayloadBytes);
    std::uint64_t rec = recordHomedAt(sys, 1);

    // A context on node 0 (remote) and one on node 1 (local)
    // read-modify-write the same record homed at node 1: the reads make
    // the L-R conflict visible, and it is resolved lazily at commit.
    runProg(*engine, ExecCtx{0, 0, 0}, incrementProg(rec), 30);
    runProg(*engine, ExecCtx{1, 0, 0}, incrementProg(rec), 30);
    ASSERT_TRUE(sys.kernel.run());

    EXPECT_EQ(engine->stats().committed, 60u);
    EXPECT_EQ(sys.data.read(rec), 60) << "lost increment";
    auto lazy = engine->stats()
                    .squashes[std::size_t(SquashReason::LazyConflict)];
    auto lockf = engine->stats()
                     .squashes[std::size_t(SquashReason::LockFailure)];
    EXPECT_GT(lazy + lockf, 0u)
        << "L-R conflicts must be detected at commit time";
    expectNoLeaks(sys);
}

TEST(HadesProtocol, BlindFullLineRemoteWawIsBenign)
{
    // Two blind writers of the same whole (line-aligned) remote record:
    // the paper deliberately keeps fully-written lines out of the
    // RemoteWriteBF -- blind WAW is serializable in either order, so no
    // squash is required and the last committer's value survives.
    auto cfg = smallCluster(3);
    System sys(cfg, 64, core::engineRecordBytes(EngineKind::Hades,
                                                cfg.recordPayloadBytes));
    auto engine = core::makeEngine(EngineKind::Hades, sys,
                                   cfg.recordPayloadBytes);
    std::uint64_t rec = recordHomedAt(sys, 2);
    runProg(*engine, ExecCtx{0, 0, 0}, writeProgram(rec, 1), 20);
    runProg(*engine, ExecCtx{1, 0, 0}, writeProgram(rec, 2), 20);
    ASSERT_TRUE(sys.kernel.run());
    EXPECT_EQ(engine->stats().committed, 40u);
    std::int64_t v = sys.data.read(rec);
    EXPECT_TRUE(v == 1 || v == 2);
    expectNoLeaks(sys);
}

TEST(HadesProtocol, CommitUsesNewRdmaVerbs)
{
    auto cfg = smallCluster(2);
    System sys(cfg, 64, core::engineRecordBytes(EngineKind::Hades,
                                                cfg.recordPayloadBytes));
    auto engine = core::makeEngine(EngineKind::Hades, sys,
                                   cfg.recordPayloadBytes);
    std::uint64_t rec = recordHomedAt(sys, 1);

    runProg(*engine, ExecCtx{0, 0, 0}, writeProgram(rec, 42), 5);
    ASSERT_TRUE(sys.kernel.run());

    using net::MsgType;
    EXPECT_EQ(sys.network.messageCount(MsgType::IntendToCommit), 5u);
    EXPECT_EQ(sys.network.messageCount(MsgType::Ack), 5u);
    EXPECT_EQ(sys.network.messageCount(MsgType::Validation), 5u);
    // No SW-Impl verbs: HADES never issues RDMA CAS.
    EXPECT_EQ(sys.network.messageCount(MsgType::RdmaCas), 0u);
    EXPECT_EQ(sys.data.read(rec), 42);
    expectNoLeaks(sys);
}

TEST(HadesProtocol, ReadOnlyRemoteTxnStillValidatesViaItc)
{
    auto cfg = smallCluster(2);
    System sys(cfg, 64, core::engineRecordBytes(EngineKind::Hades,
                                                cfg.recordPayloadBytes));
    auto engine = core::makeEngine(EngineKind::Hades, sys,
                                   cfg.recordPayloadBytes);
    std::uint64_t rec = recordHomedAt(sys, 1);

    runProg(*engine, ExecCtx{0, 0, 0}, readProgram(rec), 3);
    ASSERT_TRUE(sys.kernel.run());
    // Even read-only involvement triggers Intend-to-commit + Ack.
    EXPECT_EQ(sys.network.messageCount(net::MsgType::IntendToCommit),
              3u);
    EXPECT_EQ(sys.network.messageCount(net::MsgType::Ack), 3u);
    expectNoLeaks(sys);
}

TEST(BaselineProtocol, WritesBumpVersionsAndReleaseLocks)
{
    auto cfg = smallCluster(2);
    System sys(cfg, 64,
               core::engineRecordBytes(EngineKind::Baseline,
                                       cfg.recordPayloadBytes));
    auto engine = core::makeEngine(EngineKind::Baseline, sys,
                                   cfg.recordPayloadBytes);
    std::uint64_t local = recordHomedAt(sys, 0);
    std::uint64_t remote = recordHomedAt(sys, 1);

    txn::TxnProgram prog;
    txn::Request w1;
    w1.record = local;
    w1.isWrite = true;
    w1.delta = 7;
    txn::Request w2;
    w2.record = remote;
    w2.isWrite = true;
    w2.delta = 9;
    prog.requests = {w1, w2};
    runProg(*engine, ExecCtx{0, 0, 0}, prog, 4);
    ASSERT_TRUE(sys.kernel.run());

    EXPECT_EQ(sys.data.read(local), 7);
    EXPECT_EQ(sys.data.read(remote), 9);
    EXPECT_EQ(sys.node(0).versions.peek(local).version, 4u);
    EXPECT_EQ(sys.node(1).versions.peek(remote).version, 4u);
    EXPECT_EQ(sys.node(0).versions.peek(local).lockOwner, 0u);
    EXPECT_EQ(sys.node(1).versions.peek(remote).lockOwner, 0u);
    // FaRM-style verbs: RDMA CAS used for remote locking.
    EXPECT_GT(sys.network.messageCount(net::MsgType::RdmaCas), 0u);
    EXPECT_EQ(sys.network.messageCount(net::MsgType::IntendToCommit),
              0u);
}

TEST(AllEngines, ReadYourOwnWriteChains)
{
    for (auto kind : {EngineKind::Baseline, EngineKind::Hades,
                      EngineKind::HadesHybrid}) {
        auto cfg = smallCluster(2);
        System sys(cfg, 64,
                   core::engineRecordBytes(kind,
                                           cfg.recordPayloadBytes));
        auto engine =
            core::makeEngine(kind, sys, cfg.recordPayloadBytes);

        // write A=5; read A (idx 0); write B=A+1  =>  B == 6.
        txn::TxnProgram prog;
        txn::Request wa;
        wa.record = 3;
        wa.isWrite = true;
        wa.delta = 5;
        txn::Request ra;
        ra.record = 3;
        txn::Request wb;
        wb.record = 4;
        wb.isWrite = true;
        wb.derivedFromReadIdx = 0;
        wb.delta = 1;
        prog.requests = {wa, ra, wb};
        runProg(*engine, ExecCtx{0, 0, 0}, prog);
        ASSERT_TRUE(sys.kernel.run());
        EXPECT_EQ(sys.data.read(3), 5) << engine->name();
        EXPECT_EQ(sys.data.read(4), 6) << engine->name();
    }
}

TEST(AllEngines, PessimisticFallbackGuaranteesProgress)
{
    for (auto kind : {EngineKind::Baseline, EngineKind::Hades,
                      EngineKind::HadesHybrid}) {
        auto cfg = smallCluster(2);
        cfg.tuning.maxSquashesBeforeLockMode = 2; // engage quickly
        System sys(cfg, 16,
                   core::engineRecordBytes(kind,
                                           cfg.recordPayloadBytes));
        auto engine =
            core::makeEngine(kind, sys, cfg.recordPayloadBytes);

        // Every context increments the same hot record.
        txn::TxnProgram prog;
        txn::Request r;
        r.record = 1;
        txn::Request w;
        w.record = 1;
        w.isWrite = true;
        w.derivedFromReadIdx = 0;
        w.delta = 1;
        prog.requests = {r, w};
        int contexts = 0;
        for (NodeId n = 0; n < cfg.numNodes; ++n)
            for (CoreId c = 0; c < cfg.coresPerNode; ++c) {
                runProg(*engine, ExecCtx{n, c, 0}, prog, 20);
                ++contexts;
            }
        ASSERT_TRUE(sys.kernel.run()) << engine->name();
        EXPECT_EQ(sys.data.read(1), contexts * 20) << engine->name();
        EXPECT_EQ(engine->stats().committed,
                  std::uint64_t(contexts) * 20u);
    }
}

TEST(HadesHybridProtocol, LocalValidationCatchesLocalConflicts)
{
    auto cfg = smallCluster(1); // single node: everything local
    cfg.coresPerNode = 4;
    System sys(cfg, 8,
               core::engineRecordBytes(EngineKind::HadesHybrid,
                                       cfg.recordPayloadBytes));
    auto engine = core::makeEngine(EngineKind::HadesHybrid, sys,
                                   cfg.recordPayloadBytes);

    txn::TxnProgram prog;
    txn::Request r;
    r.record = 2;
    txn::Request w;
    w.record = 2;
    w.isWrite = true;
    w.derivedFromReadIdx = 0;
    w.delta = 1;
    prog.requests = {r, w};
    for (CoreId c = 0; c < cfg.coresPerNode; ++c)
        runProg(*engine, ExecCtx{0, c, 0}, prog, 25);
    ASSERT_TRUE(sys.kernel.run());

    EXPECT_EQ(sys.data.read(2), 100);
    auto vf = engine->stats().squashes[std::size_t(
        SquashReason::ValidationFailure)];
    auto lf = engine->stats()
                  .squashes[std::size_t(SquashReason::LockFailure)];
    EXPECT_GT(vf + lf, 0u)
        << "HADES-H must self-detect local conflicts in software";
    expectNoLeaks(sys);
}

TEST(HadesProtocol, PartialRemoteWriteAvoidsFullFetch)
{
    // A line-aligned full-record remote write needs no exec-time fetch
    // at all; a misaligned partial write fetches only edge lines.
    auto cfg = smallCluster(2);
    System sys(cfg, 64, core::engineRecordBytes(EngineKind::Hades,
                                                cfg.recordPayloadBytes));
    auto engine = core::makeEngine(EngineKind::Hades, sys,
                                   cfg.recordPayloadBytes);
    std::uint64_t rec = recordHomedAt(sys, 1);

    txn::TxnProgram full;
    txn::Request w;
    w.record = rec;
    w.isWrite = true;
    w.delta = 1; // whole record, line-aligned
    full.requests = {w};
    runProg(*engine, ExecCtx{0, 0, 0}, full);
    ASSERT_TRUE(sys.kernel.run());
    // Only the commit verbs went over the wire -- no RdmaRead fetch.
    EXPECT_EQ(sys.network.messageCount(net::MsgType::RdmaRead), 0u);
    EXPECT_EQ(sys.data.read(rec), 1);
}

TEST(HadesProtocol, TinyLockingBankCannotDeadlock)
{
    // Committers hold their local Locking Buffer while their
    // Intend-to-commit waits for the remote bank; with a severely
    // undersized bank this forms a distributed waits-for cycle unless
    // the NIC bounds its retries and squashes the committer. Verify
    // the cluster still drains.
    auto cfg = smallCluster(2);
    cfg.coresPerNode = 4;
    cfg.lockingBuffersPerNode = 2; // far below commit concurrency
    System sys(cfg, 256,
               core::engineRecordBytes(EngineKind::Hades,
                                       cfg.recordPayloadBytes));
    auto engine = core::makeEngine(EngineKind::Hades, sys,
                                   cfg.recordPayloadBytes);
    // Every context writes a distinct record homed on the OTHER node,
    // maximizing cross-node commit pressure with no data conflicts.
    std::uint64_t rec = 0;
    for (NodeId n = 0; n < cfg.numNodes; ++n)
        for (CoreId c = 0; c < cfg.coresPerNode; ++c) {
            rec = recordHomedAt(sys, 1 - n, rec + 1);
            runProg(*engine, ExecCtx{n, c, 0}, writeProgram(rec, 1),
                    25);
        }
    ASSERT_TRUE(sys.kernel.run()) << "locking-bank deadlock";
    EXPECT_EQ(engine->stats().committed, 8u * 25u);
    expectNoLeaks(sys);
}

TEST(AllEngines, StatsPhasesPopulated)
{
    for (auto kind : {EngineKind::Baseline, EngineKind::Hades,
                      EngineKind::HadesHybrid}) {
        auto cfg = smallCluster(2);
        System sys(cfg, 64,
                   core::engineRecordBytes(kind,
                                           cfg.recordPayloadBytes));
        auto engine =
            core::makeEngine(kind, sys, cfg.recordPayloadBytes);
        std::uint64_t rec = recordHomedAt(sys, 1);
        runProg(*engine, ExecCtx{0, 0, 0}, writeProgram(rec, 5), 10);
        ASSERT_TRUE(sys.kernel.run());
        const auto &st = engine->stats();
        EXPECT_EQ(st.execPhase.count(), 10u) << engine->name();
        EXPECT_GT(st.execPhase.mean(), 0.0) << engine->name();
        EXPECT_GT(st.validationPhase.mean(), 0.0) << engine->name();
        if (kind == EngineKind::Baseline)
            EXPECT_GT(st.commitPhase.mean(), 0.0);
        EXPECT_EQ(st.latency.count(), 10u);
    }
}

} // namespace
} // namespace hades
