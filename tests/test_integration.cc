/**
 * @file
 * Integration tests: all three protocol engines driven end-to-end on a
 * live cluster, with serializability checked through invariants that
 * only hold if concurrency control is correct:
 *
 *  - conservation: concurrent transfer transactions keep the total sum
 *    of all account records constant;
 *  - exactly-once increments: N concurrent read-modify-write increments
 *    of a single hot record leave it holding exactly N.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "protocol/system.hh"
#include "sim/task.hh"

namespace hades
{
namespace
{

using core::MixEntry;
using core::RunSpec;
using protocol::EngineKind;
using protocol::ExecCtx;
using protocol::System;
using protocol::TxnEngine;

/** Small cluster for fast tests. */
ClusterConfig
testCluster()
{
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.coresPerNode = 2;
    cfg.slotsPerCore = 2;
    cfg.seed = 7;
    return cfg;
}

/** Transfer transaction: move delta from record a to record b. */
txn::TxnProgram
transferProgram(std::uint64_t a, std::uint64_t b, std::int64_t delta)
{
    txn::TxnProgram prog;
    txn::Request ra;
    ra.record = a;
    prog.requests.push_back(ra); // read a (idx 0)
    txn::Request rb;
    rb.record = b;
    prog.requests.push_back(rb); // read b (idx 1)
    txn::Request wa;
    wa.record = a;
    wa.isWrite = true;
    wa.derivedFromReadIdx = 0;
    wa.delta = -delta;
    prog.requests.push_back(wa);
    txn::Request wb;
    wb.record = b;
    wb.isWrite = true;
    wb.derivedFromReadIdx = 1;
    wb.delta = delta;
    prog.requests.push_back(wb);
    return prog;
}

/** Increment transaction: record += 1 (read-modify-write). */
txn::TxnProgram
incrementProgram(std::uint64_t record)
{
    txn::TxnProgram prog;
    txn::Request r;
    r.record = record;
    prog.requests.push_back(r);
    txn::Request w;
    w.record = record;
    w.isWrite = true;
    w.derivedFromReadIdx = 0;
    w.delta = 1;
    prog.requests.push_back(w);
    return prog;
}

std::string
engineTestName(EngineKind k)
{
    switch (k) {
      case EngineKind::Baseline:
        return "Baseline";
      case EngineKind::Hades:
        return "Hades";
      default:
        return "HadesH";
    }
}

sim::DetachedTask
driveTransfers(TxnEngine &engine, ExecCtx ctx,
               std::uint64_t num_records, std::uint64_t txns,
               std::uint64_t seed)
{
    Rng rng{seed};
    for (std::uint64_t i = 0; i < txns; ++i) {
        std::uint64_t a = rng.below(num_records);
        std::uint64_t b = rng.below(num_records);
        if (b == a)
            b = (a + 1) % num_records;
        auto prog = transferProgram(a, b,
                                    std::int64_t(rng.below(10)) + 1);
        co_await engine.run(ctx, prog);
    }
}

sim::DetachedTask
driveIncrements(TxnEngine &engine, ExecCtx ctx, std::uint64_t record,
                std::uint64_t txns)
{
    for (std::uint64_t i = 0; i < txns; ++i) {
        auto prog = incrementProgram(record);
        co_await engine.run(ctx, prog);
    }
}

class EngineInvariantTest
    : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(EngineInvariantTest, TransfersConserveTotal)
{
    const EngineKind kind = GetParam();
    ClusterConfig cfg = testCluster();
    constexpr std::uint64_t kRecords = 64;
    constexpr std::uint64_t kTxnsPerCtx = 40;

    System sys(cfg, kRecords,
               core::engineRecordBytes(kind, cfg.recordPayloadBytes));
    auto engine = core::makeEngine(kind, sys, cfg.recordPayloadBytes);

    // Seed every account with 1000.
    for (std::uint64_t r = 0; r < kRecords; ++r)
        sys.data.write(r, 1000);
    const std::int64_t expected = 1000 * std::int64_t(kRecords);

    std::uint64_t seed = 1;
    for (NodeId n = 0; n < cfg.numNodes; ++n)
        for (CoreId c = 0; c < cfg.coresPerNode; ++c)
            for (SlotId s = 0; s < cfg.slotsPerCore; ++s)
                driveTransfers(*engine, ExecCtx{n, c, s}, kRecords,
                               kTxnsPerCtx, seed++);

    ASSERT_TRUE(sys.kernel.run()) << "simulation deadlocked";

    EXPECT_EQ(sys.data.sumRange(0, kRecords - 1), expected)
        << engine->name() << " violated conservation";
    const auto &st = engine->stats();
    EXPECT_EQ(st.committed,
              std::uint64_t(cfg.numNodes) * cfg.coresPerNode *
                  cfg.slotsPerCore * kTxnsPerCtx);
    EXPECT_GE(st.attempts, st.committed);
}

TEST_P(EngineInvariantTest, HotRecordIncrementsExactlyOnce)
{
    const EngineKind kind = GetParam();
    ClusterConfig cfg = testCluster();
    constexpr std::uint64_t kTxnsPerCtx = 25;

    System sys(cfg, 8,
               core::engineRecordBytes(kind, cfg.recordPayloadBytes));
    auto engine = core::makeEngine(kind, sys, cfg.recordPayloadBytes);

    const std::uint64_t hot = 3;
    std::uint64_t contexts = 0;
    for (NodeId n = 0; n < cfg.numNodes; ++n)
        for (CoreId c = 0; c < cfg.coresPerNode; ++c)
            for (SlotId s = 0; s < cfg.slotsPerCore; ++s) {
                driveIncrements(*engine, ExecCtx{n, c, s}, hot,
                                kTxnsPerCtx);
                ++contexts;
            }

    ASSERT_TRUE(sys.kernel.run()) << "simulation deadlocked";

    // Heavy contention on one record: every committed increment must
    // be applied exactly once.
    EXPECT_EQ(sys.data.read(hot),
              std::int64_t(contexts * kTxnsPerCtx))
        << engine->name() << " lost or duplicated increments";
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineInvariantTest,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return engineTestName(info.param);
                         });

// --- runner smoke tests -------------------------------------------------------

class RunnerSmokeTest : public ::testing::TestWithParam<EngineKind>
{};

TEST_P(RunnerSmokeTest, YcsbHashTableRuns)
{
    RunSpec spec;
    spec.cluster = testCluster();
    spec.engine = GetParam();
    spec.mix = {MixEntry{workload::AppKind::YcsbA,
                         kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 20;
    spec.scaleKeys = 2000;

    auto res = core::runOne(spec);
    std::uint64_t contexts = std::uint64_t(spec.cluster.numNodes) *
                             spec.cluster.coresPerNode *
                             spec.cluster.slotsPerCore;
    EXPECT_EQ(res.stats.committed, contexts * spec.txnsPerContext);
    EXPECT_GT(res.throughputTps, 0.0);
    EXPECT_GT(res.meanLatencyUs, 0.0);
    EXPECT_GE(res.p95LatencyUs, res.p50LatencyUs);
    EXPECT_GT(res.simTime, 0);
    EXPECT_EQ(res.label, "HT-wA");
}

INSTANTIATE_TEST_SUITE_P(AllEngines, RunnerSmokeTest,
                         ::testing::Values(EngineKind::Baseline,
                                           EngineKind::Hades,
                                           EngineKind::HadesHybrid),
                         [](const auto &info) {
                             return engineTestName(info.param);
                         });

TEST(Runner, DeterministicForFixedSeed)
{
    RunSpec spec;
    spec.cluster = testCluster();
    spec.engine = EngineKind::Hades;
    spec.mix = {MixEntry{workload::AppKind::Smallbank,
                         kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 15;
    spec.scaleKeys = 1000;

    auto a = core::runOne(spec);
    auto b = core::runOne(spec);
    EXPECT_EQ(a.simTime, b.simTime);
    EXPECT_EQ(a.stats.committed, b.stats.committed);
    EXPECT_EQ(a.stats.attempts, b.stats.attempts);
    EXPECT_DOUBLE_EQ(a.throughputTps, b.throughputTps);
}

} // namespace
} // namespace hades
