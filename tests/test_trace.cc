/**
 * @file
 * Tests for the protocol event tracer: off-by-default, ordering,
 * ring-buffer bounds, and integration with squash delivery.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "protocol/system.hh"
#include "sim/task.hh"
#include "sim/trace.hh"

namespace hades
{
namespace
{

TEST(Tracer, DisabledByDefaultCostsNothing)
{
    sim::Tracer t;
    EXPECT_FALSE(t.enabled());
    t.log(10, sim::TraceEvent::TxnStart, 1, 0);
    EXPECT_EQ(t.total(), 0u);
    EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, RecordsInOrder)
{
    sim::Tracer t;
    t.enable();
    t.log(10, sim::TraceEvent::TxnStart, 1, 0);
    t.log(20, sim::TraceEvent::TxnCommit, 1, 0, 7);
    auto rec = t.records();
    ASSERT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec[0].when, 10);
    EXPECT_EQ(rec[0].event, sim::TraceEvent::TxnStart);
    EXPECT_EQ(rec[1].when, 20);
    EXPECT_EQ(rec[1].detail, 7u);
}

TEST(Tracer, RingOverwritesOldest)
{
    sim::Tracer t{4};
    t.enable();
    for (Tick i = 0; i < 10; ++i)
        t.log(i, sim::TraceEvent::Ack, std::uint64_t(i), 0);
    auto rec = t.records();
    ASSERT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.front().when, 6);
    EXPECT_EQ(rec.back().when, 9);
    EXPECT_EQ(t.total(), 10u);
}

TEST(Tracer, EventNames)
{
    EXPECT_STREQ(traceEventName(sim::TraceEvent::TxnSquash),
                 "TxnSquash");
    EXPECT_STREQ(traceEventName(sim::TraceEvent::IntendToCommit),
                 "IntendToCommit");
}

sim::DetachedTask
driveOne(protocol::TxnEngine &engine, protocol::ExecCtx ctx,
         txn::TxnProgram prog, int n)
{
    for (int i = 0; i < n; ++i)
        co_await engine.run(ctx, prog);
}

TEST(Tracer, CapturesCommitsAndSquashes)
{
    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.coresPerNode = 2;
    cfg.slotsPerCore = 1;
    protocol::System sys(
        cfg, 16,
        core::engineRecordBytes(protocol::EngineKind::Hades,
                                cfg.recordPayloadBytes));
    sys.tracer.enable();
    auto engine = core::makeEngine(protocol::EngineKind::Hades, sys,
                                   cfg.recordPayloadBytes);

    // Two contexts increment the same record: commits + squashes.
    txn::TxnProgram prog;
    txn::Request r;
    r.record = 1;
    txn::Request w;
    w.record = 1;
    w.isWrite = true;
    w.derivedFromReadIdx = 0;
    w.delta = 1;
    prog.requests = {r, w};
    driveOne(*engine, protocol::ExecCtx{0, 0, 0}, prog, 20);
    driveOne(*engine, protocol::ExecCtx{0, 1, 0}, prog, 20);
    ASSERT_TRUE(sys.kernel.run());

    std::uint64_t commits = 0, squashes = 0, starts = 0;
    Tick last = -1;
    for (const auto &rec : sys.tracer.records()) {
        EXPECT_GE(rec.when, last) << "trace out of order";
        last = rec.when;
        commits += rec.event == sim::TraceEvent::TxnCommit ? 1 : 0;
        squashes += rec.event == sim::TraceEvent::TxnSquash ? 1 : 0;
        starts += rec.event == sim::TraceEvent::TxnStart ? 1 : 0;
    }
    EXPECT_EQ(commits, 40u);
    EXPECT_EQ(starts, 40u);
    // Router-delivered squashes are traced; eager self-squashes throw
    // directly inside the accessor and are counted only in the stats.
    EXPECT_LE(squashes, engine->stats().totalSquashes());
}

} // namespace
} // namespace hades
