/**
 * @file
 * Differential and property tests for the sharded parallel DES kernel
 * (PR 6 tentpole contract, widened by the PR 8 threaded messaging
 * path).
 *
 * The contract under test: RunSpec::shards selects an *executor*, not
 * a model. Any shard count must reproduce the serial oracle's
 * RunResult bit-for-bit -- across engines, workloads, fault plans,
 * crash recovery, CM failover, and the correctness auditor. With the
 * messaging path lane-safe (per-lane NIC port state, window-delayed
 * cross-lane delivery), that same contract now extends to *worker
 * threads* for fault-free unaudited messaging workloads. The first
 * half of this file checks the window scheduler's own invariants on
 * synthetic event graphs; the second half runs the differential
 * matrices through the full simulator and compares FNV digests of the
 * complete result (src/core/result_hash.hh).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/result_hash.hh"
#include "core/runner.hh"
#include "net/network.hh"
#include "sim/kernel.hh"

namespace
{

using namespace hades;
using hades::core::hashResult;

// ===========================================================================
// Window-scheduler property tests (synthetic kernels, no model)
// ===========================================================================

void
configureSharded(sim::Kernel &k, std::uint32_t shards,
                 std::uint32_t nodes, Tick window, bool threaded)
{
    sim::ShardPlan plan;
    plan.shards = shards;
    plan.numNodes = nodes;
    plan.windowTicks = window;
    plan.threaded = threaded;
    k.configureSharding(plan);
}

TEST(ShardProperty, LaneAssignmentIsAPureFunctionOfNodeId)
{
    // Shard placement must not depend on anything but (node, shards):
    // no hashing of pointers, no registration order, no thread ids.
    for (std::uint32_t shards : {1u, 2u, 3u, 4u, 8u, 16u}) {
        for (NodeId n = 0; n < 200; ++n) {
            const auto lane = sim::Kernel::laneOf(n, shards);
            EXPECT_EQ(lane, n % shards);
            EXPECT_EQ(lane, sim::Kernel::laneOf(n, shards))
                << "laneOf must be referentially transparent";
            EXPECT_LT(lane, shards);
        }
        // The control rank (timers, drivers, harness events) always
        // lives on lane 0 so every executor agrees where it runs.
        EXPECT_EQ(sim::Kernel::laneOf(sim::kControlNode, shards), 0u);
    }
}

TEST(ShardProperty, NoEventRunsBeforeALowerTimestampCrossShardEvent)
{
    // A pseudo-random event cascade that hops nodes (and therefore
    // lanes) on every step, with deltas straddling the window size so
    // both the same-window direct path and the mailbox path are
    // exercised. The deterministic merge must still execute the
    // global event set in nondecreasing time order.
    constexpr Tick kWindow = 100;
    constexpr std::uint32_t kNodes = 8;
    sim::Kernel k;
    configureSharded(k, 4, kNodes, kWindow, false);

    std::vector<Tick> execTimes;
    std::uint64_t lcg = 12345;
    auto nextDelta = [&lcg]() {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        return Tick(1 + (lcg >> 33) % 250); // 1..250, window is 100
    };

    std::function<void(NodeId, int)> hop = [&](NodeId node, int depth) {
        EXPECT_EQ(k.currentNode(), node);
        execTimes.push_back(k.now());
        if (depth >= 6)
            return;
        // Fan out to two other nodes; most hops change lanes.
        for (int i = 1; i <= 2; ++i) {
            NodeId dst = NodeId((node * 5 + i * 3 + depth) % kNodes);
            k.scheduleAs(dst, nextDelta(),
                         [&hop, dst, depth] { hop(dst, depth + 1); });
        }
    };

    for (NodeId n = 0; n < kNodes; ++n)
        k.scheduleAs(n, Tick(1 + n), [&hop, n] { hop(n, 0); });

    EXPECT_TRUE(k.run());
    ASSERT_GT(execTimes.size(), 100u);
    for (std::size_t i = 1; i < execTimes.size(); ++i)
        ASSERT_LE(execTimes[i - 1], execTimes[i])
            << "event " << i << " ran before a lower-timestamp event "
            << "(cross-shard merge violated global time order)";
    EXPECT_GT(k.crossShardEvents(), 0u)
        << "the cascade never actually changed lanes";
    EXPECT_EQ(k.eventsRun(), execTimes.size());
}

TEST(ShardProperty, BarrierCountMatchesHorizonOverWindow)
{
    // Conservative no-skip advancement: the deterministic executor
    // crosses every window boundary between 0 and the last event time
    // exactly once, so windowBarriers() == floor(lastWhen / window)
    // (equivalently, the final window end is the least multiple of the
    // window strictly above the horizon).
    for (Tick window : {Tick(64), Tick(100), Tick(1000)}) {
        for (Tick step : {Tick(37), Tick(100), Tick(250)}) {
            sim::Kernel k;
            configureSharded(k, 2, 2, window, false);
            constexpr int kHops = 25;
            int hops = 0;
            std::function<void()> ping = [&] {
                if (++hops >= kHops)
                    return;
                NodeId dst = NodeId(hops % 2);
                k.scheduleAs(dst, step, ping);
            };
            k.scheduleAs(0, step, ping);
            EXPECT_TRUE(k.run());
            const Tick last = Tick(kHops) * step;
            EXPECT_EQ(k.now(), last);
            EXPECT_EQ(k.windowBarriers(),
                      std::uint64_t(last / window))
                << "window=" << window << " step=" << step;
        }
    }
}

TEST(ShardProperty, ThreadedCrossShardDeliveryIsExactlyOnceAndOrdered)
{
    // A strict ping-pong across the two lanes, one hop per window, so
    // every delivery crosses a mailbox and a barrier. Exactly-once,
    // exact timestamps, alternating nodes.
    constexpr Tick kWindow = 100;
    constexpr int kHops = 12;
    sim::Kernel k;
    configureSharded(k, 2, 2, kWindow, true);

    std::vector<std::pair<NodeId, Tick>> trace;
    int hops = 0;
    std::function<void()> ping = [&] {
        trace.emplace_back(k.currentNode(), k.now());
        if (++hops >= kHops)
            return;
        k.scheduleAs(NodeId(hops % 2), kWindow, ping);
    };
    k.scheduleAs(0, kWindow, ping);

    EXPECT_TRUE(k.run());
    ASSERT_EQ(trace.size(), std::size_t(kHops));
    for (int i = 0; i < kHops; ++i) {
        EXPECT_EQ(trace[i].first, NodeId(i % 2));
        EXPECT_EQ(trace[i].second, Tick(i + 1) * kWindow);
    }
    EXPECT_GE(k.windowBarriers(), std::uint64_t(kHops - 1));
    EXPECT_EQ(k.crossShardEvents(), std::uint64_t(kHops - 1));
}

TEST(ShardProperty, ThreadedAllToAllMailboxesDeliverExactlyOnceInOrder)
{
    // Every node floods every other node with sequenced messages, one
    // batch per window, under the std::barrier executor: all 56
    // (src,dst) mailboxes are live at every barrier. Each message must
    // arrive exactly once, on the destination's lane, in global time
    // order per lane, and in FIFO send order per (src,dst) pair.
    constexpr Tick kWindow = 100;
    constexpr std::uint32_t kNodes = 8;
    constexpr int kRounds = 10;
    sim::Kernel k;
    configureSharded(k, 4, kNodes, kWindow, true);

    struct Delivery
    {
        NodeId src;
        Tick when;
        int seq;
    };
    // inbox[dst] is written only by dst's lane; sent[src][dst] is
    // bumped only by src's lane at send time. No cross-lane state.
    std::vector<std::vector<Delivery>> inbox(kNodes);
    std::array<std::array<int, kNodes>, kNodes> sent{};

    std::function<void(NodeId, int)> round = [&](NodeId src, int r) {
        EXPECT_EQ(k.currentNode(), src);
        if (r >= kRounds)
            return;
        for (NodeId dst = 0; dst < kNodes; ++dst) {
            if (dst == src)
                continue;
            const int seq = sent[src][dst]++;
            k.scheduleAs(dst, kWindow, [&, src, dst, seq] {
                inbox[dst].push_back({src, k.now(), seq});
            });
        }
        k.scheduleAs(src, kWindow,
                     [&round, src, r] { round(src, r + 1); });
    };
    for (NodeId n = 0; n < kNodes; ++n)
        k.scheduleAs(n, kWindow + n, [&round, n] { round(n, 0); });

    EXPECT_TRUE(k.run());

    std::size_t total = 0;
    for (NodeId dst = 0; dst < kNodes; ++dst) {
        total += inbox[dst].size();
        std::array<int, kNodes> nextSeq{};
        for (std::size_t i = 0; i < inbox[dst].size(); ++i) {
            const auto &d = inbox[dst][i];
            if (i > 0) {
                ASSERT_LE(inbox[dst][i - 1].when, d.when)
                    << "lane of node " << dst
                    << " ran deliveries out of time order";
            }
            ASSERT_EQ(d.seq, nextSeq[d.src]++)
                << "mailbox " << d.src << "->" << dst
                << " delivered out of send order (or dropped / "
                << "duplicated a message)";
        }
        for (NodeId src = 0; src < kNodes; ++src) {
            if (src != dst) {
                EXPECT_EQ(nextSeq[src], kRounds)
                    << "mailbox " << src << "->" << dst
                    << " lost messages";
            }
        }
    }
    EXPECT_EQ(total, std::size_t(kNodes) * (kNodes - 1) * kRounds);
    EXPECT_GT(k.crossShardEvents(), 0u);
}

TEST(ShardProperty, PerLaneNicPortStateIsIsolatedAcrossExecutors)
{
    // The same one-way messaging program through the real interconnect
    // model, serial vs threaded over 4 lanes. Each node's TX port and
    // statistics slot are lane-owned, so the per-node message/byte
    // telemetry -- and every arrival instant -- must be bit-identical
    // across executors. A lane leaking into another lane's port state
    // would skew serialization timing or the per-node counters.
    constexpr std::uint32_t kNodes = 8;
    constexpr int kMsgs = 12;
    ClusterConfig cfg;
    cfg.numNodes = kNodes;

    struct Snapshot
    {
        std::vector<std::uint64_t> msgs, bytes;
        std::vector<std::vector<Tick>> arrivals;
        Tick end = 0;
    };
    auto runOnce = [&](bool threaded) {
        sim::Kernel k;
        if (threaded)
            configureSharded(k, 4, kNodes, cfg.netRoundTrip / 2, true);
        net::Network net(k, cfg);
        Snapshot s;
        s.arrivals.resize(kNodes);
        for (NodeId src = 0; src < kNodes; ++src) {
            for (int i = 0; i < kMsgs; ++i) {
                // Sends must originate on the sender's lane; the
                // kick-off delay clears the first window barrier.
                k.scheduleAs(src, us(1) * (1 + i) + Tick(src) * 100,
                             [&, src, i] {
                    NodeId dst = NodeId((src + 1 + i) % kNodes);
                    if (dst == src)
                        dst = (dst + 1) % kNodes;
                    net.post(net::MsgType::Validation, src, dst,
                             32 + 16 * (i % 5), [&s, dst, &k] {
                                 s.arrivals[dst].push_back(k.now());
                             });
                });
            }
        }
        EXPECT_TRUE(k.run());
        for (NodeId n = 0; n < kNodes; ++n) {
            s.msgs.push_back(net.nodeMessages(n));
            s.bytes.push_back(net.nodeBytes(n));
        }
        s.end = k.now();
        EXPECT_EQ(net.totalMessages(), std::uint64_t(kNodes) * kMsgs);
        return s;
    };

    const auto serial = runOnce(false);
    const auto threaded = runOnce(true);
    EXPECT_EQ(serial.end, threaded.end);
    for (NodeId n = 0; n < kNodes; ++n) {
        EXPECT_GT(serial.msgs[n], 0u) << "node " << n << " never sent";
        EXPECT_EQ(serial.msgs[n], threaded.msgs[n])
            << "per-node message count diverged at node " << n;
        EXPECT_EQ(serial.bytes[n], threaded.bytes[n])
            << "per-node byte count diverged at node " << n;
        EXPECT_EQ(serial.arrivals[n], threaded.arrivals[n])
            << "arrival schedule diverged at node " << n;
    }
}

TEST(ShardPropertyDeathTest, ThreadedLookaheadViolationIsRefused)
{
    // The 2us NIC round trip is the lookahead floor: a cross-shard
    // event inside the current window would race the other lane's
    // execution, so the kernel must refuse it loudly rather than
    // silently diverge. (Only reachable through a model bug; the
    // runner certifies window <= RT/2 before enabling threads.)
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            sim::Kernel k;
            configureSharded(k, 2, 2, Tick(100), true);
            k.scheduleAs(0, 10, [&k] {
                // now=10, window end=100: a hop landing at 20 is
                // inside the window -> lookahead violation.
                k.scheduleAs(1, 10, [] {});
            });
            k.run();
        },
        "lookahead violated");
}

// ===========================================================================
// Differential harness: serial oracle vs --shards {2,4,8}
// ===========================================================================

/** Run @p spec serially and at shard counts {2,4,8}; every result
 *  must hash identical to the oracle. */
void
expectShardInvariant(const core::RunSpec &spec, const char *tag)
{
    const auto oracle = core::runOne(spec);
    const auto want = hashResult(oracle);
    EXPECT_EQ(oracle.shardsUsed, 1u);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
        auto sharded = spec;
        sharded.shards = shards;
        const auto res = core::runOne(sharded);
        EXPECT_EQ(hashResult(res), want)
            << tag << ": shards=" << shards
            << " diverged from the serial oracle (committed="
            << res.stats.committed << " vs " << oracle.stats.committed
            << ", simTime=" << res.simTime << " vs " << oracle.simTime
            << ")";
        EXPECT_EQ(res.shardsUsed,
                  std::min(shards, spec.cluster.numNodes));
        EXPECT_GT(res.shardWindows + res.crossShardEvents, 0u)
            << tag << ": the sharded run never exercised the "
            << "cross-shard machinery";
    }
}

/** Small four-node spec sized like the golden matrix. */
core::RunSpec
matrixSpec(protocol::EngineKind engine, workload::AppKind app,
           bool faults, bool audit)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = {core::MixEntry{app, kvs::StoreKind::HashTable}};
    spec.cluster.numNodes = 4;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 2;
    spec.txnsPerContext = 8;
    spec.scaleKeys = 4000;
    spec.audit = audit;
    if (faults) {
        spec.cluster.faults.enabled = true;
        spec.cluster.faults.dropAll(0.02);
        spec.cluster.faults.dupAll(0.01);
        spec.cluster.faults.delayAll(0.02);
    }
    return spec;
}

class ShardDifferential
    : public ::testing::TestWithParam<protocol::EngineKind>
{};

TEST_P(ShardDifferential, EngineWorkloadFaultAuditMatrix)
{
    for (auto app : {workload::AppKind::YcsbA, workload::AppKind::Tpcc})
        for (bool faults : {false, true})
            for (bool audit : {false, true})
                expectShardInvariant(
                    matrixSpec(GetParam(), app, faults, audit),
                    "matrix");
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ShardDifferential,
    ::testing::Values(protocol::EngineKind::Baseline,
                      protocol::EngineKind::HadesHybrid,
                      protocol::EngineKind::Hades),
    [](const auto &info) {
        switch (info.param) {
          case protocol::EngineKind::Baseline:
            return std::string("Baseline");
          case protocol::EngineKind::Hades:
            return std::string("Hades");
          default:
            return std::string("HadesH");
        }
    });

/** Five-node replicated cluster with recovery armed (the spec family
 *  the crash/partition/CM scenarios below perturb). */
core::RunSpec
recoverySpec(protocol::EngineKind engine)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.cluster.numNodes = 5;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 2;
    spec.cluster.tuning.retryTimeoutBase = us(4);
    spec.cluster.tuning.retryTimeoutCap = us(32);
    spec.cluster.tuning.maxCommitResends = 6;
    spec.mix = {core::MixEntry{workload::AppKind::Smallbank,
                               kvs::StoreKind::HashTable}};
    spec.txnsPerContext = 8;
    spec.scaleKeys = 4000;
    spec.replication.degree = 2;
    spec.cluster.faults.enabled = true;
    spec.cluster.recovery.enabled = true;
    return spec;
}

void
addCrash(core::RunSpec &spec, NodeId victim, Tick at)
{
    FaultConfig::NodeEvent ev;
    ev.node = victim;
    ev.at = at;
    ev.crash = true;
    ev.forever = true;
    spec.cluster.faults.nodeEvents.push_back(ev);
}

TEST(ShardDifferentialRecovery, CrashForeverViewChangeMatchesSerial)
{
    // A permanent mid-run crash drives the whole recovery pipeline --
    // lease expiry, view change, backup promotion, in-doubt
    // resolution -- and all of it must shard bit-identically.
    auto spec = recoverySpec(protocol::EngineKind::Hades);
    addCrash(spec, 2, us(30));
    const auto oracle = core::runOne(spec);
    EXPECT_EQ(oracle.viewChanges, 1u)
        << "spec no longer exercises the view-change path";
    expectShardInvariant(spec, "crash-forever");
}

TEST(ShardDifferentialRecovery, PartitionWindowMatchesSerial)
{
    // A healed symmetric partition: retransmits pile up against the
    // window, then drain. The retry machinery is timer-heavy (control
    // events against data-node events), a prime tie-break hazard.
    auto spec = recoverySpec(protocol::EngineKind::Hades);
    FaultConfig::PartitionWindow w;
    w.edges.emplace_back(NodeId(1), NodeId(3));
    w.symmetric = true;
    w.at = us(20);
    w.until = us(60);
    spec.cluster.faults.partitions.push_back(w);
    const auto oracle = core::runOne(spec);
    EXPECT_GT(oracle.partitionDrops, 0u)
        << "spec no longer exercises the partition path";
    expectShardInvariant(spec, "partition-window");
}

TEST(ShardDifferentialRecovery, CmFailoverMatchesSerial)
{
    // Killing the acting CM primary (node 0) forces the standby
    // succession before the ordinary view change; the CM group's
    // control traffic all runs on the control rank, which every
    // executor must order identically against data events.
    auto spec = recoverySpec(protocol::EngineKind::Hades);
    addCrash(spec, 0, us(25));
    const auto oracle = core::runOne(spec);
    EXPECT_EQ(oracle.cmFailovers, 1u)
        << "spec no longer exercises the CM-failover path";
    expectShardInvariant(spec, "cm-failover");
}

// ===========================================================================
// Threaded messaging differential: serial oracle vs worker threads
// ===========================================================================

/** Uniform-placement messaging spec: remote picks dominate, so every
 *  transaction pushes RDMA / Intend-to-commit / Ack traffic through
 *  the cross-lane mailboxes. This is the spec family PR 8 certifies
 *  for worker threads. */
core::RunSpec
messagingSpec(protocol::EngineKind engine,
              std::vector<core::MixEntry> mix)
{
    core::RunSpec spec;
    spec.engine = engine;
    spec.mix = std::move(mix);
    spec.cluster.numNodes = 8;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 2;
    spec.txnsPerContext = 6;
    spec.scaleKeys = 6000;
    // Keep the optimistic path live: the zipfian hot set can push one
    // straggler past the default 48-squash lock-mode threshold, whose
    // runtime serial-rerun escape hatch is covered separately by
    // LockModeFallbackTriggersDeterministicRerun.
    spec.cluster.tuning.maxSquashesBeforeLockMode = 10000;
    return spec;
}

/**
 * The PR 8 tentpole contract, per spec: the run must certify for
 * worker threads, and at shard counts {2,4,8} the threaded result, a
 * threaded re-run (scheduling-jitter determinism), and the
 * deterministic merge must all hash identical to the serial oracle.
 */
void
expectThreadedMessagingInvariant(const core::RunSpec &spec,
                                 const char *tag)
{
    const auto oracle = core::runOne(spec);
    EXPECT_GT(oracle.stats.netMessages, 0u)
        << tag << ": spec stopped messaging; nothing cross-lane here";
    const auto want = hashResult(oracle);
    for (std::uint32_t shards : {2u, 4u, 8u}) {
        auto sharded = spec;
        sharded.shards = shards;
        const auto res = core::runOne(sharded);
        EXPECT_TRUE(res.shardsThreaded)
            << tag << ": fault-free uniform messaging must certify "
            << "for worker threads";
        EXPECT_FALSE(res.serialRerun)
            << tag << ": certified run hit a serial-only path";
        EXPECT_EQ(hashResult(res), want)
            << tag << ": threaded shards=" << shards
            << " diverged from the serial oracle (committed="
            << res.stats.committed << " vs " << oracle.stats.committed
            << ", simTime=" << res.simTime << " vs " << oracle.simTime
            << ")";
        const auto rerun = core::runOne(sharded);
        EXPECT_EQ(hashResult(rerun), want)
            << tag << ": threaded shards=" << shards
            << " is not deterministic across runs";
        auto det = sharded;
        det.cluster.sharding.forceDeterministic = true;
        const auto merged = core::runOne(det);
        EXPECT_FALSE(merged.shardsThreaded);
        EXPECT_EQ(hashResult(merged), want)
            << tag << ": deterministic merge disagrees at shards="
            << shards;
    }
}

class ThreadedMessagingDifferential
    : public ::testing::TestWithParam<protocol::EngineKind>
{};

TEST_P(ThreadedMessagingDifferential, UniformWorkloadMatrix)
{
    const auto hash = kvs::StoreKind::HashTable;
    using workload::AppKind;
    expectThreadedMessagingInvariant(
        messagingSpec(GetParam(), {core::MixEntry{AppKind::YcsbA, hash}}),
        "ycsb-a");
    expectThreadedMessagingInvariant(
        messagingSpec(GetParam(), {core::MixEntry{AppKind::YcsbB, hash}}),
        "ycsb-b");
    expectThreadedMessagingInvariant(
        messagingSpec(GetParam(),
                      {core::MixEntry{AppKind::Smallbank, hash}}),
        "smallbank");
    expectThreadedMessagingInvariant(
        messagingSpec(GetParam(),
                      {core::MixEntry{AppKind::YcsbA, hash},
                       core::MixEntry{AppKind::Smallbank, hash}}),
        "mix2");
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ThreadedMessagingDifferential,
    ::testing::Values(protocol::EngineKind::Baseline,
                      protocol::EngineKind::HadesHybrid,
                      protocol::EngineKind::Hades),
    [](const auto &info) {
        switch (info.param) {
          case protocol::EngineKind::Baseline:
            return std::string("Baseline");
          case protocol::EngineKind::Hades:
            return std::string("Hades");
          default:
            return std::string("HadesH");
        }
    });

// ===========================================================================
// Threaded-executor certification behavior
// ===========================================================================

/** All-local OLTP spec that qualifies for worker threads. */
core::RunSpec
certifiedSpec(workload::AppKind app)
{
    core::RunSpec spec;
    spec.engine = protocol::EngineKind::Hades;
    spec.mix = {core::MixEntry{app, kvs::StoreKind::HashTable}};
    spec.cluster.numNodes = 8;
    spec.cluster.coresPerNode = 2;
    spec.cluster.slotsPerCore = 2;
    spec.cluster.forcedLocalFraction = 1.0;
    spec.txnsPerContext = 10;
    spec.scaleKeys = 8000;
    spec.audit = false;
    return spec;
}

TEST(ShardThreaded, CertifiedRunUsesThreadsAndMatchesSerial)
{
    for (auto app : {workload::AppKind::Tpcc,
                     workload::AppKind::Tatp}) {
        auto spec = certifiedSpec(app);
        const auto want = hashResult(core::runOne(spec));
        for (std::uint32_t shards : {2u, 4u, 8u}) {
            auto sharded = spec;
            sharded.shards = shards;
            const auto res = core::runOne(sharded);
            EXPECT_TRUE(res.shardsThreaded)
                << "all-local OLTP must certify for worker threads";
            EXPECT_EQ(hashResult(res), want)
                << "threaded shards=" << shards << " diverged";
        }
    }
}

TEST(ShardThreaded, ForceDeterministicDisablesWorkerThreads)
{
    auto spec = certifiedSpec(workload::AppKind::Tpcc);
    const auto want = hashResult(core::runOne(spec));
    spec.cluster.sharding.forceDeterministic = true;
    spec.shards = 4;
    const auto res = core::runOne(spec);
    EXPECT_FALSE(res.shardsThreaded);
    EXPECT_EQ(res.shardsUsed, 4u);
    EXPECT_EQ(hashResult(res), want);
}

TEST(ShardThreaded, AdmittedShapesRunThreadedWithoutSerialRerun)
{
    // Certification soundness, admitting side: every spec shape the
    // runner certifies (all app kinds, uniform or forced-full-local
    // placement, faults/recovery/replication/audit all off) must
    // actually run on worker threads and never trip the
    // SerialRerunNeeded escape hatch -- the static certification has
    // to be conservative enough that no admitted run reaches a
    // serial-only path.
    using workload::AppKind;
    const AppKind apps[] = {
        AppKind::YcsbA,     AppKind::YcsbB,        AppKind::YcsbE,
        AppKind::YcsbWriteOnly, AppKind::YcsbHalf, AppKind::YcsbReadOnly,
        AppKind::Tpcc,      AppKind::Tatp,         AppKind::Smallbank,
    };
    for (auto app : apps) {
        for (double frac : {-1.0, 1.0}) {
            const auto store = app == AppKind::YcsbE
                                   ? kvs::StoreKind::BPlusTree
                                   : kvs::StoreKind::HashTable;
            auto spec = messagingSpec(protocol::EngineKind::Hades,
                                      {core::MixEntry{app, store}});
            spec.cluster.forcedLocalFraction = frac;
            spec.txnsPerContext = 3; // breadth over depth
            spec.shards = 8;
            const auto res = core::runOne(spec);
            EXPECT_TRUE(res.shardsThreaded)
                << "app=" << int(app) << " frac=" << frac
                << " should be certified";
            EXPECT_FALSE(res.serialRerun)
                << "app=" << int(app) << " frac=" << frac
                << " was admitted but hit a serial-only path";
        }
    }
}

TEST(ShardThreaded, DecertifiedShapesStayOffThreadsAndMatchSerial)
{
    // Certification soundness, refusing side: each decertifying flag
    // keeps worker threads off, and the run falls back to the
    // deterministic executor transparently -- reproducing the serial
    // oracle bit-for-bit with no SerialRerunNeeded retry (the static
    // gate, not the runtime escape hatch, must catch these).
    using Mutate = std::function<void(core::RunSpec &)>;
    const std::pair<const char *, Mutate> shapes[] = {
        {"audit", [](core::RunSpec &s) { s.audit = true; }},
        {"faults",
         [](core::RunSpec &s) {
             s.cluster.faults.enabled = true;
             s.cluster.faults.dropAll(0.02);
         }},
        {"recovery",
         [](core::RunSpec &s) {
             s.replication.degree = 2;
             s.cluster.faults.enabled = true;
             s.cluster.recovery.enabled = true;
         }},
        {"replication",
         [](core::RunSpec &s) { s.replication.degree = 2; }},
        {"fractional-locality",
         [](core::RunSpec &s) { s.cluster.forcedLocalFraction = 0.5; }},
        {"force-deterministic",
         [](core::RunSpec &s) {
             s.cluster.sharding.forceDeterministic = true;
         }},
    };
    for (const auto &[name, mutate] : shapes) {
        auto spec = messagingSpec(
            protocol::EngineKind::Hades,
            {core::MixEntry{workload::AppKind::YcsbA,
                            kvs::StoreKind::HashTable}});
        spec.txnsPerContext = 3;
        mutate(spec);
        const auto want = hashResult(core::runOne(spec));
        auto sharded = spec;
        sharded.shards = 4;
        const auto res = core::runOne(sharded);
        EXPECT_FALSE(res.shardsThreaded)
            << name << " must decertify the spec";
        EXPECT_FALSE(res.serialRerun)
            << name << " should be caught statically, not via the "
            << "runtime rerun";
        EXPECT_EQ(hashResult(res), want)
            << name << ": deterministic fallback diverged";
    }
}

TEST(ShardThreaded, LockModeFallbackTriggersDeterministicRerun)
{
    // Brutal contention forces the pessimistic lock-mode path, which
    // the threaded executor refuses: the run must be transparently
    // redone on the deterministic executor and still match the oracle.
    auto spec = certifiedSpec(workload::AppKind::Tpcc);
    spec.scaleKeys = 64;
    spec.cluster.tuning.maxSquashesBeforeLockMode = 1;
    const auto oracle = core::runOne(spec);
    ASSERT_GT(oracle.stats.lockModeFallbacks, 0u)
        << "spec no longer reaches lock mode; tighten the contention";
    const auto want = hashResult(oracle);
    spec.shards = 4;
    const auto res = core::runOne(spec);
    EXPECT_TRUE(res.serialRerun)
        << "the threaded executor silently ran the lock-mode path";
    EXPECT_FALSE(res.shardsThreaded);
    EXPECT_EQ(hashResult(res), want);
}

TEST(ShardThreaded, ShardCountClampsToClusterSize)
{
    auto spec = matrixSpec(protocol::EngineKind::Hades,
                           workload::AppKind::YcsbA, false, false);
    const auto want = hashResult(core::runOne(spec));
    spec.shards = 64; // 4-node cluster
    const auto res = core::runOne(spec);
    EXPECT_EQ(res.shardsUsed, 4u);
    EXPECT_EQ(hashResult(res), want);
}

} // namespace
