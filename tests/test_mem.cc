/**
 * @file
 * Unit tests for the memory hierarchy: cache tag arrays, the LLC
 * directory with WrTX ID tags and transaction-aware replacement, the
 * timed hierarchy, and record placement.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/config.hh"
#include "mem/address_space.hh"
#include "mem/cache_array.hh"
#include "mem/hierarchy.hh"
#include "mem/llc_directory.hh"

namespace hades::mem
{
namespace
{

TEST(CacheArray, HitAfterInsert)
{
    CacheArray c{64 * 1024, 8};
    EXPECT_FALSE(c.probe(0x1000));
    c.insert(0x1000);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheArray, LruEvictionWithinSet)
{
    // 2-way, tiny cache: 2 sets of 2 ways.
    CacheArray c{4 * kCacheLineBytes, 2};
    ASSERT_EQ(c.numSets(), 2u);
    Addr set0_a = 0 * kCacheLineBytes;
    Addr set0_b = 2 * kCacheLineBytes;
    Addr set0_c = 4 * kCacheLineBytes;
    c.insert(set0_a);
    c.insert(set0_b);
    c.probe(set0_a); // make b the LRU
    auto evicted = c.insert(set0_c);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, set0_b);
    EXPECT_TRUE(c.contains(set0_a));
    EXPECT_TRUE(c.contains(set0_c));
}

TEST(CacheArray, InvalidateAndClear)
{
    CacheArray c{64 * 1024, 8};
    c.insert(0x40);
    c.invalidate(0x40);
    EXPECT_FALSE(c.contains(0x40));
    c.insert(0x40);
    c.insert(0x80);
    c.clear();
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.contains(0x80));
}

TEST(CacheArray, InsertExistingLineIsNotEviction)
{
    CacheArray c{4 * kCacheLineBytes, 2};
    c.insert(0);
    EXPECT_FALSE(c.insert(0).has_value());
}

TEST(LlcDirectory, WrTxIdTagging)
{
    LlcDirectory llc{1 * 1024 * 1024, 16};
    EXPECT_EQ(llc.wrTxIdOf(0x40), 0u);
    llc.setWrTxId(0x40, 7);
    EXPECT_EQ(llc.wrTxIdOf(0x40), 7u);
    EXPECT_EQ(llc.numLinesWrittenBy(7), 1u);
    // Re-tagging by the same transaction is idempotent.
    llc.setWrTxId(0x40, 7);
    EXPECT_EQ(llc.numLinesWrittenBy(7), 1u);
}

TEST(LlcDirectory, FindLinesWrittenBy)
{
    LlcDirectory llc{1 * 1024 * 1024, 16};
    std::set<Addr> lines;
    for (int i = 0; i < 40; ++i) {
        Addr a = Addr(i) * 4096;
        llc.setWrTxId(a, 9);
        lines.insert(a);
    }
    auto found = llc.linesWrittenBy(9);
    EXPECT_EQ(found.size(), lines.size());
    for (Addr a : found)
        EXPECT_TRUE(lines.count(a));
}

TEST(LlcDirectory, ClearTxTagsCommit)
{
    LlcDirectory llc{1 * 1024 * 1024, 16};
    llc.setWrTxId(0x40, 5);
    llc.setWrTxId(0x80, 5);
    llc.clearTxTags(5, /*invalidate=*/false);
    EXPECT_EQ(llc.numLinesWrittenBy(5), 0u);
    EXPECT_EQ(llc.wrTxIdOf(0x40), 0u);
    // Lines stay resident after commit.
    EXPECT_TRUE(llc.probe(0x40));
}

TEST(LlcDirectory, ClearTxTagsSquashInvalidates)
{
    LlcDirectory llc{1 * 1024 * 1024, 16};
    llc.setWrTxId(0x40, 5);
    llc.clearTxTags(5, /*invalidate=*/true);
    EXPECT_FALSE(llc.probe(0x40)); // miss: the line was dropped
}

TEST(LlcDirectory, TxAwareReplacementPrefersCleanVictims)
{
    // 2 sets x 2 ways. Fill one set with one speculative and one clean
    // line; inserting a third must evict the clean one.
    LlcDirectory llc{4 * kCacheLineBytes, 2};
    std::uint64_t squashed = 0;
    llc.setSquashHook([&](std::uint64_t tx) { squashed = tx; });

    Addr spec = 0, clean = 2 * kCacheLineBytes,
         incoming = 4 * kCacheLineBytes;
    llc.setWrTxId(spec, 3);
    llc.insert(clean);
    llc.insert(incoming);
    EXPECT_EQ(squashed, 0u) << "clean line should have been evicted";
    EXPECT_EQ(llc.wrTxIdOf(spec), 3u);
    EXPECT_TRUE(llc.probe(incoming));
    EXPECT_FALSE(llc.probe(clean));
}

TEST(LlcDirectory, AllSpeculativeSetSquashesOwner)
{
    LlcDirectory llc{4 * kCacheLineBytes, 2};
    std::vector<std::uint64_t> squashed;
    llc.setSquashHook(
        [&](std::uint64_t tx) { squashed.push_back(tx); });

    llc.setWrTxId(0, 11);
    llc.setWrTxId(2 * kCacheLineBytes, 12);
    llc.insert(4 * kCacheLineBytes); // same set, every way speculative
    ASSERT_EQ(squashed.size(), 1u);
    EXPECT_EQ(llc.speculativeEvictions(), 1u);
    EXPECT_TRUE(squashed[0] == 11 || squashed[0] == 12);
    // The victim's index entry is gone.
    EXPECT_EQ(llc.numLinesWrittenBy(squashed[0]), 0u);
}

TEST(NodeMemory, LatencyLadder)
{
    ClusterConfig cfg;
    NodeMemory mem{cfg};
    Clock clk = cfg.clock();

    // Cold: DRAM.
    auto a0 = mem.access(0, 0x1000);
    EXPECT_EQ(a0.level, HitLevel::DRAM);
    EXPECT_EQ(a0.latency, clk.cycles(cfg.llcCycles) + cfg.dramLatency);

    // Warm: L1.
    auto a1 = mem.access(0, 0x1000);
    EXPECT_EQ(a1.level, HitLevel::L1);
    EXPECT_EQ(a1.latency, clk.cycles(cfg.l1.accessCycles));

    // Another core on the same node: hits the shared LLC.
    auto a2 = mem.access(1, 0x1000);
    EXPECT_EQ(a2.level, HitLevel::LLC);
    EXPECT_EQ(a2.latency, clk.cycles(cfg.llcCycles));
}

TEST(NodeMemory, CachedAccessDoesNotFill)
{
    ClusterConfig cfg;
    NodeMemory mem{cfg};
    EXPECT_FALSE(mem.cachedAccess(0, 0x4000).has_value());
    // Still not resident: cachedAccess must not allocate.
    EXPECT_FALSE(mem.cachedAccess(0, 0x4000).has_value());
    mem.access(0, 0x4000);
    auto hit = mem.cachedAccess(0, 0x4000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->level, HitLevel::L1);
}

TEST(NodeMemory, NicAccessBypassesPrivateCaches)
{
    ClusterConfig cfg;
    NodeMemory mem{cfg};
    auto first = mem.nicAccess(0x2000);
    EXPECT_EQ(first.level, HitLevel::DRAM);
    auto second = mem.nicAccess(0x2000);
    EXPECT_EQ(second.level, HitLevel::LLC);
    // The line is not in any core's private hierarchy.
    EXPECT_FALSE(mem.l1(0).contains(0x2000));
}

// --- placement ---------------------------------------------------------------

TEST(Placement, UniformDistributionAcrossNodes)
{
    Placement p{5, 100'000, 256};
    std::vector<std::uint64_t> per_node(5, 0);
    for (std::uint64_t r = 0; r < 100'000; ++r)
        per_node[p.homeOf(r)] += 1;
    for (auto n : per_node) {
        EXPECT_GT(n, 18'000u);
        EXPECT_LT(n, 22'000u);
    }
}

TEST(Placement, AddressesHomedCorrectly)
{
    Placement p{4, 10'000, 256};
    for (std::uint64_t r = 0; r < 10'000; r += 97)
        EXPECT_EQ(homeOfAddr(p.addrOf(r)), p.homeOf(r));
}

TEST(Placement, RecordsDoNotOverlap)
{
    Placement p{3, 5'000, 192};
    std::set<Addr> seen;
    for (std::uint64_t r = 0; r < 5'000; ++r)
        EXPECT_TRUE(seen.insert(p.addrOf(r)).second);
    // 192B is already line-aligned, so slots stay 192B.
    EXPECT_EQ(p.recordBytes(), 192u);
}

TEST(Placement, RegisteredRecords)
{
    Placement p{4, 1'000, 256};
    auto rid = Placement::makeRegisteredId(2, 42);
    EXPECT_EQ(p.homeOf(rid), 2u);
    Addr a = p.registerRecord(rid, 2, 512);
    EXPECT_EQ(p.addrOf(rid), a);
    EXPECT_EQ(homeOfAddr(a), 2u);
}

TEST(Placement, RegisteredIdsDistinctFromData)
{
    auto rid = Placement::makeRegisteredId(0, 0);
    EXPECT_NE(rid & Placement::kRegisteredBit, 0u);
}

} // namespace
} // namespace hades::mem
