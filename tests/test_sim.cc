/**
 * @file
 * Unit tests for the DES kernel, coroutine tasks, and compute resources.
 */

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/kernel.hh"
#include "sim/resource.hh"
#include "sim/task.hh"

namespace hades::sim
{
namespace
{

TEST(Kernel, EventsFireInTimeOrder)
{
    Kernel k;
    std::vector<int> order;
    k.schedule(30, [&] { order.push_back(3); });
    k.schedule(10, [&] { order.push_back(1); });
    k.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(k.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(k.now(), 30);
    EXPECT_EQ(k.eventsRun(), 3u);
}

TEST(Kernel, SameTickEventsFifo)
{
    Kernel k;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        k.schedule(5, [&, i] { order.push_back(i); });
    k.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Kernel, HorizonStopsExecution)
{
    Kernel k;
    int fired = 0;
    k.schedule(10, [&] { ++fired; });
    k.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(k.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.now(), 50);
    EXPECT_TRUE(k.run());
    EXPECT_EQ(fired, 2);
}

TEST(Kernel, NestedScheduling)
{
    Kernel k;
    Tick second_fire = 0;
    k.schedule(10, [&] {
        k.schedule(15, [&] { second_fire = k.now(); });
    });
    k.run();
    EXPECT_EQ(second_fire, 25);
}

TEST(Kernel, StopRequest)
{
    Kernel k;
    int fired = 0;
    k.schedule(1, [&] {
        ++fired;
        k.stop();
    });
    k.schedule(2, [&] { ++fired; });
    EXPECT_FALSE(k.run());
    EXPECT_EQ(fired, 1);
    k.run();
    EXPECT_EQ(fired, 2);
}

// --- queue-rewrite semantic pins -------------------------------------------
// These lock in the (time, insertion-sequence) contract the protocol
// engines rely on, so the event-queue implementation can change freely.

TEST(Kernel, ZeroDelaySelfReschedulingRunsAfterSameTickEvents)
{
    // An event that reschedules itself with delay 0 gets a fresh
    // sequence number, so every event already pending at that tick runs
    // first; the rescheduled event does not starve or jump the queue.
    Kernel k;
    std::vector<int> order;
    int hops = 0;
    std::function<void()> hop = [&] {
        order.push_back(100 + hops);
        if (++hops < 3)
            k.schedule(0, hop);
    };
    k.schedule(5, hop);
    k.schedule(5, [&] { order.push_back(1); });
    k.schedule(5, [&] { order.push_back(2); });
    EXPECT_TRUE(k.run());
    EXPECT_EQ(order, (std::vector<int>{100, 1, 2, 101, 102}));
    EXPECT_EQ(k.now(), 5);
}

TEST(Kernel, StopInsideEventPreservesSameTickRemainder)
{
    // stop() from inside an event must return after that event, leaving
    // later same-tick events queued; a subsequent run() resumes them in
    // the original insertion order at the same timestamp.
    Kernel k;
    std::vector<int> order;
    k.schedule(7, [&] {
        order.push_back(0);
        k.stop();
    });
    k.schedule(7, [&] { order.push_back(1); });
    k.schedule(7, [&] { order.push_back(2); });
    EXPECT_FALSE(k.run());
    EXPECT_EQ(order, (std::vector<int>{0}));
    EXPECT_EQ(k.now(), 7);
    EXPECT_FALSE(k.empty());
    EXPECT_TRUE(k.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(k.now(), 7);
}

TEST(Kernel, HorizonExactlyOnEventTickRunsTheEvent)
{
    // maxTime is inclusive: an event AT the horizon still fires; only
    // events strictly beyond it are deferred, and now() parks exactly at
    // the horizon.
    Kernel k;
    std::vector<Tick> fired;
    k.schedule(50, [&] { fired.push_back(k.now()); });
    k.schedule(51, [&] { fired.push_back(k.now()); });
    EXPECT_FALSE(k.run(50));
    EXPECT_EQ(fired, (std::vector<Tick>{50}));
    EXPECT_EQ(k.now(), 50);
    EXPECT_TRUE(k.run(51));
    EXPECT_EQ(fired, (std::vector<Tick>{50, 51}));
}

TEST(Kernel, HorizonOnDrainedQueueReportsDrained)
{
    Kernel k;
    int fired = 0;
    k.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(k.run(10));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.now(), 10);
}

TEST(Kernel, ScheduleAndScheduleAtShareOneSequenceSpace)
{
    // Ties between schedule(delay) and scheduleAt(when) resolve by
    // global insertion order, regardless of which entry point was used.
    Kernel k;
    std::vector<int> order;
    k.schedule(9, [&] { order.push_back(0); });
    k.scheduleAt(9, [&] { order.push_back(1); });
    k.schedule(9, [&] { order.push_back(2); });
    k.scheduleAt(9, [&] { order.push_back(3); });
    EXPECT_TRUE(k.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Kernel, InterleavedNestedTieBreaking)
{
    // Events scheduled from inside an event at the current tick queue
    // behind everything already pending at that tick, in issue order.
    Kernel k;
    std::vector<int> order;
    k.schedule(3, [&] {
        order.push_back(0);
        k.scheduleAt(3, [&] { order.push_back(10); });
        k.schedule(0, [&] { order.push_back(11); });
    });
    k.scheduleAt(3, [&] { order.push_back(1); });
    EXPECT_TRUE(k.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11}));
}

TEST(Kernel, EventCountersAdvance)
{
    Kernel k;
    for (int i = 0; i < 5; ++i)
        k.schedule(i, [] {});
    EXPECT_TRUE(k.run());
    EXPECT_EQ(k.eventsRun(), 5u);
}

// --- coroutine machinery ---------------------------------------------------

Task
childAdds(Kernel &k, int &counter, Tick d)
{
    co_await Delay{k, d};
    counter += 1;
}

DetachedTask
rootSequence(Kernel &k, std::vector<Tick> &times)
{
    co_await Delay{k, 10};
    times.push_back(k.now());
    int dummy = 0;
    co_await childAdds(k, dummy, 20);
    times.push_back(k.now());
    EXPECT_EQ(dummy, 1);
}

TEST(Task, DelayAndChildTaskAdvanceTime)
{
    Kernel k;
    std::vector<Tick> times;
    rootSequence(k, times);
    k.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 10);
    EXPECT_EQ(times[1], 30);
}

struct TestError : std::runtime_error
{
    TestError() : std::runtime_error("boom") {}
};

Task
throwingChild(Kernel &k)
{
    co_await Delay{k, 5};
    throw TestError{};
}

DetachedTask
rootCatches(Kernel &k, bool &caught)
{
    try {
        co_await throwingChild(k);
    } catch (const TestError &) {
        caught = true;
    }
}

TEST(Task, ExceptionsPropagateThroughCoAwait)
{
    Kernel k;
    bool caught = false;
    rootCatches(k, caught);
    k.run();
    EXPECT_TRUE(caught);
}

DetachedTask
waitCompletion(Kernel &k, Completion &c, Tick &resumed_at)
{
    co_await c.wait();
    resumed_at = k.now();
}

TEST(Task, CompletionWakesWaiter)
{
    Kernel k;
    Completion c;
    Tick resumed_at = -1;
    waitCompletion(k, c, resumed_at);
    k.schedule(42, [&] { c.fire(k); });
    k.run();
    EXPECT_EQ(resumed_at, 42);
    EXPECT_TRUE(c.done());
}

TEST(Task, CompletionAlreadyDoneDoesNotSuspend)
{
    Kernel k;
    Completion c;
    c.fire(k);
    Tick resumed_at = -1;
    waitCompletion(k, c, resumed_at);
    k.run();
    EXPECT_EQ(resumed_at, 0);
}

DetachedTask
waitLatch(Kernel &k, CountdownLatch &l, Tick &resumed_at)
{
    co_await l.wait();
    resumed_at = k.now();
}

TEST(Task, CountdownLatchWaitsForAll)
{
    Kernel k;
    CountdownLatch latch{3};
    Tick resumed_at = -1;
    waitLatch(k, latch, resumed_at);
    k.schedule(10, [&] { latch.countDown(k); });
    k.schedule(20, [&] { latch.countDown(k); });
    k.schedule(30, [&] { latch.countDown(k); });
    k.run();
    EXPECT_EQ(resumed_at, 30);
}

TEST(Task, CountdownLatchZeroIsImmediate)
{
    Kernel k;
    CountdownLatch latch{0};
    Tick resumed_at = -1;
    waitLatch(k, latch, resumed_at);
    k.run();
    EXPECT_EQ(resumed_at, 0);
}

// --- compute resource -------------------------------------------------------

DetachedTask
occupyFor(Kernel &k, ComputeResource &core, Tick d, Tick &done_at)
{
    co_await core.occupy(d);
    done_at = k.now();
}

TEST(Resource, SerializesOccupants)
{
    Kernel k;
    ComputeResource core{k};
    Tick a = 0, b = 0;
    occupyFor(k, core, 100, a);
    occupyFor(k, core, 50, b);
    k.run();
    EXPECT_EQ(a, 100);
    EXPECT_EQ(b, 150); // queued behind the first occupant
    EXPECT_EQ(core.busyTime(), 150);
}

DetachedTask
occupyAfterDelay(Kernel &k, ComputeResource &core, Tick start, Tick d,
                 Tick &done_at)
{
    co_await Delay{k, start};
    co_await core.occupy(d);
    done_at = k.now();
}

TEST(Resource, IdleGapsDoNotAccumulate)
{
    Kernel k;
    ComputeResource core{k};
    Tick a = 0, b = 0;
    occupyAfterDelay(k, core, 0, 10, a);
    occupyAfterDelay(k, core, 1000, 10, b);
    k.run();
    EXPECT_EQ(a, 10);
    EXPECT_EQ(b, 1010); // starts fresh at t=1000, not queued at t=10
}

TEST(Resource, ModelsMultiplexingOverlap)
{
    // Two contexts on one core: context A computes 100 then "waits on the
    // network" (a plain Delay) for 1000; context B can use the core during
    // A's network wait. Total completion should reflect the overlap.
    Kernel k;
    ComputeResource core{k};
    Tick a_done = 0, b_done = 0;

    auto ctx_a = [](Kernel &k, ComputeResource &core,
                    Tick &done) -> DetachedTask {
        co_await core.occupy(100);
        co_await Delay{k, 1000}; // network wait: core is free
        co_await core.occupy(100);
        done = k.now();
    };
    auto ctx_b = [](Kernel &k, ComputeResource &core,
                    Tick &done) -> DetachedTask {
        co_await core.occupy(500);
        done = k.now();
    };
    ctx_a(k, core, a_done);
    ctx_b(k, core, b_done);
    k.run();
    EXPECT_EQ(b_done, 600);  // B runs during A's network wait
    EXPECT_EQ(a_done, 1200); // A resumes after its wait + compute
}

} // namespace
} // namespace hades::sim
